package repro

import (
	"repro/internal/filter"
	"repro/internal/graph"
)

// The pipeline's failure categories are typed so callers — and the
// backboned HTTP daemon — can dispatch with errors.Is / errors.As
// instead of matching message strings. All of them indicate caller
// error (HTTP 4xx); anything else is a runtime failure.
var (
	// ErrUnknownMethod: the method name is not in the registry.
	ErrUnknownMethod = filter.ErrUnknownMethod
	// ErrUnknownParam: a parameter the selected method does not
	// declare. Always wrapped in a *ParamError.
	ErrUnknownParam = filter.ErrUnknownParam
	// ErrNoScorer: Score or top-k pruning requested of an extract-only
	// method (mst).
	ErrNoScorer = filter.ErrNoScorer
	// ErrUnknownFormat: a graph I/O format name ReadGraph/WriteGraph
	// do not know.
	ErrUnknownFormat = graph.ErrUnknownFormat
	// ErrLineTooLong: an edge-list input line exceeded the per-line cap.
	ErrLineTooLong = graph.ErrLineTooLong
)

// ParamError reports an invalid method or pipeline parameter: the
// offending name, a reason, and (for undeclared names) ErrUnknownParam
// as its Unwrap target.
type ParamError = filter.ParamError
