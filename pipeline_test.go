package repro

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/filter"
)

func pipelineGraph(t *testing.T) *Graph {
	t.Helper()
	csv := "a,b,10\na,c,9\nb,c,1\nc,d,8\nd,e,7\nc,e,2\nd,a,6\ne,b,5\nb,d,3\n"
	g, err := ReadCSV(strings.NewReader(csv), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// paperMethods is the method set the paper's comparison relies on; the
// registry must expose at least these, each exactly once.
var paperMethods = []string{"nc", "df", "hss", "ds", "mst", "nt", "nc-binomial", "kcore"}

func TestRegistryComplete(t *testing.T) {
	counts := map[string]int{}
	for _, m := range Methods() {
		counts[m.Name]++
	}
	for _, name := range paperMethods {
		if counts[name] != 1 {
			t.Errorf("method %q registered %d times, want exactly 1", name, counts[name])
		}
	}
	for name, n := range counts {
		if n != 1 {
			t.Errorf("method %q registered %d times", name, n)
		}
	}
	// Presentation order: the paper's six lead the list.
	names := make([]string, 0, len(counts))
	for _, m := range Methods() {
		names = append(names, m.Name)
	}
	for i, want := range []string{"nc", "df", "hss", "ds", "mst", "nt"} {
		if names[i] != want {
			t.Fatalf("Methods() order %v, want the paper's six first", names)
		}
	}
}

func TestLookupUnknownMethod(t *testing.T) {
	if _, err := LookupMethod("bogus"); err == nil {
		t.Error("LookupMethod(bogus) succeeded")
	}
	if _, err := Backbone(pipelineGraph(t), WithMethod("bogus")); err == nil {
		t.Error("Backbone with unknown method succeeded")
	}
	if _, err := Score(pipelineGraph(t), WithMethod("bogus")); err == nil {
		t.Error("Score with unknown method succeeded")
	}
	if _, err := BackboneAll(pipelineGraph(t), []string{"nc", "bogus"}); err == nil {
		t.Error("BackboneAll with unknown method succeeded")
	}
}

// TestPipelineMatchesDeprecatedHelpers: the options pipeline reproduces
// the flat per-method helpers edge for edge.
func TestPipelineMatchesDeprecatedHelpers(t *testing.T) {
	g := pipelineGraph(t)
	type pair struct {
		name string
		old  func() (*Graph, error)
		opts []Option
	}
	for _, p := range []pair{
		{"nc", func() (*Graph, error) { return NCBackbone(g, 1.64) }, []Option{WithMethod("nc"), WithDelta(1.64)}},
		{"df", func() (*Graph, error) { return DisparityBackbone(g, 0.3) }, []Option{WithMethod("df"), WithAlpha(0.3)}},
		{"hss", func() (*Graph, error) { return HSSBackbone(g, 0.3) }, []Option{WithMethod("hss"), WithSalience(0.3)}},
		{"ds", func() (*Graph, error) { return DoublyStochasticBackbone(g) }, []Option{WithMethod("ds")}},
		{"mst", func() (*Graph, error) { return MaximumSpanningTree(g) }, []Option{WithMethod("mst")}},
		{"nt", func() (*Graph, error) { return NaiveBackbone(g, 5) }, []Option{WithMethod("nt"), WithWeightThreshold(5)}},
		{"kcore", func() (*Graph, error) { return KCoreBackbone(g, 3) }, []Option{WithMethod("kcore"), WithK(3)}},
	} {
		want, err := p.old()
		if err != nil {
			t.Fatalf("%s helper: %v", p.name, err)
		}
		res, err := Backbone(g, p.opts...)
		if err != nil {
			t.Fatalf("%s pipeline: %v", p.name, err)
		}
		if got := res.Backbone; got.NumEdges() != want.NumEdges() {
			t.Errorf("%s: pipeline kept %d edges, helper %d", p.name, got.NumEdges(), want.NumEdges())
		} else {
			ws := want.EdgeSet()
			for k := range res.Backbone.EdgeSet() {
				if !ws[k] {
					t.Errorf("%s: pipeline kept edge %v the helper dropped", p.name, k)
				}
			}
		}
	}
}

func TestBackboneResultMetadata(t *testing.T) {
	g := pipelineGraph(t)
	res, err := Backbone(g, WithDelta(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "nc" || res.Title != "Noise-Corrected" {
		t.Errorf("identity = %q/%q", res.Method, res.Title)
	}
	if res.Params["delta"] != 1.0 {
		t.Errorf("params = %v, want delta 1.0", res.Params)
	}
	if res.Scores == nil {
		t.Error("scoring method returned nil Scores")
	}
	if res.Duration <= 0 {
		t.Error("no duration recorded")
	}
	wantEdge := float64(res.Backbone.NumEdges()) / float64(g.NumEdges())
	if math.Abs(res.EdgeCoverage-wantEdge) > 1e-12 {
		t.Errorf("edge coverage %v, want %v", res.EdgeCoverage, wantEdge)
	}
	if res.NodeCoverage <= 0 || res.NodeCoverage > 1 {
		t.Errorf("node coverage %v out of range", res.NodeCoverage)
	}
	if s := res.String(); !strings.Contains(s, "nc") {
		t.Errorf("String() = %q", s)
	}

	// Extract-only method: no scores, still full metadata.
	res, err = Backbone(g, WithMethod("mst"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores != nil {
		t.Error("mst returned a Scores table")
	}
	if res.Backbone.NumEdges() != g.NumNodes()-1 {
		t.Errorf("mst kept %d edges on a connected %d-node graph", res.Backbone.NumEdges(), g.NumNodes())
	}
}

func TestPipelineOptionValidation(t *testing.T) {
	g := pipelineGraph(t)
	cases := []struct {
		name string
		opts []Option
	}{
		{"undeclared param", []Option{WithMethod("nc"), WithAlpha(0.05)}},
		{"mst with top-k", []Option{WithMethod("mst"), WithTopK(3)}},
		{"mst with param", []Option{WithMethod("mst"), WithDelta(1)}},
		{"negative top-k", []Option{WithTopK(-1)}},
		{"fraction over 1", []Option{WithTopFraction(1.5)}},
		{"fraction zero", []Option{WithTopFraction(0)}},
	}
	for _, c := range cases {
		if _, err := Backbone(g, c.opts...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Score rejects undeclared params and pruning options too.
	if _, err := Score(g, WithMethod("df"), WithDelta(2)); err == nil {
		t.Error("Score accepted delta for df")
	}
	if _, err := Score(g, WithTopK(3)); err == nil {
		t.Error("Score accepted WithTopK")
	}
	if _, err := Score(g, WithTopFraction(0.5)); err == nil {
		t.Error("Score accepted WithTopFraction")
	}
}

func TestTopKAndFraction(t *testing.T) {
	g := pipelineGraph(t)
	res, err := Backbone(g, WithMethod("df"), WithTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Backbone.NumEdges() != 4 {
		t.Errorf("TopK(4) kept %d edges", res.Backbone.NumEdges())
	}
	res, err = Backbone(g, WithTopFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.5*float64(g.NumEdges()) + 0.5)
	if res.Backbone.NumEdges() != want {
		t.Errorf("TopFraction(0.5) kept %d edges, want %d", res.Backbone.NumEdges(), want)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := pipelineGraph(t)
	serial, err := Score(g, WithMethod("nc"))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Score(g, WithMethod("nc"), WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Score {
		if serial.Score[i] != par.Score[i] {
			t.Fatalf("edge %d: serial %v, parallel %v", i, serial.Score[i], par.Score[i])
		}
	}
	// Methods without a parallel scorer silently run serially.
	if _, err := Score(g, WithMethod("df"), WithParallel()); err != nil {
		t.Errorf("df with WithParallel: %v", err)
	}
}

// TestBackboneAll checks the concurrent multi-method comparison:
// results arrive in method order, sizes match under WithTopK, and the
// lenient option handling skips inapplicable parameters. Run under
// -race this also exercises the concurrency of BackboneAll and of the
// registry's lookups.
func TestBackboneAll(t *testing.T) {
	g := pipelineGraph(t)
	names := []string{"nt", "nc", "mst", "df"} // deliberately not registry order
	results, err := BackboneAll(g, names, WithTopK(4), WithDelta(1.64))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("%d results for %d methods", len(results), len(names))
	}
	for i, name := range names {
		if results[i].Method != name {
			t.Errorf("result %d is %q, want %q (input order must be preserved)", i, results[i].Method, name)
		}
	}
	for _, res := range results {
		if res.Method == "mst" {
			continue // cannot rank: fixed size
		}
		if res.Backbone.NumEdges() != 4 {
			t.Errorf("%s: %d edges, want size-matched 4", res.Method, res.Backbone.NumEdges())
		}
	}

	// A runtime failure of one method must not abort the others: a
	// directed graph with a source-only node has no doubly stochastic
	// transformation, but every other method still runs. (The "n/a"
	// cells of the paper's Table II.)
	db := NewBuilder(true)
	for i := 0; i < 3; i++ {
		db.AddNode("")
	}
	db.MustAddEdge(0, 1, 5)
	db.MustAddEdge(0, 2, 3)
	db.MustAddEdge(1, 2, 2)
	directed := db.Build()
	mixed, err := BackboneAll(directed, []string{"nc", "ds", "nt"})
	if err != nil {
		t.Fatalf("BackboneAll with failing ds: %v", err)
	}
	if mixed[1].Err == nil {
		t.Error("ds on a source-only graph should fail")
	} else if mixed[1].Backbone != nil {
		t.Error("failed result carries a backbone")
	}
	for _, i := range []int{0, 2} {
		if mixed[i].Err != nil || mixed[i].Backbone == nil {
			t.Errorf("%s aborted by ds failure: %v", mixed[i].Method, mixed[i].Err)
		}
	}
	if s := mixed[1].String(); !strings.Contains(s, "n/a") {
		t.Errorf("failed result String() = %q, want n/a", s)
	}

	// A parameter no selected method declares is a misspelling, not a
	// ride-along: it must fail loudly instead of silently running every
	// method at defaults.
	if _, err := BackboneAll(g, names, WithParam("deta", 2.32)); err == nil {
		t.Error("BackboneAll accepted a parameter no method declares")
	}
	if _, err := BackboneAll(g, []string{"nc", "df"}, WithDelta(2.32), WithAlpha(0.1)); err != nil {
		t.Errorf("declared ride-along params rejected: %v", err)
	}

	// Nil method list = every registered method, registry order.
	all, err := BackboneAll(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := Methods()
	if len(all) != len(reg) {
		t.Fatalf("%d results for %d registered methods", len(all), len(reg))
	}
	for i, m := range reg {
		if all[i].Method != m.Name {
			t.Errorf("result %d is %q, want %q", i, all[i].Method, m.Name)
		}
	}
}

func TestMethodsTable(t *testing.T) {
	table := MethodsTable()
	for _, m := range Methods() {
		if !strings.Contains(table, "`"+m.Name+"`") {
			t.Errorf("MethodsTable missing %q", m.Name)
		}
		for _, p := range m.Params {
			if !strings.Contains(table, "`"+p.Name+"=") {
				t.Errorf("MethodsTable missing parameter %q of %q", p.Name, m.Name)
			}
		}
	}
}

// TestRegistryIsolation: a private registry does not leak into Default.
func TestRegistryIsolation(t *testing.T) {
	r := filter.NewRegistry()
	m, err := filter.Lookup("nc")
	if err != nil {
		t.Fatal(err)
	}
	clone := *m
	clone.Name = "nc-clone"
	if err := r.Register(&clone); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupMethod("nc-clone"); err == nil {
		t.Error("private registration visible in Default registry")
	}
	if err := r.Register(&clone); err == nil {
		t.Error("duplicate registration accepted")
	}
}

// TestWithScores: a precomputed table lets Backbone skip scoring and
// produce the identical result — for the method's native threshold and
// for top-k pruning — while a table from a different graph is a typed
// parameter error.
func TestWithScores(t *testing.T) {
	g := pipelineGraph(t)
	scores, err := Score(g, WithMethod("nc"))
	if err != nil {
		t.Fatal(err)
	}

	want, err := Backbone(g, WithMethod("nc"), WithDelta(0.8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Backbone(g, WithMethod("nc"), WithDelta(0.8), WithScores(scores))
	if err != nil {
		t.Fatal(err)
	}
	if got.Backbone.NumEdges() != want.Backbone.NumEdges() || got.Params["delta"] != 0.8 {
		t.Errorf("WithScores backbone: %d edges (params %v), want %d",
			got.Backbone.NumEdges(), got.Params, want.Backbone.NumEdges())
	}
	if got.Scores != scores {
		t.Error("result does not carry the supplied table")
	}

	wantTop, err := Backbone(g, WithMethod("nc"), WithTopK(4))
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := Backbone(g, WithMethod("nc"), WithTopK(4), WithScores(scores))
	if err != nil {
		t.Fatal(err)
	}
	if gotTop.Backbone.NumEdges() != wantTop.Backbone.NumEdges() {
		t.Errorf("WithScores top-k: %d edges, want %d", gotTop.Backbone.NumEdges(), wantTop.Backbone.NumEdges())
	}

	other := pipelineGraph(t)
	var pe *ParamError
	if _, err := Backbone(other, WithMethod("nc"), WithScores(scores)); !errors.As(err, &pe) {
		t.Errorf("foreign-graph table: err = %v, want *ParamError", err)
	}
}
