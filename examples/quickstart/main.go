// Quickstart: extract a Noise-Corrected backbone from a small noisy
// network and compare pruning rules.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro"
)

func main() {
	// Build a noisy network: two tight groups of cities with strong
	// internal traffic, one bridge, and a haze of weak random
	// connections that obscures the structure.
	rng := rand.New(rand.NewSource(42))
	cities := []string{
		"rome", "milan", "naples", "turin", "florence",
		"lyon", "paris", "marseille", "lille", "nice",
	}
	b := repro.NewBuilder(false)
	ids := make([]int, len(cities))
	for i, c := range cities {
		ids[i] = b.AddNode(c)
	}
	group := func(i int) int { return i / 5 }
	for i := range cities {
		for j := i + 1; j < len(cities); j++ {
			switch {
			case group(i) == group(j): // strong in-group traffic
				b.MustAddEdge(ids[i], ids[j], 40+rng.Float64()*20)
			default: // noise floor on every cross pair
				b.MustAddEdge(ids[i], ids[j], 1+rng.Float64()*12)
			}
		}
	}
	b.MustAddEdge(ids[0], ids[6], 55) // the rome-paris bridge
	g := b.Build()
	fmt.Printf("full network: %v\n", g)

	// Run the pipeline: score every edge under the Noise-Corrected null
	// model and prune at delta = 1.64 (~ one-tailed p = 0.05). The
	// Result bundles the backbone, the score table and run metadata.
	ctx := context.Background()
	res, err := repro.BackboneContext(ctx, g,
		repro.WithMethod("nc"), repro.WithDelta(1.64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NC backbone (delta=1.64, p~%.3f): %d of %d edges kept in %v\n",
		repro.DeltaToPValue(1.64), res.Backbone.NumEdges(), g.NumEdges(),
		res.Duration.Round(time.Microsecond))
	if err := res.Backbone.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The bundled table supports fixed-size pruning, for comparing
	// methods at equal backbone sizes.
	top5 := res.Scores.TopK(5)
	fmt.Println("\ntop-5 most significant edges:")
	for _, e := range top5.Edges() {
		fmt.Printf("  %s - %s  weight %.1f\n", g.Label(int(e.Src)), g.Label(int(e.Dst)), e.Weight)
	}

	// Edge-level statistics are exposed directly: is rome-paris
	// significantly stronger than expected?
	es := repro.NCEdge(55,
		g.OutStrength(ids[0]), g.InStrength(ids[6]), g.TotalWeight())
	fmt.Printf("\nrome-paris: expected %.1f, lift %.2f, score %.3f ± %.3f (z = %.1f)\n",
		es.Expected, es.Lift, es.Score, es.Sdev, es.Score/es.Sdev)

	// Any registered method swaps in by name — same pipeline, same
	// pruning options.
	df, err := repro.BackboneContext(ctx, g, repro.WithMethod("df"), repro.WithAlpha(0.05))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDisparity Filter at alpha=0.05 keeps %d edges instead\n",
		df.Backbone.NumEdges())
}
