// Changedetection demonstrates distinguishing real from spurious
// changes between two observations of the same network — the research
// direction the paper's conclusion opens ("we plan to study whether it
// is possible to distinguish real from spurious changes in networks").
//
// A trade-like network is re-measured with pure counting noise, except
// for one pair whose true intensity triples. Raw weight differences
// flag dozens of pairs; the NC change test, which knows each edge's
// posterior uncertainty, isolates the planted shift.
//
// Run with: go run ./examples/changedetection
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	const n = 30

	// Latent intensities: broad, gravity-ish.
	size := make([]float64, n)
	for i := range size {
		size[i] = math.Exp(rng.NormFloat64() * 1.2)
	}
	// Plant the change on a well-measured pair (the two largest nodes):
	// evidence, not weight, is what makes a change detectable.
	pi, pj := 0, 1
	for i := range size {
		if size[i] > size[pi] {
			pj = pi
			pi = i
		} else if i != pi && size[i] > size[pj] {
			pj = i
		}
	}
	intensity := func(i, j int, boost float64) float64 {
		base := 15 * size[i] * size[j]
		if i == pi && j == pj {
			base *= boost
		}
		return base
	}
	sample := func(boost float64, seed int64) *repro.Graph {
		r := rand.New(rand.NewSource(seed))
		b := repro.NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddNode(fmt.Sprintf("N%02d", i))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				w := poisson(r, intensity(i, j, boost))
				if w > 0 {
					b.MustAddEdge(i, j, w)
				}
			}
		}
		return b.Build()
	}
	before := sample(1, 1)
	after := sample(4, 2) // N02->N07 quadrupled; everything else is noise

	changes, err := repro.Changes(before, after, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(changes, func(a, b int) bool { return changes[a].PValue < changes[b].PValue })
	fmt.Printf("planted: N%02d->N%02d intensity x4 between observations\n", pi, pj)
	fmt.Printf("%d of %d pairs changed significantly at alpha = 0.001\n\n", len(changes), before.NumEdges())
	fmt.Println("edge        w before  w after   z      p")
	for i, ch := range changes {
		if i >= 5 {
			break
		}
		fmt.Printf("N%02d->N%02d  %8.0f %8.0f  %+6.1f  %.2g\n",
			ch.Key.U, ch.Key.V, ch.WeightBefore, ch.WeightAfter, ch.Z, ch.PValue)
	}

	// Contrast: how many pairs changed weight by more than 50%?
	bigSwings := 0
	wa := after.WeightMap()
	for _, e := range before.Edges() {
		w2 := wa[before.Key(e)]
		if w2 > 1.5*e.Weight || w2 < e.Weight/1.5 {
			bigSwings++
		}
	}
	fmt.Printf("\nnaive 'weight changed by >50%%' rule would flag %d pairs —\n", bigSwings)
	fmt.Println("nearly all of them measurement noise on thin edges.")

	// The backbones themselves barely move between observations: the
	// structure is stable, only the planted pair's significance shifts.
	ctx := context.Background()
	rb, err := repro.BackboneContext(ctx, before, repro.WithDelta(2.32))
	if err != nil {
		log.Fatal(err)
	}
	ra, err := repro.BackboneContext(ctx, after, repro.WithDelta(2.32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNC backbones at delta=2.32: %d edges before, %d after\n",
		rb.Backbone.NumEdges(), ra.Backbone.NumEdges())
}

// poisson draws a Poisson variate (Knuth for small rates, normal
// approximation above).
func poisson(r *rand.Rand, lam float64) float64 {
	if lam <= 0 {
		return 0
	}
	if lam > 50 {
		k := math.Round(lam + math.Sqrt(lam)*r.NormFloat64())
		if k < 0 {
			return 0
		}
		return k
	}
	l := math.Exp(-lam)
	k, p := 0.0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
