// Occupations reruns the paper's Section-VI case study: backbone the
// occupation skill co-occurrence network with NC and DF, recover
// communities, and test which backbone's edge set best predicts
// inter-occupational labor flows.
//
// Run with: go run ./examples/occupations
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"repro"
	"repro/internal/community"
	"repro/internal/occupations"
	"repro/internal/stats"
)

func main() {
	d := occupations.Generate(occupations.Config{
		Seed: 7, Majors: 8, MinorsPerMajor: 3, OccsPerMinor: 14,
		CoreSkills: 14, GenericSkills: 28,
	})
	g := d.CoOccurrence
	density := float64(g.NumEdges()) / float64(g.NumNodes()*(g.NumNodes()-1)/2)
	fmt.Printf("occupation network: %d occupations, %d skill-sharing edges (density %.0f%%)\n",
		d.NumOccupations(), g.NumEdges(), 100*density)
	fmt.Println("generic skills make the raw network a hairball — almost everything connects.")

	ctx := context.Background()
	resNC, err := repro.BackboneContext(ctx, g, repro.WithMethod("nc"), repro.WithDelta(2.32))
	if err != nil {
		log.Fatal(err)
	}
	bbNC := resNC.Backbone
	// Equal-size comparison: prune DF to exactly the NC backbone's size.
	resDF, err := repro.BackboneContext(ctx, g, repro.WithMethod("df"), repro.WithTopK(bbNC.NumEdges()))
	if err != nil {
		log.Fatal(err)
	}
	bbDF := resDF.Backbone

	fmt.Printf("\nbackbones: NC %d edges / %d nodes kept, DF %d edges / %d nodes kept\n",
		bbNC.NumEdges(), bbNC.NumConnected(), bbDF.NumEdges(), bbDF.NumConnected())

	for _, side := range []struct {
		name string
		bb   *repro.Graph
	}{{"NC", bbNC}, {"DF", bbDF}} {
		flat := community.CodeLength(side.bb, make([]int, side.bb.NumNodes()))
		part := community.Infomap(side.bb, rand.New(rand.NewSource(1)))
		withC := community.CodeLength(side.bb, part)
		fmt.Printf("%s: Infomap codelength %.2f -> %.2f bits (%.1f%% gain), "+
			"2-digit class modularity %.3f, NMI vs classes %.3f\n",
			side.name, flat, withC, 100*(flat-withC)/flat,
			community.Modularity(side.bb, d.Minor),
			community.NMI(part, d.Minor))
	}

	corr := func(pairs [][2]int) float64 {
		y, xs := d.FlowDesign(pairs)
		res, err := stats.OLS(y, xs...)
		if err != nil {
			log.Fatal(err)
		}
		return math.Sqrt(math.Max(0, res.R2))
	}
	fmt.Printf("\nflow prediction correlation (F = b1*C + b2*S_out + b3*S_in):\n")
	fmt.Printf("  all pairs:          %.3f\n", corr(d.AllPairs()))
	fmt.Printf("  DF backbone pairs:  %.3f\n", corr(occupations.PairsFromBackbone(bbDF)))
	fmt.Printf("  NC backbone pairs:  %.3f\n", corr(occupations.PairsFromBackbone(bbNC)))

	// Render the two backbones as GraphViz files — the equivalents of
	// the paper's Figures 10 and 11 (color = major occupation group,
	// node size = employment).
	for _, side := range []struct {
		name string
		bb   *repro.Graph
	}{{"occupations_nc.dot", bbNC}, {"occupations_df.dot", bbDF}} {
		f, err := os.Create(side.name)
		if err != nil {
			log.Fatal(err)
		}
		err = side.bb.WriteDOT(f, repro.DOTOptions{
			Name:      side.name,
			NodeColor: d.Major,
			NodeSize:  d.Size,
			EdgeWidth: true,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (render with: dot -Tsvg -Kneato %s)\n", side.name, side.name)
	}
}
