// Worldtrade runs the paper's country-network evaluation pipeline end
// to end on the synthetic world: generate a noisy trade network, apply
// every backboning method at the same backbone size, and compare
// coverage and the quality of a gravity regression restricted to each
// backbone (the paper's Table II protocol).
//
// Run with: go run ./examples/worldtrade
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/stats"
	"repro/internal/world"
)

func main() {
	w := world.New(world.Config{Seed: 99, Countries: 100, Products: 300, Years: 3})
	trade := w.Trade()
	g := trade.Latest()
	fmt.Printf("synthetic Trade network: %v\n", g)

	pred := w.Predictors()
	yF, xF, err := pred.Design("Trade", g.Edges())
	if err != nil {
		log.Fatal(err)
	}
	fitF, err := stats.OLS(yF, xF...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gravity model on the full network: R² = %.3f over %d edges\n\n", fitF.R2, len(yF))

	// Run every registered method concurrently at the same backbone
	// size — the paper's Table II protocol, one BackboneAll call.
	k := g.NumEdges() / 10
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := repro.BackboneAllContext(ctx, g, nil, repro.WithTopK(k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %8s %9s %9s %11s\n", "method", "edges", "coverage", "quality", "time")
	for _, res := range results {
		if res.Err != nil {
			// e.g. the doubly stochastic transformation may not exist —
			// the paper's Table II marks such cells "n/a".
			fmt.Printf("%-24s %8s %9s %9s  (%v)\n", res.Title, "n/a", "n/a", "n/a", res.Err)
			continue
		}
		bb := res.Backbone
		edges := exp.RestrictEdges(g, bb)
		yB, xB, err := pred.Design("Trade", edges)
		if err != nil {
			log.Fatal(err)
		}
		fitB, err := stats.OLS(yB, xB...)
		quality := 0.0
		if err == nil && fitF.R2 > 0 {
			quality = fitB.R2 / fitF.R2
		}
		fmt.Printf("%-24s %8d %9.3f %9.3f %11v\n",
			res.Title, bb.NumEdges(), eval.Coverage(g, bb), quality,
			res.Duration.Round(time.Millisecond))
	}
	fmt.Println("\nquality > 1: restricting the regression to the backbone improves the fit")
}
