// Worldtrade runs the paper's country-network evaluation pipeline end
// to end on the synthetic world: generate a noisy trade network, then
// grade every backboning method at the same backbone size under the
// coverage and quality criteria (the paper's Table II protocol) with a
// single repro.CompareContext call — the evaluation subsystem handles
// size-matched extraction, the backbone-restricted gravity regression,
// and the ranking.
//
// Run with: go run ./examples/worldtrade
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"

	"repro"
	"repro/internal/world"
)

func main() {
	w := world.New(world.Config{Seed: 99, Countries: 100, Products: 300, Years: 3})
	trade := w.Trade()
	// Evaluate the second-to-last observation year so the Stability
	// criterion has a genuine t+1 snapshot to join against.
	g := trade.Years[len(trade.Years)-2]
	next := trade.Latest()
	fmt.Printf("synthetic Trade network: %v\n\n", g)

	// One call grades every registered method at the same backbone size
	// (top 10% of edges): coverage always, quality via the gravity-model
	// design, stability via the next observation year.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := repro.CompareContext(ctx, g,
		repro.WithTopFraction(0.1),
		repro.WithQualityDesign(w.Predictors(), "Trade"),
		repro.WithNextSnapshot(next),
	)
	if err != nil {
		log.Fatal(err)
	}

	cell := func(f repro.Float) string {
		if v := float64(f); !math.IsNaN(v) {
			return fmt.Sprintf("%9.3f", v)
		}
		return fmt.Sprintf("%9s", "n/a")
	}
	fmt.Printf("%-24s %8s %9s %9s %9s %9s\n", "method", "edges", "coverage", "quality", "stability", "time(ms)")
	for _, me := range rep.Methods {
		if me.Err != "" {
			// e.g. the doubly stochastic transformation may not exist —
			// the paper's Table II marks such cells "n/a".
			fmt.Printf("%-24s %8s  (%s)\n", me.Title, "n/a", me.Err)
			continue
		}
		fmt.Printf("%-24s %8d %s %s %s %9d\n",
			me.Title, me.Edges, cell(me.Coverage), cell(me.Quality), cell(me.Stability), me.DurationMs)
	}
	fmt.Printf("\nranking (composite criterion): %s\n", strings.Join(rep.Ranking, " > "))
	fmt.Println("quality > 1: restricting the regression to the backbone improves the fit")
}
