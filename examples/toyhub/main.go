// Toyhub reproduces the paper's Figure 3: the qualitative difference
// between the Noise-Corrected backbone and the Disparity Filter on a
// six-node hub example.
//
// A hub (node 1) dispenses heavy edges to nodes 4-6 and lighter ones to
// nodes 2-3; nodes 2 and 3 also share a weak direct edge. From the
// hub's perspective, hub edges are unremarkable — the hub connects to
// everything. But from each peripheral node's own perspective (the only
// one the Disparity Filter takes), the hub edge is its entire strength,
// so DF keeps hub spokes and discards the genuinely surprising 2-3 tie.
// The bilateral NC null model ranks 2-3 at the top instead.
//
// Run with: go run ./examples/toyhub
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	b := repro.NewBuilder(false)
	for i := 1; i <= 6; i++ {
		b.AddNode(fmt.Sprintf("%d", i))
	}
	// Hub edges: 1-2 and 1-3 weak, 1-4..1-6 heavy.
	hub := []struct {
		to int
		w  float64
	}{{2, 6}, {3, 6}, {4, 20}, {5, 20}, {6, 20}}
	for _, e := range hub {
		b.MustAddEdge(0, e.to-1, e.w)
	}
	b.MustAddEdge(1, 2, 4) // the weak peripheral 2-3 edge
	g := b.Build()

	// Both methods come from the same registry-backed pipeline; only the
	// method name changes.
	ctx := context.Background()
	nc, err := repro.ScoreContext(ctx, g, repro.WithMethod("nc"))
	if err != nil {
		log.Fatal(err)
	}
	df, err := repro.ScoreContext(ctx, g, repro.WithMethod("df"))
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		edge           string
		weight         float64
		ncRank, dfRank int
	}
	rank := func(score []float64) []int {
		idx := make([]int, len(score))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
		r := make([]int, len(score))
		for pos, id := range idx {
			r[id] = pos + 1
		}
		return r
	}
	ncR, dfR := rank(nc.Score), rank(df.Score)
	rows := make([]row, g.NumEdges())
	for id, e := range g.Edges() {
		rows[id] = row{
			edge:   g.Label(int(e.Src)) + "-" + g.Label(int(e.Dst)),
			weight: e.Weight, ncRank: ncR[id], dfRank: dfR[id],
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ncRank < rows[b].ncRank })

	fmt.Println("edge   weight  NC rank  DF rank")
	for _, r := range rows {
		fmt.Printf("%-6s %6.0f  %7d  %7d\n", r.edge, r.weight, r.ncRank, r.dfRank)
	}
	fmt.Println("\nNC promotes the unanticipated 2-3 tie between weak nodes;")
	fmt.Println("DF promotes the hub's spokes, each dominant from its own endpoint.")
}
