package repro

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// bigTestGraph spans several scoring checkpoints so cancellation can
// land mid-run.
func bigTestGraph(t *testing.T, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n := m / 4
	b := NewBuilder(false)
	b.AddNodes(n)
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 1+rng.Float64()*50)
		added++
	}
	return b.Build()
}

// TestBackboneContextCancelMidRun: cancelling from the progress
// callback (i.e. after the first checkpoint range of scoring) aborts
// the run with context.Canceled before the remaining ranges are scored.
func TestBackboneContextCancelMidRun(t *testing.T) {
	g := bigTestGraph(t, 20_000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	var once sync.Once
	res, err := BackboneContext(ctx, g,
		WithMethod("nc"),
		WithProgress(func(done, total int) {
			calls.Add(1)
			once.Do(cancel)
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %v), want context.Canceled", err, res)
	}
	if calls.Load() == 0 {
		t.Error("progress callback never ran")
	}
}

// TestScoreContextProgressCompletes: an uncancelled run reports
// progress up to the exact edge total and returns the same table as
// the plain API.
func TestScoreContextProgressCompletes(t *testing.T) {
	g := bigTestGraph(t, 10_000)
	var last atomic.Int64
	s, err := ScoreContext(context.Background(), g,
		WithMethod("nc"),
		WithProgress(func(done, total int) {
			if total != g.NumEdges() {
				t.Errorf("progress total = %d, want %d", total, g.NumEdges())
			}
			last.Store(int64(done))
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := last.Load(); got != int64(g.NumEdges()) {
		t.Errorf("final progress %d, want %d", got, g.NumEdges())
	}
	plain, err := Score(g, WithMethod("nc"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Score {
		if plain.Score[i] != s.Score[i] {
			t.Fatalf("score %d differs between context and plain runs", i)
		}
	}
}

// TestBackboneAllContextCancelled: a cancelled context surfaces in
// each per-method Result rather than failing the whole call.
func TestBackboneAllContextCancelled(t *testing.T) {
	g := bigTestGraph(t, 20_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := BackboneAllContext(ctx, g, []string{"nc", "df"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: Err = %v, want context.Canceled", r.Method, r.Err)
		}
	}
}

// TestSentinelErrors pins every exported sentinel to the public API
// call that produces it, via errors.Is/As.
func TestSentinelErrors(t *testing.T) {
	g := bigTestGraph(t, 100)

	if _, err := LookupMethod("bogus"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("LookupMethod: %v, want ErrUnknownMethod", err)
	}
	if _, err := Backbone(g, WithMethod("bogus")); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("Backbone: %v, want ErrUnknownMethod", err)
	}

	_, err := Backbone(g, WithMethod("mst"), WithParam("delta", 1))
	if !errors.Is(err, ErrUnknownParam) {
		t.Errorf("undeclared param: %v, want ErrUnknownParam", err)
	}
	var pe *ParamError
	if !errors.As(err, &pe) || pe.Param != "delta" || pe.Method != "mst" {
		t.Errorf("undeclared param: %v, want *ParamError{mst, delta}", err)
	}

	if _, err := Backbone(g, WithMethod("mst"), WithTopK(10)); !errors.Is(err, ErrNoScorer) {
		t.Errorf("top-k on mst: %v, want ErrNoScorer", err)
	}
	if _, err := Score(g, WithMethod("mst")); !errors.Is(err, ErrNoScorer) {
		t.Errorf("Score on mst: %v, want ErrNoScorer", err)
	}

	if _, err := Backbone(g, WithTopK(-1)); !errors.As(err, &pe) {
		t.Errorf("WithTopK(-1): %v, want *ParamError", err)
	}
	if _, err := BackboneAll(g, []string{"nc", "df"}, WithParam("zeta", 1)); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("BackboneAll undeclared param: %v, want ErrUnknownParam", err)
	}

	if _, err := LookupFormat("parquet"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("LookupFormat: %v, want ErrUnknownFormat", err)
	}
}
