package repro

import (
	"fmt"
	"io"
	"strings"

	_ "repro/internal/binfmt" // registers the binary .bbg graph format
	"repro/internal/graph"
)

// GraphFormat describes one registered edge-list encoding: its name,
// the file extensions it claims, and whether it can be detected by
// content sniffing. See Formats and FormatsTable.
type GraphFormat = graph.Format

// Formats lists every registered graph I/O format in presentation
// order (csv, tsv, ndjson, ...).
func Formats() []*GraphFormat { return graph.Formats() }

// LookupFormat resolves a registered format by name ("ndjson"), file
// extension (".jsonl") or path ("edges.csv.gz").
func LookupFormat(name string) (*GraphFormat, error) { return graph.LookupFormat(name) }

// ioConfig collects the ReadGraph/WriteGraph options.
type ioConfig struct {
	format   string
	directed bool
	gzip     bool
}

// IOOption configures ReadGraph and WriteGraph.
type IOOption func(*ioConfig)

// WithFormat selects the edge-list encoding by registry name ("csv",
// "tsv", "ndjson"), file extension (".jsonl") or path ("edges.csv.gz").
// Reading without it sniffs the content; writing without it emits csv.
func WithFormat(name string) IOOption {
	return func(c *ioConfig) { c.format = name }
}

// WithDirected controls whether ReadGraph builds a directed graph
// (default: undirected). It has no effect on WriteGraph.
func WithDirected(directed bool) IOOption {
	return func(c *ioConfig) { c.directed = directed }
}

// WithGzip makes WriteGraph compress its output. ReadGraph needs no
// option: gzip input is detected by magic number and decompressed
// transparently.
func WithGzip() IOOption {
	return func(c *ioConfig) { c.gzip = true }
}

// ReadGraph parses a weighted edge list from r into a Graph. The
// format is sniffed from the content unless WithFormat selects one;
// gzip-compressed input is decompressed transparently either way.
//
// Decoding streams through a chunked, allocation-free codec that fans
// chunks out to GOMAXPROCS shard parsers on multi-core machines; when
// r knows its size (bytes.Reader, strings.Reader), internal buffers
// are presized from it. Results are identical regardless of
// parallelism or reader type.
//
//	g, err := repro.ReadGraph(f)                                  // sniffed
//	g, err := repro.ReadGraph(f, repro.WithFormat("ndjson"))
//	g, err := repro.ReadGraph(f, repro.WithDirected(true))
func ReadGraph(r io.Reader, opts ...IOOption) (*Graph, error) {
	var c ioConfig
	for _, o := range opts {
		o(&c)
	}
	return graph.ReadGraph(r, graph.ReadOptions{Format: c.format, Directed: c.directed})
}

// WriteGraph serializes g's canonical edge list to w — csv by default,
// any registered format via WithFormat, optionally gzip-compressed via
// WithGzip. Every format round-trips bit-identically through ReadGraph.
func WriteGraph(w io.Writer, g *Graph, opts ...IOOption) error {
	var c ioConfig
	for _, o := range opts {
		o(&c)
	}
	return graph.WriteGraph(w, g, graph.WriteOptions{Format: c.format, Gzip: c.gzip})
}

// FormatsTable renders the registered I/O formats as a GitHub-flavored
// markdown table — the README's format table is this function's output.
func FormatsTable() string {
	out := "| Format | Extensions | Sniffed | Description |\n|---|---|---|---|\n"
	for _, f := range Formats() {
		exts := strings.Join(f.Exts, ", ")
		sniffed := "fallback"
		if f.Sniff != nil {
			sniffed = "✓"
		}
		out += fmt.Sprintf("| `%s` | %s | %s | %s |\n", f.Name, exts, sniffed, f.Desc)
	}
	return out
}
