package repro

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Benchmarks for the incremental update path — the PR 10 perf contract.
// BenchmarkApplyDeltaIncremental is the serving unit of work after one
// edge update (apply + materialize + frontier rescore + extract);
// BenchmarkApplyDeltaColdRebuild and BenchmarkApplyDeltaColdServing are
// the from-scratch baselines it is measured against (in-memory rebuild,
// and the daemon-equivalent path that also re-parses the body). Their
// ratio is recorded as post_pr10 in BENCH_baseline.json.

// benchDeltaGraph caches the benchmark base graph (and its serialized
// body for the serving-path baseline) per edge size.
var benchDeltaGraphs = map[int]*Graph{}
var benchDeltaBodies = map[int][]byte{}

func benchDeltaGraph(b *testing.B, m int) *Graph {
	b.Helper()
	if g, ok := benchDeltaGraphs[m]; ok {
		return g
	}
	rng := rand.New(rand.NewSource(1))
	g := gen.BarabasiAlbert(rng, m/8, 8)
	benchDeltaGraphs[m] = g
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, WithFormat("csv")); err != nil {
		b.Fatal(err)
	}
	benchDeltaBodies[m] = buf.Bytes()
	b.Logf("base graph: %d nodes, %d edges, body %d bytes", g.NumNodes(), g.NumEdges(), buf.Len())
	return g
}

// benchUpdate returns the i-th single-edge update over g, cycling a
// deterministic pool of valid endpoint pairs.
func benchUpdates(g *Graph, count int) []Update {
	rng := rand.New(rand.NewSource(2))
	ups := make([]Update, count)
	n := int32(g.NumNodes())
	for i := range ups {
		u := Update{Src: rng.Int31n(n), Dst: rng.Int31n(n), Weight: float64(rng.Intn(90) + 1)}
		for u.Src == u.Dst {
			u.Dst = rng.Int31n(n)
		}
		ups[i] = u
	}
	return ups
}

// BenchmarkApplyDeltaMaterialize measures one single-edge update plus
// materialization (no scoring): the graph-layer cost of the overlay.
func BenchmarkApplyDeltaMaterialize(b *testing.B) {
	for _, m := range []int{100_000, 1_000_000} {
		name := "m=100k"
		if m == 1_000_000 {
			name = "m=1M"
		}
		b.Run(name, func(b *testing.B) {
			base := benchDeltaGraph(b, m)
			ups := benchUpdates(base, 1024)
			d := graph.NewDelta(base, 0)
			d.SetExclusive(true) // serving config: only the latest materialization is kept
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Apply(ups[i%len(ups) : i%len(ups)+1]); err != nil {
					b.Fatal(err)
				}
				d.Graph()
			}
		})
	}
}

// BenchmarkApplyDeltaIncremental measures the full incremental serving
// unit: one single-edge update, materialize, frontier re-score (df) on
// top of the previous table, and threshold extraction.
func BenchmarkApplyDeltaIncremental(b *testing.B) {
	for _, method := range []string{"df", "nc", "nt"} {
		b.Run("method="+method, func(b *testing.B) {
			base := benchDeltaGraph(b, 1_000_000)
			ups := benchUpdates(base, 1024)
			ctx := context.Background()
			mm, err := LookupMethod(method)
			if err != nil {
				b.Fatal(err)
			}
			d := graph.NewDelta(base, 0)
			d.SetExclusive(true) // serving config: only the latest generation is kept
			_, dirty := d.Graph()
			prev, _, err := filter.RescoreDirty(ctx, mm, nil, dirty, filter.ScoreOpts{})
			if err != nil {
				b.Fatal(err)
			}
			params := mm.Defaults()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Apply(ups[i%len(ups) : i%len(ups)+1]); err != nil {
					b.Fatal(err)
				}
				_, dirty = d.Graph()
				s, _, err := filter.RescoreDirty(ctx, mm, prev, dirty, filter.ScoreOpts{})
				if err != nil {
					b.Fatal(err)
				}
				bb := s.Threshold(mm.Cut(params))
				_ = bb.NumEdges()
				prev = s
			}
		})
	}
}

// BenchmarkApplyDeltaColdRebuild is the in-memory baseline: rebuild the
// graph from its canonical edges, fully re-score, and extract.
func BenchmarkApplyDeltaColdRebuild(b *testing.B) {
	base := benchDeltaGraph(b, 1_000_000)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges := append([]Edge(nil), base.Edges()...)
		g := graph.FromEdges(false, base.NumNodes(), edges)
		res, err := BackboneContext(ctx, g, WithMethod("df"))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Backbone.NumEdges()
	}
}

// BenchmarkApplyDeltaColdServing is the daemon-equivalent baseline: a
// changed body means re-parsing the edge list, rebuilding, re-scoring
// and extracting — what every update cost before sessions existed.
func BenchmarkApplyDeltaColdServing(b *testing.B) {
	benchDeltaGraph(b, 1_000_000)
	body := benchDeltaBodies[1_000_000]
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ReadCSV(bytes.NewReader(body), false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := BackboneContext(ctx, g, WithMethod("df"))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Backbone.NumEdges()
	}
}
