// Command backbone extracts a network backbone from a CSV edge list.
//
// Usage:
//
//	backbone -method nc -delta 1.64 [-directed] [-o out.csv] edges.csv
//	backbone -method df -alpha 0.05 edges.csv
//	backbone -method hss -salience 0.5 edges.csv
//	backbone -method nt -threshold 10 edges.csv
//	backbone -method kcore -k 3 edges.csv
//	backbone -method mst edges.csv
//	backbone -method ds edges.csv
//	backbone -method nc -top 500 edges.csv        # fixed-size backbone
//	backbone -eval edges.csv                      # grade every method (report)
//	backbone -eval -methods nc,df -frac 0.05 edges.csv
//	backbone -convert edges.csv                   # edges.bbg: binary, mmap-loadable
//	backbone -convert -graphdir /var/graphs edges.csv
//	backbone -method nc edges.bbg                 # mmap-loads, no re-parse
//	backbone -list                                # show registered methods
//
// -eval switches the command from extraction to evaluation: every
// registered method (or the -methods subset) is cut to one common
// backbone size (-top / -frac, default the top 10% of edges) and graded
// under the paper's criteria — coverage always; stability when -next
// names a second edge list (the t+1 observation of the same network).
// The report renders as an aligned table, csv, or json (-outformat).
//
// The method list, per-method flags and validation are generated from
// the method registry: adding an algorithm anywhere in the module is a
// single Register call and it appears here with its parameters. Flags
// that the selected method does not declare are rejected rather than
// silently ignored.
//
// The input is an edge list in any registered graph format — csv
// (comma, tab or space separated; '#' comments and a header row are
// skipped), tsv, ndjson, or the binary bbg container — optionally
// gzip-compressed; the format is sniffed from the content unless
// -format names one. A file named *.bbg is memory-mapped instead of
// parsed, so start-up cost is independent of graph size; -convert
// produces such a file from any readable input, writing it next to the
// input (extension swapped to .bbg), to -o, or — with -graphdir — to
// <dir>/<sha256-of-input>.bbg, the name the backboned daemon resolves
// for its own mmap fast path. The backbone is
// written to -o (default stdout) in the -outformat encoding (default:
// inferred from the -o extension, else csv), and a summary goes to
// stderr.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/binfmt"
)

// errFlagParse marks parse failures the FlagSet has already reported
// to stderr, so main must not print them a second time.
var errFlagParse = errors.New("invalid flags")

func main() {
	a := newApp()
	err := a.run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -h / -help: usage already printed, clean exit.
	case errors.Is(err, errFlagParse):
		os.Exit(2) // the FlagSet already printed the error and usage
	default:
		fmt.Fprintln(os.Stderr, "backbone:", err)
		os.Exit(1)
	}
}

// app holds the registry-generated flag set. Shared flags are fixed;
// one flag per distinct parameter name is generated from the method
// schemas, and after parsing each explicitly set parameter flag is
// checked against the selected method's schema.
type app struct {
	fs       *flag.FlagSet
	method   *string
	directed *bool
	top      *int
	frac     *float64
	parallel *bool
	out      *string
	format   *string
	outfmt   *string
	list     *bool
	eval     *bool
	methods  *string
	next     *string
	convert  *bool
	graphdir *string
	// paramFlags maps parameter name -> parsed value holder; integer
	// parameters get their own holder so -k renders and parses as int.
	floatFlags map[string]*float64
	intFlags   map[string]*int
}

func newApp() *app {
	a := &app{
		fs:         flag.NewFlagSet("backbone", flag.ContinueOnError),
		floatFlags: map[string]*float64{},
		intFlags:   map[string]*int{},
	}
	a.method = a.fs.String("method", "nc", "backbone method: "+strings.Join(methodNames(), ", "))
	a.directed = a.fs.Bool("directed", false, "treat the edge list as directed")
	a.top = a.fs.Int("top", 0, "keep exactly this many top-ranked edges (overrides per-method thresholds)")
	a.frac = a.fs.Float64("frac", 0, "keep this share (0..1] of top-ranked edges")
	a.parallel = a.fs.Bool("parallel", false, "use the method's multi-core scorer when available")
	a.out = a.fs.String("o", "", "output file (default stdout)")
	a.format = a.fs.String("format", "", "input format: "+strings.Join(formatNames(), ", ")+" (default: sniffed from content)")
	a.outfmt = a.fs.String("outformat", "", "output format (default: inferred from the -o extension, else csv)")
	a.list = a.fs.Bool("list", false, "list registered methods and their parameters, then exit")
	a.eval = a.fs.Bool("eval", false, "evaluate methods under the paper's criteria instead of extracting one backbone")
	a.methods = a.fs.String("methods", "", "comma-separated method subset for -eval (default: every registered method)")
	a.next = a.fs.String("next", "", "edge list of the next observation (enables the -eval stability criterion)")
	a.convert = a.fs.Bool("convert", false, "convert the input to the binary .bbg container and exit")
	a.graphdir = a.fs.String("graphdir", "", "with -convert: write <dir>/<sha256-of-input>.bbg (the backboned -graphdir naming)")

	// Generate one flag per distinct parameter name across all
	// registered methods, annotating which method uses it for what.
	usage := map[string][]string{}
	schema := map[string]repro.Param{}
	var order []string
	for _, m := range repro.Methods() {
		for _, p := range m.Params {
			if _, ok := schema[p.Name]; !ok {
				schema[p.Name] = p
				order = append(order, p.Name)
			}
			usage[p.Name] = append(usage[p.Name], fmt.Sprintf("%s: %s", m.Name, p.Desc))
		}
	}
	sort.Strings(order)
	for _, name := range order {
		p := schema[name]
		desc := strings.Join(usage[name], "; ")
		if p.Integer {
			a.intFlags[name] = a.fs.Int(name, int(p.Default), desc)
		} else {
			a.floatFlags[name] = a.fs.Float64(name, p.Default, desc)
		}
	}

	a.fs.Usage = func() {
		w := a.fs.Output()
		fmt.Fprintln(w, "usage: backbone [flags] edges.csv (use - for stdin)")
		fmt.Fprintln(w, "\nflags:")
		a.fs.PrintDefaults()
		fmt.Fprintln(w, "\nmethods:")
		fmt.Fprint(w, methodList())
	}
	return a
}

// formatNames returns the registered graph I/O format names.
func formatNames() []string {
	var names []string
	for _, f := range repro.Formats() {
		names = append(names, f.Name)
	}
	return names
}

// methodNames returns the registered method names in registry order.
func methodNames() []string {
	var names []string
	for _, m := range repro.Methods() {
		names = append(names, m.Name)
	}
	return names
}

// methodList renders the registry as the CLI usage text.
func methodList() string {
	var b strings.Builder
	for _, m := range repro.Methods() {
		fmt.Fprintf(&b, "  %-12s %s — %s\n", m.Name, m.Title, m.Desc)
		for _, p := range m.Params {
			if p.Integer {
				fmt.Fprintf(&b, "               -%s (default %d): %s\n", p.Name, int(p.Default), p.Desc)
			} else {
				fmt.Fprintf(&b, "               -%s (default %g): %s\n", p.Name, p.Default, p.Desc)
			}
		}
	}
	return b.String()
}

// options translates the parsed flags into pipeline options for the
// selected method, rejecting explicitly set flags the method's schema
// does not declare.
func (a *app) options() ([]repro.Option, error) {
	m, err := repro.LookupMethod(*a.method)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	a.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	opts := []repro.Option{repro.WithMethod(m.Name)}
	for name := range set {
		_, isFloat := a.floatFlags[name]
		_, isInt := a.intFlags[name]
		if !isFloat && !isInt {
			continue // shared flag, not a method parameter
		}
		if _, ok := m.Param(name); !ok {
			return nil, fmt.Errorf("method %q does not take -%s (its parameters: %s)", m.Name, name, paramNames(m))
		}
		if isInt {
			opts = append(opts, repro.WithParam(name, float64(*a.intFlags[name])))
		} else {
			opts = append(opts, repro.WithParam(name, *a.floatFlags[name]))
		}
	}
	shared, err := a.sharedRunOpts(set)
	if err != nil {
		return nil, err
	}
	return append(opts, shared...), nil
}

// sharedRunOpts validates and translates the pruning/parallel flags
// shared by the extraction and evaluation modes — one copy of the
// -top/-frac rules for both.
func (a *app) sharedRunOpts(set map[string]bool) ([]repro.Option, error) {
	var opts []repro.Option
	if set["top"] && set["frac"] {
		return nil, fmt.Errorf("-top and -frac are mutually exclusive")
	}
	// Fixed-size methods reject these inside the pipeline; no need to
	// duplicate that rule here.
	if set["top"] {
		if *a.top <= 0 {
			return nil, fmt.Errorf("-top %d: must be positive", *a.top)
		}
		opts = append(opts, repro.WithTopK(*a.top))
	}
	if set["frac"] {
		opts = append(opts, repro.WithTopFraction(*a.frac))
	}
	if *a.parallel {
		opts = append(opts, repro.WithParallel())
	}
	return opts, nil
}

// evalOptions assembles the evaluation option set: the method subset,
// the shared pruning/parallel flags (same rules as extraction mode,
// via sharedRunOpts), and every explicitly set parameter flag as a
// lenient ride-along (the engine validates that at least one selected
// method declares it).
func (a *app) evalOptions() ([]repro.Option, error) {
	var opts []repro.Option
	set := map[string]bool{}
	a.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	switch {
	case *a.methods != "":
		var names []string
		for _, name := range strings.Split(*a.methods, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		opts = append(opts, repro.WithMethods(names...))
	case set["method"]:
		opts = append(opts, repro.WithMethods(*a.method))
	}
	for name := range set {
		switch {
		case a.intFlags[name] != nil:
			opts = append(opts, repro.WithParam(name, float64(*a.intFlags[name])))
		case a.floatFlags[name] != nil:
			opts = append(opts, repro.WithParam(name, *a.floatFlags[name]))
		}
	}
	shared, err := a.sharedRunOpts(set)
	if err != nil {
		return nil, err
	}
	return append(opts, shared...), nil
}

// evalOutFormat resolves the -eval report encoding: an explicit
// -outformat must be table, csv or json; without one the -o extension
// decides (.json → json, .csv → csv), defaulting to the aligned table —
// mirroring the extraction mode's extension inference.
func (a *app) evalOutFormat() (string, error) {
	switch *a.outfmt {
	case "table", "csv", "json":
		return *a.outfmt, nil
	case "":
		switch {
		case strings.HasSuffix(*a.out, ".json"):
			return "json", nil
		case strings.HasSuffix(*a.out, ".csv"):
			return "csv", nil
		}
		return "table", nil
	default:
		return "", fmt.Errorf("-eval supports -outformat table, csv or json (got %q)", *a.outfmt)
	}
}

// runEval grades the registered methods on g and renders the report to
// -o (default stdout) in the pre-validated format (table, csv or
// json). SIGINT cancels the run mid-scoring.
func (a *app) runEval(g *repro.Graph, opts []repro.Option, format string, readOpts []repro.IOOption, stdout, stderr io.Writer) error {
	if *a.next != "" {
		f, err := os.Open(*a.next)
		if err != nil {
			return err
		}
		defer f.Close()
		next, err := repro.ReadGraph(f, readOpts...)
		if err != nil {
			return fmt.Errorf("-next %s: %w", *a.next, err)
		}
		// The two files assign node IDs in their own first-appearance
		// order; the stability join compares by ID, so realign the next
		// snapshot onto the evaluated graph's label space.
		opts = append(opts, repro.WithNextSnapshot(repro.AlignNodes(g, next)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := repro.CompareContext(ctx, g, opts...)
	if err != nil {
		return err
	}

	w := stdout
	var commit func() error
	if *a.out != "" {
		f, c, abort, err := atomicCreate(*a.out)
		if err != nil {
			return err
		}
		defer abort()
		commit = c
		w = f
	}
	var writeErr error
	switch format {
	case "table":
		_, writeErr = io.WriteString(w, renderEvalTable(rep))
	case "csv":
		writeErr = writeEvalCSV(w, rep)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		writeErr = enc.Encode(rep)
	}
	if writeErr == nil && commit != nil {
		// Sync/close errors matter here: a short write to a full disk
		// must not exit 0 with a truncated report. A failed write never
		// commits — the previous report, if any, survives intact.
		writeErr = commit()
	}
	if writeErr != nil {
		return fmt.Errorf("write report: %w", writeErr)
	}
	fmt.Fprintf(stderr, "evaluated %d methods on %d nodes / %d edges (target %d edges, %d scored, %v)\n",
		len(rep.Methods), rep.Nodes, rep.Edges, rep.TargetEdges, rep.ScoredMethods,
		time.Duration(rep.DurationMs)*time.Millisecond)
	return nil
}

// evalCell formats one criterion value; NaN renders as the paper's n/a.
func evalCell(f repro.Float) string {
	if v := float64(f); !math.IsNaN(v) {
		return fmt.Sprintf("%.3f", v)
	}
	return "n/a"
}

var evalHeader = []string{"method", "edges", "share", "coverage", "stability", "recovery", "quality", "composite", "ms"}

// evalRows flattens the report into the shared table/csv cell grid.
func evalRows(rep *repro.EvalReport) [][]string {
	rows := make([][]string, 0, len(rep.Methods))
	for _, me := range rep.Methods {
		if me.Err != "" {
			rows = append(rows, []string{me.Method, "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a",
				strconv.FormatInt(me.DurationMs, 10) + "  (" + me.Err + ")"})
			continue
		}
		rows = append(rows, []string{
			me.Method, strconv.Itoa(me.Edges), evalCell(me.EdgeShare),
			evalCell(me.Coverage), evalCell(me.Stability), evalCell(me.Recovery),
			evalCell(me.Quality), evalCell(me.Composite), strconv.FormatInt(me.DurationMs, 10),
		})
	}
	return rows
}

// renderEvalTable draws the aligned evaluation grid plus the ranking.
func renderEvalTable(rep *repro.EvalReport) string {
	rows := append([][]string{evalHeader}, evalRows(rep)...)
	widths := make([]int, len(evalHeader))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "evaluation — %d nodes, %d edges, rankable methods cut to %d edges\n",
		rep.Nodes, rep.Edges, rep.TargetEdges)
	for ri, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "ranking: %s\n", strings.Join(rep.Ranking, " > "))
	return b.String()
}

// writeEvalCSV emits the grid as machine-readable csv: NaN cells
// empty, plus a trailing error column so consumers can tell an
// infeasible method ("n/a") from a genuine zero-edge backbone.
func writeEvalCSV(w io.Writer, rep *repro.EvalReport) error {
	if _, err := fmt.Fprintln(w, strings.Join(evalHeader, ",")+",error"); err != nil {
		return err
	}
	for _, me := range rep.Methods {
		cell := func(f repro.Float) string {
			if v := float64(f); !math.IsNaN(v) {
				return strconv.FormatFloat(v, 'g', -1, 64)
			}
			return ""
		}
		errCell := strings.ReplaceAll(strings.ReplaceAll(me.Err, "\n", " "), ",", ";")
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%s,%s,%s,%s,%s,%d,%s\n",
			me.Method, me.Edges, cell(me.EdgeShare), cell(me.Coverage), cell(me.Stability),
			cell(me.Recovery), cell(me.Quality), cell(me.Composite), me.DurationMs, errCell); err != nil {
			return err
		}
	}
	return nil
}

// runConvert parses the input edge list (any registered format) and
// writes it as a binary .bbg container — the file the .bbg fast path
// here and the daemon's -graphdir memory-map instead of re-parsing.
// The destination is -graphdir/<sha256-of-input>.bbg when -graphdir is
// set (the digest backboned computes over a request body, so a
// converted file is found by the daemon without further bookkeeping),
// else -o, else the input path with its extension swapped to .bbg.
func (a *app) runConvert(stdin io.Reader, stderr io.Writer) error {
	path := a.fs.Arg(0)
	in := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// The whole input is buffered: -graphdir names the file after the
	// raw byte digest, and every other case re-reads cheaply anyway.
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	readOpts := []repro.IOOption{repro.WithDirected(*a.directed)}
	if *a.format != "" {
		readOpts = append(readOpts, repro.WithFormat(*a.format))
	}
	g, err := repro.ReadGraph(bytes.NewReader(data), readOpts...)
	if err != nil {
		return err
	}

	dst := *a.out
	switch {
	case *a.graphdir != "":
		if dst != "" {
			return fmt.Errorf("-o and -graphdir are mutually exclusive")
		}
		if err := os.MkdirAll(*a.graphdir, 0o755); err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		dst = filepath.Join(*a.graphdir, hex.EncodeToString(sum[:])+".bbg")
	case dst == "":
		if path == "-" {
			return fmt.Errorf("-convert from stdin needs -o or -graphdir to name the output")
		}
		dst = strings.TrimSuffix(path, filepath.Ext(path)) + ".bbg"
	}

	f, commit, abort, err := atomicCreate(dst)
	if err != nil {
		return err
	}
	defer abort()
	writeErr := repro.WriteGraph(f, g, repro.WithFormat("bbg"))
	if writeErr == nil {
		writeErr = commit()
	}
	if writeErr != nil {
		return fmt.Errorf("write %s: %w", dst, writeErr)
	}
	info, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "converted: %d nodes, %d edges -> %s (%d bytes)\n",
		g.NumNodes(), g.NumEdges(), dst, info.Size())
	return nil
}

// atomicCreate opens a temporary file next to dst for writing. commit
// fsyncs, closes and atomically renames it over dst, so a crash, kill
// or full disk mid-write never leaves a torn dst behind — readers
// (including a backboned -graphdir daemon mapping the file while it is
// replaced) see the old bytes or the new ones, nothing in between.
// abort discards the temporary file; it is a no-op after a successful
// commit, so callers just defer it.
func atomicCreate(dst string) (f *os.File, commit func() error, abort func(), err error) {
	dir, base := filepath.Split(dst)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, nil, nil, err
	}
	committed := false
	commit = func() error {
		if err := tmp.Sync(); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		// CreateTemp opens 0600; published outputs get the usual mode.
		if err := os.Chmod(tmp.Name(), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), dst); err != nil {
			return err
		}
		committed = true
		return nil
	}
	abort = func() {
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}
	return tmp, commit, abort, nil
}

func paramNames(m *repro.Method) string {
	if len(m.Params) == 0 {
		return "none"
	}
	var names []string
	for _, p := range m.Params {
		names = append(names, "-"+p.Name)
	}
	return strings.Join(names, ", ")
}

func (a *app) run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	a.fs.SetOutput(stderr)
	if err := a.fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *a.list {
		fmt.Fprint(stdout, methodList())
		return nil
	}
	if a.fs.NArg() != 1 {
		a.fs.Usage()
		return fmt.Errorf("expected exactly one input file (use - for stdin)")
	}
	if *a.graphdir != "" && !*a.convert {
		return fmt.Errorf("-graphdir only applies to -convert")
	}
	if *a.convert {
		if *a.eval {
			return fmt.Errorf("-convert and -eval are mutually exclusive")
		}
		return a.runConvert(stdin, stderr)
	}

	// Validate the flag combination — and, for -eval, the report
	// encoding — before touching the input.
	var opts []repro.Option
	var evalFormat string
	{
		var err error
		if *a.eval {
			if evalFormat, err = a.evalOutFormat(); err != nil {
				return err
			}
			opts, err = a.evalOptions()
		} else {
			opts, err = a.options()
		}
		if err != nil {
			return err
		}
	}

	readOpts := []repro.IOOption{repro.WithDirected(*a.directed)}
	if *a.format != "" {
		readOpts = append(readOpts, repro.WithFormat(*a.format))
	}
	var g *repro.Graph
	if path := a.fs.Arg(0); path != "-" && strings.HasSuffix(path, ".bbg") &&
		(*a.format == "" || *a.format == "bbg") {
		// Binary container: mmap it instead of parsing. The mapping must
		// outlive every use of g, so Close is deferred past the output
		// write below; the file header decides directedness.
		bf, err := binfmt.Open(path)
		if err != nil {
			return err
		}
		defer bf.Close()
		g = bf.Graph()
	} else {
		in := stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		parsed, err := repro.ReadGraph(in, readOpts...)
		if err != nil {
			return err
		}
		g = parsed
	}

	if *a.eval {
		return a.runEval(g, opts, evalFormat, readOpts, stdout, stderr)
	}

	res, err := repro.Backbone(g, opts...)
	if err != nil {
		return err
	}

	w := stdout
	var commit func() error
	if *a.out != "" {
		f, c, abort, err := atomicCreate(*a.out)
		if err != nil {
			return err
		}
		defer abort()
		commit = c
		w = f
	}
	var writeOpts []repro.IOOption
	switch {
	case *a.outfmt != "":
		writeOpts = append(writeOpts, repro.WithFormat(*a.outfmt))
	case *a.out != "":
		// Infer the encoding from the output path when it names a
		// registered extension; plain csv otherwise.
		if _, err := repro.LookupFormat(*a.out); err == nil {
			writeOpts = append(writeOpts, repro.WithFormat(*a.out))
		}
	}
	// Compress when either the output path or the explicit format asks
	// for it (-o out.csv.gz, -outformat csv.gz).
	if strings.HasSuffix(*a.out, ".gz") || strings.HasSuffix(*a.outfmt, ".gz") {
		writeOpts = append(writeOpts, repro.WithGzip())
	}
	if err := repro.WriteGraph(w, res.Backbone, writeOpts...); err != nil {
		return err
	}
	if commit != nil {
		if err := commit(); err != nil {
			return fmt.Errorf("write %s: %w", *a.out, err)
		}
	}
	fmt.Fprintf(stderr, "input: %d nodes, %d edges; %s backbone: %d edges, %d non-isolated nodes (node coverage %.1f%%) in %v\n",
		g.NumNodes(), g.NumEdges(), res.Method, res.Backbone.NumEdges(), res.Backbone.NumConnected(),
		100*res.NodeCoverage, res.Duration.Round(time.Microsecond))
	return nil
}
