// Command backbone extracts a network backbone from a CSV edge list.
//
// Usage:
//
//	backbone -method nc -delta 1.64 [-directed] [-o out.csv] edges.csv
//	backbone -method df -alpha 0.05 edges.csv
//	backbone -method hss -salience 0.5 edges.csv
//	backbone -method nt -threshold 10 edges.csv
//	backbone -method kcore -threshold 3 edges.csv
//	backbone -method mst edges.csv
//	backbone -method ds edges.csv
//	backbone -method nc -top 500 edges.csv        # fixed-size backbone
//
// The input is "src,dst,weight" lines (comma, tab or space separated;
// '#' comments and a header row are skipped). The backbone is written
// as CSV to -o (default stdout), and a summary goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/backbone"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/graph"
)

func main() {
	var (
		method    = flag.String("method", "nc", "backbone method: nc, nc-binomial, df, hss, ds, mst, nt, kcore")
		directed  = flag.Bool("directed", false, "treat the edge list as directed")
		delta     = flag.Float64("delta", 1.64, "nc: significance threshold in standard deviations")
		alpha     = flag.Float64("alpha", 0.05, "df / nc-binomial: significance level")
		salience  = flag.Float64("salience", 0.5, "hss: minimum salience")
		threshold = flag.Float64("threshold", 0, "nt: minimum edge weight")
		top       = flag.Int("top", 0, "keep exactly this many top-ranked edges (overrides per-method thresholds)")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: backbone [flags] edges.csv (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *method, *directed, *delta, *alpha, *salience, *threshold, *top, *out); err != nil {
		fmt.Fprintln(os.Stderr, "backbone:", err)
		os.Exit(1)
	}
}

func run(path, method string, directed bool, delta, alpha, salience, threshold float64, top int, out string) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ReadCSV(in, directed)
	if err != nil {
		return err
	}

	bb, err := extract(g, method, delta, alpha, salience, threshold, top)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := bb.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "input: %d nodes, %d edges; backbone: %d edges, %d non-isolated nodes (coverage %.1f%%)\n",
		g.NumNodes(), g.NumEdges(), bb.NumEdges(), bb.NumConnected(),
		100*float64(bb.NumConnected())/float64(max(1, g.NumConnected())))
	return nil
}

func extract(g *graph.Graph, method string, delta, alpha, salience, threshold float64, top int) (*graph.Graph, error) {
	var scorer filter.Scorer
	var cut float64
	switch method {
	case "nc":
		scorer, cut = core.New(), delta
	case "nc-binomial":
		s := core.NewBinomial()
		if top > 0 {
			scorer = s
		} else {
			return s.Backbone(g, alpha)
		}
	case "df":
		scorer, cut = backbone.NewDisparity(), 1-alpha
	case "hss":
		scorer, cut = backbone.NewHSS(), salience
	case "nt":
		scorer, cut = backbone.NewNaive(), threshold
	case "ds":
		if top > 0 {
			scorer = backbone.NewDoublyStochastic()
		} else {
			return backbone.NewDoublyStochastic().Extract(g)
		}
	case "kcore":
		kc := backbone.NewKCore()
		if top > 0 {
			scorer = kc
		} else {
			return kc.Backbone(g, int(threshold))
		}
	case "mst":
		return backbone.NewMST().Extract(g)
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
	s, err := scorer.Scores(g)
	if err != nil {
		return nil, err
	}
	if top > 0 {
		return s.TopK(top), nil
	}
	return s.Threshold(cut), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
