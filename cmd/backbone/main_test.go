package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	csv := "a,b,10\na,c,9\nb,c,1\nc,d,8\nd,e,7\nc,e,2\nd,a,6\ne,b,5\n"
	g, err := graph.ReadCSV(strings.NewReader(csv), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExtractAllMethods(t *testing.T) {
	g := testGraph(t)
	for _, method := range []string{"nc", "nc-binomial", "df", "hss", "ds", "mst", "nt"} {
		bb, err := extract(g, method, 0.5, 0.5, 0.3, 4, 0)
		if err != nil {
			t.Errorf("%s: %v", method, err)
			continue
		}
		if bb.NumNodes() != g.NumNodes() {
			t.Errorf("%s: node set changed", method)
		}
	}
	if _, err := extract(g, "bogus", 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestExtractTopOverride(t *testing.T) {
	g := testGraph(t)
	for _, method := range []string{"nc", "nc-binomial", "df", "hss", "ds", "nt"} {
		bb, err := extract(g, method, 0, 0, 0, 0, 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if bb.NumEdges() != 3 {
			t.Errorf("%s: -top 3 kept %d edges", method, bb.NumEdges())
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(in, []byte("a,b,10\nb,c,9\nc,a,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "nt", false, 0, 0, 0, 5, 0, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadCSV(strings.NewReader(string(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("threshold 5 kept %d edges, want 2", g.NumEdges())
	}
	if err := run(filepath.Join(dir, "missing.csv"), "nt", false, 0, 0, 0, 0, 0, ""); err == nil {
		t.Error("missing input accepted")
	}
}
