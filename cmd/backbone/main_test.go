package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/graph"
)

const testCSV = "a,b,10\na,c,9\nb,c,1\nc,d,8\nd,e,7\nc,e,2\nd,a,6\ne,b,5\n"

func writeTestCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIAllMethods drives the CLI over every registered method with
// default parameters — the acceptance criterion that `backbone -method
// <name>` works for each registry entry with no per-method dispatch.
func TestCLIAllMethods(t *testing.T) {
	in := writeTestCSV(t)
	for _, m := range repro.Methods() {
		t.Run(m.Name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			a := newApp()
			if err := a.run([]string{"-method", m.Name, in}, nil, &stdout, &stderr); err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			// An empty backbone is legitimate at default parameters on a
			// tiny graph (df needs more edges per node to reach α = 0.05),
			// but the output must always parse back as an edge list.
			if stdout.Len() > 0 {
				if _, err := graph.ReadCSV(strings.NewReader(stdout.String()), false); err != nil {
					t.Fatalf("%s: output not parseable as CSV: %v", m.Name, err)
				}
			}
			if !strings.Contains(stderr.String(), m.Name+" backbone") {
				t.Errorf("%s: summary missing from stderr: %q", m.Name, stderr.String())
			}
		})
	}
}

// TestCLIMethodFlags exercises each method's own parameter flags, again
// purely from the schema.
func TestCLIMethodFlags(t *testing.T) {
	in := writeTestCSV(t)
	for _, m := range repro.Methods() {
		for _, p := range m.Params {
			args := []string{"-method", m.Name}
			val := p.Default
			if p.Integer {
				args = append(args, "-"+p.Name, strconv.Itoa(int(val)))
			} else {
				args = append(args, "-"+p.Name, fmt.Sprintf("%g", val))
			}
			args = append(args, in)
			var stdout, stderr bytes.Buffer
			if err := newApp().run(args, nil, &stdout, &stderr); err != nil {
				t.Errorf("%s with -%s: %v", m.Name, p.Name, err)
			}
		}
	}
}

// TestCLIDefaultsRoundTrip checks that every schema default survives
// the flag generation: the generated flag's default value renders back
// to the parameter's declared default.
func TestCLIDefaultsRoundTrip(t *testing.T) {
	a := newApp()
	for _, m := range repro.Methods() {
		for _, p := range m.Params {
			f := a.fs.Lookup(p.Name)
			if f == nil {
				t.Errorf("%s: no generated flag -%s", m.Name, p.Name)
				continue
			}
			got, err := strconv.ParseFloat(f.DefValue, 64)
			if err != nil {
				t.Errorf("-%s default %q not numeric: %v", p.Name, f.DefValue, err)
				continue
			}
			if got != p.Default {
				t.Errorf("-%s flag default %v, schema default %v (method %s)", p.Name, got, p.Default, m.Name)
			}
		}
	}
}

// TestCLIKCoreK checks the kcore regression: k is its own integer flag,
// no longer smuggled through the float -threshold.
func TestCLIKCoreK(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-method", "kcore", "-k", "3", in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	got, err := graph.ReadCSV(strings.NewReader(stdout.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.Backbone(mustGraph(t), repro.WithMethod("kcore"), repro.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.Backbone.NumEdges() {
		t.Errorf("-k 3 kept %d edges, library says %d", got.NumEdges(), want.Backbone.NumEdges())
	}
	// -threshold belongs to nt, not kcore: explicit error, not silent reuse.
	if err := newApp().run([]string{"-method", "kcore", "-threshold", "3", in}, nil, &stdout, &stderr); err == nil {
		t.Error("kcore accepted -threshold")
	}
}

func mustGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.ReadCSV(strings.NewReader(testCSV), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCLIInvalidCombos: flags a method does not declare, and size
// options on fixed-size methods, are explicit errors.
func TestCLIInvalidCombos(t *testing.T) {
	in := writeTestCSV(t)
	cases := [][]string{
		{"-method", "mst", "-top", "3", in},                // extract-only: no ranking
		{"-method", "mst", "-delta", "2", in},              // mst has no parameters
		{"-method", "df", "-delta", "2", in},               // delta is nc's, not df's
		{"-method", "nc", "-alpha", "0.1", in},             // alpha is df's, not nc's
		{"-method", "bogus", in},                           // unknown method
		{"-method", "nc", "-top", "2", "-frac", "0.5", in}, // mutually exclusive
		{"-method", "nc", "-frac", "1.5", in},              // fraction out of range
		{"-method", "nc", "-top", "0", in},                 // explicit zero is a script bug
		{"-method", "nc", "-top", "-3", in},                // negative size
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := newApp().run(args, nil, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted, want error", args[:len(args)-1])
		}
	}
}

// TestCLITopOverride: -top yields exact backbone sizes for every
// scoring method.
func TestCLITopOverride(t *testing.T) {
	in := writeTestCSV(t)
	for _, m := range repro.Methods() {
		if !m.CanScore() {
			continue
		}
		var stdout, stderr bytes.Buffer
		if err := newApp().run([]string{"-method", m.Name, "-top", "3", in}, nil, &stdout, &stderr); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		g, err := graph.ReadCSV(strings.NewReader(stdout.String()), false)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 3 {
			t.Errorf("%s: -top 3 kept %d edges", m.Name, g.NumEdges())
		}
	}
}

// TestCLIHelp: -h prints usage and is not an error (main exits 0).
func TestCLIHelp(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := newApp().run([]string{"-h"}, nil, &stdout, &stderr)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "methods:") {
		t.Errorf("usage text missing method list: %q", stderr.String())
	}
}

func TestCLIList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-list"}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, m := range repro.Methods() {
		if !strings.Contains(stdout.String(), m.Name) {
			t.Errorf("-list output missing method %q", m.Name)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(in, []byte("a,b,10\nb,c,9\nc,a,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-method", "nt", "-threshold", "5", "-o", out, in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadCSV(strings.NewReader(string(data)), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("threshold 5 kept %d edges, want 2", g.NumEdges())
	}
	if err := newApp().run([]string{filepath.Join(dir, "missing.csv")}, nil, &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	if err := newApp().run([]string{"-method", "nc", "-parallel", "-"}, strings.NewReader(testCSV), &stdout, &stderr); err != nil {
		t.Errorf("stdin + parallel: %v", err)
	}
}

// TestCLIEval drives the -eval mode in each output encoding: the
// default aligned table with a ranking line, machine-readable csv, and
// a JSON report whose undefined criteria are null (never NaN).
func TestCLIEval(t *testing.T) {
	in := writeTestCSV(t)

	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-eval", in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"method", "coverage", "ranking:", "nc"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "evaluated") {
		t.Errorf("summary missing from stderr: %q", stderr.String())
	}

	stdout.Reset()
	if err := newApp().run([]string{"-eval", "-methods", "nc,df,mst", "-frac", "0.5", "-outformat", "csv", in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 4 { // header + three methods
		t.Fatalf("csv output has %d lines:\n%s", len(lines), stdout.String())
	}
	if !strings.HasPrefix(lines[0], "method,edges,share,coverage") {
		t.Errorf("csv header = %q", lines[0])
	}

	stdout.Reset()
	if err := newApp().run([]string{"-eval", "-methods", "nc", "-outformat", "json", in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	rep := &repro.EvalReport{}
	if err := json.Unmarshal(stdout.Bytes(), rep); err != nil {
		t.Fatalf("json output does not decode: %v", err)
	}
	if len(rep.Methods) != 1 || rep.Methods[0].Method != "nc" {
		t.Fatalf("json report: %+v", rep.Methods)
	}
	if !strings.Contains(stdout.String(), `"stability": null`) {
		t.Errorf("undefined stability not null in CLI json:\n%s", stdout.String())
	}

	// -eval with a ride-along parameter no selected method declares, or
	// an unsupported output encoding, errors out.
	if err := newApp().run([]string{"-eval", "-methods", "mst", "-delta", "1", in}, nil, &stdout, &stderr); err == nil {
		t.Error("-eval accepted a ride-along no method declares")
	}
	if err := newApp().run([]string{"-eval", "-outformat", "ndjson", in}, nil, &stdout, &stderr); err == nil {
		t.Error("-eval accepted -outformat ndjson")
	}
	if err := newApp().run([]string{"-eval", "-top", "3", "-frac", "0.5", in}, nil, &stdout, &stderr); err == nil {
		t.Error("-eval accepted -top with -frac")
	}
	if err := newApp().run([]string{"-eval", "-top", "0", in}, nil, &stdout, &stderr); err == nil {
		t.Error("-eval accepted -top 0")
	}
}

// TestCLIEvalNextSnapshot: -next enables the stability criterion, and
// the next snapshot is aligned by node label — a next file listing the
// same network in a different row order (so its first-appearance node
// IDs all differ) must produce the identical stability values.
func TestCLIEvalNextSnapshot(t *testing.T) {
	in := writeTestCSV(t)
	dir := t.TempDir()
	next := filepath.Join(dir, "next.csv")
	if err := os.WriteFile(next, []byte("a,b,11\na,c,8\nb,c,2\nc,d,9\nd,e,6\nd,a,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The same snapshot with rows reversed: node IDs now differ from
	// the evaluated graph's, so an ID-keyed join without label
	// alignment would correlate unrelated pairs.
	nextShuffled := filepath.Join(dir, "next-shuffled.csv")
	if err := os.WriteFile(nextShuffled, []byte("d,a,5\nd,e,6\nc,d,9\nb,c,2\na,c,8\na,b,11\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	evalStability := func(nextPath string) map[string]float64 {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if err := newApp().run([]string{"-eval", "-methods", "nc,nt", "-frac", "0.5", "-next", nextPath, "-outformat", "json", in}, nil, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		rep := &repro.EvalReport{}
		if err := json.Unmarshal(stdout.Bytes(), rep); err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, me := range rep.Methods {
			if me.Err != "" {
				t.Fatalf("%s: %s", me.Method, me.Err)
			}
			if math.IsNaN(float64(me.Stability)) {
				t.Errorf("%s: stability NaN despite -next", me.Method)
			}
			out[me.Method] = float64(me.Stability)
		}
		return out
	}
	ordered := evalStability(next)
	shuffled := evalStability(nextShuffled)
	for method, want := range ordered {
		if got := shuffled[method]; got != want {
			t.Errorf("%s: stability %v with shuffled next, %v ordered — label alignment broken", method, got, want)
		}
	}
}
