package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIConvertThenRun: -convert writes the binary twin next to the
// input, and running on the .bbg (mmap-loaded, never parsed) produces
// byte-identical output to running on the text original.
func TestCLIConvertThenRun(t *testing.T) {
	in := writeTestCSV(t)

	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-convert", in}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("-convert: %v", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("-convert wrote to stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "converted:") {
		t.Fatalf("missing conversion summary: %q", stderr.String())
	}
	bbg := strings.TrimSuffix(in, ".csv") + ".bbg"
	if _, err := os.Stat(bbg); err != nil {
		t.Fatalf("expected %s: %v", bbg, err)
	}

	var fromCSV, fromBBG, errbuf bytes.Buffer
	if err := newApp().run([]string{"-method", "nc", "-delta", "1.0", in}, nil, &fromCSV, &errbuf); err != nil {
		t.Fatal(err)
	}
	if err := newApp().run([]string{"-method", "nc", "-delta", "1.0", bbg}, nil, &fromBBG, &errbuf); err != nil {
		t.Fatal(err)
	}
	if fromCSV.String() != fromBBG.String() {
		t.Fatalf("backbone from .bbg differs:\n%s\nvs\n%s", fromBBG.String(), fromCSV.String())
	}
}

// TestCLIConvertGraphdir: -graphdir names the output after the sha256
// of the raw input bytes — the digest backboned computes over a
// request body carrying the same edge list.
func TestCLIConvertGraphdir(t *testing.T) {
	in := writeTestCSV(t)
	dir := filepath.Join(t.TempDir(), "graphs")

	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-convert", "-graphdir", dir, in}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("-convert -graphdir: %v", err)
	}
	sum := sha256.Sum256([]byte(testCSV))
	want := filepath.Join(dir, hex.EncodeToString(sum[:])+".bbg")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("expected %s: %v", want, err)
	}
	if !strings.Contains(stderr.String(), want) {
		t.Fatalf("summary does not name the output: %q", stderr.String())
	}
}

// TestAtomicCreateCommitAndAbort pins the crash-safe output contract:
// writes land in a same-directory temp file; only commit publishes
// them (fsync + rename over dst), and an aborted write leaves both the
// old dst bytes and the directory listing untouched.
func TestAtomicCreateCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bbg")
	if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	f, _, abort, err := atomicCreate(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn"); err != nil {
		t.Fatal(err)
	}
	abort()
	if got, err := os.ReadFile(dst); err != nil || string(got) != "old" {
		t.Fatalf("dst after abort = %q, %v; want old bytes intact", got, err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("abort left temp residue: %v", entries)
	}

	f, commit, abort, err := atomicCreate(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("new"); err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	abort() // after commit this must be a no-op
	if got, err := os.ReadFile(dst); err != nil || string(got) != "new" {
		t.Fatalf("dst after commit = %q, %v; want new bytes", got, err)
	}
	if fi, err := os.Stat(dst); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("dst mode = %v, %v; want 0644", fi.Mode(), err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Fatalf("commit left temp residue: %v", entries)
	}
}

// TestCLIConvertLeavesNoTempResidue: a successful -convert -graphdir
// publishes exactly the digest-named file.
func TestCLIConvertLeavesNoTempResidue(t *testing.T) {
	in := writeTestCSV(t)
	dir := filepath.Join(t.TempDir(), "graphs")
	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-convert", "-graphdir", dir, in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".bbg") {
		t.Fatalf("graphdir listing = %v, want exactly one .bbg", entries)
	}
}

// TestCLIConvertStdin: stdin input has no path to derive a name from,
// so -o (or -graphdir) is mandatory; with -o it converts normally.
func TestCLIConvertStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := newApp().run([]string{"-convert", "-"}, strings.NewReader(testCSV), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-o or -graphdir") {
		t.Fatalf("err = %v, want the naming requirement", err)
	}

	out := filepath.Join(t.TempDir(), "out.bbg")
	stderr.Reset()
	if err := newApp().run([]string{"-convert", "-o", out, "-"}, strings.NewReader(testCSV), &stdout, &stderr); err != nil {
		t.Fatalf("-convert -o from stdin: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

// TestCLIConvertFlagCombos pins the mutual-exclusion rules.
func TestCLIConvertFlagCombos(t *testing.T) {
	in := writeTestCSV(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-graphdir", t.TempDir(), in}, "-graphdir only applies to -convert"},
		{[]string{"-convert", "-eval", in}, "mutually exclusive"},
		{[]string{"-convert", "-graphdir", t.TempDir(), "-o", "x.bbg", in}, "mutually exclusive"},
	} {
		var stdout, stderr bytes.Buffer
		err := newApp().run(tc.args, nil, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestCLIBBGExplicitOtherFormat: naming a conflicting -format on a
// .bbg path skips the mmap fast path and parses — which must then fail
// typed, not mis-parse binary bytes silently.
func TestCLIBBGExplicitOtherFormat(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	if err := newApp().run([]string{"-convert", in}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	bbg := strings.TrimSuffix(in, ".csv") + ".bbg"
	err := newApp().run([]string{"-format", "csv", bbg}, nil, &stdout, &stderr)
	if err == nil {
		t.Fatal("csv-parsing a .bbg file succeeded")
	}
}
