package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestWorldgenWritesBundle(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 3, 25, 2, []string{"trade"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trade_y0.csv", "trade_y1.csv", "countries.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "trade_y0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadCSV(strings.NewReader(string(data)), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Error("exported network is empty")
	}
	countries, err := os.ReadFile(filepath.Join(dir, "countries.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(countries), "\n")
	if lines != 26 { // header + 25 countries
		t.Errorf("countries.csv has %d lines, want 26", lines)
	}
	if err := run(dir, 3, 25, 2, []string{"nonsense"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestWorldgenDeterministic(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	if err := run(d1, 7, 20, 1, []string{"flight"}); err != nil {
		t.Fatal(err)
	}
	if err := run(d2, 7, 20, 1, []string{"flight"}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(d1, "flight_y0.csv"))
	b, _ := os.ReadFile(filepath.Join(d2, "flight_y0.csv"))
	if string(a) != string(b) {
		t.Error("same seed produced different exports")
	}
}
