// Command worldgen materializes the synthetic country datasets to disk
// as CSV bundles — the stand-in for the country networks the paper
// releases alongside its Python module ("to ensure result
// reproducibility, we also release some of the country networks used in
// this paper").
//
// Usage:
//
//	worldgen -out data/ [-seed 1701] [-countries 180] [-years 4] [dataset...]
//
// With no dataset arguments all six are written. Each dataset produces
// one edge list per observation year (e.g. trade_y0.csv), and the tool
// additionally writes countries.csv with the node attributes used by
// the paper's regressions (population, coordinates, language group,
// measured complexity).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/world"
)

func main() {
	var (
		out       = flag.String("out", "data", "output directory")
		seed      = flag.Int64("seed", 1701, "world seed")
		countries = flag.Int("countries", 180, "number of countries")
		years     = flag.Int("years", 4, "observation years")
	)
	flag.Parse()
	if err := run(*out, *seed, *countries, *years, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, countries, years int, names []string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	w := world.New(world.Config{Seed: seed, Countries: countries, Years: years})
	if len(names) == 0 {
		names = []string{"business", "cs", "flight", "migration", "ownership", "trade"}
	}
	for _, name := range names {
		ds, err := w.DatasetByName(name)
		if err != nil {
			return err
		}
		slug := strings.ReplaceAll(strings.ToLower(ds.Name), " ", "_")
		for yi, g := range ds.Years {
			path := filepath.Join(out, fmt.Sprintf("%s_y%d.csv", slug, yi))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := g.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d edges)\n", path, g.NumEdges())
		}
	}
	return writeCountries(filepath.Join(out, "countries.csv"), w)
}

func writeCountries(path string, w *world.World) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "name,population,lat,lon,language,eci,airhub"); err != nil {
		return err
	}
	eci := w.MeasuredECI()
	for i, c := range w.Countries {
		hub := 0
		if w.AirHub[i] {
			hub = 1
		}
		if _, err := fmt.Fprintf(f, "%s,%.0f,%.4f,%.4f,%d,%.4f,%d\n",
			c.Name, c.Population, c.Lat, c.Lon, c.Language, eci[i], hub); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d countries)\n", path, len(w.Countries))
	return nil
}
