// Command backbonegen drives a running backboned daemon with open-loop
// load and reports goodput, shed/expiry rates and latency percentiles:
// the measurement harness for admission-control and overload work.
//
// Usage:
//
//	backbonegen -url http://localhost:8080 [-path /backbone] [-query method=nc]
//	            [-rps 50] [-ramp-to 0] [-duration 30s] [-timeout 5s]
//	            [-bodies 8] [-edges 2000] [-zipf 1.2] [-seed 1]
//	            [-max-in-flight 512] [-update-fraction 0] [-json] [-statsz]
//
// The generator synthesizes -bodies distinct edge-list request bodies
// of roughly -edges edges each (deterministic in -seed) and POSTs one
// per arrival, selected zipfian when -zipf > 1 (body 0 hottest — the
// cache-skew shape real traffic has) or uniformly otherwise. Arrivals
// are scheduled open-loop at -rps, ramping linearly to -ramp-to when
// set, so offered load does not slacken when the server queues: what a
// saturated daemon does under pressure — shed, expire, or keep its
// goodput — is exactly what the report shows. Every request carries
// X-Backbone-Deadline (the -timeout budget in milliseconds), arming
// the daemon's deadline-aware admission and fleet propagation.
//
// -update-fraction > 0 switches to a mixed incremental workload: one
// live session is opened per body before the clock starts, and that
// share of arrivals POSTs a single-edge update to the selected body's
// session while the rest GET its backbone — driving the daemon's
// delta/re-scoring path under the same open-loop pressure. The report
// then breaks outcomes and latencies down per operation.
//
// -json emits the full report as JSON on stdout (the human summary
// goes to stderr); -statsz additionally fetches the daemon's /statsz
// after the run and embeds it in the JSON report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "daemon base URL")
		path     = flag.String("path", "/backbone", "endpoint path (/backbone, /score, /evaluate)")
		query    = flag.String("query", "method=nc", "query string without the leading ?")
		rps      = flag.Float64("rps", 50, "offered arrival rate at t=0 (open loop)")
		rampTo   = flag.Float64("ramp-to", 0, "arrival rate at t=duration; 0 holds -rps flat")
		duration = flag.Duration("duration", 30*time.Second, "run length")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request budget, propagated as X-Backbone-Deadline")
		bodies   = flag.Int("bodies", 8, "distinct request bodies in the working set")
		edges    = flag.Int("edges", 2000, "approximate edges per body")
		zipf     = flag.Float64("zipf", 1.2, "zipf exponent for body selection (hot-key skew); <= 1 selects uniformly")
		seed     = flag.Int64("seed", 1, "RNG seed for body synthesis and selection")
		maxInfl  = flag.Int("max-in-flight", 512, "client-side concurrent request cap; arrivals past it count as dropped")
		updFrac  = flag.Float64("update-fraction", 0, "share of arrivals sent as session updates (rest are session reads); 0 keeps the stateless POST workload")
		asJSON   = flag.Bool("json", false, "emit the full report as JSON on stdout")
		statsz   = flag.Bool("statsz", false, "fetch the daemon's /statsz after the run (JSON report only)")
	)
	flag.Parse()

	work, err := loadgen.Bodies(*bodies, *edges, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "backbonegen: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "backbonegen: %s%s?%s — %g rps", *url, *path, *query, *rps)
	if *rampTo > 0 {
		fmt.Fprintf(os.Stderr, " ramping to %g", *rampTo)
	}
	fmt.Fprintf(os.Stderr, " for %v, %d bodies x ~%d edges (zipf %g), timeout %v\n",
		*duration, *bodies, *edges, *zipf, *timeout)

	rep, err := loadgen.Run(ctx, loadgen.Config{
		URL:            *url,
		Path:           *path,
		Query:          *query,
		RPS:            *rps,
		RampTo:         *rampTo,
		Duration:       *duration,
		Timeout:        *timeout,
		Bodies:         work,
		Zipf:           *zipf,
		Seed:           *seed,
		MaxInFlight:    *maxInfl,
		UpdateFraction: *updFrac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "backbonegen: %v\n", err)
		os.Exit(1)
	}

	printSummary(os.Stderr, rep)
	if *asJSON {
		out := struct {
			*loadgen.Report
			Statsz json.RawMessage `json:"statsz,omitempty"`
		}{Report: rep}
		if *statsz {
			if raw, err := fetchStatsz(ctx, *url); err != nil {
				fmt.Fprintf(os.Stderr, "backbonegen: statsz: %v\n", err)
			} else {
				out.Statsz = raw
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "backbonegen: %v\n", err)
			os.Exit(1)
		}
	}
}

// printSummary renders the human-readable run report.
func printSummary(w *os.File, rep *loadgen.Report) {
	fmt.Fprintf(w, "ran %.1fs: offered %d, sent %d, dropped %d (client cap)\n",
		rep.DurationSeconds, rep.Offered, rep.Sent, rep.Dropped)
	outcomes := make([]string, 0, len(rep.Outcomes))
	for o := range rep.Outcomes {
		outcomes = append(outcomes, string(o))
	}
	sort.Strings(outcomes)
	for _, o := range outcomes {
		n := rep.Outcomes[loadgen.Outcome(o)]
		line := fmt.Sprintf("  %-8s %6d (%.1f%%)", o, n, 100*float64(n)/float64(rep.Sent))
		if s, ok := rep.Latency[loadgen.Outcome(o)]; ok && s.Count > 0 {
			line += fmt.Sprintf("  p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms",
				s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs)
		}
		fmt.Fprintln(w, line)
	}
	ops := make([]string, 0, len(rep.Ops))
	for op := range rep.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		for _, o := range outcomes {
			n := rep.Ops[op][loadgen.Outcome(o)]
			if n == 0 {
				continue
			}
			line := fmt.Sprintf("  %-8s %-8s %6d", op, o, n)
			if s, ok := rep.OpLatency[op][loadgen.Outcome(o)]; ok && s.Count > 0 {
				line += fmt.Sprintf("  p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms",
					s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs)
			}
			fmt.Fprintln(w, line)
		}
	}
	fmt.Fprintf(w, "goodput: %.1f rps\n", rep.GoodputRPS)
	if rep.RetryAfterCount > 0 {
		fmt.Fprintf(w, "retry-after: mean %.1fs over %d shed responses\n",
			rep.RetryAfterSeconds/float64(rep.RetryAfterCount), rep.RetryAfterCount)
	}
}

// fetchStatsz grabs the daemon's stats endpoint for embedding in the
// JSON report.
func fetchStatsz(ctx context.Context, base string) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}
