package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/resilient"
)

// The overload e2e suite drives a race-enabled daemon past saturation
// with the open-loop generator (internal/loadgen) and asserts the
// admission path's contract: goodput holds near capacity while excess
// load is shed, no scoring run ever starts past its propagated
// deadline, and cache-hit (fast lane) requests are not starved behind
// cold scoring. The slowtest method gives deterministic cost: with
// filter.Checkpoint = 8 (set in TestMain) a 64-edge body scores in
// exactly 8 ranges x 10ms = 80ms.

// overloadCost is slowtest's per-request scoring cost for the 64-edge
// bodies this suite uses.
const overloadCost = 80 * time.Millisecond

// overloadDuration is the sustained-load window: a quick pass for the
// regular test run, the issue's full 20s soak when OVERLOAD_SMOKE=1
// (the CI overload-smoke job).
func overloadDuration(quick time.Duration) time.Duration {
	if os.Getenv("OVERLOAD_SMOKE") != "" {
		return 20 * time.Second
	}
	return quick
}

// overloadBodies builds n distinct 64-edge CSV bodies (deterministic
// per index) so uniform selection keeps the score caches cold.
func overloadBodies(t testing.TB, n int) [][]byte {
	t.Helper()
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(1000 + int64(i)))
		b := repro.NewBuilder(false)
		nodes := 20
		for added := 0; added < 64; {
			u, v := rng.Intn(nodes), rng.Intn(nodes)
			if u == v {
				continue
			}
			if err := b.AddEdgeLabels(fmt.Sprintf("b%d_%d", i, u), fmt.Sprintf("b%d_%d", i, v), 1+rng.Float64()*20); err != nil {
				t.Fatal(err)
			}
			added++
		}
		var buf bytes.Buffer
		if err := repro.WriteGraph(&buf, b.Build(), repro.WithFormat("csv")); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// admissionStatsz mirrors the /statsz admission section.
type admissionLaneStatsz struct {
	Admitted      uint64 `json:"admitted"`
	Sheds         uint64 `json:"sheds"`
	QueueTimeouts uint64 `json:"queue_timeouts"`
}

type admissionStatsz struct {
	Limit                float64             `json:"limit"`
	ExpiredArrivals      uint64              `json:"expired_arrivals"`
	ExpiredBeforeScoring uint64              `json:"expired_before_scoring"`
	DeadlineViolations   uint64              `json:"deadline_violations"`
	Fast                 admissionLaneStatsz `json:"fast"`
	Cold                 admissionLaneStatsz `json:"cold"`
}

func fetchAdmissionStatsz(t testing.TB, url string) admissionStatsz {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Admission admissionStatsz `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Admission
}

// TestOverloadGoodputAtTwiceCapacity is the issue's headline check:
// offered load at 2x the node's cold-scoring capacity must not
// collapse goodput — completed work stays >= 70% of capacity, the
// excess is shed with computed Retry-After hints, and no scoring run
// starts past its deadline.
func TestOverloadGoodputAtTwiceCapacity(t *testing.T) {
	const workers = 4
	// Caches disabled: every request is cold scoring, so capacity is
	// the cold lane's slots (workers minus the fast-lane reserve) over
	// the deterministic per-request cost.
	s := newServer(serverConfig{
		workers: workers, timeout: 5 * time.Second, maxBody: 1 << 24,
		logf: t.Logf,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	capacity := float64(workers-1) / overloadCost.Seconds()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      ts.URL,
		Path:     "/backbone",
		Query:    "method=slowtest",
		RPS:      2 * capacity,
		Duration: overloadDuration(4 * time.Second),
		Timeout:  2 * time.Second,
		Bodies:   overloadBodies(t, 32),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity %.1f rps, goodput %.1f rps, outcomes %v", capacity, rep.GoodputRPS, rep.Outcomes)

	if rep.GoodputRPS < 0.7*capacity {
		t.Errorf("goodput %.1f rps under 2x overload, want >= 70%% of %.1f rps capacity", rep.GoodputRPS, capacity)
	}
	if rep.Outcomes[loadgen.Shed] == 0 {
		t.Error("no sheds at 2x capacity — admission is not protecting the node")
	}
	if rep.Outcomes[loadgen.Errored] > 0 {
		t.Errorf("%d hard errors under overload (shed/expire are the only acceptable refusals)", rep.Outcomes[loadgen.Errored])
	}
	if rep.RetryAfterCount != rep.Outcomes[loadgen.Shed] {
		t.Errorf("%d of %d shed responses carried Retry-After", rep.RetryAfterCount, rep.Outcomes[loadgen.Shed])
	}
	ast := fetchAdmissionStatsz(t, ts.URL)
	if ast.DeadlineViolations != 0 {
		t.Errorf("deadline_violations = %d, want 0 (scoring started past its deadline)", ast.DeadlineViolations)
	}
	if ast.Cold.Sheds == 0 {
		t.Errorf("admission stats show no cold-lane sheds: %+v", ast)
	}
}

// TestOverloadExpiredBudgetNeverScored: a request whose propagated
// budget is already spent is refused at the front door — 504, counted,
// and no scoring (not even a cache fill) happens on its behalf.
func TestOverloadExpiredBudgetNeverScored(t *testing.T) {
	s, ts := newTestServer(t, 2, 5*time.Second)
	body := encodeGraph(t, testGraph(t, 64), "csv")

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/backbone?method=slowtest", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("X-Backbone-Deadline", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d for pre-expired budget, want 504", resp.StatusCode)
	}
	if n := s.scores.Len(); n != 0 {
		t.Errorf("score cache has %d entries after a pre-expired request, want 0 (nothing may be scored)", n)
	}
	ast := fetchAdmissionStatsz(t, ts.URL)
	if ast.ExpiredArrivals != 1 {
		t.Errorf("expired_arrivals = %d, want 1", ast.ExpiredArrivals)
	}
	if ast.DeadlineViolations != 0 {
		t.Errorf("deadline_violations = %d, want 0", ast.DeadlineViolations)
	}
}

// TestOverloadFastLaneNotStarved: a body whose score table is cached
// rides the fast lane; with the cold lane saturated at 2x capacity its
// latency must stay within 3x the unloaded p99 (floored against CI
// scheduling noise), nowhere near the cold queue's ~800ms wait.
func TestOverloadFastLaneNotStarved(t *testing.T) {
	const workers = 4
	s := newServer(serverConfig{
		workers: workers, timeout: 5 * time.Second, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
		logf: t.Logf,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	hot := encodeGraph(t, testGraph(t, 64), "csv").Bytes()
	postHot := func() time.Duration {
		started := time.Now()
		resp, err := http.Post(ts.URL+"/backbone?method=slowtest", "text/csv", bytes.NewReader(hot))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hot request: status %d", resp.StatusCode)
		}
		return time.Since(started)
	}
	postHot() // cold first touch caches the table

	const samples = 30
	p99 := func(ls []time.Duration) time.Duration {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		idx := int(0.99*float64(len(ls))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		return ls[idx]
	}
	var unloaded []time.Duration
	for i := 0; i < samples; i++ {
		unloaded = append(unloaded, postHot())
	}
	unloadedP99 := p99(unloaded)

	// Saturate the cold lane: a large distinct-body pool keeps repeat
	// hits (which would ride the fast lane too) rare.
	capacity := float64(workers-1) / overloadCost.Seconds()
	loadCtx, stopLoad := context.WithCancel(context.Background())
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		_, err := loadgen.Run(loadCtx, loadgen.Config{
			URL:      ts.URL,
			Path:     "/backbone",
			Query:    "method=slowtest",
			RPS:      2 * capacity,
			Duration: overloadDuration(4*time.Second) + 10*time.Second,
			Timeout:  2 * time.Second,
			Bodies:   overloadBodies(t, 256),
			Seed:     7,
		})
		if err != nil && loadCtx.Err() == nil {
			t.Error(err)
		}
	}()
	// Let the queue build before measuring.
	time.Sleep(500 * time.Millisecond)
	var loaded []time.Duration
	for i := 0; i < samples; i++ {
		loaded = append(loaded, postHot())
		time.Sleep(20 * time.Millisecond)
	}
	stopLoad()
	<-loadDone

	loadedP99 := p99(loaded)
	bound := 3 * unloadedP99
	if floor := 150 * time.Millisecond; bound < floor {
		// Sub-ms unloaded hits make a literal 3x bound CI-noise; the
		// floor still sits far under the cold queue's wait, so starving
		// the fast lane would trip it regardless.
		bound = floor
	}
	t.Logf("fast-lane p99: unloaded %v, under overload %v (bound %v)", unloadedP99, loadedP99, bound)
	if loadedP99 > bound {
		t.Errorf("fast-lane p99 %v under cold overload, want <= %v (3x unloaded %v, noise-floored)",
			loadedP99, bound, unloadedP99)
	}
	if ast := fetchAdmissionStatsz(t, ts.URL); ast.DeadlineViolations != 0 {
		t.Errorf("deadline_violations = %d, want 0", ast.DeadlineViolations)
	}
}

// TestOverloadChaosSmoke drives 2x capacity with latency and error
// injection enabled (-chaos): the node must neither panic nor violate
// a deadline, and goodput must stay nonzero — the CI overload-smoke
// gate.
func TestOverloadChaosSmoke(t *testing.T) {
	const workers = 4
	fault, err := resilient.ParseFaultSpec("latency=30ms,latency-rate=0.3,error=0.05")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(serverConfig{
		workers: workers, timeout: 5 * time.Second, maxBody: 1 << 24,
		fault: fault,
		logf:  t.Logf,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	capacity := float64(workers-1) / overloadCost.Seconds()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		URL:      ts.URL,
		Path:     "/backbone",
		Query:    "method=slowtest",
		RPS:      2 * capacity,
		Duration: overloadDuration(3 * time.Second),
		Timeout:  2 * time.Second,
		Bodies:   overloadBodies(t, 32),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos run: goodput %.1f rps, outcomes %v", rep.GoodputRPS, rep.Outcomes)
	if rep.Outcomes[loadgen.OK] == 0 {
		t.Error("zero goodput under chaos — the node fell over instead of degrading")
	}
	if ast := fetchAdmissionStatsz(t, ts.URL); ast.DeadlineViolations != 0 {
		t.Errorf("deadline_violations = %d, want 0", ast.DeadlineViolations)
	}
}
