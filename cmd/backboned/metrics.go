package main

// GET /metricsz: the daemon's operational counters in Prometheus text
// exposition format (version 0.0.4), for scrape-based monitoring next
// to the JSON /statsz. Only counters and gauges are exposed — the
// sources are the exact same atomics and Stats() snapshots /statsz
// reads, so the two endpoints can never disagree.

import (
	"bufio"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// metricsContentType is the Prometheus text exposition media type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates one exposition: TYPE headers, labels, and
// float-formatted samples.
type promWriter struct {
	w *bufio.Writer
}

func (p *promWriter) typ(name, kind, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// sample writes one metric line. labels is alternating key, value
// pairs; values are label-escaped per the exposition format.
func (p *promWriter) sample(name string, value float64, labels ...string) {
	p.w.WriteString(name)
	if len(labels) > 0 {
		p.w.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.w.WriteByte(',')
			}
			fmt.Fprintf(p.w, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		p.w.WriteByte('}')
	}
	fmt.Fprintf(p.w, " %g\n", value)
}

// escapeLabel handles the exposition format's label escapes; %q covers
// quote and backslash, so only newlines need rewriting.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", "\\n")
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handleMetricsz renders the scrape.
func (s *server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metricsContentType)
	p := &promWriter{w: bufio.NewWriter(w)}
	defer p.w.Flush()

	p.typ("backboned_uptime_seconds", "gauge", "Seconds since the process started.")
	p.sample("backboned_uptime_seconds", time.Since(s.start).Seconds())
	p.typ("backboned_requests_total", "counter", "Requests accepted by the scoring and session endpoints.")
	p.sample("backboned_requests_total", float64(s.requests.Load()))
	p.typ("backboned_draining", "gauge", "1 once graceful shutdown has begun (readyz is 503).")
	p.sample("backboned_draining", b2f(s.draining.Load()))

	gs, ss := s.graphs.Stats(), s.scores.Stats()
	p.typ("backboned_cache_hits_total", "counter", "Content-addressed cache hits by cache.")
	p.sample("backboned_cache_hits_total", float64(gs.Hits), "cache", "graph")
	p.sample("backboned_cache_hits_total", float64(ss.Hits), "cache", "score")
	p.typ("backboned_cache_misses_total", "counter", "Content-addressed cache misses by cache.")
	p.sample("backboned_cache_misses_total", float64(gs.Misses), "cache", "graph")
	p.sample("backboned_cache_misses_total", float64(ss.Misses), "cache", "score")
	p.typ("backboned_cache_evictions_total", "counter", "Cache entries evicted to honor the byte budget.")
	p.sample("backboned_cache_evictions_total", float64(gs.Evictions), "cache", "graph")
	p.sample("backboned_cache_evictions_total", float64(ss.Evictions), "cache", "score")
	p.typ("backboned_cache_entries", "gauge", "Current cache entries by cache.")
	p.sample("backboned_cache_entries", float64(gs.Entries), "cache", "graph")
	p.sample("backboned_cache_entries", float64(ss.Entries), "cache", "score")
	p.typ("backboned_cache_bytes", "gauge", "Summed cost of resident cache entries by cache.")
	p.sample("backboned_cache_bytes", float64(gs.Bytes), "cache", "graph")
	p.sample("backboned_cache_bytes", float64(ss.Bytes), "cache", "score")

	ast := s.limiter.Stats()
	p.typ("backboned_admission_limit", "gauge", "Current adaptive concurrency limit.")
	p.sample("backboned_admission_limit", ast.Limit)
	p.typ("backboned_admission_in_flight", "gauge", "Admitted requests currently executing, by lane.")
	p.sample("backboned_admission_in_flight", float64(ast.Fast.InFlight), "lane", "fast")
	p.sample("backboned_admission_in_flight", float64(ast.Cold.InFlight), "lane", "cold")
	p.typ("backboned_admission_queued", "gauge", "Requests waiting for a slot, by lane.")
	p.sample("backboned_admission_queued", float64(ast.Fast.Queued), "lane", "fast")
	p.sample("backboned_admission_queued", float64(ast.Cold.Queued), "lane", "cold")
	p.typ("backboned_admission_admitted_total", "counter", "Requests admitted into the worker pool, by lane.")
	p.sample("backboned_admission_admitted_total", float64(ast.Fast.Admitted), "lane", "fast")
	p.sample("backboned_admission_admitted_total", float64(ast.Cold.Admitted), "lane", "cold")
	p.typ("backboned_admission_sheds_total", "counter", "Requests shed with 503, by lane.")
	p.sample("backboned_admission_sheds_total", float64(ast.Fast.Sheds), "lane", "fast")
	p.sample("backboned_admission_sheds_total", float64(ast.Cold.Sheds), "lane", "cold")
	p.typ("backboned_admission_deadline_rejects_total", "counter", "Requests refused because their budget could not cover the work ahead.")
	p.sample("backboned_admission_deadline_rejects_total", float64(ast.DeadlineRejects))
	p.typ("backboned_expired_arrivals_total", "counter", "Requests whose propagated deadline was already spent on arrival.")
	p.sample("backboned_expired_arrivals_total", float64(s.expiredArrivals.Load()))
	p.typ("backboned_expired_before_scoring_total", "counter", "Scoring runs refused at the last gate because the deadline had passed.")
	p.sample("backboned_expired_before_scoring_total", float64(s.expiredBeforeScoring.Load()))
	p.typ("backboned_deadline_violations_total", "counter", "Scoring runs that would have started past their deadline (must stay 0).")
	p.sample("backboned_deadline_violations_total", float64(s.deadlineViolations.Load()))

	p.typ("backboned_evaluate_requests_total", "counter", "POST /evaluate calls.")
	p.sample("backboned_evaluate_requests_total", float64(s.evalRequests.Load()))
	p.typ("backboned_evaluate_cache_skips_total", "counter", "Method scorings /evaluate skipped via the score cache.")
	p.sample("backboned_evaluate_cache_skips_total", float64(s.evalCacheSkips.Load()))

	p.typ("backboned_sessions_active", "gauge", "Resident incremental sessions.")
	p.sample("backboned_sessions_active", float64(s.sessionCount()))
	p.typ("backboned_session_creates_total", "counter", "Sessions opened (POST /session).")
	p.sample("backboned_session_creates_total", float64(s.sessionCreates.Load()))
	p.typ("backboned_session_updates_total", "counter", "Update batches applied to sessions.")
	p.sample("backboned_session_updates_total", float64(s.sessionUpdates.Load()))
	p.typ("backboned_session_reads_total", "counter", "Session backbone/score reads.")
	p.sample("backboned_session_reads_total", float64(s.sessionReads.Load()))
	p.typ("backboned_session_deletes_total", "counter", "Sessions closed with DELETE.")
	p.sample("backboned_session_deletes_total", float64(s.sessionDeletes.Load()))
	p.typ("backboned_session_evictions_total", "counter", "Sessions evicted past -max-sessions.")
	p.sample("backboned_session_evictions_total", float64(s.sessionEvictions.Load()))
	p.typ("backboned_session_delta_invalidations_total", "counter", "Per-session score tables dirtied by update batches.")
	p.sample("backboned_session_delta_invalidations_total", float64(s.sessionInvalidations.Load()))
	p.typ("backboned_session_rescored_rows_total", "counter", "Score-table rows re-scored by incremental session reads.")
	p.sample("backboned_session_rescored_rows_total", float64(s.sessionRescoredRows.Load()))
	p.typ("backboned_session_full_rescores_total", "counter", "Session reads that re-scored their whole table.")
	p.sample("backboned_session_full_rescores_total", float64(s.sessionFullRescores.Load()))
	p.typ("backboned_session_owner_unavailable_total", "counter", "Session requests answered 503 because the owning peer was unreachable.")
	p.sample("backboned_session_owner_unavailable_total", float64(s.sessionOwnerMiss.Load()))

	if s.graphDir != "" {
		p.typ("backboned_mmap_hits_total", "counter", "Requests served a memory-mapped -graphdir graph.")
		p.sample("backboned_mmap_hits_total", float64(s.mmapHits.Load()))
		p.typ("backboned_mmap_misses_total", "counter", "Request digests with no usable -graphdir file.")
		p.sample("backboned_mmap_misses_total", float64(s.mmapMisses.Load()))
		p.typ("backboned_mmap_errors_total", "counter", "Unreadable or corrupt -graphdir files.")
		p.sample("backboned_mmap_errors_total", float64(s.mmapErrors.Load()))
		p.typ("backboned_mmap_graphs", "gauge", "Graphs currently memory-mapped.")
		p.sample("backboned_mmap_graphs", float64(s.mmapLoads.Load()))
		p.typ("backboned_mmap_bytes", "gauge", "Bytes currently memory-mapped from -graphdir.")
		p.sample("backboned_mmap_bytes", float64(s.mmapBytes.Load()))
	}

	if s.fleet != nil {
		p.typ("backboned_fleet_forwards_total", "counter", "Requests forwarded to a peer, by peer address.")
		p.typ("backboned_fleet_failures_total", "counter", "Forward attempts that failed terminally, by peer address.")
		p.typ("backboned_fleet_fallbacks_total", "counter", "Stateless requests degraded to local execution, by peer address.")
		for _, ps := range s.fleet.Stats() {
			if ps.Self {
				continue
			}
			p.sample("backboned_fleet_forwards_total", float64(ps.Forwards), "peer", ps.Addr)
			p.sample("backboned_fleet_failures_total", float64(ps.Failures), "peer", ps.Addr)
			p.sample("backboned_fleet_fallbacks_total", float64(ps.Fallbacks), "peer", ps.Addr)
		}
	}
}
