package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

// newGraphdirServer is newTestServer with the -graphdir fast path
// enabled on a fresh directory.
func newGraphdirServer(t testing.TB) (*server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	s := newServer(serverConfig{
		workers: 2, timeout: 5 * time.Second, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
		graphDir: dir,
		logf:     t.Logf,
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, dir
}

// convertBody writes the .bbg twin of an edge-list body under dir with
// the daemon's digest naming — what `backbone -convert -graphdir dir`
// produces.
func convertBody(t testing.TB, dir string, body []byte, directed bool) string {
	t.Helper()
	g, err := repro.ReadGraph(bytes.NewReader(body), repro.WithDirected(directed))
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	path := filepath.Join(dir, hex.EncodeToString(sum[:])+".bbg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteGraph(f, g, repro.WithFormat("bbg")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// mmapStats fetches the /statsz "mmap" block.
func mmapStats(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Mmap map[string]float64 `json:"mmap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Mmap == nil {
		t.Fatal("statsz has no mmap block")
	}
	return out.Mmap
}

func postBackbone(t testing.TB, url string, body []byte, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/backbone"+query, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestGraphdirServesMappedGraph: a body whose digest names a
// pre-converted .bbg must be served from the mapping — same response
// bytes as a parsing daemon, /statsz counting the load and the hits.
func TestGraphdirServesMappedGraph(t *testing.T) {
	body := encodeGraph(t, testGraph(t, 200), "csv").Bytes()

	_, plain := newTestServer(t, 2, 5*time.Second)
	_, ts, dir := newGraphdirServer(t)
	convertBody(t, dir, body, false)

	wantStatus, want := postBackbone(t, plain.URL, body, "?method=nc&delta=1.0")
	if wantStatus != http.StatusOK {
		t.Fatalf("parsing daemon: status %d: %s", wantStatus, want)
	}
	for i := 0; i < 2; i++ {
		status, got := postBackbone(t, ts.URL, body, "?method=nc&delta=1.0")
		if status != http.StatusOK {
			t.Fatalf("post %d: status %d: %s", i, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("post %d: mmap-served backbone differs from parsed:\n%s\nvs\n%s", i, got, want)
		}
	}

	st := mmapStats(t, ts.URL)
	if st["graphs"] != 1 {
		t.Fatalf("graphs = %v, want 1 (one digest, one load)", st["graphs"])
	}
	if st["hits"] < 2 {
		t.Fatalf("hits = %v, want >= 2", st["hits"])
	}
	if st["sections"] <= 0 || st["mapped_bytes"] < 0 {
		t.Fatalf("implausible section/byte gauges: %v", st)
	}
	if st["errors"] != 0 || st["misses"] != 0 {
		t.Fatalf("unexpected errors/misses: %v", st)
	}
}

// TestGraphdirDirectednessMismatch: the file header decides how the
// graph was converted; a request for the other orientation must fall
// back to parsing the body (a miss, never a wrong answer).
func TestGraphdirDirectednessMismatch(t *testing.T) {
	body := encodeGraph(t, testGraph(t, 120), "csv").Bytes()
	_, ts, dir := newGraphdirServer(t)
	convertBody(t, dir, body, false) // undirected twin

	status, resp := postBackbone(t, ts.URL, body, "?method=nc&directed=1")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, resp)
	}
	st := mmapStats(t, ts.URL)
	if st["hits"] != 0 {
		t.Fatalf("hits = %v, want 0 (orientation mismatch)", st["hits"])
	}
	if st["misses"] < 1 {
		t.Fatalf("misses = %v, want >= 1", st["misses"])
	}
	// The matching orientation still rides the mapping.
	if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
		t.Fatalf("undirected request: status %d: %s", status, resp)
	}
	if st := mmapStats(t, ts.URL); st["hits"] != 1 {
		t.Fatalf("hits = %v after matching request, want 1", st["hits"])
	}
}

// TestGraphdirCorruptFileFallsBack: an unreadable .bbg must not fail
// the request — the daemon parses the body it already holds, counts
// the error, and remembers the verdict instead of re-opening the file
// on every request.
func TestGraphdirCorruptFileFallsBack(t *testing.T) {
	body := encodeGraph(t, testGraph(t, 80), "csv").Bytes()
	_, ts, dir := newGraphdirServer(t)
	path := convertBody(t, dir, body, false)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
			t.Fatalf("post %d: status %d: %s", i, status, resp)
		}
	}
	st := mmapStats(t, ts.URL)
	if st["errors"] != 1 {
		t.Fatalf("errors = %v, want exactly 1 (failed load is memoized)", st["errors"])
	}
	if st["hits"] != 0 || st["graphs"] != 0 {
		t.Fatalf("corrupt file must not serve: %v", st)
	}
}

// TestGraphdirCorruptFileHealsOnReconvert: a memoized load failure is
// revalidated against the file's stat identity on later requests —
// once `backbone -convert` rewrites the file in place (its size or
// mtime moves), the next request retries the load and serves the
// mapping without a daemon restart. An unchanged corrupt file must
// stay one counted error, not one per request.
func TestGraphdirCorruptFileHealsOnReconvert(t *testing.T) {
	body := encodeGraph(t, testGraph(t, 80), "csv").Bytes()
	_, ts, dir := newGraphdirServer(t)
	path := convertBody(t, dir, body, false)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	// Two requests against the unchanged corrupt file: one counted
	// error, one stat-only revalidation.
	for i := 0; i < 2; i++ {
		if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
			t.Fatalf("corrupt post %d: status %d: %s", i, status, resp)
		}
	}
	if st := mmapStats(t, ts.URL); st["errors"] != 1 || st["graphs"] != 0 {
		t.Fatalf("stats before heal: %v, want 1 error and 0 graphs", st)
	}

	// Heal in place. Bump the mtime explicitly so the identity change
	// does not depend on filesystem timestamp granularity (the rewritten
	// file has the same size).
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	healed := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, healed, healed); err != nil {
		t.Fatal(err)
	}

	if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
		t.Fatalf("healed post: status %d: %s", status, resp)
	}
	st := mmapStats(t, ts.URL)
	if st["graphs"] != 1 || st["hits"] != 1 {
		t.Fatalf("stats after heal: %v, want the mapping loaded and hit", st)
	}
	if st["errors"] != 1 {
		t.Fatalf("errors = %v after heal, want still exactly 1", st["errors"])
	}
}

// TestGraphdirLateConversion: a digest with no file is a plain miss —
// and must be re-probed later, so converting a hot graph while the
// daemon runs starts paying off without a restart.
func TestGraphdirLateConversion(t *testing.T) {
	body := encodeGraph(t, testGraph(t, 80), "csv").Bytes()
	_, ts, dir := newGraphdirServer(t)

	if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
		t.Fatalf("pre-conversion: status %d: %s", status, resp)
	}
	if st := mmapStats(t, ts.URL); st["misses"] != 1 || st["graphs"] != 0 {
		t.Fatalf("pre-conversion stats: %v", st)
	}

	// The mmap probe runs before the graph LRU, so the already-cached
	// parse must not mask the newly converted file.
	convertBody(t, dir, body, false)

	if status, resp := postBackbone(t, ts.URL, body, "?method=nc"); status != http.StatusOK {
		t.Fatalf("post-conversion: status %d: %s", status, resp)
	}
	if st := mmapStats(t, ts.URL); st["hits"] != 1 || st["graphs"] != 1 {
		t.Fatalf("post-conversion stats: %v", st)
	}
}
