// Command backboned serves the backboning method registry over HTTP:
// network backboning as a service for clients that hold the edge lists.
//
// Usage:
//
//	backboned [-addr :8080] [-workers N] [-timeout 60s] [-max-body 256MiB]
//
// Endpoints:
//
//	GET  /methods    registered methods and parameter schemas as JSON
//	GET  /formats    registered edge-list formats as JSON
//	GET  /healthz    liveness probe
//	POST /backbone   extract a backbone from the request body's edge list
//	POST /score      per-edge significance table for the body's edge list
//
// The POST body is an edge list in any registered format (csv, tsv,
// ndjson; gzip accepted; format sniffed from content unless ?format=
// or the Content-Type says otherwise), or a JSON envelope carrying
// method, params and edges together. Method selection, parameters and
// pruning ride in the query string:
//
//	curl -s localhost:8080/methods | jq .
//	curl -s --data-binary @edges.csv 'localhost:8080/backbone?method=nc&delta=2.32'
//	curl -s --data-binary @edges.ndjson 'localhost:8080/backbone?method=df&top=500&outformat=ndjson'
//	curl -s --data-binary @edges.csv 'localhost:8080/score?method=nc&response=json' | jq .
//
// Scoring runs inside a bounded worker pool (-workers slots; excess
// requests queue until a slot frees or their context expires) under a
// per-request timeout (-timeout), and request cancellation propagates
// into the scoring loops via the context-aware pipeline: a disconnected
// client stops in-flight work within one checkpoint range. SIGINT and
// SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent scoring requests")
		timeout = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		maxBody = flag.Int64("max-body", 256<<20, "maximum request body size in bytes")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "backboned: ", log.LstdFlags)
	s := newServer(*workers, *timeout, *maxBody, logger.Printf)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, %v timeout)", *addr, *workers, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "backboned: bye")
	}
}
