// Command backboned serves the backboning method registry over HTTP:
// network backboning as a service for clients that hold the edge lists.
//
// Usage:
//
//	backboned [-addr :8080] [-workers N] [-timeout 60s] [-max-body 256MiB]
//	          [-graph-cache-mb 256] [-score-cache-mb 128] [-pprof addr]
//
// Endpoints:
//
//	GET  /methods    registered methods and parameter schemas as JSON
//	GET  /formats    registered edge-list formats as JSON
//	GET  /healthz    liveness probe
//	GET  /statsz     uptime, request, cache and evaluate counters as JSON
//	POST /backbone   extract a backbone from the request body's edge list
//	POST /score      per-edge significance table for the body's edge list
//	POST /evaluate   grade every method on the body's edge list (JSON report)
//
// The POST body is an edge list in any registered format (csv, tsv,
// ndjson; gzip accepted; format sniffed from content unless ?format=
// or the Content-Type says otherwise), or a JSON envelope carrying
// method, params and edges together. Method selection, parameters and
// pruning ride in the query string:
//
//	curl -s localhost:8080/methods | jq .
//	curl -s --data-binary @edges.csv 'localhost:8080/backbone?method=nc&delta=2.32'
//	curl -s --data-binary @edges.ndjson 'localhost:8080/backbone?method=df&top=500&outformat=ndjson'
//	curl -s --data-binary @edges.csv 'localhost:8080/score?method=nc&response=json' | jq .
//
// Scoring runs inside a bounded worker pool (-workers slots; excess
// requests queue until a slot frees or their context expires) under a
// per-request timeout (-timeout), and request cancellation propagates
// into the scoring loops via the context-aware pipeline: a disconnected
// client stops in-flight work within one checkpoint range. SIGINT and
// SIGTERM drain in-flight requests before exiting.
//
// Request bodies are content-addressed: parsed graphs and per-method
// score tables are memoized in size-bounded LRU caches
// (-graph-cache-mb / -score-cache-mb, 0 disables), with concurrent
// identical requests de-duplicated in flight. A repeated body skips
// parsing; a repeated (body, method) pair skips scoring too, whatever
// its delta/alpha/top parameters — responses say which via the
// X-Backbone-Cache: hit|miss header, and GET /statsz exposes the
// counters. POST /evaluate rides the same caches per method: once a
// body's tables are cached (by earlier /backbone, /score or /evaluate
// calls), re-evaluating it returns the full multi-method report
// without scoring a single edge. -pprof starts net/http/pprof on a
// side listener for production profiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent scoring requests")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		maxBody    = flag.Int64("max-body", 256<<20, "maximum request body size in bytes")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		graphCache = flag.Int64("graph-cache-mb", 256, "parsed-graph cache budget in MiB (0 disables)")
		scoreCache = flag.Int64("score-cache-mb", 128, "score-table cache budget in MiB (0 disables)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this side address (empty disables)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "backboned: ", log.LstdFlags)
	s := newServer(serverConfig{
		workers:         *workers,
		timeout:         *timeout,
		maxBody:         *maxBody,
		graphCacheBytes: *graphCache << 20,
		scoreCacheBytes: *scoreCache << 20,
		logf:            logger.Printf,
	})
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			// nil handler = DefaultServeMux, where net/http/pprof
			// registered; the main server's mux never exposes it.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, %v timeout)", *addr, *workers, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "backboned: bye")
	}
}
