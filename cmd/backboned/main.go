// Command backboned serves the backboning method registry over HTTP:
// network backboning as a service for clients that hold the edge lists.
//
// Usage:
//
//	backboned [-addr :8080] [-workers N] [-timeout 60s] [-max-body 256MiB]
//	          [-graph-cache-mb 256] [-score-cache-mb 128] [-graphdir dir]
//	          [-max-sessions 256] [-pprof addr]
//	          [-peers host:port,... -self host:port] [-peer-timeout 10s]
//	          [-chaos spec]
//
// Endpoints:
//
//	GET  /methods    registered methods and parameter schemas as JSON
//	GET  /formats    registered edge-list formats as JSON
//	GET  /healthz    liveness probe (200 until the process exits)
//	GET  /readyz     routability probe (503 once SIGTERM drain begins)
//	GET  /statsz     uptime, request, cache, evaluate, session and fleet counters as JSON
//	GET  /metricsz   the same counters in Prometheus text exposition format
//	POST /backbone   extract a backbone from the request body's edge list
//	POST /score      per-edge significance table for the body's edge list
//	POST /evaluate   grade every method on the body's edge list (JSON report)
//	POST /session    open an incremental session over the body's edge list
//	POST /session/{id}/update      batched edge upserts/deletes into a session
//	GET  /session/{id}/backbone    backbone of the session's current edge set
//	GET  /session/{id}/score       score table of the session's current edge set
//	DELETE /session/{id}           close a session
//
// The POST body is an edge list in any registered format (csv, tsv,
// ndjson; gzip accepted; format sniffed from content unless ?format=
// or the Content-Type says otherwise), or a JSON envelope carrying
// method, params and edges together. Method selection, parameters and
// pruning ride in the query string:
//
//	curl -s localhost:8080/methods | jq .
//	curl -s --data-binary @edges.csv 'localhost:8080/backbone?method=nc&delta=2.32'
//	curl -s --data-binary @edges.ndjson 'localhost:8080/backbone?method=df&top=500&outformat=ndjson'
//	curl -s --data-binary @edges.csv 'localhost:8080/score?method=nc&response=json' | jq .
//
// Scoring runs behind adaptive admission control (-workers is the hard
// concurrency cap; -admission=static pins the limit there instead of
// letting AIMD adapt it to observed scoring latency). Requests whose
// score tables are already cached take a fast priority lane; cold
// scoring queues in a cold lane with one slot reserved for fast work.
// Excess requests queue until a slot frees or their remaining budget
// cannot cover the method's observed p90 cost — then they are shed
// early with 503 and a Retry-After computed from queue depth. Requests
// may carry X-Backbone-Deadline (remaining budget in milliseconds); an
// already-spent budget is refused with 504 before any work runs. The
// per-request timeout (-timeout) still bounds everything, and request
// cancellation propagates into the scoring loops via the context-aware
// pipeline: a disconnected client stops in-flight work within one
// checkpoint range. SIGINT and SIGTERM drain in-flight requests before
// exiting.
//
// Request bodies are content-addressed: parsed graphs and per-method
// score tables are memoized in size-bounded LRU caches
// (-graph-cache-mb / -score-cache-mb, 0 disables), with concurrent
// identical requests de-duplicated in flight. A repeated body skips
// parsing; a repeated (body, method) pair skips scoring too, whatever
// its delta/alpha/top parameters — responses say which via the
// X-Backbone-Cache: hit|miss header, and GET /statsz exposes the
// counters. POST /evaluate rides the same caches per method: once a
// body's tables are cached (by earlier /backbone, /score or /evaluate
// calls), re-evaluating it returns the full multi-method report
// without scoring a single edge. -pprof starts net/http/pprof on a
// side listener for production profiling.
//
// -graphdir names a directory of pre-converted binary graphs
// (produced by `backbone -convert -graphdir dir edges.csv`): each file
// is <sha256-of-the-edge-list>.bbg, so when a request body's digest
// names one, the daemon memory-maps the graph instead of parsing the
// body — cold-start cost becomes independent of graph size, and
// graphs larger than the LRU budget (or than RAM) serve straight from
// the page cache. Mapped graphs live for the process; GET /statsz
// reports hit/miss/load counters under "mmap".
//
// Fleet mode (-peers with -self) shards the content-addressed caches
// across N daemons: each request body is routed to its owning peer by
// rendezvous hash of the body's sha256 digest, so every re-post of a
// network lands on the peer whose caches already hold it. Forwards
// carry per-attempt timeouts (-peer-timeout), capped-exponential-
// backoff retries with full jitter, and per-peer circuit breakers;
// when the owner cannot answer, the receiving peer computes the result
// itself and stamps X-Backbone-Degraded — peer loss costs cache
// locality, never correctness. Every peer runs the same flags with the
// same -peers list (order irrelevant) and its own -self.
//
// Sessions serve live incremental updates: POST /session parses a body
// once and pins a delta overlay over the parsed graph; POST
// /session/{id}/update applies batched edge upserts/deletes
// ({"updates":[{"src":"a","dst":"b","weight":2}]}, weight 0 deletes);
// GET /session/{id}/backbone|/score answer for the updated edge set by
// re-scoring only the rows the updates could have changed — the result
// is bit-identical to re-posting the whole modified edge list, at a
// small fraction of the cost. Sessions are LRU-bounded by
// -max-sessions. In fleet mode a session ID embeds the creating body's
// digest, pinning all session traffic to the body's rendezvous owner;
// an unreachable owner is a 503 (sessions never degrade to a peer that
// does not hold the delta).
//
// -chaos injects faults into the local serving path for resilience
// testing: "error=0.2,latency=50ms,latency-rate=0.5,partial=0.1"
// injects errors, latency and truncated responses at those rates.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/resilient"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "maximum concurrent scoring requests (admission hard cap)")
		admitMode  = flag.String("admission", "adaptive", "admission control: adaptive (AIMD limit under -workers) or static (fixed at -workers)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		maxBody    = flag.Int64("max-body", 256<<20, "maximum request body size in bytes")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
		graphCache = flag.Int64("graph-cache-mb", 256, "parsed-graph cache budget in MiB (0 disables)")
		scoreCache = flag.Int64("score-cache-mb", 128, "score-table cache budget in MiB (0 disables)")
		graphDir   = flag.String("graphdir", "", "directory of <sha256>.bbg files to mmap instead of parsing matching request bodies")
		maxSess    = flag.Int("max-sessions", defaultMaxSessions, "maximum resident incremental sessions (LRU-evicted past this)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this side address (empty disables)")
		peersFlag  = flag.String("peers", "", "comma-separated fleet membership (host:port,...); empty = single-node")
		selfAddr   = flag.String("self", "", "this daemon's advertised address within -peers")
		peerTO     = flag.Duration("peer-timeout", 10*time.Second, "per-attempt timeout for peer forwards")
		chaosSpec  = flag.String("chaos", "", `fault injection spec, e.g. "error=0.2,latency=50ms,partial=0.1" (dev/testing)`)
	)
	flag.Parse()

	logger := log.New(os.Stderr, "backboned: ", log.LstdFlags)

	var staticAdmission bool
	switch *admitMode {
	case "adaptive":
	case "static":
		staticAdmission = true
	default:
		logger.Fatalf("-admission: unknown mode %q (want adaptive or static)", *admitMode)
	}

	var fl *fleet.Fleet
	if *peersFlag != "" || *selfAddr != "" {
		var err error
		fl, err = fleet.New(fleet.Config{
			Self:           *selfAddr,
			Peers:          strings.Split(*peersFlag, ","),
			AttemptTimeout: *peerTO,
			Logf:           logger.Printf,
		})
		if err != nil {
			logger.Fatalf("fleet: %v (need -self and a -peers list)", err)
		}
		logger.Printf("fleet mode: self=%s members=%v", fl.Self(), fl.Members())
	}
	fault, err := resilient.ParseFaultSpec(*chaosSpec)
	if err != nil {
		logger.Fatalf("-chaos: %v", err)
	}
	if fault != nil {
		logger.Printf("CHAOS MODE: injecting faults (%s) — not for production", *chaosSpec)
	}

	s := newServer(serverConfig{
		workers:         *workers,
		staticAdmission: staticAdmission,
		timeout:         *timeout,
		maxBody:         *maxBody,
		graphCacheBytes: *graphCache << 20,
		scoreCacheBytes: *scoreCache << 20,
		graphDir:        *graphDir,
		maxSessions:     *maxSess,
		fleet:           fl,
		fault:           fault,
		logf:            logger.Printf,
	})
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			// nil handler = DefaultServeMux, where net/http/pprof
			// registered; the main server's mux never exposes it.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, %v timeout)", *addr, *workers, *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
		stop()
		// Flip /readyz to 503 first so load balancers and fleet peers
		// stop routing here while in-flight requests drain.
		s.beginDrain()
		logger.Printf("shutting down, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "backboned: bye")
	}
}
