package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/admission"
	"repro/internal/binfmt"
	"repro/internal/cache"
	"repro/internal/filter"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/resilient"
)

// statusClientClosedRequest is the nginx-convention status logged when
// the client went away before the pipeline finished.
const statusClientClosedRequest = 499

// graphKey content-addresses one parsed request body: the hash of the
// raw bytes plus everything else that shapes the resulting graph (the
// resolved input format or sniff/envelope mode, and directedness).
type graphKey struct {
	sum      [sha256.Size]byte
	mode     string // format name, "sniff", or "envelope"
	directed bool
}

// scoreKey addresses one method's significance table for one parsed
// graph. Method parameters are deliberately absent: they only move
// pruning thresholds, never the table, so a client re-posting the same
// network with a different delta scores nothing at all.
type scoreKey struct {
	g      graphKey
	method string
}

// serverConfig bundles the daemon's run controls.
type serverConfig struct {
	workers int           // hard concurrency cap (admission MaxConcurrent)
	timeout time.Duration // per-request wall clock budget
	maxBody int64
	// staticAdmission pins the concurrency limit at workers instead of
	// adapting it (-admission=static); lanes and deadline-aware
	// admission still apply.
	staticAdmission bool
	// admissionCfg, when non-nil, overrides the derived admission
	// config entirely (tests tune cooldowns, queues and clocks);
	// MaxConcurrent defaults to workers if left zero.
	admissionCfg *admission.Config
	// graphCacheBytes / scoreCacheBytes bound the content-addressed
	// caches; 0 disables one.
	graphCacheBytes int64
	scoreCacheBytes int64
	// graphDir, when non-empty, names a directory of pre-converted
	// <sha256>.bbg files (see backbone -convert -graphdir): a request
	// body whose digest names one is memory-mapped, not parsed.
	graphDir string
	// fleet, when non-nil, routes each scoring request body to its
	// owning peer by content digest and falls back to local execution
	// when that peer cannot answer.
	fleet *fleet.Fleet
	// fault, when non-nil, chaos-injects errors/latency/truncation
	// into the local serving path (-chaos and the fault-injection
	// tests).
	fault *resilient.Fault
	// maxSessions bounds resident incremental sessions (POST /session);
	// 0 selects defaultMaxSessions. The least-recently-used session is
	// evicted past the bound.
	maxSessions int
	logf        func(format string, args ...any)
}

// server is the backboned HTTP front end: a mux over the method
// registry plus the shared run controls every request goes through —
// the bounded worker pool, the per-request timeout, the typed-error to
// status-code mapping, and the content-addressed caches that let
// repeated identical bodies skip parsing and scoring.
type server struct {
	mux *http.ServeMux
	// limiter is the adaptive, lane-aware worker-pool admission path
	// (internal/admission): AIMD concurrency limit under the -workers
	// hard cap, deadline-aware queueing, fast/cold priority lanes.
	limiter *admission.Limiter
	timeout time.Duration // per-request wall clock budget
	maxBody int64
	logf    func(format string, args ...any)
	// Deadline accounting: expiredArrivals counts requests whose
	// propagated budget (X-Backbone-Deadline) was already spent on
	// arrival; expiredBeforeScoring counts scoring runs refused at the
	// last gate because the deadline passed while queued or parsing —
	// CPU the admission path saved. deadlineViolations counts scoring
	// runs that would have *started* past their deadline without the
	// gate noticing earlier; it is the runtime assertion the overload
	// e2e consumes and must stay zero.
	expiredArrivals      atomic.Uint64
	expiredBeforeScoring atomic.Uint64
	deadlineViolations   atomic.Uint64
	// graphs memoizes parsed request bodies; scores memoizes per-method
	// significance tables. Either may be nil (disabled) — the nil LRU
	// computes without caching.
	graphs   *cache.LRU[graphKey, *repro.Graph]
	scores   *cache.LRU[scoreKey, *repro.Scores]
	start    time.Time
	requests atomic.Uint64
	// evalRequests counts POST /evaluate calls; evalCacheSkips the
	// method-scoring runs those calls skipped thanks to the
	// content-addressed score cache (one per cached table).
	evalRequests   atomic.Uint64
	evalCacheSkips atomic.Uint64
	// graphDir is the -graphdir root ("" disables the mmap fast path);
	// mmapFiles memoizes one load attempt per body digest — mapped
	// graphs are shared by every request for the life of the process
	// and never closed, so handing them out without refcounting is safe.
	graphDir  string
	mmapMu    sync.Mutex
	mmapFiles map[[sha256.Size]byte]*mmapEntry
	// mmap fast-path counters: hits served a mapped graph, loads opened
	// a file, misses found no (or a directedness-mismatched) file,
	// errors hit an unreadable/corrupt one. sections/bytes gauge what
	// the successful loads keep mapped.
	mmapHits, mmapLoads, mmapMisses, mmapErrors atomic.Uint64
	mmapSections, mmapBytes                     atomic.Int64
	// fleet is nil in single-node mode. fault is nil without -chaos.
	fleet *fleet.Fleet
	fault *resilient.Fault
	// Incremental sessions (POST /session and friends, session.go):
	// sessMu guards the map and each session's lastUsed recency stamp.
	sessMu      sync.Mutex
	sessions    map[string]*session
	maxSessions int
	// Session counters. sessionInvalidations is the delta-invalidation
	// count the tentpole asks for: how many per-session score tables an
	// update stream dirtied (each will re-score only its dirty rows on
	// the next read). sessionRescoredRows totals those dirty rows;
	// sessionFullRescores counts reads that re-scored the whole table
	// (first touch, or a method with a global dirtiness signature).
	// sessionOwnerMiss counts 503s where the session's rendezvous owner
	// was unreachable — stateful routes never degrade to local.
	sessionCreates       atomic.Uint64
	sessionUpdates       atomic.Uint64
	sessionReads         atomic.Uint64
	sessionDeletes       atomic.Uint64
	sessionEvictions     atomic.Uint64
	sessionInvalidations atomic.Uint64
	sessionRescoredRows  atomic.Uint64
	sessionFullRescores  atomic.Uint64
	sessionOwnerMiss     atomic.Uint64
	// draining flips when graceful shutdown begins: /readyz turns 503
	// so load balancers and peers stop routing here, while /healthz
	// stays 200 (the process is alive, just leaving).
	draining atomic.Bool
	// onError observes every request failure after status mapping; a
	// test hook, nil outside tests.
	onError func(status int, err error)
}

func newServer(cfg serverConfig) *server {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	acfg := admission.Config{MaxConcurrent: cfg.workers, Adaptive: !cfg.staticAdmission}
	if cfg.admissionCfg != nil {
		acfg = *cfg.admissionCfg
		if acfg.MaxConcurrent == 0 {
			acfg.MaxConcurrent = cfg.workers
		}
	}
	limiter, err := admission.NewLimiter(acfg)
	if err != nil {
		// Unreachable: workers is floored to 1 above and the override
		// path fills MaxConcurrent; fail loud rather than serve unbounded.
		panic(err)
	}
	s := &server{
		mux:       http.NewServeMux(),
		limiter:   limiter,
		timeout:   cfg.timeout,
		maxBody:   cfg.maxBody,
		logf:      cfg.logf,
		graphs:    cache.New[graphKey, *repro.Graph](cfg.graphCacheBytes),
		scores:    cache.New[scoreKey, *repro.Scores](cfg.scoreCacheBytes),
		graphDir:  cfg.graphDir,
		mmapFiles: map[[sha256.Size]byte]*mmapEntry{},
		fleet:     cfg.fleet,
		fault:     cfg.fault,
		start:     time.Now(),

		sessions:    map[string]*session{},
		maxSessions: cfg.maxSessions,
	}
	if s.maxSessions <= 0 {
		s.maxSessions = defaultMaxSessions
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/methods", s.handleMethods)
	s.mux.HandleFunc("/formats", s.handleFormats)
	s.mux.HandleFunc("/backbone", s.handleRun)
	s.mux.HandleFunc("/score", s.handleRun)
	s.mux.HandleFunc("/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /session/{id}/update", s.handleSessionUpdate)
	s.mux.HandleFunc("GET /session/{id}/backbone", func(w http.ResponseWriter, r *http.Request) {
		s.handleSessionRead(w, r, false)
	})
	s.mux.HandleFunc("GET /session/{id}/score", func(w http.ResponseWriter, r *http.Request) {
		s.handleSessionRead(w, r, true)
	})
	s.mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	return s
}

// graphCost approximates a parsed graph's resident bytes: canonical
// edges, CSR arcs, strengths, labels and the label index.
func graphCost(g *repro.Graph) int64 {
	cost := int64(g.NumEdges())*56 + int64(g.NumNodes())*28 + 256
	for _, l := range g.Labels() {
		cost += int64(len(l)) * 2 // label storage + index key
	}
	return cost
}

// scoresCost approximates a significance table's resident bytes. The
// graph it references is accounted by the graph cache.
func scoresCost(sc *repro.Scores) int64 {
	cost := int64(len(sc.Score))*8 + 128
	for _, col := range sc.Aux {
		cost += int64(len(col)) * 8
	}
	return cost
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// fail writes a JSON error body with the status implied by the error's
// type and notifies the test hook.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	if s.onError != nil {
		s.onError(status, err)
	}
	s.logf("error: %d %v", status, err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// statusFor maps pipeline errors onto HTTP statuses: the exported
// sentinel/typed errors are caller mistakes (400), context expiry is a
// timeout (504), a vanished client is 499, anything else is a 500.
func statusFor(err error) int {
	var pe *repro.ParamError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, repro.ErrUnknownMethod),
		errors.Is(err, repro.ErrUnknownParam),
		errors.Is(err, repro.ErrNoScorer),
		errors.Is(err, repro.ErrUnknownFormat),
		errors.Is(err, repro.ErrLineTooLong),
		errors.As(err, &pe):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `backboned — network backboning as a service

GET  /methods            registered methods and their parameter schemas (JSON)
GET  /formats            registered edge-list formats (JSON)
GET  /healthz            liveness probe (200 until the process exits)
GET  /readyz             routability probe (503 once SIGTERM drain begins)
GET  /statsz             uptime, request, cache, admission, session and fleet counters (JSON)
GET  /metricsz           the same counters in Prometheus text exposition format
POST /backbone           extract a backbone from the edge list in the body
POST /score              per-edge significance table for the body's edge list
POST /evaluate           grade every method on the body's edge list (JSON report)
POST /session            open an incremental session over the body's edge list
POST /session/{id}/update   apply batched edge upserts/deletes to a session
GET  /session/{id}/backbone backbone of the session's current edge set (incremental)
GET  /session/{id}/score    score table of the session's current edge set (incremental)
DELETE /session/{id}        close a session

Query parameters for POST: method (default nc), any method parameter
(delta, alpha, ...), top, frac, parallel, directed, format (input),
outformat (csv|tsv|ndjson), response=json. The body is an edge list in
any registered format (gzip accepted, format sniffed), or a JSON
envelope {"method":..., "params":{...}, "edges":[{"src":..,"dst":..,"weight":..}]}.

POST /evaluate compares every registered method (or ?methods=nc,df,...)
at one common backbone size (?top= / ?frac=, default the top 10% of
edges) under the paper's criteria and returns the scored ranking as
JSON; undefined criteria (NaN) encode as null.

Responses carry X-Backbone-Cache: "hit" when a content-addressed cache
match let the request skip parsing and scoring, else "miss". Re-posting
the same body with different method parameters (delta, alpha, top, ...)
is always a hit: parameters move thresholds, never the score table.
/evaluate reports "hit" when every method's table was cached — the
whole comparison ran without scoring a single edge.

Admission is adaptive (AIMD under the -workers hard cap) with two
priority lanes: requests whose score tables are already cached take the
fast lane; cold scoring queues behind a reserved-slot cold lane. A 503
response carries a Retry-After computed from current queue depth and
observed latency. Requests may carry X-Backbone-Deadline (remaining
budget, integer milliseconds); an exhausted budget is refused with 504
before any work runs, and fleet forwards re-stamp the header minus the
estimated transit cost per attempt.

Sessions make updates cheap: POST /session parses the body once and
answers with a session ID; POST /session/{id}/update applies batched
edge upserts/deletes ({"updates":[{"src":"a","dst":"b","weight":2}]},
weight 0 deletes); GET /session/{id}/backbone|/score answer for the
updated edge set by re-scoring only the rows the updates could have
changed — bit-identical to re-posting the whole modified edge list,
without re-parsing, rebuilding or re-scoring it. Responses carry
X-Backbone-Rescored (rows re-scored by this read) next to the usual
headers. Sessions are bounded by -max-sessions (LRU-evicted past it)
and closed with DELETE /session/{id}.

In fleet mode (-peers/-self) each request body is routed to its owning
peer by content digest; responses carry X-Backbone-Served-By (the peer
that computed the answer) and, when the owner was unreachable and this
peer computed the result itself, X-Backbone-Degraded with the reason
(peer-unavailable | breaker-open). Session IDs embed the creating
body's digest, so session traffic pins to the body's rendezvous owner;
because only the owner holds the session state, an unreachable owner
is a 503 (retry later), never a degraded local answer.
`)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is the routability probe: 200 while the daemon accepts
// new work, 503 the moment SIGTERM drain begins — so a load balancer
// or fleet peer stops sending traffic to a process that is on its way
// out, while /healthz keeps answering 200 (alive, not ready).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// beginDrain flips /readyz to 503. Called once when graceful shutdown
// starts, before in-flight requests are drained.
func (s *server) beginDrain() { s.draining.Store(true) }

// paramJSON / methodJSON are the wire form of the registry schema.
type paramJSON struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Integer bool    `json:"integer,omitempty"`
	Desc    string  `json:"desc"`
}

type methodJSON struct {
	Name      string      `json:"name"`
	Title     string      `json:"title"`
	Desc      string      `json:"desc"`
	Params    []paramJSON `json:"params"`
	CanScore  bool        `json:"can_score"`
	FixedSize bool        `json:"fixed_size,omitempty"`
	Parallel  bool        `json:"parallel,omitempty"`
}

func (s *server) handleMethods(w http.ResponseWriter, r *http.Request) {
	var out []methodJSON
	for _, m := range repro.Methods() {
		mj := methodJSON{
			Name:      m.Name,
			Title:     m.Title,
			Desc:      m.Desc,
			Params:    []paramJSON{},
			CanScore:  m.CanScore(),
			FixedSize: m.FixedSize,
			Parallel:  m.ParallelScorer != nil,
		}
		for _, p := range m.Params {
			mj.Params = append(mj.Params, paramJSON{Name: p.Name, Default: p.Default, Integer: p.Integer, Desc: p.Desc})
		}
		out = append(out, mj)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

type formatJSON struct {
	Name    string   `json:"name"`
	Exts    []string `json:"exts"`
	Desc    string   `json:"desc"`
	Sniffed bool     `json:"sniffed"`
}

func (s *server) handleFormats(w http.ResponseWriter, r *http.Request) {
	var out []formatJSON
	for _, f := range repro.Formats() {
		out = append(out, formatJSON{Name: f.Name, Exts: f.Exts, Desc: f.Desc, Sniffed: f.Sniff != nil})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// runRequest is a parsed /backbone or /score request: the input graph
// (possibly served from the content-addressed cache under gkey), the
// selected method, and the pipeline options and response shaping
// derived from query parameters and (optionally) the JSON envelope.
type runRequest struct {
	g         *repro.Graph
	gkey      graphKey
	method    *repro.Method
	params    filter.Params // resolved-name overrides, for /score validation
	topSet    bool          // a top/frac pruning option is present
	parallel  bool
	opts      []repro.Option
	outFormat string
	asJSON    bool
}

// queryReserved are the query keys with fixed meanings; every other
// key must name a parameter of the selected method.
var queryReserved = map[string]bool{
	"method": true, "top": true, "frac": true, "parallel": true,
	"directed": true, "format": true, "outformat": true, "response": true,
}

// envelope is the JSON request body alternative to a raw edge list.
// Query parameters override envelope fields.
type envelope struct {
	Method   string             `json:"method"`
	Params   map[string]float64 `json:"params"`
	Top      *int               `json:"top"`
	Frac     *float64           `json:"frac"`
	Parallel bool               `json:"parallel"`
	Directed bool               `json:"directed"`
	Edges    []envelopeEdge     `json:"edges"`
}

type envelopeEdge struct {
	Src    any      `json:"src"`
	Dst    any      `json:"dst"`
	Weight *float64 `json:"weight"`
}

// contentTypeFormat maps common edge-list content types to registered
// format names; empty means sniff.
func contentTypeFormat(ct string) string {
	switch ct {
	case "text/csv":
		return "csv"
	case "text/tab-separated-values":
		return "tsv"
	case "application/x-ndjson", "application/ndjson", "application/jsonl":
		return "ndjson"
	}
	return ""
}

// parseStatus maps a parse-phase error to its HTTP status: context
// expiry keeps its dedicated codes (a cache follower can observe its
// own cancellation while waiting), everything else is a caller mistake.
func parseStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return statusFor(err)
	}
	return http.StatusBadRequest
}

// buildEnvelopeGraph constructs the graph carried inline in a JSON
// envelope.
func buildEnvelopeGraph(env *envelope, directed bool) (*repro.Graph, error) {
	b := repro.NewBuilder(directed)
	for i, e := range env.Edges {
		src, err := graph.JSONLabel(e.Src)
		if err != nil {
			return nil, fmt.Errorf("edges[%d].src: %v", i, err)
		}
		dst, err := graph.JSONLabel(e.Dst)
		if err != nil {
			return nil, fmt.Errorf("edges[%d].dst: %v", i, err)
		}
		if e.Weight == nil {
			return nil, fmt.Errorf("edges[%d]: missing weight", i)
		}
		if err := b.AddEdgeLabels(src, dst, *e.Weight); err != nil {
			return nil, fmt.Errorf("edges[%d]: %v", i, err)
		}
	}
	return b.Build(), nil
}

// mmapEntry memoizes one -graphdir load attempt for one body digest.
// The File reference keeps the mapping's owner reachable; the daemon
// never closes it (mapped graphs are shared across requests for the
// life of the process, and clean mapped pages are the kernel's to
// reclaim). A failed load records the file's stat identity at failure
// time so a later request can tell a healed file (re-converted in
// place: size or mtime moved) from the same corrupt bytes.
type mmapEntry struct {
	mu   sync.Mutex
	file *binfmt.File
	g    *repro.Graph
	// failed marks a load that errored on an existing file; failSize /
	// failTime are that file's stat identity when the load failed
	// (failSize -1 when even stat failed).
	failed   bool
	failSize int64
	failTime time.Time
}

// mmapGraph resolves a request-body digest against -graphdir: when
// <dir>/<hex-digest>.bbg exists and its directedness matches the
// request, the memory-mapped graph is returned and the body is never
// parsed. Each digest loads at most once, concurrent first requests
// included. A missing file is forgotten so a conversion that lands
// later is picked up. An unreadable or corrupt file is remembered as
// failed, but not forever: each later request re-stats the file and
// retries the load once the size or mtime moved, so re-running
// `backbone -convert` heals the entry without a daemon restart — while
// the unchanged corrupt file stays one counted error, not one per
// request. Either way the caller falls back to parsing the body it
// already holds — -graphdir is an accelerator, never a correctness
// dependency.
func (s *server) mmapGraph(sum [sha256.Size]byte, directed bool) *repro.Graph {
	if s.graphDir == "" {
		return nil
	}
	s.mmapMu.Lock()
	e, ok := s.mmapFiles[sum]
	if !ok {
		e = &mmapEntry{}
		s.mmapFiles[sum] = e
	}
	s.mmapMu.Unlock()

	e.mu.Lock()
	if e.g == nil {
		path := filepath.Join(s.graphDir, hex.EncodeToString(sum[:])+".bbg")
		attempt := true
		if e.failed {
			// Revalidate the memoized failure: only a file whose stat
			// identity changed (or vanished) is worth retrying.
			fi, err := os.Stat(path)
			attempt = err != nil || fi.Size() != e.failSize || !fi.ModTime().Equal(e.failTime)
		}
		if attempt {
			f, err := binfmt.Open(path)
			switch {
			case err == nil:
				e.file, e.g = f, f.Graph()
				e.failed = false
				s.mmapLoads.Add(1)
				s.mmapSections.Add(int64(f.Sections()))
				s.mmapBytes.Add(f.MappedBytes())
			case errors.Is(err, os.ErrNotExist):
				s.mmapMisses.Add(1)
				s.mmapMu.Lock()
				delete(s.mmapFiles, sum)
				s.mmapMu.Unlock()
				e.mu.Unlock()
				return nil
			default:
				s.mmapErrors.Add(1)
				e.failed = true
				e.failSize, e.failTime = -1, time.Time{}
				if fi, statErr := os.Stat(path); statErr == nil {
					e.failSize, e.failTime = fi.Size(), fi.ModTime()
				}
				s.logf("graphdir: %v (parsing the body instead)", err)
			}
		}
	}
	g := e.g
	e.mu.Unlock()
	if g == nil {
		return nil
	}
	if g.Directed() != directed {
		// The file header records how the graph was converted; a request
		// asking for the other orientation parses the body as usual.
		s.mmapMisses.Add(1)
		return nil
	}
	s.mmapHits.Add(1)
	return g
}

// resolveGraph turns a fully read request body into a parsed graph
// through the content-addressed cache: identical bodies parse once,
// concurrent identical bodies parse once between them. It handles both
// raw edge lists (format from ?format=, the Content-Type, or sniffed)
// and JSON envelopes; outFormat is the format name the response should
// mirror ("" when sniffed or enveloped). The int return is the HTTP
// status when err != nil.
func (s *server) resolveGraph(ctx context.Context, r *http.Request, body []byte) (g *repro.Graph, gkey graphKey, env *envelope, outFormat string, status int, err error) {
	q := r.URL.Query()
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}

	if ct == "application/json" {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.UseNumber()
		env = &envelope{}
		if err := dec.Decode(env); err != nil {
			return nil, gkey, nil, "", http.StatusBadRequest, fmt.Errorf("bad JSON envelope: %v", err)
		}
		if len(env.Edges) == 0 {
			return nil, gkey, nil, "", http.StatusBadRequest, fmt.Errorf("JSON envelope has no edges")
		}
		directed := env.Directed
		if v := q.Get("directed"); v != "" {
			directed = v == "true" || v == "1"
		}
		gkey = graphKey{sum: sha256.Sum256(body), mode: "envelope", directed: directed}
		g, _, err := s.graphs.Do(ctx, gkey, func() (*repro.Graph, int64, error) {
			g, err := buildEnvelopeGraph(env, directed)
			if err != nil {
				return nil, 0, err
			}
			return g, graphCost(g), nil
		})
		if err != nil {
			return nil, gkey, nil, "", parseStatus(err), err
		}
		return g, gkey, env, "", 0, nil
	}

	directed := q.Get("directed") == "true" || q.Get("directed") == "1"
	inFormat := q.Get("format")
	if inFormat == "" {
		inFormat = contentTypeFormat(ct)
	}
	mode := "sniff"
	readOpts := []repro.IOOption{repro.WithDirected(directed)}
	if inFormat != "" {
		f, err := repro.LookupFormat(inFormat)
		if err != nil {
			return nil, gkey, nil, "", http.StatusBadRequest, err
		}
		outFormat = f.Name // default response format mirrors input
		readOpts = append(readOpts, repro.WithFormat(f.Name))
		mode = f.Name
	}
	gkey = graphKey{sum: sha256.Sum256(body), mode: mode, directed: directed}
	// -graphdir fast path: a pre-converted binary twin of this body is
	// memory-mapped instead of parsed (and instead of occupying LRU
	// budget — the mapping is shared and the page cache owns the bytes).
	if mg := s.mmapGraph(gkey.sum, directed); mg != nil {
		return mg, gkey, nil, outFormat, 0, nil
	}
	g, _, err = s.graphs.Do(ctx, gkey, func() (*repro.Graph, int64, error) {
		g, err := repro.ReadGraph(bytes.NewReader(body), readOpts...)
		if err != nil {
			return nil, 0, fmt.Errorf("bad edge list: %w", err)
		}
		return g, graphCost(g), nil
	})
	if err != nil {
		return nil, gkey, nil, "", parseStatus(err), err
	}
	return g, gkey, nil, outFormat, 0, nil
}

// parseRun turns the HTTP request (body already read in full) into a
// runRequest: the graph via resolveGraph, then method selection,
// parameters and response shaping via parseRunOptions. The int return
// is the HTTP status when err != nil.
func (s *server) parseRun(ctx context.Context, r *http.Request, body []byte) (*runRequest, int, error) {
	req := &runRequest{}
	g, gkey, env, outFormat, status, err := s.resolveGraph(ctx, r, body)
	if err != nil {
		return nil, status, err
	}
	req.g, req.gkey, req.outFormat = g, gkey, outFormat
	if status, err := s.parseRunOptions(r, env, req); err != nil {
		return nil, status, err
	}
	return req, 0, nil
}

// parseRunOptions fills a runRequest's method, parameters, pruning and
// response shaping from the query string (and, when the body was a
// JSON envelope, the envelope's fields — query overrides envelope).
// Shared between the stateless scoring endpoints (after resolveGraph)
// and the session read endpoints (whose graph lives in the session).
// The int return is the HTTP status when err != nil.
func (s *server) parseRunOptions(r *http.Request, env *envelope, req *runRequest) (int, error) {
	q := r.URL.Query()

	// Method selection and parameters: query overrides envelope.
	methodName := "nc"
	if env != nil && env.Method != "" {
		methodName = env.Method
	}
	if v := q.Get("method"); v != "" {
		methodName = v
	}
	m, err := repro.LookupMethod(methodName)
	if err != nil {
		return http.StatusBadRequest, err
	}
	req.method = m
	req.params = filter.Params{}
	req.opts = append(req.opts, repro.WithMethod(m.Name))
	if env != nil {
		for name, v := range env.Params {
			req.params[name] = v
			req.opts = append(req.opts, repro.WithParam(name, v))
		}
		// Envelope pruning applies only when the query carries none:
		// "query overrides envelope" must hold across option kinds, or
		// an envelope "top" would silently beat a query ?frac= (the
		// pipeline prefers topK whenever both are set).
		if q.Get("top") == "" && q.Get("frac") == "" {
			if env.Top != nil {
				req.topSet = true
				req.opts = append(req.opts, repro.WithTopK(*env.Top))
			}
			if env.Frac != nil {
				req.topSet = true
				req.opts = append(req.opts, repro.WithTopFraction(*env.Frac))
			}
		}
		if env.Parallel {
			req.parallel = true
			req.opts = append(req.opts, repro.WithParallel())
		}
	}
	for name, vals := range q {
		if queryReserved[name] {
			continue
		}
		if _, ok := m.Param(name); !ok {
			return http.StatusBadRequest, &repro.ParamError{
				Method: m.Name, Param: name,
				Reason: "unknown query parameter",
				Err:    repro.ErrUnknownParam,
			}
		}
		v, err := strconv.ParseFloat(vals[0], 64)
		if err != nil {
			return http.StatusBadRequest, &repro.ParamError{
				Method: m.Name, Param: name,
				Reason: fmt.Sprintf("not a number: %q", vals[0]),
			}
		}
		req.params[name] = v
		req.opts = append(req.opts, repro.WithParam(name, v))
	}
	if v := q.Get("top"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return http.StatusBadRequest, &repro.ParamError{Param: "top", Reason: fmt.Sprintf("not an integer: %q", v)}
		}
		req.topSet = true
		req.opts = append(req.opts, repro.WithTopK(k))
	}
	if v := q.Get("frac"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return http.StatusBadRequest, &repro.ParamError{Param: "frac", Reason: fmt.Sprintf("not a number: %q", v)}
		}
		req.topSet = true
		req.opts = append(req.opts, repro.WithTopFraction(f))
	}
	if v := q.Get("parallel"); v == "true" || v == "1" {
		req.parallel = true
		req.opts = append(req.opts, repro.WithParallel())
	}

	// Response shaping.
	if v := q.Get("outformat"); v != "" {
		f, err := repro.LookupFormat(v)
		if err != nil {
			return http.StatusBadRequest, err
		}
		req.outFormat = f.Name
	}
	if req.outFormat == "" {
		req.outFormat = "csv"
	}
	if q.Get("response") == "json" || strings.Contains(r.Header.Get("Accept"), "application/json") {
		req.asJSON = true
	}
	return 0, nil
}

// cachedScores resolves one method's significance table for a parsed
// body through the score cache with single-flight de-duplication:
// identical bodies with the same method score once, no matter how the
// method's parameters differ (they only move thresholds). Both
// /backbone and /evaluate ride this, so the two endpoints share one
// table per (body, method). The returned hit flag reports whether this
// call skipped scoring.
func (s *server) cachedScores(ctx context.Context, gkey graphKey, g *repro.Graph, method string, parallel bool) (*repro.Scores, bool, error) {
	key := scoreKey{g: gkey, method: method}
	return s.scores.Do(ctx, key, func() (*repro.Scores, int64, error) {
		if err := s.scoreGate(ctx); err != nil {
			return nil, 0, err
		}
		opts := []repro.Option{repro.WithMethod(method)}
		if parallel {
			opts = append(opts, repro.WithParallel())
		}
		sc, err := repro.ScoreContext(ctx, g, opts...)
		if err != nil {
			return nil, 0, err
		}
		return sc, scoresCost(sc), nil
	})
}

// intake is the first half of the scoring endpoints' front door: apply
// the per-request budget and read (and bound) the body. The budget is
// the smaller of the local -timeout and the propagated
// X-Backbone-Deadline header (remaining milliseconds, stamped by a
// forwarding peer or a deadline-aware client); a budget already spent
// upstream is answered 504 before any byte of work. On failure intake
// has already written the error response and returns ok == false; on
// success the caller must cancel with the request. The body is read
// before worker-pool admission — it is I/O-bound, and draining it lets
// the connection's background read detect a vanished client while the
// request queues for a slot.
func (s *server) intake(w http.ResponseWriter, r *http.Request) (ctx context.Context, cancel context.CancelFunc, body []byte, ok bool) {
	budget := s.timeout
	if v := r.Header.Get(fleet.DeadlineHeader); v != "" {
		ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		switch {
		case err != nil:
			// Garbage is ignored, not fatal: the header is advisory and
			// the local -timeout still bounds the request.
		case ms <= 0:
			s.expiredArrivals.Add(1)
			s.fail(w, http.StatusGatewayTimeout,
				fmt.Errorf("request budget already expired upstream (%s: %s)", fleet.DeadlineHeader, v))
			return nil, nil, nil, false
		default:
			if d := time.Duration(ms) * time.Millisecond; budget <= 0 || d < budget {
				budget = d
			}
		}
	}
	ctx, cancel = r.Context(), func() {}
	if budget > 0 {
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		defer cancel()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return nil, nil, nil, false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("read body: %v", err))
		return nil, nil, nil, false
	}
	return ctx, cancel, body, true
}

// acquire is the second half: admission into the adaptive worker pool
// (internal/admission) under the request's lane and latency cost key.
// A shed — queue full, queue wait expired, or a budget that cannot
// cover the observed p90 cost of the work ahead — is a 503 whose
// Retry-After is computed from queue depth; a budget already expired
// on arrival is a 504. On ok the caller MUST defer the ticket's
// Release immediately — a panicking handler must still return its
// slot, or the pool shrinks by one forever (regression-pinned by
// TestPanickingHandlerReleasesSlot).
func (s *server) acquire(ctx context.Context, w http.ResponseWriter, lane admission.Lane, costKey string) (*admission.Ticket, bool) {
	tk, err := s.limiter.Acquire(ctx, lane, costKey)
	if err == nil {
		return tk, true
	}
	var shed *admission.ShedError
	switch {
	case errors.As(err, &shed):
		w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfterSeconds()))
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("worker pool saturated: %w", err))
	case errors.Is(err, admission.ErrExpired):
		s.fail(w, http.StatusGatewayTimeout, err)
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
	return nil, false
}

// classifyRun picks the admission lane and latency cost key for a
// /backbone or /score request before any slot is held. Fast lane means
// the method's significance table is already cached for this exact
// body — serving is pruning plus serialization, no scoring — so such
// requests are never starved behind cold scoring work. (An mmap-served
// -graphdir body additionally skips parsing, but its first-touch
// scoring is still cold work; once its table is cached it rides the
// fast lane like any other hit.) The key derivation mirrors
// resolveGraph; envelope bodies classify conservatively (their method
// and directedness live in the unparsed JSON) and land in the cold
// lane unless the query spells them out.
func (s *server) classifyRun(r *http.Request, body []byte) (admission.Lane, string) {
	q := r.URL.Query()
	method := q.Get("method")
	if method == "" {
		method = "nc"
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	directed := q.Get("directed") == "true" || q.Get("directed") == "1"
	mode := "sniff"
	if ct == "application/json" {
		mode = "envelope"
	} else {
		inFormat := q.Get("format")
		if inFormat == "" {
			inFormat = contentTypeFormat(ct)
		}
		if inFormat != "" {
			if f, err := repro.LookupFormat(inFormat); err == nil {
				mode = f.Name
			}
		}
	}
	gkey := graphKey{sum: sha256.Sum256(body), mode: mode, directed: directed}
	if s.scores.Contains(scoreKey{g: gkey, method: method}) {
		return admission.Fast, "cached"
	}
	return admission.Cold, method
}

// classifyEvaluate is classifyRun for /evaluate: fast lane only when
// every selected method's table is cached, i.e. the whole comparison
// runs without scoring a single edge.
func (s *server) classifyEvaluate(r *http.Request, body []byte) (admission.Lane, string) {
	q := r.URL.Query()
	var methods []string
	switch {
	case q.Get("methods") != "":
		for _, name := range strings.Split(q.Get("methods"), ",") {
			if name = strings.TrimSpace(name); name != "" {
				methods = append(methods, name)
			}
		}
	case q.Get("method") != "":
		methods = []string{q.Get("method")}
	default:
		for _, m := range repro.Methods() {
			if !m.CanScore() {
				// An extract-only method has no cacheable table; the
				// comparison will run it cold.
				return admission.Cold, "evaluate"
			}
			methods = append(methods, m.Name)
		}
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	if ct == "application/json" || len(methods) == 0 {
		return admission.Cold, "evaluate"
	}
	directed := q.Get("directed") == "true" || q.Get("directed") == "1"
	mode := "sniff"
	inFormat := q.Get("format")
	if inFormat == "" {
		inFormat = contentTypeFormat(ct)
	}
	if inFormat != "" {
		if f, err := repro.LookupFormat(inFormat); err == nil {
			mode = f.Name
		}
	}
	gkey := graphKey{sum: sha256.Sum256(body), mode: mode, directed: directed}
	for _, name := range methods {
		if !s.scores.Contains(scoreKey{g: gkey, method: name}) {
			return admission.Cold, "evaluate"
		}
	}
	return admission.Fast, "cached"
}

// scoreGate is the last check before scoring work starts: a request
// whose deadline has already passed is refused here, whatever got it
// this far (queue wait, parse time, a follower joining a dead
// leader's flight). The violation counter records a past-deadline
// start the context machinery had not yet surfaced — the overload e2e
// asserts it stays zero.
func (s *server) scoreGate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		s.expiredBeforeScoring.Add(1)
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		s.deadlineViolations.Add(1)
		s.expiredBeforeScoring.Add(1)
		return context.DeadlineExceeded
	}
	return nil
}

// servedByHeader names the peer whose worker pool computed (or cached)
// the response; degradedHeader appears only when the body's owning
// peer could not answer and the receiving peer computed the result
// itself — correctness kept, cache locality lost.
const (
	servedByHeader = "X-Backbone-Served-By"
	degradedHeader = "X-Backbone-Degraded"
)

// routed applies the fleet routing policy to one scoring request. It
// returns true when the response has been fully written (the owning
// peer answered and was relayed, or routing failed terminally); false
// means the caller should execute locally — either because this peer
// owns the body, the request already made its one forwarding hop, or
// the owner is unavailable and the fleet degrades to local execution.
func (s *server) routed(ctx context.Context, w http.ResponseWriter, r *http.Request, body []byte) (handled bool) {
	if s.fleet == nil {
		return false
	}
	if r.Header.Get(fleet.ForwardedHeader) != "" {
		// Terminal hop: a peer already routed this request here; serve
		// it locally whatever our own ring says, so divergent
		// membership views cannot ping-pong a request.
		w.Header().Set(servedByHeader, s.fleet.Self())
		return false
	}
	d := fleet.Digest(sha256.Sum256(body))
	addr := s.fleet.Owner(d)
	if addr == s.fleet.Self() {
		w.Header().Set(servedByHeader, addr)
		return false
	}
	resp, err := s.fleet.Forward(ctx, addr, d, r.URL.Path, r.URL.RawQuery,
		r.Header.Get("Content-Type"), r.Header.Get("Accept"), body)
	if err != nil {
		if ctx.Err() != nil {
			// The request itself is out of budget (client gone or
			// timeout): local execution could not finish either.
			s.fail(w, statusFor(ctx.Err()), ctx.Err())
			return true
		}
		// Degrade gracefully: the owner cannot answer, so this peer
		// computes the result itself. Correctness is never lost on
		// peer failure — only the owner's cache locality.
		s.fleet.RecordFallback(addr)
		reason := "peer-unavailable"
		if errors.Is(err, resilient.ErrOpen) {
			reason = "breaker-open"
		}
		s.logf("fleet: degrading to local execution for %s (%s): %v", addr, reason, err)
		w.Header().Set(servedByHeader, s.fleet.Self())
		w.Header().Set(degradedHeader, reason)
		return false
	}
	for name, vals := range resp.Header {
		w.Header()[name] = vals
	}
	w.Header().Set(servedByHeader, addr)
	w.WriteHeader(resp.Status)
	if _, err := w.Write(resp.Body); err != nil {
		s.logf("fleet: relay response from %s: %v", addr, err)
	}
	return true
}

// chaosPartialLimit is how much of a response the partial-fault
// injector lets through before aborting the connection.
const chaosPartialLimit = 64

// chaosWriter truncates the response after a byte budget and aborts
// the connection (http.ErrAbortHandler unwinds through the handler and
// net/http closes the stream mid-body) — the partial-response failure
// a forwarding peer must detect and fall back from.
type chaosWriter struct {
	http.ResponseWriter
	remaining int
}

func (cw *chaosWriter) Write(p []byte) (int, error) {
	if len(p) <= cw.remaining {
		cw.remaining -= len(p)
		return cw.ResponseWriter.Write(p)
	}
	cw.ResponseWriter.Write(p[:cw.remaining]) //nolint:errcheck // aborting anyway
	cw.remaining = 0
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// chaos applies the -chaos fault hooks to the local serving path:
// injected latency/errors before any work, and a truncating writer
// afterwards. It reports whether the request was failed by injection,
// and the (possibly wrapped) writer to respond through.
func (s *server) chaos(ctx context.Context, w http.ResponseWriter) (http.ResponseWriter, bool) {
	if s.fault == nil {
		return w, false
	}
	if err := s.fault.Inject(ctx); err != nil {
		s.fail(w, statusFor(err), err)
		return w, true
	}
	if s.fault.Partial() {
		w = &chaosWriter{ResponseWriter: w, remaining: chaosPartialLimit}
	}
	return w, false
}

// handleRun serves POST /backbone and POST /score: per-request
// timeout, read+hash the body, fleet routing (forward to the digest's
// owning peer, or fall back local), admission into the bounded worker
// pool, parse (through the graph cache), score (through the score
// cache), prune, respond. Only the body read and the forward happen
// before admission — forwarding must not hold a local worker slot
// hostage to a remote peer's latency, or a slow peer would saturate
// this pool too and couple the failure domains the fleet exists to
// separate. Parsing is multi-core since the chunked codec, so it runs
// inside the pool with the scoring it feeds. X-Backbone-Cache reports
// "hit" when a cached table let the request skip both parsing and
// scoring, else "miss".
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return
	}
	s.requests.Add(1)
	ctx, cancel, body, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.routed(ctx, w, r, body) {
		return
	}
	lane, costKey := s.classifyRun(r, body)
	tk, ok := s.acquire(ctx, w, lane, costKey)
	if !ok {
		return
	}
	// The outcome feeds the AIMD controller: OK completions are
	// latency evidence, a deadline death mid-execution is a congestion
	// signal, everything else (caller mistakes, panics, vanished
	// clients) is noise.
	outcome := admission.Errored
	defer func() { tk.Release(outcome) }()
	done := func(status int, err error) {
		if status == http.StatusGatewayTimeout {
			outcome = admission.Timeout
		}
		s.fail(w, status, err)
	}
	w, failed := s.chaos(ctx, w)
	if failed {
		return
	}

	req, status, err := s.parseRun(ctx, r, body)
	if err != nil {
		done(status, err)
		return
	}

	scoreOnly := strings.HasPrefix(r.URL.Path, "/score")
	if scoreOnly {
		// The cached-scores path skips ScoreContext, so reproduce its
		// caller-mistake checks here: no pruning options, and every
		// parameter override must be declared by the method.
		if req.topSet {
			done(http.StatusInternalServerError, errors.New("repro: Score returns the full table; prune with Backbone's WithTopK/WithTopFraction or the table's own TopK"))
			return
		}
		if _, err := req.method.Resolve(req.params); err != nil {
			done(statusFor(err), err)
			return
		}
	}

	// A precomputed table only helps when something will prune it:
	// top/frac, the method's own Cut rule, or a /score response. A
	// scorer without Cut (ds) otherwise runs its Extractor as always.
	useTable := req.method.CanScore() && (scoreOnly || req.topSet || req.method.Cut != nil)
	var scores *repro.Scores
	cacheState := "miss"
	if useTable {
		sc, hit, err := s.cachedScores(ctx, req.gkey, req.g, req.method.Name, req.parallel)
		if err != nil {
			done(statusFor(err), err)
			return
		}
		scores = sc
		if hit {
			cacheState = "hit"
		}
		// A cached table references its own (identical-content) graph;
		// downstream pruning and coverage must use that same value.
		req.g = sc.G
	} else if scoreOnly {
		// Extract-only methods cannot serve /score; surface the typed
		// error exactly as the pipeline would.
		var serr error
		if serr = s.scoreGate(ctx); serr == nil {
			_, serr = repro.ScoreContext(ctx, req.g, req.opts...)
			if serr == nil {
				serr = fmt.Errorf("method %q produced no table", req.method.Name)
			}
		}
		done(statusFor(serr), serr)
		return
	}
	w.Header().Set("X-Backbone-Cache", cacheState)

	if scoreOnly {
		outcome = admission.OK
		s.writeScores(w, req, scores)
		return
	}
	if err := s.scoreGate(ctx); err != nil {
		done(statusFor(err), err)
		return
	}
	runOpts := req.opts
	if scores != nil {
		runOpts = append(runOpts, repro.WithScores(scores))
	}
	res, err := repro.BackboneContext(ctx, req.g, runOpts...)
	if err != nil {
		done(statusFor(err), err)
		return
	}
	outcome = admission.OK
	s.writeBackbone(w, req, res)
}

// evalReserved are the query keys with fixed meanings on /evaluate;
// every other key must name a parameter of some selected method.
// "outformat" and "response" are accepted no-ops (the report is always
// JSON) so clients can carry /backbone query habits over.
var evalReserved = map[string]bool{
	"method": true, "methods": true, "top": true, "frac": true,
	"parallel": true, "directed": true, "format": true,
	"outformat": true, "response": true,
}

// handleEvaluate serves POST /evaluate: one registry-wide, size-matched
// method comparison of the body's network as a JSON report. It shares
// the front door (timeout, body bound, worker pool — so 413/499/503/504
// behave exactly like /backbone), the content-addressed graph cache,
// and the per-(body, method) score cache: re-evaluating a cached body
// skips scoring entirely, which the X-Backbone-Cache: hit header and
// the /statsz evaluate counters report.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return
	}
	s.requests.Add(1)
	s.evalRequests.Add(1)
	ctx, cancel, body, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.routed(ctx, w, r, body) {
		return
	}
	lane, costKey := s.classifyEvaluate(r, body)
	tk, ok := s.acquire(ctx, w, lane, costKey)
	if !ok {
		return
	}
	outcome := admission.Errored
	defer func() { tk.Release(outcome) }()
	done := func(status int, err error) {
		if status == http.StatusGatewayTimeout {
			outcome = admission.Timeout
		}
		s.fail(w, status, err)
	}
	w, failed := s.chaos(ctx, w)
	if failed {
		return
	}

	g, gkey, env, _, status, err := s.resolveGraph(ctx, r, body)
	if err != nil {
		done(status, err)
		return
	}

	// Method narrowing: ?methods= (comma list) wins, then ?method=
	// (/backbone's singular spelling), then the envelope's method field;
	// with none of them every registered method is compared. Name
	// validation is the engine's (unknown method → 400 via statusFor).
	q := r.URL.Query()
	var methods []string
	switch {
	case q.Get("methods") != "":
		for _, name := range strings.Split(q.Get("methods"), ",") {
			if name = strings.TrimSpace(name); name != "" {
				methods = append(methods, name)
			}
		}
	case q.Get("method") != "":
		methods = []string{q.Get("method")}
	case env != nil && env.Method != "":
		methods = []string{env.Method}
	}
	if err := s.scoreGate(ctx); err != nil {
		done(statusFor(err), err)
		return
	}
	// Concurrency 1: one admitted /evaluate request runs at most one
	// scoring computation at a time, so -workers stays an honest cap on
	// concurrent scoring regardless of how many methods are compared.
	opts := []repro.Option{repro.WithEvalConcurrency(1)}
	if len(methods) > 0 {
		opts = append(opts, repro.WithMethods(methods...))
	}

	// Parameters and pruning: envelope fields first, query overrides —
	// the same precedence as /backbone. Ride-along declaration (at
	// least one selected method must declare each parameter) is
	// enforced by the engine and maps to 400.
	parallel := q.Get("parallel") == "true" || q.Get("parallel") == "1"
	if env != nil {
		parallel = parallel || env.Parallel
		for name, v := range env.Params {
			opts = append(opts, repro.WithParam(name, v))
		}
		if env.Top != nil && q.Get("top") == "" && q.Get("frac") == "" {
			opts = append(opts, repro.WithTopK(*env.Top))
		}
		if env.Frac != nil && q.Get("top") == "" && q.Get("frac") == "" {
			opts = append(opts, repro.WithTopFraction(*env.Frac))
		}
	}
	if parallel {
		opts = append(opts, repro.WithParallel())
	}
	for name, vals := range q {
		if evalReserved[name] {
			continue
		}
		v, err := strconv.ParseFloat(vals[0], 64)
		if err != nil {
			done(http.StatusBadRequest, &repro.ParamError{
				Param: name, Reason: fmt.Sprintf("not a number: %q", vals[0]),
			})
			return
		}
		opts = append(opts, repro.WithParam(name, v))
	}
	if v := q.Get("top"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			done(http.StatusBadRequest, &repro.ParamError{Param: "top", Reason: fmt.Sprintf("not an integer: %q", v)})
			return
		}
		opts = append(opts, repro.WithTopK(k))
	}
	if v := q.Get("frac"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			done(http.StatusBadRequest, &repro.ParamError{Param: "frac", Reason: fmt.Sprintf("not a number: %q", v)})
			return
		}
		opts = append(opts, repro.WithTopFraction(f))
	}

	// Every method's table resolves through the shared score cache, so
	// tables computed by earlier /backbone, /score or /evaluate calls on
	// the same body are reused and concurrent identical evaluations
	// coalesce per method.
	opts = append(opts, repro.WithScoreSource(func(ctx context.Context, m *repro.Method) (*repro.Scores, bool, error) {
		return s.cachedScores(ctx, gkey, g, m.Name, parallel)
	}))

	rep, err := repro.CompareContext(ctx, g, opts...)
	if err != nil {
		done(statusFor(err), err)
		return
	}
	outcome = admission.OK
	s.evalCacheSkips.Add(uint64(rep.CacheHits))

	cacheState := "miss"
	if rep.ScoredMethods > 0 && rep.CacheHits == rep.ScoredMethods {
		cacheState = "hit" // every needed table was cached: zero scoring ran
	}
	w.Header().Set("X-Backbone-Cache", cacheState)
	w.Header().Set("X-Backbone-Eval-Methods", strconv.Itoa(len(rep.Methods)))
	w.Header().Set("X-Backbone-Eval-Scored", strconv.Itoa(rep.ScoredMethods))
	w.Header().Set("X-Backbone-Eval-Cached", strconv.Itoa(rep.CacheHits))
	w.Header().Set("X-Backbone-Duration-Ms", strconv.FormatInt(rep.DurationMs, 10))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rep); err != nil {
		s.logf("write evaluate response: %v", err)
	}
}

// handleStatsz reports process uptime, request count, cache counters
// and — in fleet mode — per-peer forwarding/breaker counters as JSON:
// the daemon's operational introspection endpoint.
func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"requests":       s.requests.Load(),
		"draining":       s.draining.Load(),
		"graph_cache":    s.graphs.Stats(),
		"score_cache":    s.scores.Stats(),
		"evaluate": map[string]uint64{
			"requests":    s.evalRequests.Load(),
			"cache_skips": s.evalCacheSkips.Load(),
		},
		"sessions": map[string]any{
			"active":              s.sessionCount(),
			"creates":             s.sessionCreates.Load(),
			"updates":             s.sessionUpdates.Load(),
			"reads":               s.sessionReads.Load(),
			"deletes":             s.sessionDeletes.Load(),
			"evictions":           s.sessionEvictions.Load(),
			"delta_invalidations": s.sessionInvalidations.Load(),
			"rescored_rows":       s.sessionRescoredRows.Load(),
			"full_rescores":       s.sessionFullRescores.Load(),
			"owner_unavailable":   s.sessionOwnerMiss.Load(),
		},
		"admission": struct {
			admission.Stats
			ExpiredArrivals      uint64 `json:"expired_arrivals"`
			ExpiredBeforeScoring uint64 `json:"expired_before_scoring"`
			DeadlineViolations   uint64 `json:"deadline_violations"`
		}{
			Stats:                s.limiter.Stats(),
			ExpiredArrivals:      s.expiredArrivals.Load(),
			ExpiredBeforeScoring: s.expiredBeforeScoring.Load(),
			DeadlineViolations:   s.deadlineViolations.Load(),
		},
	}
	if s.graphDir != "" {
		out["mmap"] = map[string]any{
			"hits":         s.mmapHits.Load(),
			"misses":       s.mmapMisses.Load(),
			"errors":       s.mmapErrors.Load(),
			"graphs":       s.mmapLoads.Load(),
			"sections":     s.mmapSections.Load(),
			"mapped_bytes": s.mmapBytes.Load(),
		}
	}
	if s.fleet != nil {
		out["fleet"] = map[string]any{
			"self":  s.fleet.Self(),
			"peers": s.fleet.Stats(),
		}
	}
	if s.fault != nil {
		out["fault_injection"] = s.fault.Stats()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// responseContentType maps a registered format name to its media type.
func responseContentType(format string) string {
	switch format {
	case "csv":
		return "text/csv; charset=utf-8"
	case "tsv":
		return "text/tab-separated-values; charset=utf-8"
	case "ndjson":
		return "application/x-ndjson"
	}
	return "text/plain; charset=utf-8"
}

// edgeJSON is one backbone edge in JSON responses.
type edgeJSON struct {
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Weight float64 `json:"weight"`
	Score  float64 `json:"score,omitempty"`
}

// graphEdges flattens a graph's canonical edges into wire form.
func graphEdges(g *repro.Graph) []edgeJSON {
	out := make([]edgeJSON, 0, g.NumEdges())
	for _, e := range g.Edges() {
		out = append(out, edgeJSON{Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)), Weight: e.Weight})
	}
	return out
}

func (s *server) writeBackbone(w http.ResponseWriter, req *runRequest, res *repro.Result) {
	params, _ := json.Marshal(res.Params)
	w.Header().Set("X-Backbone-Method", res.Method)
	w.Header().Set("X-Backbone-Params", string(params))
	w.Header().Set("X-Backbone-Edges", strconv.Itoa(res.Backbone.NumEdges()))
	w.Header().Set("X-Backbone-Duration-Ms", strconv.FormatInt(res.Duration.Milliseconds(), 10))
	if req.asJSON {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"method":        res.Method,
			"title":         res.Title,
			"params":        res.Params,
			"input_nodes":   req.g.NumNodes(),
			"input_edges":   req.g.NumEdges(),
			"nodes":         res.Backbone.NumConnected(),
			"edges":         len(res.Backbone.Edges()),
			"node_coverage": res.NodeCoverage,
			"edge_coverage": res.EdgeCoverage,
			"duration_ms":   res.Duration.Milliseconds(),
			"backbone":      graphEdges(res.Backbone),
		})
		return
	}
	w.Header().Set("Content-Type", responseContentType(req.outFormat))
	if err := repro.WriteGraph(w, res.Backbone, repro.WithFormat(req.outFormat)); err != nil {
		s.logf("write response: %v", err)
	}
}

func (s *server) writeScores(w http.ResponseWriter, req *runRequest, scores *repro.Scores) {
	g := scores.G
	edges := g.Edges()
	w.Header().Set("X-Backbone-Method", scores.Method)
	w.Header().Set("X-Backbone-Edges", strconv.Itoa(len(edges)))
	if req.asJSON {
		rows := make([]edgeJSON, 0, len(edges))
		for i, e := range edges {
			rows = append(rows, edgeJSON{
				Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)),
				Weight: e.Weight, Score: scores.Score[i],
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"method": scores.Method, "scores": rows})
		return
	}
	w.Header().Set("Content-Type", responseContentType(req.outFormat))
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	switch req.outFormat {
	case "ndjson":
		enc := json.NewEncoder(bw)
		for i, e := range edges {
			enc.Encode(edgeJSON{
				Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)),
				Weight: e.Weight, Score: scores.Score[i],
			})
		}
	default:
		sep := ","
		if req.outFormat == "tsv" {
			sep = "\t"
		}
		fmt.Fprintf(bw, "src%sdst%sweight%sscore\n", sep, sep, sep)
		for i, e := range edges {
			fmt.Fprintf(bw, "%s%s%s%s%s%s%s\n",
				g.LabelOrID(int(e.Src)), sep, g.LabelOrID(int(e.Dst)), sep,
				strconv.FormatFloat(e.Weight, 'g', -1, 64), sep,
				strconv.FormatFloat(scores.Score[i], 'g', -1, 64))
		}
	}
}
