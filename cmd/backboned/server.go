package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/graph"
)

// statusClientClosedRequest is the nginx-convention status logged when
// the client went away before the pipeline finished.
const statusClientClosedRequest = 499

// server is the backboned HTTP front end: a mux over the method
// registry plus the shared run controls every request goes through —
// the bounded worker pool, the per-request timeout, and the typed-error
// to status-code mapping.
type server struct {
	mux     *http.ServeMux
	sem     chan struct{} // bounded worker pool for scoring requests
	timeout time.Duration // per-request wall clock budget
	maxBody int64
	logf    func(format string, args ...any)
	// onError observes every request failure after status mapping; a
	// test hook, nil outside tests.
	onError func(status int, err error)
}

func newServer(workers int, timeout time.Duration, maxBody int64, logf func(string, ...any)) *server {
	if workers < 1 {
		workers = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &server{
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, workers),
		timeout: timeout,
		maxBody: maxBody,
		logf:    logf,
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/methods", s.handleMethods)
	s.mux.HandleFunc("/formats", s.handleFormats)
	s.mux.HandleFunc("/backbone", s.handleRun)
	s.mux.HandleFunc("/score", s.handleRun)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// fail writes a JSON error body with the status implied by the error's
// type and notifies the test hook.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	if s.onError != nil {
		s.onError(status, err)
	}
	s.logf("error: %d %v", status, err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// statusFor maps pipeline errors onto HTTP statuses: the exported
// sentinel/typed errors are caller mistakes (400), context expiry is a
// timeout (504), a vanished client is 499, anything else is a 500.
func statusFor(err error) int {
	var pe *repro.ParamError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, repro.ErrUnknownMethod),
		errors.Is(err, repro.ErrUnknownParam),
		errors.Is(err, repro.ErrNoScorer),
		errors.Is(err, repro.ErrUnknownFormat),
		errors.Is(err, repro.ErrLineTooLong),
		errors.As(err, &pe):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `backboned — network backboning as a service

GET  /methods            registered methods and their parameter schemas (JSON)
GET  /formats            registered edge-list formats (JSON)
GET  /healthz            liveness probe
POST /backbone           extract a backbone from the edge list in the body
POST /score              per-edge significance table for the body's edge list

Query parameters for POST: method (default nc), any method parameter
(delta, alpha, ...), top, frac, parallel, directed, format (input),
outformat (csv|tsv|ndjson), response=json. The body is an edge list in
any registered format (gzip accepted, format sniffed), or a JSON
envelope {"method":..., "params":{...}, "edges":[{"src":..,"dst":..,"weight":..}]}.
`)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// paramJSON / methodJSON are the wire form of the registry schema.
type paramJSON struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Integer bool    `json:"integer,omitempty"`
	Desc    string  `json:"desc"`
}

type methodJSON struct {
	Name      string      `json:"name"`
	Title     string      `json:"title"`
	Desc      string      `json:"desc"`
	Params    []paramJSON `json:"params"`
	CanScore  bool        `json:"can_score"`
	FixedSize bool        `json:"fixed_size,omitempty"`
	Parallel  bool        `json:"parallel,omitempty"`
}

func (s *server) handleMethods(w http.ResponseWriter, r *http.Request) {
	var out []methodJSON
	for _, m := range repro.Methods() {
		mj := methodJSON{
			Name:      m.Name,
			Title:     m.Title,
			Desc:      m.Desc,
			Params:    []paramJSON{},
			CanScore:  m.CanScore(),
			FixedSize: m.FixedSize,
			Parallel:  m.ParallelScorer != nil,
		}
		for _, p := range m.Params {
			mj.Params = append(mj.Params, paramJSON{Name: p.Name, Default: p.Default, Integer: p.Integer, Desc: p.Desc})
		}
		out = append(out, mj)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

type formatJSON struct {
	Name    string   `json:"name"`
	Exts    []string `json:"exts"`
	Desc    string   `json:"desc"`
	Sniffed bool     `json:"sniffed"`
}

func (s *server) handleFormats(w http.ResponseWriter, r *http.Request) {
	var out []formatJSON
	for _, f := range repro.Formats() {
		out = append(out, formatJSON{Name: f.Name, Exts: f.Exts, Desc: f.Desc, Sniffed: f.Sniff != nil})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// runRequest is a parsed /backbone or /score request: the input graph
// plus the pipeline options and response shaping derived from query
// parameters and (optionally) the JSON envelope.
type runRequest struct {
	g         *repro.Graph
	opts      []repro.Option
	outFormat string
	asJSON    bool
}

// queryReserved are the query keys with fixed meanings; every other
// key must name a parameter of the selected method.
var queryReserved = map[string]bool{
	"method": true, "top": true, "frac": true, "parallel": true,
	"directed": true, "format": true, "outformat": true, "response": true,
}

// envelope is the JSON request body alternative to a raw edge list.
// Query parameters override envelope fields.
type envelope struct {
	Method   string             `json:"method"`
	Params   map[string]float64 `json:"params"`
	Top      *int               `json:"top"`
	Frac     *float64           `json:"frac"`
	Parallel bool               `json:"parallel"`
	Directed bool               `json:"directed"`
	Edges    []envelopeEdge     `json:"edges"`
}

type envelopeEdge struct {
	Src    any      `json:"src"`
	Dst    any      `json:"dst"`
	Weight *float64 `json:"weight"`
}

// contentTypeFormat maps common edge-list content types to registered
// format names; empty means sniff.
func contentTypeFormat(ct string) string {
	switch ct {
	case "text/csv":
		return "csv"
	case "text/tab-separated-values":
		return "tsv"
	case "application/x-ndjson", "application/ndjson", "application/jsonl":
		return "ndjson"
	}
	return ""
}

// parseRun turns the HTTP request into a runRequest. The int return is
// the HTTP status to use when err != nil.
func (s *server) parseRun(r *http.Request) (*runRequest, int, error) {
	q := r.URL.Query()
	req := &runRequest{}

	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}

	var env *envelope
	if ct == "application/json" {
		dec := json.NewDecoder(r.Body)
		dec.UseNumber()
		env = &envelope{}
		if err := dec.Decode(env); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad JSON envelope: %v", err)
		}
		if len(env.Edges) == 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("JSON envelope has no edges")
		}
		directed := env.Directed
		if v := q.Get("directed"); v != "" {
			directed = v == "true" || v == "1"
		}
		b := repro.NewBuilder(directed)
		for i, e := range env.Edges {
			src, err := graph.JSONLabel(e.Src)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("edges[%d].src: %v", i, err)
			}
			dst, err := graph.JSONLabel(e.Dst)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("edges[%d].dst: %v", i, err)
			}
			if e.Weight == nil {
				return nil, http.StatusBadRequest, fmt.Errorf("edges[%d]: missing weight", i)
			}
			if err := b.AddEdgeLabels(src, dst, *e.Weight); err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("edges[%d]: %v", i, err)
			}
		}
		req.g = b.Build()
	} else {
		inFormat := q.Get("format")
		if inFormat == "" {
			inFormat = contentTypeFormat(ct)
		}
		readOpts := []repro.IOOption{
			repro.WithDirected(q.Get("directed") == "true" || q.Get("directed") == "1"),
		}
		if inFormat != "" {
			f, err := repro.LookupFormat(inFormat)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
			req.outFormat = f.Name // default response format mirrors input
			readOpts = append(readOpts, repro.WithFormat(f.Name))
		}
		g, err := repro.ReadGraph(r.Body, readOpts...)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad edge list: %w", err)
		}
		req.g = g
	}

	// Method selection and parameters: query overrides envelope.
	methodName := "nc"
	if env != nil && env.Method != "" {
		methodName = env.Method
	}
	if v := q.Get("method"); v != "" {
		methodName = v
	}
	m, err := repro.LookupMethod(methodName)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	req.opts = append(req.opts, repro.WithMethod(m.Name))
	if env != nil {
		for name, v := range env.Params {
			req.opts = append(req.opts, repro.WithParam(name, v))
		}
		if env.Top != nil {
			req.opts = append(req.opts, repro.WithTopK(*env.Top))
		}
		if env.Frac != nil {
			req.opts = append(req.opts, repro.WithTopFraction(*env.Frac))
		}
		if env.Parallel {
			req.opts = append(req.opts, repro.WithParallel())
		}
	}
	for name, vals := range q {
		if queryReserved[name] {
			continue
		}
		if _, ok := m.Param(name); !ok {
			return nil, http.StatusBadRequest, &repro.ParamError{
				Method: m.Name, Param: name,
				Reason: "unknown query parameter",
				Err:    repro.ErrUnknownParam,
			}
		}
		v, err := strconv.ParseFloat(vals[0], 64)
		if err != nil {
			return nil, http.StatusBadRequest, &repro.ParamError{
				Method: m.Name, Param: name,
				Reason: fmt.Sprintf("not a number: %q", vals[0]),
			}
		}
		req.opts = append(req.opts, repro.WithParam(name, v))
	}
	if v := q.Get("top"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return nil, http.StatusBadRequest, &repro.ParamError{Param: "top", Reason: fmt.Sprintf("not an integer: %q", v)}
		}
		req.opts = append(req.opts, repro.WithTopK(k))
	}
	if v := q.Get("frac"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, http.StatusBadRequest, &repro.ParamError{Param: "frac", Reason: fmt.Sprintf("not a number: %q", v)}
		}
		req.opts = append(req.opts, repro.WithTopFraction(f))
	}
	if v := q.Get("parallel"); v == "true" || v == "1" {
		req.opts = append(req.opts, repro.WithParallel())
	}

	// Response shaping.
	if v := q.Get("outformat"); v != "" {
		f, err := repro.LookupFormat(v)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		req.outFormat = f.Name
	}
	if req.outFormat == "" {
		req.outFormat = "csv"
	}
	if q.Get("response") == "json" || strings.Contains(r.Header.Get("Accept"), "application/json") {
		req.asJSON = true
	}
	return req, 0, nil
}

// handleRun serves POST /backbone and POST /score: per-request
// timeout, parse, admission into the bounded worker pool, pipeline,
// respond. Parsing happens before admission — it is I/O-bound and must
// drain the request body so the connection's background read can
// detect a vanished client while the request queues for a slot; the
// pool bounds only the CPU-bound scoring.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("%s requires POST", r.URL.Path))
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	req, status, err := s.parseRun(r)
	if err != nil {
		s.fail(w, status, err)
		return
	}

	// Bounded worker pool: a saturated pool makes callers queue until a
	// slot frees or their request context gives up.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("worker pool saturated: %v", ctx.Err()))
		return
	}

	scoreOnly := strings.HasPrefix(r.URL.Path, "/score")
	if scoreOnly {
		scores, err := repro.ScoreContext(ctx, req.g, req.opts...)
		if err != nil {
			s.fail(w, statusFor(err), err)
			return
		}
		s.writeScores(w, req, scores)
		return
	}
	res, err := repro.BackboneContext(ctx, req.g, req.opts...)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.writeBackbone(w, req, res)
}

// responseContentType maps a registered format name to its media type.
func responseContentType(format string) string {
	switch format {
	case "csv":
		return "text/csv; charset=utf-8"
	case "tsv":
		return "text/tab-separated-values; charset=utf-8"
	case "ndjson":
		return "application/x-ndjson"
	}
	return "text/plain; charset=utf-8"
}

// edgeJSON is one backbone edge in JSON responses.
type edgeJSON struct {
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Weight float64 `json:"weight"`
	Score  float64 `json:"score,omitempty"`
}

// graphEdges flattens a graph's canonical edges into wire form.
func graphEdges(g *repro.Graph) []edgeJSON {
	out := make([]edgeJSON, 0, g.NumEdges())
	for _, e := range g.Edges() {
		out = append(out, edgeJSON{Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)), Weight: e.Weight})
	}
	return out
}

func (s *server) writeBackbone(w http.ResponseWriter, req *runRequest, res *repro.Result) {
	params, _ := json.Marshal(res.Params)
	w.Header().Set("X-Backbone-Method", res.Method)
	w.Header().Set("X-Backbone-Params", string(params))
	w.Header().Set("X-Backbone-Edges", strconv.Itoa(res.Backbone.NumEdges()))
	w.Header().Set("X-Backbone-Duration-Ms", strconv.FormatInt(res.Duration.Milliseconds(), 10))
	if req.asJSON {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"method":        res.Method,
			"title":         res.Title,
			"params":        res.Params,
			"input_nodes":   req.g.NumNodes(),
			"input_edges":   req.g.NumEdges(),
			"nodes":         res.Backbone.NumConnected(),
			"edges":         len(res.Backbone.Edges()),
			"node_coverage": res.NodeCoverage,
			"edge_coverage": res.EdgeCoverage,
			"duration_ms":   res.Duration.Milliseconds(),
			"backbone":      graphEdges(res.Backbone),
		})
		return
	}
	w.Header().Set("Content-Type", responseContentType(req.outFormat))
	if err := repro.WriteGraph(w, res.Backbone, repro.WithFormat(req.outFormat)); err != nil {
		s.logf("write response: %v", err)
	}
}

func (s *server) writeScores(w http.ResponseWriter, req *runRequest, scores *repro.Scores) {
	g := scores.G
	edges := g.Edges()
	w.Header().Set("X-Backbone-Method", scores.Method)
	w.Header().Set("X-Backbone-Edges", strconv.Itoa(len(edges)))
	if req.asJSON {
		rows := make([]edgeJSON, 0, len(edges))
		for i, e := range edges {
			rows = append(rows, edgeJSON{
				Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)),
				Weight: e.Weight, Score: scores.Score[i],
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"method": scores.Method, "scores": rows})
		return
	}
	w.Header().Set("Content-Type", responseContentType(req.outFormat))
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	switch req.outFormat {
	case "ndjson":
		enc := json.NewEncoder(bw)
		for i, e := range edges {
			enc.Encode(edgeJSON{
				Src: g.LabelOrID(int(e.Src)), Dst: g.LabelOrID(int(e.Dst)),
				Weight: e.Weight, Score: scores.Score[i],
			})
		}
	default:
		sep := ","
		if req.outFormat == "tsv" {
			sep = "\t"
		}
		fmt.Fprintf(bw, "src%sdst%sweight%sscore\n", sep, sep, sep)
		for i, e := range edges {
			fmt.Fprintf(bw, "%s%s%s%s%s%s%s\n",
				g.LabelOrID(int(e.Src)), sep, g.LabelOrID(int(e.Dst)), sep,
				strconv.FormatFloat(e.Weight, 'g', -1, 64), sep,
				strconv.FormatFloat(scores.Score[i], 'g', -1, 64))
		}
	}
}
