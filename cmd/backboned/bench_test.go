package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchDaemon measures end-to-end request latency through the full
// HTTP stack: cold (every body unique — parse + score every time)
// versus cache-hit (identical bodies — straight to extraction).
func benchDaemon(b *testing.B, unique bool) {
	s := newServer(serverConfig{
		workers: 4, timeout: time.Minute, maxBody: 1 << 28,
		graphCacheBytes: 256 << 20, scoreCacheBytes: 256 << 20,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	base := encodeGraph(b, testGraph(b, 20_000), "csv").Bytes()
	url := ts.URL + "/backbone?method=nc&delta=1.64"
	post := func(body []byte) {
		resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post(base) // warm: the cache-hit benchmark measures pure hits
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := base
		if unique {
			// A distinct trailing comment changes the content hash while
			// parsing cost stays identical.
			body = append(bytes.Clone(base), fmt.Sprintf("# req %d\n", i)...)
		}
		post(body)
	}
}

func BenchmarkDaemonBackboneCold(b *testing.B)     { benchDaemon(b, true) }
func BenchmarkDaemonBackboneCacheHit(b *testing.B) { benchDaemon(b, false) }

// benchDaemonColdGraph measures a request that must re-resolve its
// graph every time (both LRU caches disabled — the perpetual-cold-miss
// regime of bodies larger than any budget). With graphdir the body's
// pre-converted .bbg is memory-mapped once and every request reuses
// the mapping; without it every request re-parses the text body. The
// pair quantifies what -graphdir buys a cache-starved daemon.
func benchDaemonColdGraph(b *testing.B, graphdir bool) {
	cfg := serverConfig{
		workers: 4, timeout: time.Minute, maxBody: 1 << 28,
		graphCacheBytes: 0, scoreCacheBytes: 0,
	}
	base := encodeGraph(b, testGraph(b, 20_000), "csv").Bytes()
	if graphdir {
		cfg.graphDir = b.TempDir()
		convertBody(b, cfg.graphDir, base, false)
	}
	s := newServer(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	url := ts.URL + "/backbone?method=nc&delta=1.64"
	post := func() {
		resp, err := http.Post(url, "text/csv", bytes.NewReader(base))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // warm: the mapped graph loads once, outside the measurement
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

func BenchmarkDaemonBackboneGraphdir(b *testing.B) { benchDaemonColdGraph(b, true) }
func BenchmarkDaemonBackboneReparse(b *testing.B)  { benchDaemonColdGraph(b, false) }

// BenchmarkDaemonEvaluateCacheHit measures a full multi-method
// /evaluate report served from the content-addressed score cache: the
// warm-up request scores every method once, every measured request
// re-grades the identical body with zero scoring (asserted via the
// X-Backbone-Cache header).
func BenchmarkDaemonEvaluateCacheHit(b *testing.B) {
	s := newServer(serverConfig{
		workers: 4, timeout: time.Minute, maxBody: 1 << 28,
		graphCacheBytes: 256 << 20, scoreCacheBytes: 256 << 20,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := encodeGraph(b, testGraph(b, 20_000), "csv").Bytes()
	url := ts.URL + "/evaluate?methods=nc,df,nt,mst"
	post := func(wantCache string) {
		resp, err := http.Post(url, "text/csv", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Backbone-Cache"); wantCache != "" && got != wantCache {
			b.Fatalf("X-Backbone-Cache = %q, want %q", got, wantCache)
		}
	}
	post("miss") // warm: every measured request is a pure cache hit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post("hit")
	}
}
