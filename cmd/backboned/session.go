package main

// Live incremental serving: a session anchors one posted edge list and
// accepts batched edge updates against it. Reads re-score only the
// rows the update stream could have changed (filter.RescoreDirty over
// the session's graph.Delta overlay) instead of re-parsing, rebuilding
// and re-scoring the whole body — while staying bit-identical to what
// POST /backbone would answer for the updated edge list.
//
// Sessions ride the same front door as the stateless endpoints
// (deadline intake, admission lanes, chaos injection) and the same
// fleet policy anchor: the session ID embeds the sha256 of the
// creating body, so every peer routes session traffic to the body's
// rendezvous owner. Unlike stateless scoring, session state cannot be
// recomputed by a non-owner, so owner failure is answered 503 (retry
// when the owner returns) — never a silent degrade to a peer that does
// not hold the delta.

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/admission"
	"repro/internal/filter"
	"repro/internal/fleet"
	"repro/internal/graph"
)

// defaultMaxSessions bounds resident session state when -max-sessions
// is unset; the oldest idle session is evicted past it.
const defaultMaxSessions = 256

// sessionTable is one method's score table inside a session, plus the
// nodes dirtied since it was computed. pending is what RescoreDirty
// needs to bring the table forward; it accumulates across
// materializations until the next read of this method drains it.
type sessionTable struct {
	scores  *repro.Scores
	pending []int32 // sorted unique dirty nodes since scores.G
}

// session is one live overlay: the delta accumulating updates, the
// latest materialization, and per-method score tables that advance
// incrementally. mu serializes all delta/table access (graph.Delta is
// not concurrency-safe); lastUsed is guarded by server.sessMu, not mu,
// so eviction scans never wait on a session mid-score.
type session struct {
	id  string
	sum [sha256.Size]byte // creating body's digest: the fleet routing anchor

	mu    sync.Mutex
	delta *graph.Delta
	g     *repro.Graph // latest materialization (== delta's last Graph())
	// lastDirty is the dirty record of the latest materialization: a
	// table exactly one generation behind rides its row diff (and, with
	// an exclusive delta, its in-place surrender).
	lastDirty graph.Dirty
	tables    map[string]*sessionTable
	applied   uint64 // total updates accepted

	created  time.Time
	lastUsed time.Time // guarded by server.sessMu
}

// newSessionID derives a session ID: the body digest in hex (every
// peer can recover the routing anchor from the ID alone) plus a random
// suffix so re-posting the same body opens an independent session.
func newSessionID(sum [sha256.Size]byte) (string, error) {
	var r [4]byte
	if _, err := rand.Read(r[:]); err != nil {
		return "", fmt.Errorf("session id: %v", err)
	}
	return hex.EncodeToString(sum[:]) + "." + hex.EncodeToString(r[:]), nil
}

// parseSessionID recovers the routing digest embedded in a session ID.
func parseSessionID(id string) (sum [sha256.Size]byte, ok bool) {
	if len(id) != 2*sha256.Size+9 || id[2*sha256.Size] != '.' {
		return sum, false
	}
	raw, err := hex.DecodeString(id[:2*sha256.Size])
	if err != nil {
		return sum, false
	}
	copy(sum[:], raw)
	return sum, true
}

// mergeDirtyNodes folds a materialization's dirty node set into a
// table's pending set, keeping it sorted and unique.
func mergeDirtyNodes(pending, dirty []int32) []int32 {
	if len(dirty) == 0 {
		return pending
	}
	pending = append(pending, dirty...)
	slices.Sort(pending)
	return slices.Compact(pending)
}

// getSession looks a session up and bumps its recency.
func (s *server) getSession(id string) *session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess := s.sessions[id]
	if sess != nil {
		sess.lastUsed = time.Now()
	}
	return sess
}

// putSession stores a new session, evicting the least-recently-used
// one when the -max-sessions budget is exceeded.
func (s *server) putSession(sess *session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for len(s.sessions) >= s.maxSessions {
		var oldest *session
		//lint:detiter-ok recency scan; the minimum is order-independent
		for _, cand := range s.sessions {
			if oldest == nil || cand.lastUsed.Before(oldest.lastUsed) {
				oldest = cand
			}
		}
		if oldest == nil {
			break
		}
		delete(s.sessions, oldest.id)
		s.sessionEvictions.Add(1)
	}
	sess.lastUsed = time.Now()
	s.sessions[sess.id] = sess
}

// dropSession removes a session; reports whether it existed.
func (s *server) dropSession(id string) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// sessionCount is the /statsz active-sessions gauge.
func (s *server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// sessionRouted applies fleet policy to one session request. Stateful
// routes differ from routed() in two ways: the routing digest comes
// from the session ID (not the request body), and there is no degrade
// to local execution — only the rendezvous owner holds the delta, so
// an unreachable owner is a 503 the client retries, never a silently
// diverging answer. flightSum keys forward coalescing: reads pass the
// session digest (identical concurrent reads may legally share one
// upstream response), updates pass the update body's own digest (set
// semantics make identical bodies idempotent, distinct bodies must
// not coalesce).
func (s *server) sessionRouted(ctx context.Context, w http.ResponseWriter, r *http.Request, sum, flightSum [sha256.Size]byte, body []byte) (handled bool) {
	if s.fleet == nil {
		return false
	}
	if r.Header.Get(fleet.ForwardedHeader) != "" {
		w.Header().Set(servedByHeader, s.fleet.Self())
		return false
	}
	addr := s.fleet.Owner(fleet.Digest(sum))
	if addr == s.fleet.Self() {
		w.Header().Set(servedByHeader, addr)
		return false
	}
	resp, err := s.fleet.ForwardRequest(ctx, addr, fleet.Digest(flightSum), r.Method,
		r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), r.Header.Get("Accept"), body)
	if err != nil {
		if ctx.Err() != nil {
			s.fail(w, statusFor(ctx.Err()), ctx.Err())
			return true
		}
		s.sessionOwnerMiss.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("session owner %s unavailable (sessions do not degrade): %v", addr, err))
		return true
	}
	for name, vals := range resp.Header {
		w.Header()[name] = vals
	}
	w.Header().Set(servedByHeader, addr)
	w.WriteHeader(resp.Status)
	if _, err := w.Write(resp.Body); err != nil {
		s.logf("fleet: relay session response from %s: %v", addr, err)
	}
	return true
}

// handleSessionCreate serves POST /session: parse the body exactly as
// POST /backbone would (content-addressed graph cache included), pin a
// delta overlay over the result, and answer with the session ID.
func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	ctx, cancel, body, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.fleet != nil {
		sum := sha256.Sum256(body)
		if s.sessionRouted(ctx, w, r, sum, sum, body) {
			return
		}
	}
	tk, ok := s.acquire(ctx, w, admission.Cold, "session-create")
	if !ok {
		return
	}
	outcome := admission.Errored
	defer func() { tk.Release(outcome) }()
	w, failed := s.chaos(ctx, w)
	if failed {
		return
	}

	g, gkey, _, _, status, err := s.resolveGraph(ctx, r, body)
	if err != nil {
		s.fail(w, status, err)
		return
	}
	id, err := newSessionID(gkey.sum)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	now := time.Now()
	// Exclusive delta: sess.mu serializes every read/update cycle and
	// the session retains nothing beyond the latest materialization and
	// per-method table, so each generation's arrays are recycled in
	// place instead of copied (graph.Delta.SetExclusive).
	delta := graph.NewDelta(g, 0)
	delta.SetExclusive(true)
	sess := &session{
		id:      id,
		sum:     gkey.sum,
		delta:   delta,
		g:       g,
		tables:  map[string]*sessionTable{},
		created: now,
	}
	s.putSession(sess)
	s.sessionCreates.Add(1)

	outcome = admission.OK
	w.Header().Set("Location", "/session/"+id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(map[string]any{
		"session":  id,
		"nodes":    g.NumNodes(),
		"edges":    g.NumEdges(),
		"directed": g.Directed(),
	})
}

// sessionUpdateBody is the POST /session/{id}/update wire form. Edges
// are addressed by node label (the names the creating body used);
// weight > 0 upserts, weight == 0 (or omitted) deletes.
type sessionUpdateBody struct {
	Updates []sessionUpdateEdge `json:"updates"`
}

type sessionUpdateEdge struct {
	Src    string   `json:"src"`
	Dst    string   `json:"dst"`
	Weight *float64 `json:"weight"`
}

// handleSessionUpdate serves POST /session/{id}/update: batched edge
// upserts/deletes into the session's delta overlay. No scoring runs
// here — dirtiness is recorded and the next read pays only for the
// rows it invalidated.
func (s *server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	sum, ok := parseSessionID(id)
	if !ok {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("malformed session id %q", id))
		return
	}
	ctx, cancel, body, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.sessionRouted(ctx, w, r, sum, sha256.Sum256(body), body) {
		return
	}
	tk, ok := s.acquire(ctx, w, admission.Fast, "session-update")
	if !ok {
		return
	}
	outcome := admission.Errored
	defer func() { tk.Release(outcome) }()
	w, failed := s.chaos(ctx, w)
	if failed {
		return
	}

	sess := s.getSession(id)
	if sess == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	var ub sessionUpdateBody
	if err := json.Unmarshal(body, &ub); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad update body: %v", err))
		return
	}
	if len(ub.Updates) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New(`update body has no updates (want {"updates":[{"src":...,"dst":...,"weight":...}]})`))
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	base := sess.delta.Base()
	ups := make([]graph.Update, 0, len(ub.Updates))
	for i, e := range ub.Updates {
		src := base.NodeID(e.Src)
		if src < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("updates[%d].src: unknown node %q", i, e.Src))
			return
		}
		dst := base.NodeID(e.Dst)
		if dst < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("updates[%d].dst: unknown node %q", i, e.Dst))
			return
		}
		var weight float64
		if e.Weight != nil {
			weight = *e.Weight
		}
		ups = append(ups, graph.Update{Src: int32(src), Dst: int32(dst), Weight: weight})
	}
	if err := sess.delta.Apply(ups); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	sess.applied += uint64(len(ups))
	s.sessionUpdates.Add(1)

	outcome = admission.OK
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"session":       id,
		"applied":       len(ups),
		"pending":       sess.delta.Pending(),
		"updates_total": sess.applied,
	})
}

// advance materializes the session's delta and folds the resulting
// dirty node set into every table's pending set. Must hold sess.mu.
// Returns the number of tables invalidated (counted once per table
// per materialization that dirtied it).
func (sess *session) advance() (g *repro.Graph, invalidated int) {
	g, dirty := sess.delta.Graph()
	if g == sess.g {
		return g, 0
	}
	if dirty.Base != sess.g {
		// Defensive: the delta materialized somewhere we did not observe,
		// so the dirty record does not connect to our last snapshot and
		// pending accumulation cannot be trusted. Drop every table —
		// the next read of each method pays a full (still bit-identical)
		// rescore instead of risking a stale row.
		//lint:detiter-ok every table is reset; order does not matter
		for name, t := range sess.tables {
			if t.scores != nil {
				invalidated++
			}
			delete(sess.tables, name)
		}
		sess.g, sess.lastDirty = g, dirty
		return g, invalidated
	}
	//lint:detiter-ok every table is updated; order does not matter
	for _, t := range sess.tables {
		t.pending = mergeDirtyNodes(t.pending, dirty.Nodes)
		if t.scores != nil {
			invalidated++
		}
	}
	sess.g, sess.lastDirty = g, dirty
	return g, invalidated
}

// sessionScores brings one method's table forward to the session's
// current materialization, re-scoring only dirty rows. Must hold
// sess.mu. Returns the fresh table and how many rows were re-scored
// (0 = pure reuse).
func (s *server) sessionScores(ctx context.Context, sess *session, g *repro.Graph, m *repro.Method, parallel bool) (*repro.Scores, int, error) {
	t := sess.tables[m.Name]
	if t == nil {
		t = &sessionTable{}
		sess.tables[m.Name] = t
	}
	if t.scores != nil && t.scores.G == g && len(t.pending) == 0 {
		return t.scores, 0, nil
	}
	if err := s.scoreGate(ctx); err != nil {
		return nil, 0, err
	}
	dirty := graph.Dirty{For: g, Nodes: t.pending}
	old := t.scores
	if old != nil {
		if ld := sess.lastDirty; ld.For == g && ld.Base == old.G {
			// Exactly one generation behind: the materialization's own
			// dirty record applies verbatim — row diff, surrender and
			// all (its Nodes are this table's pending set by
			// construction).
			dirty = ld
		} else {
			// Further behind. The delta is exclusive, so the old
			// table's graph has been cannibalized and its edge slice
			// must not be walked: leave old out and pay a full (still
			// bit-identical) rescore.
			old = nil
		}
	}
	opts := filter.ScoreOpts{Parallel: parallel}
	sc, rescored, err := filter.RescoreDirty(ctx, m, old, dirty, opts)
	if err != nil {
		return nil, 0, err
	}
	t.scores, t.pending = sc, nil
	s.sessionRescoredRows.Add(uint64(rescored))
	if rescored == g.NumEdges() {
		s.sessionFullRescores.Add(1)
	}
	return sc, rescored, nil
}

// classifySessionRead picks the admission lane for a session read:
// fast when the method's table already exists in the session (the read
// is a frontier rescore plus serialization), cold on first touch.
func (s *server) classifySessionRead(id, method string) (admission.Lane, string) {
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	if sess == nil {
		return admission.Fast, "session-read" // 404s should not queue behind scoring
	}
	sess.mu.Lock()
	t := sess.tables[method]
	warm := t != nil && t.scores != nil
	sess.mu.Unlock()
	if warm {
		return admission.Fast, "session-read"
	}
	return admission.Cold, method
}

// handleSessionRead serves GET /session/{id}/backbone and /score: the
// stateless /backbone | /score contract evaluated against the
// session's current (base + updates) edge set, incrementally.
func (s *server) handleSessionRead(w http.ResponseWriter, r *http.Request, scoreOnly bool) {
	s.requests.Add(1)
	id := r.PathValue("id")
	sum, ok := parseSessionID(id)
	if !ok {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("malformed session id %q", id))
		return
	}
	ctx, cancel, _, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.sessionRouted(ctx, w, r, sum, sum, nil) {
		return
	}
	methodName := r.URL.Query().Get("method")
	if methodName == "" {
		methodName = "nc"
	}
	lane, costKey := s.classifySessionRead(id, methodName)
	tk, ok := s.acquire(ctx, w, lane, costKey)
	if !ok {
		return
	}
	outcome := admission.Errored
	defer func() { tk.Release(outcome) }()
	done := func(status int, err error) {
		if status == http.StatusGatewayTimeout {
			outcome = admission.Timeout
		}
		s.fail(w, status, err)
	}
	w, failed := s.chaos(ctx, w)
	if failed {
		return
	}

	sess := s.getSession(id)
	if sess == nil {
		done(http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	req := &runRequest{}
	if status, err := s.parseRunOptions(r, nil, req); err != nil {
		done(status, err)
		return
	}
	if scoreOnly {
		if req.topSet {
			done(http.StatusInternalServerError, errors.New("repro: Score returns the full table; prune with Backbone's WithTopK/WithTopFraction or the table's own TopK"))
			return
		}
		if _, err := req.method.Resolve(req.params); err != nil {
			done(statusFor(err), err)
			return
		}
	}

	s.sessionReads.Add(1)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	g, invalidated := sess.advance()
	if invalidated > 0 {
		s.sessionInvalidations.Add(uint64(invalidated))
	}
	req.g = g

	useTable := req.method.CanScore() && (scoreOnly || req.topSet || req.method.Cut != nil)
	var scores *repro.Scores
	rescored := 0
	if useTable {
		sc, n, err := s.sessionScores(ctx, sess, g, req.method, req.parallel)
		if err != nil {
			done(statusFor(err), err)
			return
		}
		scores, rescored = sc, n
	} else if scoreOnly {
		var serr error
		if serr = s.scoreGate(ctx); serr == nil {
			_, serr = repro.ScoreContext(ctx, g, req.opts...)
			if serr == nil {
				serr = fmt.Errorf("method %q produced no table", req.method.Name)
			}
		}
		done(statusFor(serr), serr)
		return
	}
	cacheState := "miss"
	if scores != nil && rescored == 0 {
		cacheState = "hit"
	}
	w.Header().Set("X-Backbone-Cache", cacheState)
	w.Header().Set("X-Backbone-Session", id)
	w.Header().Set("X-Backbone-Rescored", strconv.Itoa(rescored))

	if scoreOnly {
		outcome = admission.OK
		s.writeScores(w, req, scores)
		return
	}
	if err := s.scoreGate(ctx); err != nil {
		done(statusFor(err), err)
		return
	}
	runOpts := req.opts
	if scores != nil {
		runOpts = append(runOpts, repro.WithScores(scores))
	}
	res, err := repro.BackboneContext(ctx, g, runOpts...)
	if err != nil {
		done(statusFor(err), err)
		return
	}
	outcome = admission.OK
	s.writeBackbone(w, req, res)
}

// handleSessionDelete serves DELETE /session/{id}.
func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	sum, ok := parseSessionID(id)
	if !ok {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("malformed session id %q", id))
		return
	}
	ctx, cancel, _, ok := s.intake(w, r)
	if !ok {
		return
	}
	defer cancel()
	if s.sessionRouted(ctx, w, r, sum, sum, nil) {
		return
	}
	if !s.dropSession(id) {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	s.sessionDeletes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}
