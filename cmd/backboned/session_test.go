package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/resilient"
)

// sessionClient wraps the session wire protocol for tests.
type sessionClient struct {
	t    testing.TB
	base string
	id   string
}

func openSession(t testing.TB, baseURL string, body *bytes.Buffer) *sessionClient {
	t.Helper()
	resp, err := http.Post(baseURL+"/session", "text/csv", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Session string `json:"session"`
		Nodes   int    `json:"nodes"`
		Edges   int    `json:"edges"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("create session: %v in %s", err, raw)
	}
	if out.Session == "" || out.Edges == 0 {
		t.Fatalf("create session: empty response %s", raw)
	}
	if loc := resp.Header.Get("Location"); loc != "/session/"+out.Session {
		t.Fatalf("Location %q does not name session %q", loc, out.Session)
	}
	return &sessionClient{t: t, base: baseURL, id: out.Session}
}

type wireUpdate struct {
	Src    string   `json:"src"`
	Dst    string   `json:"dst"`
	Weight *float64 `json:"weight"`
}

func (c *sessionClient) update(ups []wireUpdate) (*http.Response, []byte) {
	c.t.Helper()
	body, err := json.Marshal(map[string]any{"updates": ups})
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.base+"/session/"+c.id+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func (c *sessionClient) mustUpdate(ups []wireUpdate) {
	c.t.Helper()
	resp, raw := c.update(ups)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("update: status %d: %s", resp.StatusCode, raw)
	}
}

// close issues a best-effort DELETE for the session.
func (c *sessionClient) close() {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/session/"+c.id, nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func (c *sessionClient) get(endpoint, query string) (*http.Response, []byte) {
	c.t.Helper()
	resp, err := http.Get(c.base + "/session/" + c.id + "/" + endpoint + "?" + query)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// sessionOracle tracks the session's intended edge set so tests can
// rebuild the equivalent full body and compare against the stateless
// endpoints. Pairs are keyed by canonical node IDs of the base graph.
type sessionOracle struct {
	g     *repro.Graph
	state map[[2]int32]float64
}

func newSessionOracle(g *repro.Graph) *sessionOracle {
	o := &sessionOracle{g: g, state: map[[2]int32]float64{}}
	for _, e := range g.Edges() {
		o.state[[2]int32{e.Src, e.Dst}] = e.Weight
	}
	return o
}

func (o *sessionOracle) apply(ups []wireUpdate) {
	for _, u := range ups {
		src, dst := int32(o.g.NodeID(u.Src)), int32(o.g.NodeID(u.Dst))
		if src > dst {
			src, dst = dst, src
		}
		var w float64
		if u.Weight != nil {
			w = *u.Weight
		}
		if w == 0 {
			delete(o.state, [2]int32{src, dst})
		} else {
			o.state[[2]int32{src, dst}] = w
		}
	}
}

// body re-encodes the oracle's current edge set as a CSV body — what a
// stateless client would POST after the same updates.
func (o *sessionOracle) body(t testing.TB) *bytes.Buffer {
	t.Helper()
	keys := make([][2]int32, 0, len(o.state))
	//lint:detiter-ok keys are sorted before use
	for k := range o.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	b := repro.NewBuilder(false)
	for _, k := range keys {
		if err := b.AddEdgeLabels(o.g.Label(int(k[0])), o.g.Label(int(k[1])), o.state[k]); err != nil {
			t.Fatal(err)
		}
	}
	return encodeGraph(t, b.Build(), "csv")
}

// semanticDiffCSV compares two CSV responses as row sets keyed by
// their (undirected) endpoint labels: the header and row count must
// match exactly, weight columns byte-for-byte, score columns to
// relative float tolerance. Node IDs — and therefore row order,
// endpoint orientation and float summation order — depend on label
// first-appearance order in the posted body, so byte equality is not
// defined between a session and a stateless re-post of a different
// body. Returns "" when equal, else a description of the first
// difference.
func semanticDiffCSV(got, want []byte) string {
	parse := func(raw []byte) (string, map[string][]string) {
		lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		rows := make(map[string][]string, len(lines))
		for _, line := range lines[1:] {
			f := strings.Split(line, ",")
			if len(f) < 2 {
				return lines[0], nil
			}
			a, b := f[0], f[1]
			if a > b {
				a, b = b, a
			}
			rows[a+","+b] = f[2:]
		}
		return lines[0], rows
	}
	gh, grows := parse(got)
	wh, wrows := parse(want)
	if gh != wh {
		return "headers differ: " + gh + " vs " + wh
	}
	if len(grows) != len(wrows) {
		return "row counts differ: " + strconv.Itoa(len(grows)) + " vs " + strconv.Itoa(len(wrows))
	}
	for key, gf := range grows {
		wf, ok := wrows[key]
		if !ok {
			return "row " + key + " only in session response"
		}
		if len(gf) != len(wf) {
			return "row " + key + ": field counts differ"
		}
		for i := range gf {
			if gf[i] == wf[i] {
				continue
			}
			gv, gerr := strconv.ParseFloat(gf[i], 64)
			wv, werr := strconv.ParseFloat(wf[i], 64)
			if gerr != nil || werr != nil ||
				math.Abs(gv-wv) > 1e-9*math.Max(1, math.Max(math.Abs(gv), math.Abs(wv))) {
				return "row " + key + ": field " + strconv.Itoa(i) + ": " + gf[i] + " vs " + wf[i]
			}
		}
	}
	return ""
}

// firstDiffLine reports the first line where two responses differ.
func firstDiffLine(got, want string) string {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			return "line " + strconv.Itoa(i+1) + ":\nsession:   " + g + "\nstateless: " + w
		}
	}
	return "lengths differ only"
}

// post runs a stateless POST endpoint and returns status + body.
func postBody(t testing.TB, url string, body *bytes.Buffer) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestSessionLifecycleBitIdentical is the tentpole acceptance test.
// A session driven by a random update stream must answer every read
// with exactly the bytes a cold rebuild produces: a fresh "replay"
// session over the same base body, handed the whole update history in
// one batch, answers from a full rescore of the bit-identical
// materialized graph — the incremental session must match it
// byte-for-byte, for a frontier method (df), global-signature methods
// (nc, nt) and an extract-only method (mst). A stateless re-post of
// the modified edge list is additionally checked as a semantic
// oracle: same rows, same weights, scores equal to float tolerance
// (node IDs — and so summation order and final ulps — depend on label
// first-appearance order in the posted body, so exact bytes are not
// defined across different bodies).
func TestSessionLifecycleBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, 4, 30*time.Second)
	g := testGraph(t, 300)
	oracle := newSessionOracle(g)
	base := encodeGraph(t, g, "csv")
	c := openSession(t, ts.URL, base)

	rng := rand.New(rand.NewSource(41))
	labels := g.Labels()
	randomBatch := func() []wireUpdate {
		ups := make([]wireUpdate, rng.Intn(4)+1)
		for i := range ups {
			u, v := rng.Intn(len(labels)), rng.Intn(len(labels))
			for u == v {
				v = rng.Intn(len(labels))
			}
			w := 0.0
			if rng.Intn(4) != 0 {
				w = float64(rng.Intn(40) + 1)
			}
			ups[i] = wireUpdate{Src: labels[u], Dst: labels[v], Weight: &w}
		}
		return ups
	}

	var history []wireUpdate
	for step := 0; step < 6; step++ {
		batch := randomBatch()
		c.mustUpdate(batch)
		oracle.apply(batch)
		history = append(history, batch...)

		// Cold-rebuild oracle: same base body (the graph cache even
		// hands both sessions the same *Graph), whole history in one
		// batch, no warm tables — every read is a full rescore of the
		// same materialized graph.
		replay := openSession(t, ts.URL, base)
		replay.mustUpdate(history)
		full := oracle.body(t)

		for _, q := range []struct{ endpoint, query string }{
			{"backbone", "method=df"},
			{"backbone", "method=nc&delta=1.64"},
			{"backbone", "method=mst"},
			{"backbone", "method=nt&top=40"},
			{"score", "method=df"},
		} {
			resp, got := c.get(q.endpoint, q.query)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("step %d %s?%s: status %d: %s", step, q.endpoint, q.query, resp.StatusCode, got)
			}
			if resp.Header.Get("X-Backbone-Session") != c.id {
				t.Fatalf("step %d: missing session header", step)
			}

			rresp, cold := replay.get(q.endpoint, q.query)
			if rresp.StatusCode != http.StatusOK {
				t.Fatalf("step %d replay %s?%s: status %d: %s", step, q.endpoint, q.query, rresp.StatusCode, cold)
			}
			if !bytes.Equal(got, cold) {
				t.Fatalf("step %d %s?%s: incremental diverges from cold rebuild\n%s",
					step, q.endpoint, q.query, firstDiffLine(string(got), string(cold)))
			}

			status, want := postBody(t, ts.URL+"/"+q.endpoint+"?"+q.query, full)
			if status != http.StatusOK {
				t.Fatalf("step %d stateless %s?%s: status %d: %s", step, q.endpoint, q.query, status, want)
			}
			if diff := semanticDiffCSV(got, want); diff != "" {
				t.Fatalf("step %d %s?%s: session response diverges from stateless re-post: %s",
					step, q.endpoint, q.query, diff)
			}
		}
		replay.close()
	}
}

// TestSessionRescoredSubset pins the perf contract at the HTTP layer:
// after the first (full) scoring read, a single-edge update re-scores
// a strict subset of rows for a frontier method, and repeating the
// read without updates re-scores nothing.
func TestSessionRescoredSubset(t *testing.T) {
	_, ts := newTestServer(t, 4, 30*time.Second)
	g := testGraph(t, 400)
	c := openSession(t, ts.URL, encodeGraph(t, g, "csv"))

	rescoredOf := func(resp *http.Response) int {
		t.Helper()
		n, err := strconv.Atoi(resp.Header.Get("X-Backbone-Rescored"))
		if err != nil {
			t.Fatalf("X-Backbone-Rescored %q: %v", resp.Header.Get("X-Backbone-Rescored"), err)
		}
		return n
	}

	resp, _ := c.get("backbone", "method=df")
	first := rescoredOf(resp)
	if first != g.NumEdges() || resp.Header.Get("X-Backbone-Cache") != "miss" {
		t.Fatalf("first read: rescored %d of %d, cache %q; want full miss",
			first, g.NumEdges(), resp.Header.Get("X-Backbone-Cache"))
	}

	w := 7.0
	c.mustUpdate([]wireUpdate{{Src: g.Label(0), Dst: g.Label(1), Weight: &w}})
	resp, _ = c.get("backbone", "method=df")
	delta := rescoredOf(resp)
	if delta == 0 || delta >= g.NumEdges() {
		t.Fatalf("incremental read rescored %d of %d rows; want a strict non-empty subset", delta, g.NumEdges())
	}

	resp, _ = c.get("backbone", "method=df")
	if n := rescoredOf(resp); n != 0 || resp.Header.Get("X-Backbone-Cache") != "hit" {
		t.Fatalf("repeat read: rescored %d, cache %q; want 0/hit", n, resp.Header.Get("X-Backbone-Cache"))
	}
}

// TestSessionValidation covers the caller-mistake surface: malformed
// IDs, unknown sessions, unknown node labels, empty and invalid update
// batches — and that a failed batch leaves the session untouched.
func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	g := testGraph(t, 60)
	c := openSession(t, ts.URL, encodeGraph(t, g, "csv"))

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := get("/session/not-a-session-id/backbone"); s != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d", s)
	}
	ghost := strings.Repeat("ab", 32) + ".00000000"
	if s := get("/session/" + ghost + "/backbone"); s != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", s)
	}

	w := 5.0
	neg := -1.0
	cases := []struct {
		name string
		ups  []wireUpdate
		want int
	}{
		{"unknown src", []wireUpdate{{Src: "nope", Dst: g.Label(0), Weight: &w}}, http.StatusBadRequest},
		{"unknown dst", []wireUpdate{{Src: g.Label(0), Dst: "nope", Weight: &w}}, http.StatusBadRequest},
		{"self loop", []wireUpdate{{Src: g.Label(0), Dst: g.Label(0), Weight: &w}}, http.StatusBadRequest},
		{"negative weight", []wireUpdate{{Src: g.Label(0), Dst: g.Label(1), Weight: &neg}}, http.StatusBadRequest},
		{"empty batch", nil, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := c.update(tc.ups)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, raw, tc.want)
		}
	}

	// The failed batches must not have perturbed the session: a read
	// still answers exactly the original body's backbone.
	resp, got := c.get("backbone", "method=df")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after failed updates: %d", resp.StatusCode)
	}
	status, want := postBody(t, ts.URL+"/backbone?method=df", encodeGraph(t, g, "csv"))
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("session diverged after rejected updates")
	}
}

// TestSessionEvictionAndCounters: the -max-sessions LRU bound evicts
// the oldest session, and /statsz exposes the session counters the
// tentpole requires (delta invalidations included).
func TestSessionEvictionAndCounters(t *testing.T) {
	s := newServer(serverConfig{
		workers: 2, timeout: 10 * time.Second, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
		maxSessions: 2, logf: t.Logf,
	})
	ts := newHTTPTestServer(t, s)

	g := testGraph(t, 80)
	first := openSession(t, ts, encodeGraph(t, g, "csv"))
	// Touch a table so the later update invalidates it.
	if resp, raw := first.get("backbone", "method=df"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first read: %d: %s", resp.StatusCode, raw)
	}
	w := 3.0
	first.mustUpdate([]wireUpdate{{Src: g.Label(0), Dst: g.Label(2), Weight: &w}})
	if resp, _ := first.get("backbone", "method=df"); resp.StatusCode != http.StatusOK {
		t.Fatalf("read after update: %d", resp.StatusCode)
	}

	second := openSession(t, ts, encodeGraph(t, testGraph(t, 40), "csv"))
	_ = second
	third := openSession(t, ts, encodeGraph(t, testGraph(t, 20), "csv"))
	_ = third
	// Capacity 2: the third create evicted the least recently used
	// session (the first — the other two were created after its last
	// touch).
	if resp, _ := first.get("backbone", "method=df"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still answers: %d", resp.StatusCode)
	}

	resp, err := http.Get(ts + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Sessions struct {
			Active             int    `json:"active"`
			Creates            uint64 `json:"creates"`
			Updates            uint64 `json:"updates"`
			Reads              uint64 `json:"reads"`
			Evictions          uint64 `json:"evictions"`
			DeltaInvalidations uint64 `json:"delta_invalidations"`
			RescoredRows       uint64 `json:"rescored_rows"`
			FullRescores       uint64 `json:"full_rescores"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ss := stats.Sessions
	if ss.Active != 2 || ss.Creates != 3 || ss.Evictions != 1 {
		t.Errorf("sessions gauge wrong: %+v", ss)
	}
	if ss.Updates != 1 || ss.Reads < 2 {
		t.Errorf("session traffic counters wrong: %+v", ss)
	}
	if ss.DeltaInvalidations < 1 {
		t.Errorf("update dirtied a scored table but delta_invalidations = %d", ss.DeltaInvalidations)
	}
	if ss.RescoredRows == 0 || ss.FullRescores == 0 {
		t.Errorf("rescore accounting empty: %+v", ss)
	}
}

// newHTTPTestServer starts an httptest server over an existing server
// value (newTestServer builds its own config).
func newHTTPTestServer(t testing.TB, s *server) string {
	t.Helper()
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestSessionDelete: DELETE closes a session; further traffic 404s.
func TestSessionDelete(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	g := testGraph(t, 40)
	c := openSession(t, ts.URL, encodeGraph(t, g, "csv"))

	del := func() int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+c.id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := del(); s != http.StatusNoContent {
		t.Fatalf("delete: status %d", s)
	}
	if resp, _ := c.get("backbone", "method=df"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("read after delete: %d", resp.StatusCode)
	}
	if s := del(); s != http.StatusNotFound {
		t.Fatalf("double delete: status %d", s)
	}
}

// promLine matches one exposition sample: name, optional labels, and a
// float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+(e[-+][0-9]+)?$`)

// TestMetricszFormat: /metricsz serves valid Prometheus text
// exposition — correct content type, every sample line well-formed and
// preceded by its TYPE header, session counters included.
func TestMetricszFormat(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	g := testGraph(t, 60)
	c := openSession(t, ts.URL, encodeGraph(t, g, "csv"))
	if resp, raw := c.get("backbone", "method=df"); resp.StatusCode != http.StatusOK {
		t.Fatalf("read: %d: %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q, want %q", ct, metricsContentType)
	}
	raw, _ := io.ReadAll(resp.Body)

	typed := map[string]bool{}
	values := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
				t.Fatalf("line %d: bad TYPE header %q (only counters and gauges are exposed)", i+1, line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !typed[name] {
			t.Fatalf("line %d: sample %q has no preceding TYPE header", i+1, name)
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q", i+1, line)
		}
		values[name] += v
	}

	for _, want := range []string{
		"backboned_uptime_seconds", "backboned_requests_total",
		"backboned_cache_hits_total", "backboned_admission_admitted_total",
		"backboned_deadline_violations_total",
		"backboned_sessions_active", "backboned_session_creates_total",
		"backboned_session_delta_invalidations_total",
	} {
		if !typed[want] {
			t.Errorf("metric family %q missing from exposition", want)
		}
	}
	if values["backboned_session_creates_total"] < 1 || values["backboned_sessions_active"] < 1 {
		t.Errorf("session metrics not counting: creates=%v active=%v",
			values["backboned_session_creates_total"], values["backboned_sessions_active"])
	}
	if values["backboned_requests_total"] < 2 {
		t.Errorf("requests_total = %v, want >= 2", values["backboned_requests_total"])
	}
}

// TestSessionFleetPinning: session traffic routes to the creating
// body's rendezvous owner from any peer, and when the owner dies the
// fleet answers 503 — stateful routes never degrade to a peer without
// the delta.
func TestSessionFleetPinning(t *testing.T) {
	h := startFleet(t, 2, nil)
	g := testGraph(t, 120)
	body := encodeGraph(t, g, "csv")
	owner := h.ownerIndex(t, body.Bytes())
	other := 1 - owner

	// Create through the NON-owner: the request must land on the owner.
	c := openSession(t, h.url(other), body)
	// Both peers answer reads with identical bytes (the non-owner
	// forwards to the owner's session state).
	var first []byte
	for _, peer := range []int{owner, other} {
		pc := &sessionClient{t: t, base: h.url(peer), id: c.id}
		resp, raw := pc.get("backbone", "method=df")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("peer %d read: %d: %s", peer, resp.StatusCode, raw)
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Fatalf("peers disagree on session read")
		}
	}
	// Updates through the non-owner reach the owner's delta.
	w := 9.0
	pc := &sessionClient{t: t, base: h.url(other), id: c.id}
	pc.mustUpdate([]wireUpdate{{Src: g.Label(0), Dst: g.Label(3), Weight: &w}})
	resp, _ := pc.get("backbone", "method=df")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after forwarded update: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(servedByHeader); got != h.addrs[owner] {
		t.Fatalf("session read served by %q, want owner %q", got, h.addrs[owner])
	}

	// Owner gone: the surviving peer must refuse with 503, not compute
	// a divergent local answer.
	h.kill(owner)
	resp, raw := pc.get("backbone", "method=df")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read with dead owner: status %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	if n := h.servers[other].sessionOwnerMiss.Load(); n == 0 {
		t.Errorf("owner_unavailable counter not incremented")
	}
}

// TestSessionConcurrentChaos hammers one server with concurrent
// session creates, updates, reads and deletes under fault injection —
// the race-detector job runs this; any data race or panic fails it.
func TestSessionConcurrentChaos(t *testing.T) {
	fault, err := resilient.ParseFaultSpec("error=0.1,latency=2ms,latency-rate=0.3")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(serverConfig{
		workers: 4, timeout: 10 * time.Second, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
		maxSessions: 4, fault: fault, logf: func(string, ...any) {},
	})
	ts := newHTTPTestServer(t, s)

	g := testGraph(t, 150)
	body := encodeGraph(t, g, "csv")
	ids := make([]string, 3)
	for i := range ids {
		for {
			resp, err := http.Post(ts+"/session", "text/csv", bytes.NewReader(body.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusCreated {
				var out struct {
					Session string `json:"session"`
				}
				if err := json.Unmarshal(raw, &out); err != nil {
					t.Fatal(err)
				}
				ids[i] = out.Session
				break
			}
			// Chaos injected a failure; retry until the create lands.
		}
	}

	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			labels := g.Labels()
			for i := 0; i < 30; i++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(4) {
				case 0: // update
					w := float64(rng.Intn(20))
					u, v := rng.Intn(len(labels)), rng.Intn(len(labels))
					if u == v {
						continue
					}
					ub, _ := json.Marshal(map[string]any{"updates": []wireUpdate{
						{Src: labels[u], Dst: labels[v], Weight: &w},
					}})
					resp, err := http.Post(ts+"/session/"+id+"/update", "application/json", bytes.NewReader(ub))
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
						resp.Body.Close()
					}
				case 1, 2: // read
					method := []string{"df", "nc", "nt"}[rng.Intn(3)]
					resp, err := http.Get(ts + "/session/" + id + "/backbone?method=" + method)
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
						resp.Body.Close()
					}
				case 3: // create/evict pressure
					resp, err := http.Post(ts+"/session", "text/csv", bytes.NewReader(body.Bytes()))
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
						resp.Body.Close()
					}
				}
			}
		}(int64(worker))
	}
	wg.Wait()
}

// BenchmarkSessionUpdate measures the end-to-end HTTP cost of one
// session update batch (apply only, no scoring).
func BenchmarkSessionUpdate(b *testing.B) {
	_, ts := newTestServer(b, 4, time.Minute)
	g := testGraph(b, 50_000)
	c := openSession(b, ts.URL, encodeGraph(b, g, "csv"))
	w := 5.0
	ub, _ := json.Marshal(map[string]any{"updates": []wireUpdate{
		{Src: g.Label(0), Dst: g.Label(1), Weight: &w},
	}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/session/"+c.id+"/update", "application/json", bytes.NewReader(ub))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("update: %d", resp.StatusCode)
		}
	}
}

// BenchmarkSessionUpdateRead is the serving-path unit the 25x headline
// compares against cold re-posts: one single-edge update plus one
// incremental backbone read over HTTP.
func BenchmarkSessionUpdateRead(b *testing.B) {
	_, ts := newTestServer(b, 4, time.Minute)
	g := testGraph(b, 50_000)
	c := openSession(b, ts.URL, encodeGraph(b, g, "csv"))
	if resp, raw := c.get("backbone", "method=df"); resp.StatusCode != http.StatusOK {
		b.Fatalf("warm read: %d: %s", resp.StatusCode, raw)
	}
	weights := []float64{3, 5, 7, 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := weights[i%len(weights)]
		ub, _ := json.Marshal(map[string]any{"updates": []wireUpdate{
			{Src: g.Label(0), Dst: g.Label(1), Weight: &w},
		}})
		resp, err := http.Post(ts.URL+"/session/"+c.id+"/update", "application/json", bytes.NewReader(ub))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("update: %d", resp.StatusCode)
		}
		rresp, err := http.Get(ts.URL + "/session/" + c.id + "/backbone?method=df")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, rresp.Body) //nolint:errcheck // draining
		rresp.Body.Close()
		if rresp.StatusCode != http.StatusOK {
			b.Fatalf("read: %d", rresp.StatusCode)
		}
	}
}
