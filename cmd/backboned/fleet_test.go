package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/fleet"
	"repro/internal/resilient"
)

// fleetQuery is the scoring request every fleet test exercises. The
// CSV response is byte-deterministic for a given body, which is what
// lets the tests demand bit-identical output from any serving path
// (owner, cache, or degraded local fallback). response=json would not
// be: its duration_ms field varies run to run.
const fleetQuery = "/backbone?method=nc&delta=1.64"

// fleetHarness is N in-process backboned peers listening on real
// loopback ports (each peer must know the others' dialable addresses
// before any server starts, so httptest's start-then-ask URL order
// cannot wire a fleet).
type fleetHarness struct {
	addrs   []string
	servers []*server
	httpds  []*http.Server
}

// startFleet boots n peers wired into one fleet. faults chaos-injects
// into the local serving path of the peer at that index. The retry,
// breaker and timeout tuning keeps failure detection well under a
// second so the kill tests stay fast.
func startFleet(t *testing.T, n int, faults map[int]*resilient.Fault) *fleetHarness {
	t.Helper()
	h := &fleetHarness{}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		h.addrs = append(h.addrs, ln.Addr().String())
	}
	for i, ln := range listeners {
		fl, err := fleet.New(fleet.Config{
			Self:           h.addrs[i],
			Peers:          h.addrs,
			AttemptTimeout: 2 * time.Second,
			Retry:          resilient.Retry{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
			// Cooldown an hour: once a breaker opens mid-test it stays
			// observably open instead of racing the assertions through
			// half-open probes.
			Breaker: resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		s := newServer(serverConfig{
			workers: 4, timeout: 10 * time.Second, maxBody: 1 << 24,
			graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
			fleet: fl, fault: faults[i],
		})
		// Expected noise: chaos partial-response aborts and kill tests
		// sever connections; net/http logs both.
		hs := &http.Server{Handler: s, ErrorLog: log.New(io.Discard, "", 0)}
		go hs.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
		h.servers = append(h.servers, s)
		h.httpds = append(h.httpds, hs)
	}
	t.Cleanup(func() {
		for _, hs := range h.httpds {
			hs.Close()
		}
	})
	return h
}

func (h *fleetHarness) url(i int) string { return "http://" + h.addrs[i] }

// kill severs peer i immediately: listener closed, every established
// connection reset — the mid-stream failure mode, not a graceful drain.
func (h *fleetHarness) kill(i int) { h.httpds[i].Close() }

// ownerIndex resolves which peer the fleet routes a body to.
func (h *fleetHarness) ownerIndex(t testing.TB, body []byte) int {
	t.Helper()
	addr := h.servers[0].fleet.Owner(fleet.Digest(sha256.Sum256(body)))
	for i, a := range h.addrs {
		if a == addr {
			return i
		}
	}
	t.Fatalf("owner %q not in fleet %v", addr, h.addrs)
	return -1
}

// fleetBodies generates distinct CSV edge-list bodies until every peer
// owns at least one, returning them grouped by owner index.
func (h *fleetHarness) fleetBodies(t testing.TB, total int) map[int][][]byte {
	t.Helper()
	byOwner := map[int][][]byte{}
	for seed := int64(1); seed <= int64(total); seed++ {
		body := fleetGraphBody(t, seed)
		i := h.ownerIndex(t, body)
		byOwner[i] = append(byOwner[i], body)
	}
	for i := range h.addrs {
		if len(byOwner[i]) == 0 {
			t.Fatalf("no generated body hashed to peer %d of %d; add seeds", i, len(h.addrs))
		}
	}
	return byOwner
}

// fleetGraphBody builds one reproducible random 300-edge network and
// encodes it as CSV; distinct seeds give distinct digests.
func fleetGraphBody(t testing.TB, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := repro.NewBuilder(false)
	const n = 80
	for added := 0; added < 300; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdgeLabels(fmt.Sprintf("n%d", u), fmt.Sprintf("n%d", v), 1+rng.Float64()*20); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return encodeGraph(t, b.Build(), "csv").Bytes()
}

// postFleet posts one scoring request and returns the response and its
// full body.
func postFleet(t testing.TB, baseURL string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+fleetQuery, "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", baseURL, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

// referenceBodies computes the single-node answer for each body — the
// ground truth every fleet serving path must match bit for bit.
func referenceBodies(t *testing.T, bodies [][]byte) map[string][]byte {
	t.Helper()
	_, ref := newTestServer(t, 4, 10*time.Second)
	want := map[string][]byte{}
	for _, body := range bodies {
		resp, out := postFleet(t, ref.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference server: status %d: %s", resp.StatusCode, out)
		}
		want[string(body)] = out
	}
	return want
}

// fleetStatsz decodes the fleet section of one peer's /statsz.
func fleetStatsz(t testing.TB, baseURL string) (self string, peers map[string]fleet.PeerStats) {
	t.Helper()
	resp, err := http.Get(baseURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Fleet struct {
			Self  string            `json:"self"`
			Peers []fleet.PeerStats `json:"peers"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	peers = map[string]fleet.PeerStats{}
	for _, p := range out.Fleet.Peers {
		peers[p.Addr] = p
	}
	return out.Fleet.Self, peers
}

// TestFleetRoutesBitIdentical: a healthy 3-peer fleet answers every
// request with exactly the bytes a single-node server produces,
// whichever peer receives it, and stamps X-Backbone-Served-By with the
// body's rendezvous owner. Also pins the one-hop rule: a request
// already carrying the forwarded marker is served locally even by a
// non-owner.
func TestFleetRoutesBitIdentical(t *testing.T) {
	h := startFleet(t, 3, nil)
	byOwner := h.fleetBodies(t, 12)
	var all [][]byte
	for _, bodies := range byOwner {
		all = append(all, bodies...)
	}
	want := referenceBodies(t, all)

	forwarded := 0
	for _, body := range all {
		owner := h.ownerIndex(t, body)
		for i := range h.addrs {
			resp, out := postFleet(t, h.url(i), body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("peer %d: status %d: %s", i, resp.StatusCode, out)
			}
			if got := resp.Header.Get(servedByHeader); got != h.addrs[owner] {
				t.Errorf("peer %d: served-by %q, want owner %q", i, got, h.addrs[owner])
			}
			if got := resp.Header.Get(degradedHeader); got != "" {
				t.Errorf("peer %d: unexpected degraded response (%s) in a healthy fleet", i, got)
			}
			if !bytes.Equal(out, want[string(body)]) {
				t.Errorf("peer %d: response differs from single-node run (%d vs %d bytes)", i, len(out), len(want[string(body)]))
			}
			if i != owner {
				forwarded++
			}
		}
	}
	if forwarded == 0 {
		t.Fatal("no request exercised forwarding; body generation is broken")
	}

	// One-hop rule: a marked request posted to a non-owner is answered
	// locally — correct bytes, served-by the receiving peer itself.
	body := all[0]
	nonOwner := (h.ownerIndex(t, body) + 1) % len(h.addrs)
	req, err := http.NewRequest(http.MethodPost, h.url(nonOwner)+fleetQuery, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(fleet.ForwardedHeader, "test-injected")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-marker request: status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get(servedByHeader); got != h.addrs[nonOwner] {
		t.Errorf("forwarded-marker request served-by %q, want local peer %q", got, h.addrs[nonOwner])
	}
	if !bytes.Equal(out, want[string(body)]) {
		t.Error("forwarded-marker request answered with different bytes")
	}

	// Forwarding is visible in /statsz: the first peer routed bodies it
	// does not own to their owners.
	_, peers := fleetStatsz(t, h.url(0))
	var forwards uint64
	for addr, p := range peers {
		if addr != h.addrs[0] {
			forwards += p.Forwards
		}
	}
	if forwards == 0 {
		t.Error("peer 0 /statsz records no forwards after cross-peer traffic")
	}
}

// TestFleetSurvivesPeerKilledMidStream is the acceptance scenario: 3
// peers under concurrent load, one killed mid-stream. Every in-flight
// and subsequent request must still succeed, bit-identical to a
// single-node run, and the loss must be observable afterwards —
// degraded responses, fallback counters, an open breaker in /statsz.
func TestFleetSurvivesPeerKilledMidStream(t *testing.T) {
	h := startFleet(t, 3, nil)
	byOwner := h.fleetBodies(t, 12)
	const victim = 2
	var all [][]byte
	for _, bodies := range byOwner {
		all = append(all, bodies...)
	}
	want := referenceBodies(t, all)

	type result struct {
		body   []byte
		status int
		out    []byte
	}
	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := all[rng.Intn(len(all))]
				// Survivors only: the victim's clients are assumed to
				// fail over to live peers themselves (that is what
				// /readyz is for); the fleet's promise is that the
				// survivors keep answering for the victim's shard.
				resp, err := http.Post(h.url(i%2)+fleetQuery, "text/csv", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					results = append(results, result{body: body, status: -1})
					mu.Unlock()
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				results = append(results, result{body: body, status: resp.StatusCode, out: out})
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond) // let load reach steady state
	h.kill(victim)
	time.Sleep(450 * time.Millisecond) // keep serving through and after the loss
	close(stop)
	wg.Wait()

	if len(results) == 0 {
		t.Fatal("load generator produced no results")
	}
	bad := 0
	for _, r := range results {
		if r.status != http.StatusOK {
			bad++
			t.Errorf("request failed across the kill: status %d", r.status)
			continue
		}
		if !bytes.Equal(r.out, want[string(r.body)]) {
			bad++
			t.Error("response across the kill differs from single-node run")
		}
	}
	t.Logf("%d requests across the kill, %d bad", len(results), bad)

	// A victim-owned body posted after the kill is answered locally,
	// correctly, and says so.
	body := byOwner[victim][0]
	resp, out := postFleet(t, h.url(0), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill request: status %d: %s", resp.StatusCode, out)
	}
	if !bytes.Equal(out, want[string(body)]) {
		t.Error("post-kill degraded response differs from single-node run")
	}
	if got := resp.Header.Get(servedByHeader); got != h.addrs[0] {
		t.Errorf("post-kill served-by %q, want local peer %q", got, h.addrs[0])
	}
	reason := resp.Header.Get(degradedHeader)
	if reason != "peer-unavailable" && reason != "breaker-open" {
		t.Errorf("post-kill degraded reason %q, want peer-unavailable or breaker-open", reason)
	}

	// The loss is observable: peer 0's /statsz shows fallbacks against
	// the victim, and the victim's breaker tripped open under the load.
	self, peers := fleetStatsz(t, h.url(0))
	if self != h.addrs[0] {
		t.Errorf("/statsz fleet.self = %q, want %q", self, h.addrs[0])
	}
	vp := peers[h.addrs[victim]]
	if vp.Fallbacks == 0 {
		t.Error("/statsz records no fallbacks against the killed peer")
	}
	if vp.Failures == 0 {
		t.Error("/statsz records no failed attempts against the killed peer")
	}
	if vp.Breaker.State != "open" {
		t.Errorf("/statsz breaker state for killed peer = %q, want open", vp.Breaker.State)
	}
}

// TestFleetFaultInjectedPeerDegrades is the second acceptance leg: one
// peer answers every local request with an injected error (the -chaos
// error path at rate 1.0). Requests to the healthy peers must all
// succeed bit-identical to single-node; bodies owned by the poisoned
// peer come back degraded.
func TestFleetFaultInjectedPeerDegrades(t *testing.T) {
	const victim = 2
	h := startFleet(t, 3, map[int]*resilient.Fault{
		victim: {ErrorRate: 1},
	})
	byOwner := h.fleetBodies(t, 12)
	var all [][]byte
	for _, bodies := range byOwner {
		all = append(all, bodies...)
	}
	want := referenceBodies(t, all)

	for _, body := range all {
		owner := h.ownerIndex(t, body)
		for i := 0; i < 2; i++ { // healthy peers only
			resp, out := postFleet(t, h.url(i), body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("peer %d: status %d: %s", i, resp.StatusCode, out)
			}
			if !bytes.Equal(out, want[string(body)]) {
				t.Errorf("peer %d: response differs from single-node run", i)
			}
			reason := resp.Header.Get(degradedHeader)
			if owner == victim {
				if reason != "peer-unavailable" && reason != "breaker-open" {
					t.Errorf("victim-owned body via peer %d: degraded reason %q", i, reason)
				}
				if got := resp.Header.Get(servedByHeader); got != h.addrs[i] {
					t.Errorf("victim-owned body via peer %d: served-by %q, want local", i, got)
				}
			} else if reason != "" {
				t.Errorf("healthy-owned body via peer %d: unexpectedly degraded (%s)", i, reason)
			}
		}
	}

	// The injected errors are visible on both sides: the victim counts
	// its injections, the forwarders count failures against it.
	_, peers := fleetStatsz(t, h.url(0))
	if vp := peers[h.addrs[victim]]; vp.Failures == 0 || vp.Fallbacks == 0 {
		t.Errorf("/statsz for poisoned peer: failures=%d fallbacks=%d, want both > 0", vp.Failures, vp.Fallbacks)
	}
	if stats := h.servers[victim].fault.Stats(); stats.Errors == 0 {
		t.Error("poisoned peer recorded no injected errors")
	}
}

// TestFleetPartialResponseFallback: a peer that truncates every
// response mid-body (the -chaos partial injector) must not poison the
// fleet — the forwarder detects the short body because it buffers
// before relaying, and falls back to a full local answer.
func TestFleetPartialResponseFallback(t *testing.T) {
	const victim = 2
	h := startFleet(t, 3, map[int]*resilient.Fault{
		victim: {PartialRate: 1},
	})
	byOwner := h.fleetBodies(t, 12)
	body := byOwner[victim][0]
	want := referenceBodies(t, [][]byte{body})[string(body)]
	if len(want) <= chaosPartialLimit {
		t.Fatalf("reference response is %d bytes; must exceed the %d-byte truncation budget to test anything", len(want), chaosPartialLimit)
	}

	resp, out := postFleet(t, h.url(0), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("fallback from truncated peer returned %d bytes, want the full %d", len(out), len(want))
	}
	if reason := resp.Header.Get(degradedHeader); reason != "peer-unavailable" && reason != "breaker-open" {
		t.Errorf("degraded reason %q after truncated peer responses", reason)
	}
	if stats := h.servers[victim].fault.Stats(); stats.Partials == 0 {
		t.Error("truncating peer recorded no partial injections")
	}
}
