package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"
)

// Example_cacheConfig shows a cache-aware daemon configuration: bounded
// worker pool, per-request timeout, and content-addressed caches sized
// in bytes (the -graph-cache-mb / -score-cache-mb flags feed the same
// fields). Re-posting an identical body skips parsing and scoring, and
// the response says so via X-Backbone-Cache.
func Example_cacheConfig() {
	s := newServer(serverConfig{
		workers:         4,
		timeout:         30 * time.Second,
		maxBody:         1 << 24,
		graphCacheBytes: 64 << 20, // parsed request bodies
		scoreCacheBytes: 32 << 20, // per-(body, method) score tables
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := "a,b,3\nb,c,1\na,c,2\n"
	for _, delta := range []string{"1.64", "1.64", "3.0"} {
		resp, err := http.Post(ts.URL+"/backbone?method=nc&delta="+delta, "text/csv", strings.NewReader(body))
		if err != nil {
			fmt.Println(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		fmt.Printf("delta=%s cache=%s\n", delta, resp.Header.Get("X-Backbone-Cache"))
	}
	// The third request changes delta: parameters only move the pruning
	// threshold, so the cached score table still serves it.

	// Output:
	// delta=1.64 cache=miss
	// delta=1.64 cache=hit
	// delta=3.0 cache=hit
}
