package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/filter"
	"repro/internal/graph"
)

// slowScorer is a deliberately slow RangeScorer: every scored range
// sleeps, so a few thousand edges take seconds and cancellation can be
// observed deterministically mid-run.
type slowScorer struct{ delay time.Duration }

func (s slowScorer) Name() string { return "slowtest" }

func (s slowScorer) NewTable(g *graph.Graph) (*filter.Scores, error) {
	return &filter.Scores{G: g, Score: make([]float64, g.NumEdges()), Method: "slowtest"}, nil
}

func (s slowScorer) ScoreEdges(sc *filter.Scores, lo, hi int) {
	time.Sleep(s.delay)
	for i := lo; i < hi; i++ {
		sc.Score[i] = sc.G.Edge(i).Weight
	}
}

func (s slowScorer) Scores(g *graph.Graph) (*filter.Scores, error) { return filter.Serial(s, g) }

// panicScorer panics mid-request: the worker-pool slot-leak regression
// test needs a handler that dies between acquire and release.
type panicScorer struct{}

func (panicScorer) Name() string { return "panictest" }

func (panicScorer) Scores(g *graph.Graph) (*filter.Scores, error) {
	panic("deliberate panictest panic")
}

func TestMain(m *testing.M) {
	// Shrink the checkpoint so cancellation tests observe worker
	// checkpoints on small graphs, and register the slow method.
	filter.Checkpoint = 8
	filter.MustRegister(&filter.Method{
		Name:   "slowtest",
		Title:  "Slow Test Method",
		Desc:   "test-only scorer that sleeps per checkpoint range",
		Order:  999,
		Scorer: slowScorer{delay: 10 * time.Millisecond},
		Cut:    func(filter.Params) float64 { return 0 },
	})
	filter.MustRegister(&filter.Method{
		Name:   "panictest",
		Title:  "Panic Test Method",
		Desc:   "test-only scorer that panics mid-request",
		Order:  998,
		Scorer: panicScorer{},
		Cut:    func(filter.Params) float64 { return 0 },
	})
	os.Exit(m.Run())
}

// testGraph builds a reproducible random graph with m edges.
func testGraph(t testing.TB, m int) *repro.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	n := m/4 + 2
	b := repro.NewBuilder(false)
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdgeLabels(fmt.Sprintf("n%d", u), fmt.Sprintf("n%d", v), 1+rng.Float64()*20); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return b.Build()
}

func encodeGraph(t testing.TB, g *repro.Graph, format string) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := repro.WriteGraph(&buf, g, repro.WithFormat(format)); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func newTestServer(t testing.TB, workers int, timeout time.Duration) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(serverConfig{
		workers: workers, timeout: timeout, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
		logf: t.Logf,
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestMethodsEndpoint: GET /methods serves the registry schema.
func TestMethodsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	resp, err := http.Get(ts.URL + "/methods")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var methods []methodJSON
	if err := json.NewDecoder(resp.Body).Decode(&methods); err != nil {
		t.Fatal(err)
	}
	byName := map[string]methodJSON{}
	for _, m := range methods {
		byName[m.Name] = m
	}
	nc, ok := byName["nc"]
	if !ok {
		t.Fatalf("nc missing from %v", methods)
	}
	if !nc.CanScore || !nc.Parallel || len(nc.Params) != 1 || nc.Params[0].Name != "delta" {
		t.Errorf("nc schema wrong: %+v", nc)
	}
	if mst := byName["mst"]; mst.CanScore || !mst.FixedSize {
		t.Errorf("mst schema wrong: %+v", byName["mst"])
	}
}

// TestBackboneEndToEndNDJSON: POST an ndjson edge list, get the same
// backbone the library computes, as ndjson.
func TestBackboneEndToEndNDJSON(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	g := testGraph(t, 400)
	want, err := repro.Backbone(g, repro.WithMethod("nt"), repro.WithWeightThreshold(15))
	if err != nil {
		t.Fatal(err)
	}

	body := encodeGraph(t, g, "ndjson")
	resp, err := http.Post(ts.URL+"/backbone?method=nt&threshold=15&outformat=ndjson", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Backbone-Method"); got != "nt" {
		t.Errorf("X-Backbone-Method = %q", got)
	}
	got, err := repro.ReadGraph(resp.Body, repro.WithFormat("ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.Backbone.NumEdges() {
		t.Errorf("backbone has %d edges, want %d", got.NumEdges(), want.Backbone.NumEdges())
	}
	if got.NumEdges() == 0 || got.NumEdges() == g.NumEdges() {
		t.Errorf("degenerate backbone: %d of %d edges", got.NumEdges(), g.NumEdges())
	}
}

// TestBackboneJSONResponseAndEnvelope: the JSON envelope carries
// method+params+edges; response=json returns the metadata document.
func TestBackboneJSONResponseAndEnvelope(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	env := map[string]any{
		"method": "df",
		"params": map[string]float64{"alpha": 0.2},
		"edges": []map[string]any{
			{"src": "a", "dst": "b", "weight": 30},
			{"src": "a", "dst": "c", "weight": 1},
			{"src": "b", "dst": "c", "weight": 25},
			{"src": 7, "dst": "b", "weight": 2},
		},
	}
	body, _ := json.Marshal(env)
	resp, err := http.Post(ts.URL+"/backbone?response=json", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var out struct {
		Method     string             `json:"method"`
		Params     map[string]float64 `json:"params"`
		InputEdges int                `json:"input_edges"`
		Backbone   []edgeJSON         `json:"backbone"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Method != "df" || out.Params["alpha"] != 0.2 || out.InputEdges != 4 {
		t.Errorf("unexpected response: %+v", out)
	}
}

// TestScoreEndpoint: POST /score returns the per-edge table with a
// score column.
func TestScoreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	g := testGraph(t, 100)
	resp, err := http.Post(ts.URL+"/score?method=nc&response=json", "text/csv", encodeGraph(t, g, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var out struct {
		Method string     `json:"method"`
		Scores []edgeJSON `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Method != "nc" || len(out.Scores) != g.NumEdges() {
		t.Errorf("got %d scores from %q, want %d from nc", len(out.Scores), out.Method, g.NumEdges())
	}
}

// TestBadRequests: caller mistakes map to 400 with a JSON error body.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	edgeList := "a,b,1\nb,c,2\n"
	cases := []struct {
		name, url, body, ct string
	}{
		{"unknown method", "/backbone?method=bogus", edgeList, "text/csv"},
		{"unknown param", "/backbone?method=nc&alpha=0.1", edgeList, "text/csv"},
		{"bad param value", "/backbone?method=nc&delta=abc", edgeList, "text/csv"},
		{"topk on mst", "/backbone?method=mst&top=5", edgeList, "text/csv"},
		{"unknown format", "/backbone?format=parquet", edgeList, "text/csv"},
		{"unknown outformat", "/backbone?outformat=parquet", edgeList, "text/csv"},
		{"score on mst", "/score?method=mst", edgeList, "text/csv"},
		{"malformed body", "/backbone", "a,b\n", "text/csv"},
		{"empty envelope", "/backbone", "{}", "application/json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.url, c.ct, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				msg, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, msg)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Errorf("error body not JSON: %v %v", e, err)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/backbone"); err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /backbone: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestRequestCancellationStopsScoring: a client that disconnects
// mid-run cancels the request context, and the in-flight scoring loop
// observes context.Canceled at its next checkpoint — long before the
// full (deliberately slow) run would have completed.
func TestRequestCancellationStopsScoring(t *testing.T) {
	s, ts := newTestServer(t, 2, time.Minute)
	errc := make(chan error, 8)
	s.onError = func(status int, err error) {
		if status == statusClientClosedRequest {
			errc <- err
		}
	}
	// 4096 edges at checkpoint 8 and 10ms per range = ~5s of scoring.
	g := testGraph(t, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/backbone?method=slowtest", encodeGraph(t, g, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")

	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(150 * time.Millisecond) // let scoring start
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("handler error = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("cancellation took %v to reach the scoring loop", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("handler never observed the cancelled request context")
	}
	<-done
}

// TestRequestTimeout504: the per-request timeout expires mid-run and
// maps to 504 Gateway Timeout.
func TestRequestTimeout504(t *testing.T) {
	_, ts := newTestServer(t, 2, 200*time.Millisecond)
	g := testGraph(t, 4096)
	resp, err := http.Post(ts.URL+"/backbone?method=slowtest", "text/csv", encodeGraph(t, g, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}

// TestWorkerPoolSaturation: with the only worker slot occupied by a
// slow run, a second request gives up waiting for admission when its
// context expires, and the server records 503 for it.
func TestWorkerPoolSaturation(t *testing.T) {
	s, ts := newTestServer(t, 1, 2*time.Second)
	saturated := make(chan struct{}, 8)
	s.onError = func(status int, err error) {
		if status == http.StatusServiceUnavailable {
			saturated <- struct{}{}
		}
	}
	g := testGraph(t, 4096) // ~5s of slowtest scoring, capped by the 2s timeout
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/backbone?method=slowtest", "text/csv", encodeGraph(t, g, "csv"))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(200 * time.Millisecond) // first request holds the only slot
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/backbone?method=nt", strings.NewReader("a,b,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The client may still read the 503 before its deadline fires.
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status %d, want 503", resp.StatusCode)
		} else if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Errorf("503 Retry-After = %q, want \"1\" so clients and fleet peers back off", ra)
		}
		resp.Body.Close()
	}
	select {
	case <-saturated:
	case <-time.After(2 * time.Second):
		t.Error("server never recorded a 503 for the queued request")
	}
	wg.Wait()
}

// TestConcurrentRequests hammers the bounded pool from many clients at
// once — the race-enabled CI job runs this to shake out data races in
// the worker pool and the shared registry.
func TestConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t, 4, 10*time.Second)
	g := testGraph(t, 800)
	want, err := repro.Backbone(g, repro.WithMethod("nc"), repro.WithTopK(100))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			method := []string{"nc", "df", "nt"}[i%3]
			url := fmt.Sprintf("%s/backbone?method=%s&top=100&parallel=1", ts.URL, method)
			resp, err := http.Post(url, "text/csv", encodeGraph(t, g, "csv"))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, msg)
				return
			}
			bb, err := repro.ReadGraph(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("request %d: parse response: %v", i, err)
				return
			}
			if bb.NumEdges() != want.Backbone.NumEdges() {
				errs <- fmt.Errorf("request %d (%s): %d edges, want %d", i, method, bb.NumEdges(), want.Backbone.NumEdges())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// statszSnapshot decodes GET /statsz.
type statszSnapshot struct {
	Requests   uint64 `json:"requests"`
	Draining   bool   `json:"draining"`
	GraphCache struct {
		Hits, Misses, Coalesced, Evictions uint64
		Entries                            int
		Bytes                              int64 `json:"bytes"`
	} `json:"graph_cache"`
	ScoreCache struct {
		Hits, Misses, Coalesced, Evictions uint64
		Entries                            int
		Bytes                              int64 `json:"bytes"`
	} `json:"score_cache"`
	Evaluate struct {
		Requests   uint64 `json:"requests"`
		CacheSkips uint64 `json:"cache_skips"`
	} `json:"evaluate"`
}

func getStatsz(t testing.TB, url string) statszSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statszSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCacheHitOnRepeatedRequest pins the PR-4 acceptance criterion: an
// identical repeated /backbone request skips parsing and scoring
// (X-Backbone-Cache: hit), re-posting the same body with a different
// delta is still a hit, and a different method misses scoring but
// reuses the parsed graph.
func TestCacheHitOnRepeatedRequest(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	g := testGraph(t, 400)
	body := encodeGraph(t, g, "csv").Bytes()

	post := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+url, "text/csv", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
		}
		return resp, out
	}

	resp1, out1 := post("/backbone?method=nc&delta=1.64")
	if got := resp1.Header.Get("X-Backbone-Cache"); got != "miss" {
		t.Errorf("first request X-Backbone-Cache = %q, want miss", got)
	}
	resp2, out2 := post("/backbone?method=nc&delta=1.64")
	if got := resp2.Header.Get("X-Backbone-Cache"); got != "hit" {
		t.Errorf("repeat request X-Backbone-Cache = %q, want hit", got)
	}
	if !bytes.Equal(out1, out2) {
		t.Error("cache hit served a different backbone")
	}
	// Different delta: same body, same method — still a score-cache hit.
	resp3, _ := post("/backbone?method=nc&delta=3.5")
	if got := resp3.Header.Get("X-Backbone-Cache"); got != "hit" {
		t.Errorf("different-delta request X-Backbone-Cache = %q, want hit", got)
	}
	// Different method: scoring reruns, but the parsed graph is reused.
	before := getStatsz(t, ts.URL)
	resp4, _ := post("/backbone?method=df")
	if got := resp4.Header.Get("X-Backbone-Cache"); got != "miss" {
		t.Errorf("different-method request X-Backbone-Cache = %q, want miss", got)
	}
	after := getStatsz(t, ts.URL)
	if after.GraphCache.Hits != before.GraphCache.Hits+1 {
		t.Errorf("graph cache hits %d -> %d, want +1 (parsed graph not reused)", before.GraphCache.Hits, after.GraphCache.Hits)
	}
	if after.ScoreCache.Misses != before.ScoreCache.Misses+1 {
		t.Errorf("score cache misses %d -> %d, want +1", before.ScoreCache.Misses, after.ScoreCache.Misses)
	}

	// /score rides the same table cache.
	respScore, err := http.Post(ts.URL+"/score?method=nc", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respScore.Body.Close()
	if got := respScore.Header.Get("X-Backbone-Cache"); got != "hit" {
		t.Errorf("/score after /backbone X-Backbone-Cache = %q, want hit", got)
	}
}

// TestEvaluateEndpoint: POST /evaluate returns the full multi-method
// JSON report — criteria per method, size-matched edge counts, and a
// ranking — with undefined criteria (stability without a second
// snapshot) encoded as explicit nulls, never NaN (the encoding/json
// regression this PR fixes).
func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	g := testGraph(t, 400)
	target := 40
	url := fmt.Sprintf("%s/evaluate?methods=nc,df,nt,mst&top=%d", ts.URL, target)
	resp, err := http.Post(url, "text/csv", encodeGraph(t, g, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Backbone-Eval-Methods"); got != "4" {
		t.Errorf("X-Backbone-Eval-Methods = %q, want 4", got)
	}
	// The raw body must spell out null for the undefined criteria: a NaN
	// would have failed to encode server-side.
	if !bytes.Contains(raw, []byte(`"stability":null`)) {
		t.Errorf("undefined stability not encoded as null: %s", raw)
	}
	rep := &repro.EvalReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if rep.Edges != g.NumEdges() || len(rep.Methods) != 4 || len(rep.Ranking) != 4 {
		t.Fatalf("report shape: edges %d (want %d), %d methods, %d ranked",
			rep.Edges, g.NumEdges(), len(rep.Methods), len(rep.Ranking))
	}
	for _, me := range rep.Methods {
		if me.Err != "" {
			t.Errorf("%s failed: %s", me.Method, me.Err)
			continue
		}
		if me.Method != "mst" && me.Edges != target {
			t.Errorf("%s: %d edges, want size-matched %d", me.Method, me.Edges, target)
		}
		if c := float64(me.Coverage); math.IsNaN(c) || c <= 0 || c > 1 {
			t.Errorf("%s: coverage = %v", me.Method, c)
		}
		if !math.IsNaN(float64(me.Stability)) {
			t.Errorf("%s: stability = %v without a snapshot, want null/NaN", me.Method, me.Stability)
		}
	}
}

// TestEvaluateCacheReuse pins the PR-5 acceptance criterion: once a
// body's score tables are cached, re-evaluating it returns the full
// multi-method report without re-scoring — X-Backbone-Cache: hit, and
// the /statsz evaluate counters record the skipped scoring runs. The
// tables are shared with /backbone, so pre-scoring one method there
// also counts.
func TestEvaluateCacheReuse(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	g := testGraph(t, 400)
	body := encodeGraph(t, g, "csv").Bytes()
	const methods = "nc,df,nt,mst" // three scoring methods + one extract-only

	post := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+url, "text/csv", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, out)
		}
		return resp, out
	}

	// Warm one method's table through /backbone: cross-endpoint reuse.
	post("/backbone?method=nc&delta=1.64")

	resp1, _ := post("/evaluate?methods=" + methods)
	if got := resp1.Header.Get("X-Backbone-Cache"); got != "miss" {
		t.Errorf("first /evaluate X-Backbone-Cache = %q, want miss (df and nt still had to score)", got)
	}
	if got := resp1.Header.Get("X-Backbone-Eval-Cached"); got != "1" {
		t.Errorf("first /evaluate X-Backbone-Eval-Cached = %q, want 1 (nc pre-scored via /backbone)", got)
	}

	before := getStatsz(t, ts.URL)
	resp2, raw := post("/evaluate?methods=" + methods)
	if got := resp2.Header.Get("X-Backbone-Cache"); got != "hit" {
		t.Errorf("repeat /evaluate X-Backbone-Cache = %q, want hit", got)
	}
	if got := resp2.Header.Get("X-Backbone-Eval-Scored"); got != "3" {
		t.Errorf("X-Backbone-Eval-Scored = %q, want 3", got)
	}
	if got := resp2.Header.Get("X-Backbone-Eval-Cached"); got != "3" {
		t.Errorf("X-Backbone-Eval-Cached = %q, want 3 (all tables cached)", got)
	}
	rep := &repro.EvalReport{}
	if err := json.Unmarshal(raw, rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Methods) != 4 || rep.ScoredMethods != 3 || rep.CacheHits != 3 {
		t.Errorf("cached report: %d methods, scored %d, cache hits %d; want 4/3/3",
			len(rep.Methods), rep.ScoredMethods, rep.CacheHits)
	}
	for _, me := range rep.Methods {
		if me.Err != "" {
			t.Errorf("cached evaluation lost method %s: %s", me.Method, me.Err)
		}
	}

	after := getStatsz(t, ts.URL)
	if after.Evaluate.Requests != before.Evaluate.Requests+1 {
		t.Errorf("evaluate requests %d -> %d, want +1", before.Evaluate.Requests, after.Evaluate.Requests)
	}
	if after.Evaluate.CacheSkips != before.Evaluate.CacheSkips+3 {
		t.Errorf("evaluate cache skips %d -> %d, want +3 (one per cached table)",
			before.Evaluate.CacheSkips, after.Evaluate.CacheSkips)
	}
	if after.ScoreCache.Misses != before.ScoreCache.Misses {
		t.Errorf("score cache misses %d -> %d: the cached evaluation scored something",
			before.ScoreCache.Misses, after.ScoreCache.Misses)
	}
}

// TestEvaluateValidation: /evaluate maps caller mistakes to 400 and
// non-POST to 405, like its sibling endpoints.
func TestEvaluateValidation(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	edgeList := "a,b,1\nb,c,2\n"
	for _, c := range []struct{ name, url string }{
		{"unknown method", "/evaluate?methods=bogus"},
		{"undeclared param", "/evaluate?methods=mst&delta=1"},
		{"bad top", "/evaluate?top=abc"},
		{"bad frac", "/evaluate?frac=2"},
	} {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.url, "text/csv", strings.NewReader(edgeList))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				msg, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, msg)
			}
		})
	}
	if resp, err := http.Get(ts.URL + "/evaluate"); err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /evaluate: status %d, want 405", resp.StatusCode)
		}
	}
	// A ride-along parameter declared by a selected method is accepted.
	resp, err := http.Post(ts.URL+"/evaluate?methods=nc,mst&delta=2.0", "text/csv", strings.NewReader(edgeList))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Errorf("declared ride-along param: status %d (%s)", resp.StatusCode, msg)
	}
}

// TestEvaluateQueryAndEnvelopeCompat: /evaluate accepts /backbone's
// singular ?method= spelling (and the no-op ?outformat=), and honors a
// JSON envelope's method/params fields like its sibling endpoints.
func TestEvaluateQueryAndEnvelopeCompat(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	edgeList := "a,b,1\nb,c,2\nc,d,3\n"

	decode := func(resp *http.Response) *repro.EvalReport {
		t.Helper()
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		rep := &repro.EvalReport{}
		if err := json.Unmarshal(raw, rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	resp, err := http.Post(ts.URL+"/evaluate?method=nc&outformat=json", "text/csv", strings.NewReader(edgeList))
	if err != nil {
		t.Fatal(err)
	}
	rep := decode(resp)
	if len(rep.Methods) != 1 || rep.Methods[0].Method != "nc" {
		t.Errorf("?method=nc narrowing: %+v", rep.Methods)
	}

	env := `{"method":"nt","params":{"threshold":1.5},"top":2,"edges":[
		{"src":"a","dst":"b","weight":1},{"src":"b","dst":"c","weight":2},{"src":"c","dst":"d","weight":3}]}`
	resp, err = http.Post(ts.URL+"/evaluate", "application/json", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	rep = decode(resp)
	if len(rep.Methods) != 1 || rep.Methods[0].Method != "nt" {
		t.Fatalf("envelope method narrowing: %+v", rep.Methods)
	}
	if rep.Methods[0].Params["threshold"] != 1.5 {
		t.Errorf("envelope params lost: %v", rep.Methods[0].Params)
	}
	if rep.TargetEdges != 2 || rep.Methods[0].Edges != 2 {
		t.Errorf("envelope top lost: target %d, edges %d", rep.TargetEdges, rep.Methods[0].Edges)
	}
}

// TestEvaluateTimeout504: the per-request timeout reaches the engine's
// scoring loops — /evaluate shares /backbone's 504 semantics.
func TestEvaluateTimeout504(t *testing.T) {
	_, ts := newTestServer(t, 2, 200*time.Millisecond)
	g := testGraph(t, 4096)
	resp, err := http.Post(ts.URL+"/evaluate?methods=slowtest", "text/csv", encodeGraph(t, g, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", resp.StatusCode)
	}
}

// TestStatszEndpoint: the counters move as requests come in.
func TestStatszEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	s0 := getStatsz(t, ts.URL)
	if s0.Requests != 0 || s0.GraphCache.Entries != 0 {
		t.Errorf("fresh server statsz = %+v", s0)
	}
	body := "a,b,3\nb,c,1\na,c,2\n"
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/backbone?method=nt&threshold=1.5", "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	s1 := getStatsz(t, ts.URL)
	if s1.Requests != 3 {
		t.Errorf("requests = %d, want 3", s1.Requests)
	}
	if s1.GraphCache.Entries != 1 || s1.GraphCache.Misses != 1 || s1.GraphCache.Hits != 2 {
		t.Errorf("graph cache = %+v", s1.GraphCache)
	}
	if s1.ScoreCache.Entries != 1 || s1.ScoreCache.Misses != 1 || s1.ScoreCache.Hits != 2 {
		t.Errorf("score cache = %+v", s1.ScoreCache)
	}
	if s1.GraphCache.Bytes <= 0 || s1.ScoreCache.Bytes <= 0 {
		t.Errorf("cache byte accounting missing: %+v", s1)
	}
}

// TestCacheDisabled: zero cache budgets mean every request is a miss
// but still succeeds.
func TestCacheDisabled(t *testing.T) {
	s := newServer(serverConfig{
		workers: 2, timeout: 5 * time.Second, maxBody: 1 << 24, logf: t.Logf,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := "a,b,3\nb,c,1\na,c,2\n"
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/backbone?method=nt&threshold=1.5", "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Backbone-Cache"); got != "miss" {
			t.Errorf("request %d with caches disabled: X-Backbone-Cache = %q", i, got)
		}
	}
}

// TestCacheSingleFlight: concurrent identical slow requests score once
// between them — the daemon's in-flight de-duplication.
func TestCacheSingleFlight(t *testing.T) {
	_, ts := newTestServer(t, 4, time.Minute)
	g := testGraph(t, 256) // 32 slowtest ranges x 10ms ≈ 300ms of scoring
	body := encodeGraph(t, g, "csv").Bytes()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/backbone?method=slowtest", "text/csv", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	st := getStatsz(t, ts.URL)
	if st.ScoreCache.Misses != 1 {
		t.Errorf("score cache misses = %d, want 1 (scoring ran more than once)", st.ScoreCache.Misses)
	}
	if st.ScoreCache.Hits+st.ScoreCache.Coalesced != 3 {
		t.Errorf("hits+coalesced = %d+%d, want 3", st.ScoreCache.Hits, st.ScoreCache.Coalesced)
	}
}

// TestBodyTooLarge: an oversized body maps to 413, not a parse error.
func TestBodyTooLarge(t *testing.T) {
	s := newServer(serverConfig{
		workers: 1, timeout: 5 * time.Second, maxBody: 64, logf: t.Logf,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	big := strings.Repeat("a,b,1\n", 100)
	resp, err := http.Post(ts.URL+"/backbone", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
}

// TestExtractOnlyScorerMethods pins the PR-4 review fix: ds scores but
// has no threshold rule — its default /backbone run must use its
// extractor (not the cached-table path), while ds with ?top= and
// /score still work through the table.
func TestExtractOnlyScorerMethods(t *testing.T) {
	_, ts := newTestServer(t, 2, 10*time.Second)
	// A graph with enough total support for the Sinkhorn scaling.
	body := "a,b,5\nb,c,4\nc,d,6\nd,a,3\na,c,2\nb,d,7\n"
	for _, url := range []string{"/backbone?method=ds", "/backbone?method=ds&top=3", "/score?method=ds"} {
		resp, err := http.Post(ts.URL+url, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", url, resp.StatusCode, msg)
		}
	}
	// mst stays a plain extractor: /backbone works, /score is 400.
	resp, err := http.Post(ts.URL+"/backbone?method=mst", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mst /backbone: status %d", resp.StatusCode)
	}
}

// TestEnvelopePruningQueryPrecedence: a query ?frac= (or ?top=) wins
// over the envelope's pruning fields on /backbone — without the guard,
// an envelope "top" would silently beat a query ?frac= because the
// pipeline prefers top-k whenever both options are set.
func TestEnvelopePruningQueryPrecedence(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	var edges []map[string]any
	for i := 0; i < 10; i++ {
		edges = append(edges, map[string]any{
			"src": fmt.Sprintf("n%d", i), "dst": fmt.Sprintf("n%d", i+1), "weight": float64(i + 1),
		})
	}
	body, _ := json.Marshal(map[string]any{"method": "nt", "top": 2, "edges": edges})
	resp, err := http.Post(ts.URL+"/backbone?frac=0.5", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	if got := resp.Header.Get("X-Backbone-Edges"); got != "5" {
		t.Errorf("query frac=0.5 over envelope top=2: %s edges, want 5 (query must win)", got)
	}
}

// TestScoreValidationPreserved: the cached /score path keeps rejecting
// what ScoreContext rejected — pruning options and undeclared
// envelope parameters.
func TestScoreValidationPreserved(t *testing.T) {
	_, ts := newTestServer(t, 2, 5*time.Second)
	edgeList := "a,b,1\nb,c,2\n"

	resp, err := http.Post(ts.URL+"/score?method=nc&top=5", "text/csv", strings.NewReader(edgeList))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("/score with top accepted; want error")
	}

	env := `{"method":"nc","params":{"bogus":1},"edges":[{"src":"a","dst":"b","weight":3}]}`
	resp, err = http.Post(ts.URL+"/score", "application/json", strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/score with undeclared envelope param: status %d, want 400", resp.StatusCode)
	}
}

// TestReadyzDrainFlip: /readyz answers 200 until graceful shutdown
// begins, then 503 with a Retry-After — while /healthz stays 200 (the
// process is alive, just leaving) and /statsz reports draining.
func TestReadyzDrainFlip(t *testing.T) {
	s, ts := newTestServer(t, 1, time.Second)

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	if resp, body := get("/readyz"); resp.StatusCode != http.StatusOK || body != "ready\n" {
		t.Errorf("before drain: /readyz = %d %q, want 200 ready", resp.StatusCode, body)
	}
	if snap := getStatsz(t, ts.URL); snap.Draining {
		t.Error("before drain: /statsz reports draining")
	}

	s.beginDrain()

	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || body != "draining\n" {
		t.Errorf("after drain: /readyz = %d %q, want 503 draining", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("after drain: /readyz Retry-After = %q, want \"1\"", ra)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("after drain: /healthz = %d, want 200 — liveness must not follow readiness", resp.StatusCode)
	}
	if snap := getStatsz(t, ts.URL); !snap.Draining {
		t.Error("after drain: /statsz does not report draining")
	}
}

// TestPanickingHandlerReleasesSlot pins the panic-safety audit of the
// worker pool (acquire's doc comment names this test): a handler that
// panics between acquire and release must still return its slot. With
// a single-slot pool, leaking even one would make every later request
// time out waiting for admission.
func TestPanickingHandlerReleasesSlot(t *testing.T) {
	s := newServer(serverConfig{
		workers: 1, timeout: time.Second, maxBody: 1 << 24,
		graphCacheBytes: 64 << 20, scoreCacheBytes: 64 << 20,
	})
	ts := httptest.NewUnstartedServer(s)
	// The deliberate panics below are expected noise; net/http prints a
	// stack trace per recovered handler panic.
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	ts.Start()
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		// net/http recovers the panic and severs the connection, so the
		// client sees either a transport error or no usable response;
		// all that matters here is that the slot comes back.
		resp, err := http.Post(ts.URL+"/backbone?method=panictest", "text/csv", strings.NewReader("a,b,1\n"))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/backbone?method=nt", "text/csv", strings.NewReader("a,b,1\nb,c,2\n"))
		if err != nil {
			t.Fatalf("request %d after panics: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after panics: status %d (%s) — the pool leaked a slot", i, resp.StatusCode, body)
		}
	}
}
