// Command experiments regenerates the tables and figures of Coscia &
// Neffke, "Network Backboning with Noisy Data" (ICDE 2017) on the
// synthetic substitute datasets documented in DESIGN.md.
//
// Usage:
//
//	experiments [flags] <artifact>...
//
// where artifact is one or more of: fig1 fig2 fig3 fig4 fig5 fig6 fig7
// fig8 fig9 table1 table2 casestudy ablation methods all. The
// "methods" artifact prints the central registry's method table (the
// algorithms and defaults every comparison uses) and "formats" the
// graph I/O format table. Output goes to stdout or the -o file. The
// country-network experiments share one synthetic world, controlled by
// -seed, -countries and -years.
//
// SIGINT/SIGTERM cancel the shared context, which is plumbed into
// every figure runner: Ctrl-C stops a sweep mid-figure (the runners
// check the context between networks, shares and repetitions) instead
// of running the artifact to completion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/exp"
	"repro/internal/occupations"
	"repro/internal/world"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1701, "world random seed")
		countries = flag.Int("countries", 120, "number of synthetic countries")
		years     = flag.Int("years", 4, "observation years per network")
		fullScale = flag.Bool("full", false, "paper-scale settings (slower)")
		outPath   = flag.String("o", "", "write artifact output to this file (default stdout)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] fig1|fig2|...|fig9|table1|table2|casestudy|ablation|noise|changes|methods|formats|all")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	cfg := world.Config{Seed: *seed, Countries: *countries, Years: *years, Products: 400}
	if *fullScale {
		cfg = world.DefaultConfig()
		cfg.Seed = *seed
	}
	want := map[string]bool{}
	for _, a := range args {
		want[a] = true
	}
	all := want["all"]

	var country *exp.Country
	needCountry := all || want["fig2"] || want["fig5"] || want["fig6"] ||
		want["fig7"] || want["fig8"] || want["table1"] || want["table2"] ||
		want["noise"] || want["changes"]
	if needCountry {
		fmt.Fprintf(os.Stderr, "generating synthetic world (%d countries, %d years, seed %d)...\n",
			cfg.Countries, cfg.Years, cfg.Seed)
		country = exp.NewCountry(cfg)
	}

	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig1", func() error {
		r, err := exp.Fig1(ctx, 1, 151, 4)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("fig2", func() error {
		for _, name := range []string{"Country Space", "Business"} {
			ds, err := country.W.DatasetByName(name)
			if err != nil {
				return err
			}
			r, err := exp.Fig2(ctx, name, ds.Latest(), []float64{1, 2, 3}, 24)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, r.Render())
		}
		return nil
	})
	run("fig3", func() error {
		rows, err := exp.Fig3(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, exp.Fig3Table(rows).Render())
		return nil
	})
	run("fig4", func() error {
		c := exp.DefaultFig4Config()
		r, err := exp.Fig4(ctx, c)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("fig5", func() error {
		fmt.Fprintln(out, exp.Fig5(country).Table().Render())
		return nil
	})
	run("fig6", func() error {
		fmt.Fprintln(out, exp.Fig6(country).Table().Render())
		return nil
	})
	run("fig7", func() error {
		r, err := exp.Fig7(ctx, country)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("fig8", func() error {
		r, err := exp.Fig8(ctx, country)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("fig9", func() error {
		c := exp.DefaultFig9Config()
		if !*fullScale {
			c.NodeCounts = []int{5_000, 10_000, 20_000, 40_000, 80_000}
		}
		r, err := exp.Fig9(ctx, c)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("table1", func() error {
		r, err := exp.Table1(ctx, country)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("table2", func() error {
		r, err := exp.Table2(ctx, country)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("casestudy", func() error {
		r, err := exp.CaseStudy(ctx, occupations.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("noise", func() error {
		r, err := exp.Noise(ctx, country, 0.1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("changes", func() error {
		for _, name := range []string{"Business", "Trade"} {
			ds, err := country.W.DatasetByName(name)
			if err != nil {
				return err
			}
			r, err := exp.Changes(ctx, ds, 0.01, 12)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, r.Table().Render())
		}
		return nil
	})
	run("ablation", func() error {
		r, err := exp.Ablation(ctx, exp.DefaultFig4Config())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, r.Table().Render())
		return nil
	})
	run("formats", func() error {
		// The I/O formats every command accepts; generated from the
		// graph format registry, like the README's table.
		fmt.Fprint(out, repro.FormatsTable())
		return nil
	})
	run("methods", func() error {
		// The comparison methods come from the central registry; this
		// artifact documents exactly which algorithms and defaults the
		// tables above were produced with.
		fmt.Fprint(out, repro.MethodsTable())
		return nil
	})
}
