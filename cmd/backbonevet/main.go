// Backbonevet machine-enforces the repository's correctness
// invariants as a go vet tool:
//
//	go build -o backbonevet ./cmd/backbonevet
//	go vet -vettool=$PWD/backbonevet ./...
//
// Run `backbonevet` with no arguments for the analyzer list; the
// README's "Static analysis" section documents each invariant and the
// //lint:<analyzer>-ok escape hatches.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Suite()...)
}
