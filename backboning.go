// Package repro is a from-scratch Go implementation of network
// backboning with noisy data, reproducing Coscia & Neffke (ICDE 2017).
//
// A network backbone is the subset of a weighted graph's edges whose
// weights are too strong to be explained by chance, given how much
// weight their endpoints send and receive overall. This package's main
// algorithm — the Noise-Corrected (NC) backbone — models edge weights
// as sums of unitary interactions, estimates each edge's deviation from
// a bilateral null model together with a Bayesian posterior variance,
// and keeps edges whose deviation exceeds δ standard deviations.
//
// The package also ships every baseline the paper compares against
// (Disparity Filter, High Salience Skeleton, Doubly Stochastic,
// Maximum Spanning Tree, naive thresholding, k-core) behind a single
// method registry and an options-driven pipeline:
//
//	g, err := repro.ReadCSV(f, true)                 // src,dst,weight lines
//	res, err := repro.Backbone(g, repro.WithMethod("nc"), repro.WithDelta(1.64))
//	err = res.Backbone.WriteCSV(out)                 // δ = 1.64 ≈ p 0.05
//
// Every algorithm self-registers a Method descriptor (name, parameter
// schema, scoring/extraction capabilities) in a central registry, so
// callers swap algorithms by name:
//
//	res, err := repro.Backbone(g, repro.WithMethod("df"), repro.WithAlpha(0.01))
//	s, err := repro.Score(g, repro.WithMethod("hss"))  // unpruned table
//	all, err := repro.BackboneAll(g, nil, repro.WithTopK(500))
//
// All scoring methods produce a Scores table whose Threshold, TopK and
// TopFraction prune to a backbone while preserving the node set, so
// methods can be compared at identical backbone sizes (the paper's
// protocol); BackboneAll runs that comparison concurrently. Methods()
// lists the registered algorithms and their parameters.
//
// The per-method helpers below (NCScores, DisparityBackbone, ...)
// predate the registry and remain as thin wrappers.
package repro

import (
	"context"
	"io"

	_ "repro/internal/backbone" // self-registers the baseline methods
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/multilayer"
)

// Graph is an immutable weighted graph, directed or undirected.
// Build one with NewBuilder or ReadCSV.
type Graph = graph.Graph

// Builder accumulates nodes and weighted edges and produces a Graph.
type Builder = graph.Builder

// Edge is one weighted connection; for undirected graphs Src <= Dst.
type Edge = graph.Edge

// EdgeKey identifies an edge by its (order-normalized) endpoints.
type EdgeKey = graph.EdgeKey

// Scores is a per-edge significance table produced by any backboning
// method. Prune it with Threshold, TopK or TopFraction.
type Scores = filter.Scores

// Update is one incremental edge change (upsert or delete) applied to
// a Delta overlay; see Graph.WithUpdates.
type Update = graph.Update

// Delta is a mutable overlay of pending edge updates over an immutable
// Graph; materialize with its Graph method. Obtain one with
// Graph.WithUpdates or graph-package NewDelta.
type Delta = graph.Delta

// Dirty records what a Delta materialization invalidated relative to
// the previous one; feed it to WithDirtyScores to re-score only the
// affected rows.
type Dirty = graph.Dirty

// EdgeStats holds the Noise-Corrected statistics of a single edge:
// null expectation, lift, symmetrized score, posterior variance.
type EdgeStats = core.EdgeStats

// NewBuilder returns a builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// ReadCSV parses a "src,dst,weight" edge list into a Graph.
//
// Deprecated: use ReadGraph, which adds format selection, content
// sniffing and transparent gzip decompression.
func ReadCSV(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadCSV(r, directed)
}

// backboneOf runs the context pipeline and unwraps the bare backbone —
// the shared body of the deprecated per-method helpers.
func backboneOf(g *Graph, opts ...Option) (*Graph, error) {
	res, err := BackboneContext(context.Background(), g, opts...)
	if err != nil {
		return nil, err
	}
	return res.Backbone, nil
}

// NCScores computes the Noise-Corrected significance table. The
// canonical Score column is the symmetrized lift divided by its
// posterior standard deviation, so Threshold(δ) applies the paper's
// pruning rule. Aux columns "nc_score", "sdev", "expected" and
// "variance" expose the underlying statistics.
//
// Deprecated: use Score with WithMethod("nc").
func NCScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("nc"))
}

// NCBackbone extracts the Noise-Corrected backbone at significance δ.
// Common values: 1.28, 1.64, 2.32 (≈ one-tailed p of 0.10, 0.05, 0.01).
//
// Deprecated: use Backbone with WithMethod("nc") and WithDelta.
func NCBackbone(g *Graph, delta float64) (*Graph, error) {
	return backboneOf(g, WithMethod("nc"), WithDelta(delta))
}

// NCEdge evaluates the NC statistics of a single (possibly
// hypothetical) edge from its weight, endpoint strengths and network
// total — e.g. to test whether two edges differ significantly.
func NCEdge(weight, outStrength, inStrength, total float64) EdgeStats {
	return core.ComputeEdge(weight, outStrength, inStrength, total)
}

// NCBinomialScores computes the footnote-2 variant of the NC backbone:
// direct upper-tail Binomial p-values against the bilateral null, with
// Score = -log10(p). Aux column "pvalue" holds raw p-values.
//
// Deprecated: use Score with WithMethod("nc-binomial").
func NCBinomialScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("nc-binomial"))
}

// DisparityScores computes Disparity Filter significances (Serrano et
// al. 2009): Score = 1 - α, Aux "alpha" holds the raw p-values.
//
// Deprecated: use Score with WithMethod("df").
func DisparityScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("df"))
}

// DisparityBackbone keeps edges significant at level alpha under the
// Disparity Filter null model.
//
// Deprecated: use Backbone with WithMethod("df") and WithAlpha.
func DisparityBackbone(g *Graph, alpha float64) (*Graph, error) {
	return backboneOf(g, WithMethod("df"), WithAlpha(alpha))
}

// HSSScores computes High Salience Skeleton saliences (Grady et al.
// 2012) on the undirected view of g: the share of shortest-path trees
// containing each edge.
//
// Deprecated: use Score with WithMethod("hss").
func HSSScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("hss"))
}

// HSSBackbone keeps edges with salience above the threshold
// (0.5 is customary given the bimodal salience distribution).
//
// Deprecated: use Backbone with WithMethod("hss") and WithSalience.
func HSSBackbone(g *Graph, salience float64) (*Graph, error) {
	return backboneOf(g, WithMethod("hss"), WithSalience(salience))
}

// DoublyStochasticScores returns Sinkhorn-normalized edge weights
// (Slater 2009). It errors when the transformation is impossible —
// e.g. when a node only sends or only receives weight.
//
// Deprecated: use Score with WithMethod("ds").
func DoublyStochasticScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("ds"))
}

// DoublyStochasticBackbone runs Slater's full two-stage algorithm:
// normalized edges are added strongest-first until the backbone is a
// single connected component.
//
// Deprecated: use Backbone with WithMethod("ds").
func DoublyStochasticBackbone(g *Graph) (*Graph, error) {
	return backboneOf(g, WithMethod("ds"))
}

// MaximumSpanningTree extracts the maximum spanning forest (Kruskal).
// Directed graphs are symmetrized by summing reciprocal weights.
//
// Deprecated: use Backbone with WithMethod("mst").
func MaximumSpanningTree(g *Graph) (*Graph, error) {
	return backboneOf(g, WithMethod("mst"))
}

// NaiveScores scores edges by raw weight, so thresholding reproduces
// the classic "drop light edges" filter.
//
// Deprecated: use Score with WithMethod("nt").
func NaiveScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("nt"))
}

// NaiveBackbone keeps edges with weight strictly above the threshold.
//
// Deprecated: use Backbone with WithMethod("nt") and WithWeightThreshold.
func NaiveBackbone(g *Graph, threshold float64) (*Graph, error) {
	return backboneOf(g, WithMethod("nt"), WithWeightThreshold(threshold))
}

// DeltaToPValue converts an NC δ threshold to the one-tailed p-value
// it approximates; PValueToDelta is its inverse.
func DeltaToPValue(delta float64) float64 { return core.DeltaToPValue(delta) }

// PValueToDelta converts a one-tailed p-value to the corresponding δ.
func PValueToDelta(p float64) float64 { return core.PValueToDelta(p) }

// KCoreScores assigns each edge the core number of its weaker endpoint
// (Seidman 1983), the classic degree-based backbone: Threshold(k-1)
// yields the k-core.
//
// Deprecated: use Score with WithMethod("kcore").
func KCoreScores(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("kcore"))
}

// KCoreBackbone keeps the edges of the k-core: both endpoints survive
// recursive removal of nodes with degree below k.
//
// Deprecated: use Backbone with WithMethod("kcore") and WithK.
func KCoreBackbone(g *Graph, k int) (*Graph, error) {
	return backboneOf(g, WithMethod("kcore"), WithK(k))
}

// NCScoresParallel is NCScores computed on all CPUs; results are
// bit-identical to the serial scorer.
//
// Deprecated: use Score with WithMethod("nc") and WithParallel.
func NCScoresParallel(g *Graph) (*Scores, error) {
	return ScoreContext(context.Background(), g, WithMethod("nc"), WithParallel())
}

// Comparison is a two-sample z-test between two edges' NC scores.
type Comparison = core.Comparison

// CompareEdges tests whether two edges differ significantly in strength
// relative to their null expectations (the paper's suggested use of the
// NC confidence intervals beyond pruning).
func CompareEdges(a, b EdgeStats) Comparison { return core.CompareEdges(a, b) }

// EdgeChange describes a significant edge evolution between two
// observations of the same network.
type EdgeChange = core.EdgeChange

// Changes tests every edge present in either observation for a
// significant change in noise-corrected strength, returning those with
// two-tailed p-value at most alpha. It distinguishes real changes from
// the spurious swings that raw weight differences cannot separate —
// the paper's Section-VII research direction.
func Changes(before, after *Graph, alpha float64) ([]EdgeChange, error) {
	return core.Changes(before, after, alpha)
}

// DOTOptions controls WriteDOT rendering (node colors, sizes, widths).
type DOTOptions = graph.DOTOptions

// Bipartite is a two-mode incidence structure (e.g. occupations ×
// skills) whose one-mode projection feeds the backboning algorithms.
type Bipartite = graph.Bipartite

// NewBipartite returns an empty two-mode incidence structure.
func NewBipartite() *Bipartite { return graph.NewBipartite() }

// Multilayer is a set of network layers over a shared node set, with a
// coupled NC scorer that blends each layer's null model with the
// relation's frequency in the other layers — the paper's Section-VII
// multilayer extension. See internal/multilayer for the model.
type Multilayer = multilayer.Multilayer

// NewMultilayer returns an empty multilayer network over n shared nodes.
func NewMultilayer(n int) *Multilayer { return multilayer.New(n) }
