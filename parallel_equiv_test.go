package repro

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/gen"
)

// TestRegisteredParallelScorersBitIdentical asserts the PR-2 perf
// contract: every method registering a ParallelScorer (nc, df, nt,
// nc-binomial) must produce a table bit-identical to its serial scorer,
// Score and every Aux column, on a graph large enough to defeat the
// serial fallback.
func TestRegisteredParallelScorersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := gen.ErdosRenyiGNM(rng, 4000, 12_000) // above the 4096-edge cutoff

	want := []string{"nc", "df", "nt", "nc-binomial"}
	have := map[string]bool{}
	for _, m := range filter.All() {
		if m.ParallelScorer == nil {
			continue
		}
		have[m.Name] = true
		serial, err := m.Scorer.Scores(g)
		if err != nil {
			t.Fatalf("%s: serial: %v", m.Name, err)
		}
		par, err := m.ParallelScorer.Scores(g)
		if err != nil {
			t.Fatalf("%s: parallel: %v", m.Name, err)
		}
		if par.Method != m.ParallelScorer.Name() {
			t.Errorf("%s: parallel method name = %q, want %q",
				m.Name, par.Method, m.ParallelScorer.Name())
		}
		if len(par.Score) != len(serial.Score) {
			t.Fatalf("%s: %d parallel scores, %d serial", m.Name, len(par.Score), len(serial.Score))
		}
		for i := range serial.Score {
			if serial.Score[i] != par.Score[i] {
				t.Fatalf("%s: score[%d] = %v parallel vs %v serial (must be bit-identical)",
					m.Name, i, par.Score[i], serial.Score[i])
			}
		}
		if len(par.Aux) != len(serial.Aux) {
			t.Fatalf("%s: aux columns differ: %d vs %d", m.Name, len(par.Aux), len(serial.Aux))
		}
		for col := range serial.Aux {
			pc, ok := par.Aux[col]
			if !ok {
				t.Fatalf("%s: parallel table missing aux %q", m.Name, col)
			}
			for i := range serial.Aux[col] {
				if serial.Aux[col][i] != pc[i] {
					t.Fatalf("%s: aux %q differs at row %d", m.Name, col, i)
				}
			}
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("method %q does not register a parallel scorer", name)
		}
	}
}
