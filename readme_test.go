package repro

import (
	"os"
	"strings"
	"testing"
)

// TestREADMEMethodTableCurrent pins the README's method table to the
// registry: if a method or parameter changes, regenerate the table
// with `go run ./cmd/experiments methods`.
func TestREADMEMethodTableCurrent(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), MethodsTable()) {
		t.Error("README.md method table is out of date; regenerate with `go run ./cmd/experiments methods`")
	}
}

// TestREADMEFormatTableCurrent pins the README's I/O format table to
// the graph format registry: if a format changes, regenerate the table
// with `go run ./cmd/experiments formats`.
func TestREADMEFormatTableCurrent(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), FormatsTable()) {
		t.Error("README.md format table is out of date; regenerate with `go run ./cmd/experiments formats`")
	}
}
