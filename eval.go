package repro

import (
	"context"
	"fmt"

	"repro/internal/eval"
	"repro/internal/graph"
)

// This file is the public face of the backbone-evaluation subsystem
// (internal/eval): the paper's quality criteria — coverage, stability,
// recovery, quality (Section III-A, Figs 4/7/8, Table II) — served
// through the same functional-options idiom as Backbone.
//
//	rep, err := repro.Compare(g)                                  // every method, top 10%
//	rep, err := repro.CompareContext(ctx, g,
//	    repro.WithMethods("nc", "df", "mst"),
//	    repro.WithTopFraction(0.05),
//	    repro.WithNextSnapshot(gNextYear),                        // enables Stability
//	    repro.WithParallel())
//	fmt.Println(rep.Ranking)                                      // best composite first
//
// Criteria whose inputs are absent (no next snapshot, no ground truth,
// no quality design) are NaN in the report; the criterion fields are
// typed Float, which marshals NaN as JSON null, so reports always
// encode cleanly.

// EvalReport is the full evaluation of one graph: per-method criteria
// plus, for Compare runs, the size-matched ranking.
type EvalReport = eval.Report

// MethodEval grades one method's backbone under the run's criteria.
type MethodEval = eval.MethodEval

// Float is a float64 that marshals NaN and ±Inf as JSON null —
// encoding/json rejects them as numbers, and the evaluation criteria
// legitimately produce NaN on empty denominators.
type Float = eval.Float

// Designer supplies OLS designs for the Quality criterion: given a
// dataset name and an edge set, it returns the regression target and
// predictor columns. See WithQualityDesign.
type Designer = eval.Designer

// ScoreSource supplies a (possibly cached) significance table for a
// method, returning whether the call skipped scoring. The backboned
// daemon plugs its content-addressed score cache in here.
type ScoreSource = eval.ScoreSource

// WithMethods narrows an evaluation to the named methods (default:
// every registered method, in registry order).
func WithMethods(names ...string) Option {
	return func(c *config) {
		c.evalMethods = append([]string{}, names...)
	}
}

// WithNextSnapshot supplies the t+1 observation of the same network,
// enabling the Stability criterion: the Spearman correlation between
// backbone edge weights at t and the same pairs' weights in next
// (Section V-F, Fig 8).
//
// The snapshot must share the evaluated graph's node-ID space: the
// cross-snapshot join compares by node ID, not by label. A graph read
// from a separate edge list (whose first-appearance ID order will
// differ) must be aligned first — AlignNodes(g, next) does exactly
// that, and the backbone CLI applies it to -next automatically.
func WithNextSnapshot(next *Graph) Option {
	return func(c *config) { c.evalNext = next }
}

// WithGroundTruth supplies the planted true network, enabling the
// Recovery criterion: the Jaccard similarity between each backbone's
// edge set and the truth's (Section V-A, Fig 4). Like WithNextSnapshot,
// the truth must share the evaluated graph's node-ID space; align
// independently read graphs with AlignNodes first.
func WithGroundTruth(truth *Graph) Option {
	return func(c *config) { c.evalTruth = truth }
}

// AlignNodes re-expresses g on ref's node-ID space by matching node
// labels, dropping edges whose endpoints ref does not know. Use it
// before WithNextSnapshot / WithGroundTruth when the two graphs were
// read from independent edge lists: node IDs are assigned in label
// first-appearance order, so two files listing the same network in
// different row orders disagree on every ID, and an unaligned join
// would correlate unrelated node pairs.
func AlignNodes(ref, g *Graph) *Graph {
	return graph.AlignLabels(ref, g)
}

// WithQualityDesign supplies the OLS design for the Quality criterion:
// each method's quality is the R² of the designer's model restricted to
// its backbone's edges, relative to the R² on all edges (Section V-E,
// Table II).
func WithQualityDesign(d Designer, dataset string) Option {
	return func(c *config) { c.evalDesigner, c.evalDataset = d, dataset }
}

// WithScoreSource replaces direct scoring with the given source — e.g.
// a content-addressed cache — so repeated evaluations of the same graph
// skip scoring entirely. The source is only consulted for methods that
// need a significance table.
func WithScoreSource(src ScoreSource) Option {
	return func(c *config) { c.evalSource = src }
}

// WithEvalProgress registers a per-method scoring progress callback; fn
// is invoked concurrently from the per-method goroutines.
func WithEvalProgress(fn func(method string, done, total int)) Option {
	return func(c *config) { c.evalProgress = fn }
}

// WithEvalConcurrency bounds how many methods an evaluation runs at
// once (default: all concurrently, one goroutine per method). The
// backboned daemon evaluates with concurrency 1 so one /evaluate
// request occupies its bounded worker-pool slot with at most one
// scoring computation at a time, keeping -workers an honest cap on
// machine load.
func WithEvalConcurrency(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.setErr(&ParamError{Param: "concurrency", Reason: fmt.Sprintf("WithEvalConcurrency(%d): must be non-negative", n)})
			return
		}
		c.evalConcurrency = n
	}
}

// evalConfig translates the shared option set into the engine's
// configuration. WithMethod (singular) narrows the evaluation to that
// one method, so pipeline-style calls compose; WithParam/WithDelta/...
// ride along leniently, each method resolving only the parameters it
// declares.
func evalConfig(opts []Option) (eval.Config, error) {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	if c.err != nil {
		return eval.Config{}, c.err
	}
	if c.scores != nil {
		return eval.Config{}, &ParamError{Param: "scores", Reason: "use WithScoreSource to reuse score tables across an evaluation"}
	}
	methods := c.evalMethods
	if len(methods) == 0 && c.methodSet {
		methods = []string{c.method}
	}
	cfg := eval.Config{
		Methods:       methods,
		TopK:          c.topK,
		TopKSet:       c.topKSet,
		Frac:          c.topFrac,
		FracSet:       c.fracSet,
		Parallel:      c.parallel,
		MaxConcurrent: c.evalConcurrency,
		Params:        c.params,
		Next:          c.evalNext,
		Truth:         c.evalTruth,
		Designer:      c.evalDesigner,
		Dataset:       c.evalDataset,
		Source:        c.evalSource,
		Progress:      c.evalProgress,
	}
	if cfg.Progress == nil && c.progress != nil {
		// A method-agnostic WithProgress still works: method names are
		// dropped, totals interleave across methods (BackboneAll-style).
		fn := c.progress
		cfg.Progress = func(_ string, done, total int) { fn(done, total) }
	}
	return cfg, nil
}

// Evaluate grades each selected method at its own natural operating
// point — scoring methods prune at their (default or overridden)
// threshold, extract-only methods run their extractor — and reports the
// criteria per method. Use Compare for the paper's size-matched
// ranking. Evaluate never cancels; use EvaluateContext to bound a run.
func Evaluate(g *Graph, opts ...Option) (*EvalReport, error) {
	return EvaluateContext(context.Background(), g, opts...)
}

// EvaluateContext is Evaluate under a context: scoring checks ctx
// between checkpoint ranges and the run returns ctx.Err() promptly
// after cancellation or deadline expiry.
func EvaluateContext(ctx context.Context, g *Graph, opts ...Option) (*EvalReport, error) {
	cfg, err := evalConfig(opts)
	if err != nil {
		return nil, err
	}
	return eval.Evaluate(ctx, g, cfg)
}

// Compare grades every selected method at one common backbone size
// (WithTopK / WithTopFraction; default the top 10% of edges) and ranks
// them by composite criterion — the paper's protocol of comparing
// algorithms at identical backbone sizes. Fixed-size methods (mst, ds)
// keep their natural size, as in the paper's sweep figures. Each method
// scores at most once per comparison; a WithScoreSource cache can drop
// that to zero. Compare never cancels; use CompareContext.
func Compare(g *Graph, opts ...Option) (*EvalReport, error) {
	return CompareContext(context.Background(), g, opts...)
}

// CompareContext is Compare under a context, with the same cancellation
// semantics as EvaluateContext.
func CompareContext(ctx context.Context, g *Graph, opts ...Option) (*EvalReport, error) {
	cfg, err := evalConfig(opts)
	if err != nil {
		return nil, err
	}
	return eval.Compare(ctx, g, cfg)
}
