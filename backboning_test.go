package repro

import (
	"math"
	"strings"
	"testing"
)

func demoGraph(t *testing.T) *Graph {
	t.Helper()
	csv := `src,dst,weight
rome,paris,30
rome,berlin,28
rome,lisbon,25
paris,berlin,22
paris,lisbon,3
lisbon,madrid,12
madrid,rome,14
berlin,madrid,9
`
	g, err := ReadCSV(strings.NewReader(csv), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeEndToEnd(t *testing.T) {
	g := demoGraph(t)
	if g.NumNodes() != 5 || g.NumEdges() != 8 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	scores, err := NCScores(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := scores.Validate(); err != nil {
		t.Fatal(err)
	}
	bb := scores.TopK(4)
	if bb.NumEdges() != 4 {
		t.Fatalf("TopK(4) kept %d edges", bb.NumEdges())
	}
	if bb.NumNodes() != g.NumNodes() {
		t.Error("node set lost")
	}
	var sb strings.Builder
	if err := bb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	round, err := ReadCSV(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if round.NumEdges() != 4 {
		t.Errorf("round trip kept %d edges", round.NumEdges())
	}
}

func TestFacadeAllMethodsRun(t *testing.T) {
	g := demoGraph(t)
	if _, err := NCBackbone(g, 1.0); err != nil {
		t.Errorf("NC: %v", err)
	}
	if _, err := NCBinomialScores(g); err != nil {
		t.Errorf("NC binomial: %v", err)
	}
	if _, err := DisparityBackbone(g, 0.2); err != nil {
		t.Errorf("DF: %v", err)
	}
	if _, err := HSSBackbone(g, 0.5); err != nil {
		t.Errorf("HSS: %v", err)
	}
	if _, err := DoublyStochasticBackbone(g); err != nil {
		t.Errorf("DS: %v", err)
	}
	tree, err := MaximumSpanningTree(g)
	if err != nil {
		t.Errorf("MST: %v", err)
	} else if tree.NumEdges() != g.NumNodes()-1 {
		t.Errorf("MST edges = %d", tree.NumEdges())
	}
	if _, err := NaiveBackbone(g, 10); err != nil {
		t.Errorf("naive: %v", err)
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder(true)
	u := b.AddNode("u")
	v := b.AddNode("v")
	if err := b.AddEdge(u, v, 2.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.TotalWeight() != 2.5 {
		t.Errorf("total = %v", g.TotalWeight())
	}
}

func TestFacadeNCEdgeAndPValues(t *testing.T) {
	es := NCEdge(3, 4, 3, 6)
	if math.Abs(es.Score-0.2) > 1e-12 {
		t.Errorf("NCEdge score = %v, want 0.2", es.Score)
	}
	p := DeltaToPValue(1.64)
	if math.Abs(p-0.05) > 5e-3 {
		t.Errorf("DeltaToPValue(1.64) = %v", p)
	}
	if math.Abs(PValueToDelta(p)-1.64) > 1e-9 {
		t.Error("p-value round trip failed")
	}
}

func TestFacadeKCoreAndParallel(t *testing.T) {
	g := demoGraph(t)
	s, err := KCoreScores(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bb, err := KCoreBackbone(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() == 0 {
		t.Error("2-core empty on a dense demo graph")
	}
	par, err := NCScoresParallel(g)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := NCScores(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ser.Score {
		if ser.Score[i] != par.Score[i] {
			t.Fatal("parallel facade differs from serial")
		}
	}
}

func TestFacadeCompareAndChanges(t *testing.T) {
	g := demoGraph(t)
	a := NCEdge(30, 60, 60, 300)
	b := NCEdge(3, 60, 60, 300)
	c := CompareEdges(a, b)
	if c.Z <= 0 {
		t.Errorf("stronger edge should compare positive: z=%v", c.Z)
	}
	boosted := g.FilterEdges(func(_ int, e Edge) bool { return true })
	changes, err := Changes(g, boosted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != g.NumEdges() {
		t.Errorf("alpha=1 returned %d changes, want %d", len(changes), g.NumEdges())
	}
	for _, ch := range changes {
		if ch.PValue < 0.99 {
			t.Errorf("identical networks: edge %v changed with p=%v", ch.Key, ch.PValue)
		}
	}
}

func TestFacadeBipartiteAndDOT(t *testing.T) {
	bp := NewBipartite()
	r0 := bp.AddRow("x")
	r1 := bp.AddRow("y")
	c0 := bp.AddCol("s")
	if err := bp.Set(r0, c0, 1); err != nil {
		t.Fatal(err)
	}
	if err := bp.Set(r1, c0, 1); err != nil {
		t.Fatal(err)
	}
	g := bp.ProjectRows(false)
	if w, ok := g.Weight(r0, r1); !ok || w != 1 {
		t.Errorf("projection weight = %v, %v", w, ok)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{NodeColor: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graph") {
		t.Error("DOT render empty")
	}
}

func TestFacadeMultilayer(t *testing.T) {
	m := NewMultilayer(4)
	for _, name := range []string{"a", "b"} {
		b := NewBuilder(false)
		b.AddNodes(4)
		b.MustAddEdge(0, 1, 10)
		b.MustAddEdge(1, 2, 5)
		b.MustAddEdge(2, 3, 5)
		if err := m.AddLayer(name, b.Build()); err != nil {
			t.Fatal(err)
		}
	}
	scores, err := m.CoupledScores(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("layers scored = %d", len(scores))
	}
	for _, s := range scores {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
}
