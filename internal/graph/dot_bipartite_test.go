package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(false)
	b.AddNode("a")
	b.AddNode("b")
	b.AddNode("c")
	b.AddNodes(4) // one isolate
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 2, 8)
	g := b.Build()
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Name:      "test",
		NodeColor: []int{0, 0, 1, 2},
		NodeSize:  []float64{1, 4, 2, 1},
		EdgeWidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "test"`, "n0 -- n1", "n1 -- n2", "penwidth", "fillcolor", "label=\"a\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "n3 [") {
		t.Error("isolated node rendered")
	}
	// Directed graphs use digraph/->.
	db := NewBuilder(true)
	db.AddNodes(2)
	db.MustAddEdge(0, 1, 1)
	sb.Reset()
	if err := db.Build().WriteDOT(&sb, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") || !strings.Contains(sb.String(), "->") {
		t.Error("directed DOT malformed")
	}
}

func TestBipartiteProjection(t *testing.T) {
	bp := NewBipartite()
	r0 := bp.AddRow("alice")
	r1 := bp.AddRow("bob")
	r2 := bp.AddRow("carol")
	c0 := bp.AddCol("go")
	c1 := bp.AddCol("sql")
	c2 := bp.AddCol("excel")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(bp.Set(r0, c0, 2))
	must(bp.Set(r0, c1, 1))
	must(bp.Set(r1, c0, 3))
	must(bp.Set(r1, c1, 1))
	must(bp.Set(r2, c2, 1))

	g := bp.ProjectRows(false)
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("projection: %v", g)
	}
	if w, ok := g.Weight(r0, r1); !ok || w != 2 {
		t.Errorf("alice-bob share = %v, want 2 columns", w)
	}
	if _, ok := g.Weight(r0, r2); ok {
		t.Error("alice-carol share nothing yet connected")
	}

	wg := bp.ProjectRows(true)
	if w, _ := wg.Weight(r0, r1); w != 2*3+1*1 {
		t.Errorf("weighted projection = %v, want 7", w)
	}
}

func TestBipartiteSetValidation(t *testing.T) {
	bp := NewBipartite()
	bp.AddRow("r")
	bp.AddCol("c")
	if err := bp.Set(5, 0, 1); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := bp.Set(0, 0, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := bp.Set(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := bp.Set(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if g := bp.ProjectRows(false); g.NumEdges() != 0 {
		t.Error("zeroed entry still projects")
	}
	if bp.NumRows() != 1 || bp.NumCols() != 1 {
		t.Error("mode counts wrong")
	}
}
