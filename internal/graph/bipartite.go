package graph

import "fmt"

// Bipartite is a two-mode incidence structure (rows × columns) with
// non-negative weights — e.g. countries × products, or occupations ×
// skills. The backboning algorithms operate on one-mode projections of
// such data; the paper notes that the Doubly-Stochastic method cannot
// handle bipartite inputs at all ("it requires the adjacency matrix to
// be square"), while the NC null model applies to the projection
// unchanged.
type Bipartite struct {
	rowLabels, colLabels []string
	weights              map[[2]int32]float64
}

// NewBipartite returns an empty incidence structure.
func NewBipartite() *Bipartite {
	return &Bipartite{weights: make(map[[2]int32]float64)}
}

// AddRow and AddCol register entities and return their indices.
func (bp *Bipartite) AddRow(label string) int {
	bp.rowLabels = append(bp.rowLabels, label)
	return len(bp.rowLabels) - 1
}

// AddCol registers a column entity and returns its index.
func (bp *Bipartite) AddCol(label string) int {
	bp.colLabels = append(bp.colLabels, label)
	return len(bp.colLabels) - 1
}

// NumRows and NumCols return the mode sizes.
func (bp *Bipartite) NumRows() int { return len(bp.rowLabels) }

// NumCols returns the number of column entities.
func (bp *Bipartite) NumCols() int { return len(bp.colLabels) }

// Set records the incidence weight between row r and column c.
func (bp *Bipartite) Set(r, c int, w float64) error {
	if r < 0 || r >= len(bp.rowLabels) || c < 0 || c >= len(bp.colLabels) {
		return fmt.Errorf("graph: bipartite entry (%d,%d) out of range (%dx%d)",
			r, c, len(bp.rowLabels), len(bp.colLabels))
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid bipartite weight %v", w)
	}
	if w == 0 {
		delete(bp.weights, [2]int32{int32(r), int32(c)})
		return nil
	}
	bp.weights[[2]int32{int32(r), int32(c)}] = w
	return nil
}

// ProjectRows builds the one-mode co-occurrence projection over rows:
// two rows connect with weight equal to the number of columns in which
// both have positive incidence (the construction of the Country Space
// and occupation networks). With weighted true, the weight is instead
// the sum over shared columns of the product of the two incidence
// weights (the standard weighted projection).
func (bp *Bipartite) ProjectRows(weighted bool) *Graph {
	// Column -> rows incident to it.
	cols := make(map[int32][]int32)
	for key := range bp.weights {
		cols[key[1]] = append(cols[key[1]], key[0])
	}
	b := NewBuilder(false)
	for _, l := range bp.rowLabels {
		b.AddNode(l)
	}
	acc := make(map[[2]int32]float64)
	for c, rows := range cols {
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				u, v := rows[i], rows[j]
				if u > v {
					u, v = v, u
				}
				if weighted {
					acc[[2]int32{u, v}] += bp.weights[[2]int32{u, c}] * bp.weights[[2]int32{v, c}]
				} else {
					acc[[2]int32{u, v}]++
				}
			}
		}
	}
	for key, w := range acc {
		b.MustAddEdge(int(key[0]), int(key[1]), w)
	}
	return b.Build()
}
