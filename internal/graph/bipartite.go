package graph

import (
	"fmt"
	"sort"
)

// Bipartite is a two-mode incidence structure (rows × columns) with
// non-negative weights — e.g. countries × products, or occupations ×
// skills. The backboning algorithms operate on one-mode projections of
// such data; the paper notes that the Doubly-Stochastic method cannot
// handle bipartite inputs at all ("it requires the adjacency matrix to
// be square"), while the NC null model applies to the projection
// unchanged.
type Bipartite struct {
	rowLabels, colLabels []string
	weights              map[[2]int32]float64
}

// NewBipartite returns an empty incidence structure.
func NewBipartite() *Bipartite {
	return &Bipartite{weights: make(map[[2]int32]float64)}
}

// AddRow and AddCol register entities and return their indices.
func (bp *Bipartite) AddRow(label string) int {
	bp.rowLabels = append(bp.rowLabels, label)
	return len(bp.rowLabels) - 1
}

// AddCol registers a column entity and returns its index.
func (bp *Bipartite) AddCol(label string) int {
	bp.colLabels = append(bp.colLabels, label)
	return len(bp.colLabels) - 1
}

// NumRows and NumCols return the mode sizes.
func (bp *Bipartite) NumRows() int { return len(bp.rowLabels) }

// NumCols returns the number of column entities.
func (bp *Bipartite) NumCols() int { return len(bp.colLabels) }

// Set records the incidence weight between row r and column c.
func (bp *Bipartite) Set(r, c int, w float64) error {
	if r < 0 || r >= len(bp.rowLabels) || c < 0 || c >= len(bp.colLabels) {
		return fmt.Errorf("graph: bipartite entry (%d,%d) out of range (%dx%d)",
			r, c, len(bp.rowLabels), len(bp.colLabels))
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid bipartite weight %v", w)
	}
	if w == 0 {
		delete(bp.weights, [2]int32{int32(r), int32(c)})
		return nil
	}
	bp.weights[[2]int32{int32(r), int32(c)}] = w
	return nil
}

// ProjectRows builds the one-mode co-occurrence projection over rows:
// two rows connect with weight equal to the number of columns in which
// both have positive incidence (the construction of the Country Space
// and occupation networks). With weighted true, the weight is instead
// the sum over shared columns of the product of the two incidence
// weights (the standard weighted projection).
func (bp *Bipartite) ProjectRows(weighted bool) *Graph {
	// Incidence keys in sorted (row, col) order: the weighted float
	// accumulation below must not inherit map range order, or projected
	// weights drift by ULPs between runs.
	keys := make([][2]int32, 0, len(bp.weights))
	//lint:detiter-ok collecting keys only; sorted before use
	for key := range bp.weights {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	// Column -> rows incident to it (rows ascending, from the key sort).
	cols := make(map[int32][]int32)
	var colIDs []int32
	for _, key := range keys {
		c := key[1]
		if _, ok := cols[c]; !ok {
			colIDs = append(colIDs, c)
		}
		cols[c] = append(cols[c], key[0])
	}
	sort.Slice(colIDs, func(i, j int) bool { return colIDs[i] < colIDs[j] })
	b := NewBuilder(false)
	for _, l := range bp.rowLabels {
		b.AddNode(l)
	}
	acc := make(map[[2]int32]float64)
	var pairs [][2]int32 // first-appearance order; deterministic given the sorts above
	for _, c := range colIDs {
		rows := cols[c]
		for i := 0; i < len(rows); i++ {
			for j := i + 1; j < len(rows); j++ {
				u, v := rows[i], rows[j]
				if u > v {
					u, v = v, u
				}
				k := [2]int32{u, v}
				if _, ok := acc[k]; !ok {
					pairs = append(pairs, k)
				}
				if weighted {
					acc[k] += bp.weights[[2]int32{u, c}] * bp.weights[[2]int32{v, c}]
				} else {
					acc[k]++
				}
			}
		}
	}
	for _, key := range pairs {
		b.MustAddEdge(int(key[0]), int(key[1]), acc[key])
	}
	return b.Build()
}
