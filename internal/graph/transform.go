package graph

// Subgraph returns a copy of g restricted to the edges whose canonical
// ID has keep[id] == true, preserving the full node set (so coverage —
// the share of nodes left non-isolated — can be measured on the
// result). keep must have length g.NumEdges().
//
// This is the allocation-light extraction path behind KeepEdges,
// FilterEdges and the Scores pruners: the kept edges are already
// canonical (sorted by (Src, Dst), deduplicated, weights final), so the
// subgraph is assembled straight into CSR form with zero hashing, and
// the label slice and label index are shared with g (both are immutable
// after construction).
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) Subgraph(keep []bool) *Graph {
	kept := 0
	for id := range g.edges {
		if keep[id] {
			kept++
		}
	}
	edges := make([]Edge, 0, kept)
	for id, e := range g.edges {
		if keep[id] {
			edges = append(edges, e)
		}
	}
	return g.SubgraphEdges(edges)
}

// SubgraphEdges returns a copy of g containing exactly the given edges,
// which must be a subsequence of g.Edges() (canonical order, no
// duplicates); the result takes ownership of the slice. It is the fused
// fast path behind Scores.Threshold — callers that already walk a
// per-edge criterion collect the survivors directly instead of paying
// for a keep mask plus two more O(m) passes over the edge slice.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) SubgraphEdges(edges []Edge) *Graph {
	sub := &Graph{
		directed: g.directed,
		labels:   g.labels,
		index:    g.index,
		lazy:     g.lazy,
		edges:    edges,
	}
	sub.buildCSR(g.NumNodes())
	return sub
}

// KeepEdges returns a copy of g containing only the edges whose canonical
// ID is in keep, preserving the full node set.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) KeepEdges(keep map[int32]bool) *Graph {
	mask := make([]bool, len(g.edges))
	for id := range g.edges {
		mask[id] = keep[int32(id)]
	}
	return g.Subgraph(mask)
}

// FilterEdges returns a copy of g containing only edges for which pred
// returns true, preserving the full node set.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) FilterEdges(pred func(id int, e Edge) bool) *Graph {
	mask := make([]bool, len(g.edges))
	for id, e := range g.edges {
		mask[id] = pred(id, e)
	}
	return g.Subgraph(mask)
}

// Undirected returns an undirected view of g: reciprocal directed edges
// are merged by summing their weights. If g is already undirected it is
// returned unchanged. Used by algorithms defined only for undirected
// graphs (Maximum Spanning Tree, High Salience Skeleton).
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(false)
	b.labels = append([]string(nil), g.labels...)
	//lint:detiter-ok copying into another map; insertion order is irrelevant
	for l, id := range g.labelIndex() {
		b.index[l] = id
	}
	for _, e := range g.edges {
		b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
	}
	return b.Build()
}

// UndirectedWeight returns the total weight between u and v regardless
// of direction: the single edge weight for undirected graphs, the sum
// of both arc directions for directed ones. Cross-snapshot joins use it
// when an undirected backbone (HSS and MST symmetrize directed inputs)
// is compared against a directed observation, so year-over-year weights
// stay well defined. O(log min(deg u, deg v)) per call.
func (g *Graph) UndirectedWeight(u, v int) float64 {
	w1, _ := g.Weight(u, v)
	if !g.directed {
		return w1
	}
	w2, _ := g.Weight(v, u)
	return w1 + w2
}

// AlignLabels re-expresses g on ref's node-ID space by matching node
// labels: each edge (u, v) of g becomes (ref.NodeID(label u),
// ref.NodeID(label v)), with weights of label-colliding edges summed by
// the builder as usual. Edges with an endpoint whose label ref does not
// know are dropped — they cannot participate in any ID-keyed
// comparison against ref anyway. Cross-graph criteria (edge-set
// Jaccard, cross-snapshot weight joins) compare by node ID, so two
// graphs read from independent edge lists — whose first-appearance ID
// orders almost always differ — must be aligned first.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func AlignLabels(ref, g *Graph) *Graph {
	b := NewBuilder(g.directed)
	b.labels = append([]string(nil), ref.labels...)
	//lint:detiter-ok copying into another map; insertion order is irrelevant
	for l, id := range ref.labelIndex() {
		b.index[l] = id
	}
	for _, e := range g.edges {
		u := ref.NodeID(g.Label(int(e.Src)))
		v := ref.NodeID(g.Label(int(e.Dst)))
		if u < 0 || v < 0 {
			continue
		}
		b.MustAddEdge(u, v, e.Weight)
	}
	return b.Build()
}

// EdgeKey uniquely identifies an edge by endpoints for cross-graph
// comparison (Jaccard recovery, stability across years). For undirected
// graphs the key is order-normalized.
type EdgeKey struct{ U, V int32 }

// Key returns the EdgeKey of edge e under g's directedness.
func (g *Graph) Key(e Edge) EdgeKey {
	if !g.directed && e.Src > e.Dst {
		return EdgeKey{e.Dst, e.Src}
	}
	return EdgeKey{e.Src, e.Dst}
}

// EdgeSet returns the set of edge keys present in g.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) EdgeSet() map[EdgeKey]bool {
	set := make(map[EdgeKey]bool, len(g.edges))
	for _, e := range g.edges {
		set[g.Key(e)] = true
	}
	return set
}

// WeightMap returns edge weights keyed by EdgeKey.
//
//lint:ctxflow-ok tight O(m) CSR pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) WeightMap() map[EdgeKey]float64 {
	m := make(map[EdgeKey]float64, len(g.edges))
	for _, e := range g.edges {
		m[g.Key(e)] = e.Weight
	}
	return m
}
