package graph

// KeepEdges returns a copy of g containing only the edges whose canonical
// ID is in keep, preserving the full node set (so coverage — the share of
// nodes left non-isolated — can be measured on the result).
func (g *Graph) KeepEdges(keep map[int32]bool) *Graph {
	b := NewBuilder(g.directed)
	b.labels = append([]string(nil), g.labels...)
	for l, id := range g.index {
		b.index[l] = id
	}
	for id, e := range g.edges {
		if keep[int32(id)] {
			b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
		}
	}
	return b.Build()
}

// FilterEdges returns a copy of g containing only edges for which pred
// returns true, preserving the full node set.
func (g *Graph) FilterEdges(pred func(id int, e Edge) bool) *Graph {
	b := NewBuilder(g.directed)
	b.labels = append([]string(nil), g.labels...)
	for l, id := range g.index {
		b.index[l] = id
	}
	for id, e := range g.edges {
		if pred(id, e) {
			b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
		}
	}
	return b.Build()
}

// Undirected returns an undirected view of g: reciprocal directed edges
// are merged by summing their weights. If g is already undirected it is
// returned unchanged. Used by algorithms defined only for undirected
// graphs (Maximum Spanning Tree, High Salience Skeleton).
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	b := NewBuilder(false)
	b.labels = append([]string(nil), g.labels...)
	for l, id := range g.index {
		b.index[l] = id
	}
	for _, e := range g.edges {
		b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
	}
	return b.Build()
}

// EdgeKey uniquely identifies an edge by endpoints for cross-graph
// comparison (Jaccard recovery, stability across years). For undirected
// graphs the key is order-normalized.
type EdgeKey struct{ U, V int32 }

// Key returns the EdgeKey of edge e under g's directedness.
func (g *Graph) Key(e Edge) EdgeKey {
	if !g.directed && e.Src > e.Dst {
		return EdgeKey{e.Dst, e.Src}
	}
	return EdgeKey{e.Src, e.Dst}
}

// EdgeSet returns the set of edge keys present in g.
func (g *Graph) EdgeSet() map[EdgeKey]bool {
	set := make(map[EdgeKey]bool, len(g.edges))
	for _, e := range g.edges {
		set[g.Key(e)] = true
	}
	return set
}

// WeightMap returns edge weights keyed by EdgeKey.
func (g *Graph) WeightMap() map[EdgeKey]float64 {
	m := make(map[EdgeKey]float64, len(g.edges))
	for _, e := range g.edges {
		m[g.Key(e)] = e.Weight
	}
	return m
}
