package graph

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// randomGraph builds a reproducible random labeled graph exercising
// fractional weights, unlabeled-looking numeric labels and both
// directions.
func randomGraph(t *testing.T, seed int64, n, m int, directed bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(directed)
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("node-%d", i)
	}
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdgeLabels(labels[u], labels[v], rng.Float64()*100); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return b.Build()
}

// canonical renders a graph's edge list as sorted label triples: node
// IDs are assigned by first appearance, so a re-read graph may order
// its canonical slice differently while carrying the same edges.
func canonical(g *Graph) []string {
	out := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		src, dst := g.label(e.Src), g.label(e.Dst)
		if !g.Directed() && src > dst {
			src, dst = dst, src // undirected canonical order is by ID, which relabeling permutes
		}
		out = append(out, fmt.Sprintf("%s|%s|%x", src, dst, e.Weight))
	}
	sort.Strings(out)
	return out
}

// TestFormatRoundTrip: for every registered writable format, write →
// read yields the identical canonical edge slice — labels preserved,
// weights bit-exact (%x comparison) — with and without gzip.
func TestFormatRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := randomGraph(t, 42, 50, 300, directed)
		want := canonical(g)
		for _, f := range Formats() {
			if f.Write == nil || f.Read == nil {
				continue
			}
			for _, gz := range []bool{false, true} {
				name := fmt.Sprintf("%s/directed=%v/gzip=%v", f.Name, directed, gz)
				t.Run(name, func(t *testing.T) {
					var buf bytes.Buffer
					if err := WriteGraph(&buf, g, WriteOptions{Format: f.Name, Gzip: gz}); err != nil {
						t.Fatal(err)
					}
					// Explicit format name.
					g2, err := ReadGraph(bytes.NewReader(buf.Bytes()), ReadOptions{Format: f.Name, Directed: directed})
					if err != nil {
						t.Fatalf("read %s: %v", f.Name, err)
					}
					if got := canonical(g2); !equalStrings(got, want) {
						t.Fatalf("round trip changed edges:\ngot  %v\nwant %v", got[:min(3, len(got))], want[:min(3, len(want))])
					}
					// Sniffed format (gzip is always sniffed by magic).
					g3, err := ReadGraph(bytes.NewReader(buf.Bytes()), ReadOptions{Directed: directed})
					if err != nil {
						t.Fatalf("sniffed read of %s output: %v", f.Name, err)
					}
					if got := canonical(g3); !equalStrings(got, want) {
						t.Fatalf("sniffed round trip changed edges for %s", f.Name)
					}
				})
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLookupFormat(t *testing.T) {
	cases := map[string]string{
		"csv": "csv", "CSV": "csv", ".csv": "csv", "edges.csv": "csv",
		"edges.csv.gz": "csv", "data/path/edges.tsv": "tsv",
		"jsonl": "ndjson", "x.ndjson": "ndjson", "tab": "tsv", "txt": "csv",
	}
	for in, want := range cases {
		f, err := LookupFormat(in)
		if err != nil {
			t.Errorf("LookupFormat(%q): %v", in, err)
			continue
		}
		if f.Name != want {
			t.Errorf("LookupFormat(%q) = %s, want %s", in, f.Name, want)
		}
	}
	if _, err := LookupFormat("parquet"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("LookupFormat(parquet) = %v, want ErrUnknownFormat", err)
	}
}

// TestReadGraphCRLF: Windows line endings parse identically to Unix.
func TestReadGraphCRLF(t *testing.T) {
	unix := "src,dst,weight\na,b,1.5\nb,c,2\n"
	dos := strings.ReplaceAll(unix, "\n", "\r\n")
	gu, err := ReadGraph(strings.NewReader(unix), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := ReadGraph(strings.NewReader(dos), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(canonical(gu), canonical(gd)) {
		t.Errorf("CRLF parse differs from LF parse")
	}
}

// TestReadGraphLineTooLong: an overlong line fails with the typed
// sentinel and the offending line number, not a generic read error.
func TestReadGraphLineTooLong(t *testing.T) {
	long := "a,b,1\n" + strings.Repeat("x", maxLineBytes+1) + ",y,2\n"
	_, err := ReadGraph(strings.NewReader(long), ReadOptions{})
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("got %v, want ErrLineTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err)
	}
}

// TestReadGraphTabHeader: a tab-separated header row is skipped even
// when its labels contain commas, and TSV data lines keep comma-bearing
// labels intact.
func TestReadGraphTabHeader(t *testing.T) {
	in := "source, the\ttarget, the\tweight\nDoe, Jane\tRoe, Rich\t3\nRoe, Rich\tPoe, Edgar\t4\n"
	g, err := ReadGraph(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
	if g.NodeID("Doe, Jane") < 0 {
		t.Errorf("comma-bearing TSV label was split: nodes %v", g.Labels())
	}
}

// TestWriteSeparatorInLabel: a label containing the output separator
// is an explicit error (silent corruption would break the round-trip
// guarantee), while ndjson handles it fine.
func TestWriteSeparatorInLabel(t *testing.T) {
	b := NewBuilder(false)
	if err := b.AddEdgeLabels("Doe, Jane", "Roe, Rich", 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if err := WriteGraph(io.Discard, g, WriteOptions{Format: "csv"}); err == nil {
		t.Error("csv write of comma-bearing label succeeded; want error")
	}
	if err := WriteGraph(io.Discard, g, WriteOptions{Format: "tsv"}); err != nil {
		t.Errorf("tsv write of comma-bearing label: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, WriteOptions{Format: "ndjson"}); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(canonical(g2), canonical(g)) {
		t.Error("ndjson round trip of comma-bearing labels changed edges")
	}
}

// TestNDJSONNumericNodes: numeric src/dst keep their literal spelling.
func TestNDJSONNumericNodes(t *testing.T) {
	in := `{"src": 1, "dst": 2, "weight": 3.5}` + "\n" + `{"src": "a", "dst": 2, "weight": 1}` + "\n"
	g, err := ReadGraph(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NodeID("1") < 0 || g.NodeID("a") < 0 {
		t.Fatalf("unexpected parse: %v labels %v", g, g.Labels())
	}
	if _, err := ReadGraph(strings.NewReader(`{"src":"a","dst":"b"}`+"\n"), ReadOptions{Format: "ndjson"}); err == nil {
		t.Error("missing weight accepted")
	}
}
