package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxLineBytes caps a single input line. Edge-list lines are three
// short fields; anything near this limit is a malformed or binary file.
const maxLineBytes = 1 << 20

// ErrLineTooLong marks an input line exceeding the per-line cap. It
// used to surface as bufio.Scanner's generic "token too long"; now it
// carries the offending line number.
var ErrLineTooLong = errors.New("line too long")

// readEdgeListSerial parses delimited "src dst weight" lines into a
// Graph, one line at a time. Fields are tab-separated when the line
// contains a tab, else comma-separated when it contains a comma, else
// whitespace-separated — preferring tabs keeps labels containing commas
// intact in TSV files. Blank lines and '#' comments are skipped; CRLF
// line endings are handled; a header row is detected on line 1 by a
// digit-free weight field (a line-1 weight that fails to parse but
// does contain digits is a malformed data row, not a header).
//
// This is the reference implementation: the registered reader is the
// chunked codec in codec.go, whose output is pinned bit-identical to
// this one by the oracle tests.
func readEdgeListSerial(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 fields (src,dst,weight), got %d", lineNo, len(fields))
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			if lineNo == 1 && !hasDigit(fields[2]) {
				continue // header row: the weight field has no digits at all
			}
			return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		if err := b.AddEdgeLabels(fields[0], fields[1], w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: line %d: %w (limit %d bytes)", lineNo+1, ErrLineTooLong, maxLineBytes)
		}
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return b.Build(), nil
}

// ReadCSV parses an edge list of the form "src,dst,weight" (one edge per
// line; '#'-prefixed lines and a "src,dst,..." header are skipped) into a
// Graph. Fields may also be tab- or space-separated. Node labels are
// arbitrary strings; IDs are assigned in order of first appearance.
//
// New code should prefer ReadGraph, which adds format selection,
// content sniffing and transparent gzip decompression.
func ReadCSV(r io.Reader, directed bool) (*Graph, error) {
	return readEdgeList(r, directed)
}

func splitFields(line string) []string {
	// Tabs are the most deliberate separator: a TSV header or label may
	// legitimately contain commas, so check for tabs first.
	var parts []string
	switch {
	case strings.ContainsRune(line, '\t'):
		parts = strings.Split(line, "\t")
	case strings.ContainsRune(line, ','):
		parts = strings.Split(line, ",")
	default:
		return strings.Fields(line)
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// label returns the display label of a node: its string label when one
// was assigned, else its numeric ID.
func (g *Graph) label(id int32) string {
	if l := g.labels[id]; l != "" {
		return l
	}
	return strconv.Itoa(int(id))
}

// LabelOrID is the node's display label for serialization: its string
// label when one was assigned, else its numeric ID.
func (g *Graph) LabelOrID(u int) string { return g.label(int32(u)) }

// writeEdgeList writes the canonical edge list with the given field
// separator, preceded by a header row. Weights use strconv's shortest
// exact representation, so written graphs read back bit-identically.
// A label containing the separator (or a newline) would corrupt the
// output and break that guarantee, so it is an explicit error — use
// ndjson (or a different separator) for such labels.
//
// Each line is byte-built into one reusable buffer (strconv.Append*
// instead of Fprintln/FormatFloat), so writing allocates O(1) rather
// than O(edges).
func (g *Graph) writeEdgeList(w io.Writer, sep byte) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	bw.WriteString("src")
	bw.WriteByte(sep)
	bw.WriteString("dst")
	bw.WriteByte(sep)
	bw.WriteString("weight\n")
	unsafeChars := string([]byte{sep, '\n', '\r'})
	buf := make([]byte, 0, 64)
	for _, e := range g.edges {
		buf = buf[:0]
		var err error
		if buf, err = g.appendLabel(buf, e.Src, sep, unsafeChars); err != nil {
			return err
		}
		buf = append(buf, sep)
		if buf, err = g.appendLabel(buf, e.Dst, sep, unsafeChars); err != nil {
			return err
		}
		buf = append(buf, sep)
		buf = strconv.AppendFloat(buf, e.Weight, 'g', -1, 64)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendLabel appends node id's display label (label or numeric ID),
// rejecting labels that would corrupt a sep-delimited line.
func (g *Graph) appendLabel(buf []byte, id int32, sep byte, unsafeChars string) ([]byte, error) {
	l := g.labels[id]
	if l == "" {
		return strconv.AppendInt(buf, int64(id), 10), nil
	}
	if strings.ContainsAny(l, unsafeChars) {
		return nil, fmt.Errorf("graph: label %q contains the field separator %q; write this graph as ndjson instead", l, sep)
	}
	return append(buf, l...), nil
}

// WriteCSV writes the canonical edge list as "src,dst,weight" lines with
// a header. Nodes without labels are written as their numeric ID.
func (g *Graph) WriteCSV(w io.Writer) error { return g.writeEdgeList(w, ',') }

// ndjsonEdge is the wire form of one edge in the ndjson format.
type ndjsonEdge struct {
	Src    any      `json:"src"`
	Dst    any      `json:"dst"`
	Weight *float64 `json:"weight"`
}

// JSONLabel renders a decoded src/dst value as a node label. Strings
// pass through; numbers keep their literal spelling (json.Number).
// Shared by the ndjson reader and the daemon's JSON envelope.
func JSONLabel(v any) (string, error) {
	switch t := v.(type) {
	case string:
		return t, nil
	case json.Number:
		return t.String(), nil
	case nil:
		return "", fmt.Errorf("missing node field")
	default:
		return "", fmt.Errorf("node field must be a string or number, got %T", v)
	}
}

// readNDJSON parses newline-delimited JSON objects of the form
// {"src": ..., "dst": ..., "weight": n}. src and dst may be strings or
// numbers; blank lines are skipped.
func readNDJSON(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.UseNumber()
		var e ndjsonEdge
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad ndjson edge: %v", lineNo, err)
		}
		src, err := JSONLabel(e.Src)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: src: %v", lineNo, err)
		}
		dst, err := JSONLabel(e.Dst)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: dst: %v", lineNo, err)
		}
		if e.Weight == nil {
			return nil, fmt.Errorf("graph: line %d: missing weight", lineNo)
		}
		if err := b.AddEdgeLabels(src, dst, *e.Weight); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: line %d: %w (limit %d bytes)", lineNo+1, ErrLineTooLong, maxLineBytes)
		}
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return b.Build(), nil
}

// writeNDJSON writes one {"src","dst","weight"} JSON object per edge.
// Records are byte-built into a reusable buffer; labels that need
// escaping (or any non-ASCII content) fall back to encoding/json for
// exact escaping semantics.
func (g *Graph) writeNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	buf := make([]byte, 0, 96)
	for _, e := range g.edges {
		buf = buf[:0]
		var err error
		buf = append(buf, `{"src":`...)
		if buf, err = appendJSONLabel(buf, g.label(e.Src)); err != nil {
			return err
		}
		buf = append(buf, `,"dst":`...)
		if buf, err = appendJSONLabel(buf, g.label(e.Dst)); err != nil {
			return err
		}
		buf = append(buf, `,"weight":`...)
		if buf, err = appendJSONFloat(buf, e.Weight); err != nil {
			return err
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONLabel appends s as a JSON string. Plain printable ASCII
// (no quotes, backslashes or control characters) is appended verbatim;
// anything else goes through encoding/json. Output bytes therefore
// differ from the old json.Encoder writer for labels containing '<',
// '>' or '&' (no HTML escaping on the fast path) — equally valid JSON
// that decodes to the same string, which is the guarantee the
// round-trip tests pin.
func appendJSONLabel(buf []byte, s string) ([]byte, error) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x80 || c == '"' || c == '\\' {
			enc, err := json.Marshal(s)
			if err != nil {
				return nil, err
			}
			return append(buf, enc...), nil
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"'), nil
}

// appendJSONFloat appends f as a JSON number in strconv's shortest
// 'g' form (encoding/json uses a slightly different float spelling;
// both parse back to the identical bits), rejecting the values JSON
// cannot represent — the same ones encoding/json rejects.
func appendJSONFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("graph: json: unsupported value: %v", f)
	}
	return strconv.AppendFloat(buf, f, 'g', -1, 64), nil
}
