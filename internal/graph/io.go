package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses an edge list of the form "src,dst,weight" (one edge per
// line; '#'-prefixed lines and a "src,dst,..." header are skipped) into a
// Graph. Fields may also be tab- or space-separated. Node labels are
// arbitrary strings; IDs are assigned in order of first appearance.
func ReadCSV(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 fields (src,dst,weight), got %d", lineNo, len(fields))
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			if lineNo == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		if err := b.AddEdgeLabels(fields[0], fields[1], w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return b.Build(), nil
}

func splitFields(line string) []string {
	if strings.ContainsRune(line, ',') {
		parts := strings.Split(line, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	return strings.Fields(line)
}

// WriteCSV writes the canonical edge list as "src,dst,weight" lines with
// a header. Nodes without labels are written as their numeric ID.
func (g *Graph) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "src,dst,weight"); err != nil {
		return err
	}
	name := func(id int32) string {
		if l := g.labels[id]; l != "" {
			return l
		}
		return strconv.Itoa(int(id))
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%s,%s,%g\n", name(e.Src), name(e.Dst), e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}
