package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxLineBytes caps a single input line. Edge-list lines are three
// short fields; anything near this limit is a malformed or binary file.
const maxLineBytes = 1 << 20

// ErrLineTooLong marks an input line exceeding the per-line cap. It
// used to surface as bufio.Scanner's generic "token too long"; now it
// carries the offending line number.
var ErrLineTooLong = errors.New("line too long")

// readEdgeList parses delimited "src dst weight" lines into a Graph.
// Fields are tab-separated when the line contains a tab, else
// comma-separated when it contains a comma, else whitespace-separated —
// preferring tabs keeps labels containing commas intact in TSV files.
// Blank lines and '#' comments are skipped; CRLF line endings are
// handled; a header row is detected on line 1 by a non-numeric weight
// field regardless of the separator.
func readEdgeList(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 fields (src,dst,weight), got %d", lineNo, len(fields))
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			if lineNo == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		if err := b.AddEdgeLabels(fields[0], fields[1], w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: line %d: %w (limit %d bytes)", lineNo+1, ErrLineTooLong, maxLineBytes)
		}
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return b.Build(), nil
}

// ReadCSV parses an edge list of the form "src,dst,weight" (one edge per
// line; '#'-prefixed lines and a "src,dst,..." header are skipped) into a
// Graph. Fields may also be tab- or space-separated. Node labels are
// arbitrary strings; IDs are assigned in order of first appearance.
//
// New code should prefer ReadGraph, which adds format selection,
// content sniffing and transparent gzip decompression.
func ReadCSV(r io.Reader, directed bool) (*Graph, error) {
	return readEdgeList(r, directed)
}

func splitFields(line string) []string {
	// Tabs are the most deliberate separator: a TSV header or label may
	// legitimately contain commas, so check for tabs first.
	var parts []string
	switch {
	case strings.ContainsRune(line, '\t'):
		parts = strings.Split(line, "\t")
	case strings.ContainsRune(line, ','):
		parts = strings.Split(line, ",")
	default:
		return strings.Fields(line)
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// label returns the display label of a node: its string label when one
// was assigned, else its numeric ID.
func (g *Graph) label(id int32) string {
	if l := g.labels[id]; l != "" {
		return l
	}
	return strconv.Itoa(int(id))
}

// LabelOrID is the node's display label for serialization: its string
// label when one was assigned, else its numeric ID.
func (g *Graph) LabelOrID(u int) string { return g.label(int32(u)) }

// writeEdgeList writes the canonical edge list with the given field
// separator, preceded by a header row. Weights use strconv's shortest
// exact representation, so written graphs read back bit-identically.
// A label containing the separator (or a newline) would corrupt the
// output and break that guarantee, so it is an explicit error — use
// ndjson (or a different separator) for such labels.
func (g *Graph) writeEdgeList(w io.Writer, sep byte) error {
	bw := bufio.NewWriter(w)
	header := strings.Join([]string{"src", "dst", "weight"}, string(sep))
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	unsafe := string(sep) + "\n\r"
	writeLabel := func(l string) error {
		if strings.ContainsAny(l, unsafe) {
			return fmt.Errorf("graph: label %q contains the field separator %q; write this graph as ndjson instead", l, sep)
		}
		bw.WriteString(l)
		return nil
	}
	for _, e := range g.edges {
		if err := writeLabel(g.label(e.Src)); err != nil {
			return err
		}
		bw.WriteByte(sep)
		if err := writeLabel(g.label(e.Dst)); err != nil {
			return err
		}
		bw.WriteByte(sep)
		bw.WriteString(strconv.FormatFloat(e.Weight, 'g', -1, 64))
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes the canonical edge list as "src,dst,weight" lines with
// a header. Nodes without labels are written as their numeric ID.
func (g *Graph) WriteCSV(w io.Writer) error { return g.writeEdgeList(w, ',') }

// ndjsonEdge is the wire form of one edge in the ndjson format.
type ndjsonEdge struct {
	Src    any      `json:"src"`
	Dst    any      `json:"dst"`
	Weight *float64 `json:"weight"`
}

// JSONLabel renders a decoded src/dst value as a node label. Strings
// pass through; numbers keep their literal spelling (json.Number).
// Shared by the ndjson reader and the daemon's JSON envelope.
func JSONLabel(v any) (string, error) {
	switch t := v.(type) {
	case string:
		return t, nil
	case json.Number:
		return t.String(), nil
	case nil:
		return "", fmt.Errorf("missing node field")
	default:
		return "", fmt.Errorf("node field must be a string or number, got %T", v)
	}
}

// readNDJSON parses newline-delimited JSON objects of the form
// {"src": ..., "dst": ..., "weight": n}. src and dst may be strings or
// numbers; blank lines are skipped.
func readNDJSON(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.UseNumber()
		var e ndjsonEdge
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad ndjson edge: %v", lineNo, err)
		}
		src, err := JSONLabel(e.Src)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: src: %v", lineNo, err)
		}
		dst, err := JSONLabel(e.Dst)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: dst: %v", lineNo, err)
		}
		if e.Weight == nil {
			return nil, fmt.Errorf("graph: line %d: missing weight", lineNo)
		}
		if err := b.AddEdgeLabels(src, dst, *e.Weight); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: line %d: %w (limit %d bytes)", lineNo+1, ErrLineTooLong, maxLineBytes)
		}
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return b.Build(), nil
}

// writeNDJSON writes one {"src","dst","weight"} JSON object per edge.
func (g *Graph) writeNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range g.edges {
		rec := struct {
			Src    string  `json:"src"`
			Dst    string  `json:"dst"`
			Weight float64 `json:"weight"`
		}{g.label(e.Src), g.label(e.Dst), e.Weight}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
