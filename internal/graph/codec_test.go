package graph

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// withCodecTuning shrinks the codec's chunk size and forces a worker
// count for the duration of one test, so chunk boundaries and the
// concurrent path are exercised on small inputs.
func withCodecTuning(t testing.TB, chunk, workers int) {
	t.Helper()
	oldChunk, oldWorkers := readChunkSize, readWorkers
	readChunkSize, readWorkers = chunk, workers
	t.Cleanup(func() { readChunkSize, readWorkers = oldChunk, oldWorkers })
}

// sameGraph fails the test unless a and b are bit-identical: same
// direction, same labels in the same ID order, same canonical edge
// slice with bit-equal weights.
func sameGraph(t *testing.T, a, b *Graph, ctx string) {
	t.Helper()
	if a.Directed() != b.Directed() {
		t.Fatalf("%s: directedness differs", ctx)
	}
	if !reflect.DeepEqual(a.Labels(), b.Labels()) {
		t.Fatalf("%s: labels differ:\n got %q\nwant %q", ctx, a.Labels(), b.Labels())
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: %d edges, want %d", ctx, len(ae), len(be))
	}
	for i := range ae {
		if ae[i].Src != be[i].Src || ae[i].Dst != be[i].Dst ||
			math.Float64bits(ae[i].Weight) != math.Float64bits(be[i].Weight) {
			t.Fatalf("%s: edge %d = %+v, want %+v", ctx, i, ae[i], be[i])
		}
	}
}

// compareWithOracle runs the chunked reader against the serial oracle
// on the same input and requires identical graphs or identical errors.
func compareWithOracle(t *testing.T, input string, directed bool, ctx string) {
	t.Helper()
	want, wantErr := readEdgeListSerial(strings.NewReader(input), directed)
	got, gotErr := readEdgeList(strings.NewReader(input), directed)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch:\n got %v\nwant %v", ctx, gotErr, wantErr)
	}
	if wantErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: error text differs:\n got %q\nwant %q", ctx, gotErr, wantErr)
		}
		if errors.Is(wantErr, ErrLineTooLong) != errors.Is(gotErr, ErrLineTooLong) {
			t.Fatalf("%s: ErrLineTooLong class differs", ctx)
		}
		return
	}
	sameGraph(t, got, want, ctx)
}

// oracleCases are hand-picked inputs covering every branch the two
// readers share: separators, headers, comments, CRLF, malformed rows,
// self-loops, duplicate edges, empty fields, extra fields.
var oracleCases = []string{
	"",
	"\n\n\n",
	"# only a comment\n",
	"a,b,1\n",
	"a,b,1", // no trailing newline
	"src,dst,weight\na,b,1\nb,c,2\n",
	"src\tdst\tweight\nDoe, Jane\tRoe, Rich\t3\n",
	"a b 1\nb c 2.5\n",
	"a,b,1\r\nb,c,2\r\n",
	"a,b,1\n\n# mid comment\nb,c,2\n",
	"a,b,1\na,b,2\nb,a,4\n", // duplicate edges accumulate
	"a,b,1e-7\nb,c,6.02e23\nc,d,0.1\n",
	"x,y,0\n",            // zero weight ignored
	"a,a,1\n",            // self-loop error
	"a,b,-1\n",           // negative weight error
	"a,b\n",              // two fields
	"a,b,xyz\n",          // header-looking line 1 (digit-free): skipped
	"a,b,1x2\n",          // malformed line 1 weight WITH digits: error
	"a,b,1\nc,d,bogus\n", // bad weight on line 2
	"a,b,1\nc,d\n",       // short line 2
	",b,1\n,c,2\n",       // empty src labels (anonymous nodes)
	"a,,1\nb,,2\n",       // empty dst labels
	"a,b,1,extra,fields\n",
	"a , b , 1.5\n", // padded comma fields
	"a\tb\t2\nb\tc\t3\n",
	"1,2,3\n2,3,4\n", // numeric labels
	"é,ü,1\nü,æ,2\n", // multi-byte labels
	"a b 1\n",        // unicode space separators
	"a,b,NaN\n",
	"a,b,Inf\n",
	"src,dst,weight\n# comment\na,b,2\n",
}

func TestParallelReaderMatchesSerialOracle(t *testing.T) {
	for _, workers := range []int{1, 3} {
		for _, chunk := range []int{7, 23, 256, 1 << 20} {
			withCodecTuning(t, chunk, workers)
			for i, in := range oracleCases {
				for _, directed := range []bool{false, true} {
					ctx := fmt.Sprintf("case %d (chunk=%d workers=%d directed=%v) %q", i, chunk, workers, directed, in)
					compareWithOracle(t, in, directed, ctx)
				}
			}
		}
	}
}

// TestParallelReaderMatchesSerialOracleRandom drives both readers over
// generated inputs mixing separators, comments, blanks, bad rows and
// duplicate labels, across chunk sizes that force edges to straddle
// chunk boundaries.
func TestParallelReaderMatchesSerialOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	labels := []string{"a", "bb", "ccc", "node-x", "1", "42", "é"}
	seps := []string{",", "\t", " "}
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		if rng.Intn(3) == 0 {
			sb.WriteString("src,dst,weight\n")
		}
		lines := rng.Intn(80)
		for i := 0; i < lines; i++ {
			switch rng.Intn(12) {
			case 0:
				sb.WriteString("\n")
			case 1:
				sb.WriteString("# comment line\n")
			case 2: // occasionally malformed (both readers must agree)
				sb.WriteString("bad,row\n")
			default:
				sep := seps[rng.Intn(len(seps))]
				u := labels[rng.Intn(len(labels))]
				v := labels[rng.Intn(len(labels))]
				fmt.Fprintf(&sb, "%s%s%s%s%g\n", u, sep, v, sep, rng.Float64()*10)
			}
		}
		in := sb.String()
		for _, chunk := range []int{11, 64, 1 << 20} {
			withCodecTuning(t, chunk, 3)
			compareWithOracle(t, in, trial%2 == 0, fmt.Sprintf("trial %d chunk %d", trial, chunk))
		}
	}
}

// TestHeaderDetectionRegression pins the satellite bugfix: a malformed
// first data row whose weight field contains digits is an error, not a
// silently swallowed header.
func TestHeaderDetectionRegression(t *testing.T) {
	for name, read := range map[string]func(r *strings.Reader) (*Graph, error){
		"chunked": func(r *strings.Reader) (*Graph, error) { return readEdgeList(r, false) },
		"serial":  func(r *strings.Reader) (*Graph, error) { return readEdgeListSerial(r, false) },
	} {
		t.Run(name, func(t *testing.T) {
			// Digit-free weight field on line 1: a header, skipped.
			g, err := read(strings.NewReader("src,dst,weight\na,b,1\n"))
			if err != nil || g.NumEdges() != 1 {
				t.Fatalf("header skip: %v, %d edges", err, g.NumEdges())
			}
			// Malformed line-1 weight with digits: an error naming line 1.
			_, err = read(strings.NewReader("a,b,1x\nc,d,2\n"))
			if err == nil {
				t.Fatal("malformed first data row silently swallowed as header")
			}
			if !strings.Contains(err.Error(), "line 1") || !strings.Contains(err.Error(), "bad weight") {
				t.Errorf("error %q does not name line 1's bad weight", err)
			}
		})
	}
}

// TestChunkBoundaryLineNumbers forces errors onto lines that straddle
// chunk boundaries and checks the reported line numbers survive the
// chunked pipeline.
func TestChunkBoundaryLineNumbers(t *testing.T) {
	withCodecTuning(t, 16, 3)
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "n%d,n%d,1\n", i, i+1)
	}
	sb.WriteString("oops,row,bogus\n") // line 41
	_, err := readEdgeList(strings.NewReader(sb.String()), false)
	if err == nil || !strings.Contains(err.Error(), "line 41") {
		t.Fatalf("error %v does not name line 41", err)
	}
}

// TestLineTooLongAcrossChunks: an overlong line assembled from many
// chunk reads fails with the typed sentinel and its true line number
// without buffering the rest of the input.
func TestLineTooLongAcrossChunks(t *testing.T) {
	withCodecTuning(t, 1024, 3)
	long := "a,b,1\nc,d,2\n" + strings.Repeat("x", maxLineBytes+10) + ",y,3\n"
	_, err := readEdgeList(strings.NewReader(long), false)
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("got %v, want ErrLineTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}

// TestChunkedReaderLargeInput runs a beyond-one-chunk input through
// the default configuration and cross-checks the oracle.
func TestChunkedReaderLargeInput(t *testing.T) {
	withCodecTuning(t, 1<<12, 4)
	var sb strings.Builder
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20_000; i++ {
		fmt.Fprintf(&sb, "n%d,n%d,%g\n", rng.Intn(4000), rng.Intn(4000), 1+rng.Float64())
	}
	compareWithOracle(t, sb.String(), false, "large input")
}

// FuzzReadEdgeListChunked fuzzes arbitrary bytes through both readers
// with chunk boundaries forced small; graphs and error text must agree.
func FuzzReadEdgeListChunked(f *testing.F) {
	for _, s := range oracleCases {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		oldChunk, oldWorkers := readChunkSize, readWorkers
		readChunkSize, readWorkers = 17, 3
		defer func() { readChunkSize, readWorkers = oldChunk, oldWorkers }()
		want, wantErr := readEdgeListSerial(bytes.NewReader(data), false)
		got, gotErr := readEdgeList(bytes.NewReader(data), false)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: got %v, want %v", gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text differs:\n got %q\nwant %q", gotErr, wantErr)
			}
			return
		}
		if !reflect.DeepEqual(got.Labels(), want.Labels()) {
			t.Fatalf("labels differ: %q vs %q", got.Labels(), want.Labels())
		}
		ge, we := got.Edges(), want.Edges()
		if len(ge) != len(we) {
			t.Fatalf("%d edges, want %d", len(ge), len(we))
		}
		for i := range ge {
			if ge[i].Src != we[i].Src || ge[i].Dst != we[i].Dst ||
				math.Float64bits(ge[i].Weight) != math.Float64bits(we[i].Weight) {
				t.Fatalf("edge %d = %+v, want %+v", i, ge[i], we[i])
			}
		}
	})
}
