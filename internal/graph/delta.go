package graph

// Incremental updates: a Delta is a mutable overlay of pending edge
// upserts/deletes over an immutable base Graph. Updates accumulate in a
// small patch log, sorted by canonical (Src, Dst) key; materializing
// merges the *previous* materialization with the just-applied batch in
// segment-sized memmoves — O(m) bytes moved but only O(b log m) key
// work for a batch of b updates — and patches offsets, strengths and
// the isolate count in O(b + n) instead of recounting the edge slice.
// The global total and the arc scatter are deferred (lazyTotal,
// lazyArcs): frontier re-scoring touches neither. Once the patch
// outgrows a compaction limit the materialized graph (arcs included)
// becomes the new base and the patch resets.
//
// Exclusive mode (SetExclusive) adds move semantics for callers — the
// daemon's sessions, and any single-consumer serving loop — that drop
// generation N-1 the moment generation N exists: instead of copying the
// previous materialization's arrays, Graph() patches them in place and
// re-tags them under a fresh *Graph header. A pure re-weight batch then
// moves no edge bytes at all, and an insert moves only the tail after
// the insertion point. The base graph is never mutated (the first
// materialization after construction or compaction still copies), so
// compaction, the patch fold and strength refolds keep their immutable
// source of truth.
//
// Bit-identity contract: a materialized graph is indistinguishable —
// down to the last float bit — from a cold Build over the same final
// edge set. That holds because (a) edges stay in canonical order, so
// scatterArcs produces identical arcs; (b) the global total is refolded
// over all edges in canonical order (float addition is not associative,
// so the fold cannot be patched incrementally without drifting) — the
// fold is merely deferred to the first TotalWeight call; and (c) each
// node's strength is a left fold of its own incident edge weights in
// canonical order (see accumulate in builder.go) — nodes the batch
// never touches keep their previous materialization's values, which are
// by induction the exact canonical folds, and touched nodes are
// refolded in O(deg) by merging base arcs with their patch incidences
// in arc (To) order, which for a single node is exactly canonical
// incident-edge order.

import (
	"fmt"
	"slices"
	"sort"
)

// Update sets the weight of one edge relative to a Delta's base graph.
// Weight > 0 sets the edge to exactly that weight (inserting it if
// absent); Weight == 0 deletes it. Node IDs must exist in the base —
// the node set is fixed at build time. For undirected graphs the pair
// is canonicalized (order does not matter).
type Update struct {
	Src, Dst int32
	Weight   float64
}

// Dirty records what changed between two materializations: For is the
// newly materialized graph, Base the previous one, and Nodes the sorted
// unique endpoints of every update applied in between. It is the input
// filter.RescoreDirty needs to re-score only the affected rows of a
// score table computed for Base. Diff, when non-nil, additionally maps
// the two graphs' score-table rows onto each other so the re-scorer
// does not even have to diff the edge slices.
//
// Exclusive reports that the overlay runs in exclusive mode (see
// SetExclusive): Base has been surrendered — its arrays may already
// back For — and any score table computed for it may likewise be folded
// into its successor in place rather than copied.
type Dirty struct {
	Base      *Graph
	For       *Graph
	Nodes     []int32
	Diff      *RowDiff
	Exclusive bool
}

// RowDiff is the row-level diff between Base's and For's canonical edge
// slices, precomputed during materialization where the patch positions
// are already known. Copies are the maximal runs of rows present in
// both graphs under the same edge key (weights included unchanged,
// since changed keys terminate every run); Changed lists For's rows
// that were inserted or re-weighted by the batch; Frontier lists every
// For row incident to a node in Dirty.Nodes, Changed included. Both row
// lists are sorted ascending.
type RowDiff struct {
	Copies   []SegCopy
	Changed  []int32
	Frontier []int32
}

// SegCopy maps the contiguous row run [BaseLo, BaseLo+Len) of
// Dirty.Base onto rows [ForLo, ForLo+Len) of Dirty.For.
type SegCopy struct {
	BaseLo, ForLo, Len int32
}

// DefaultCompactLimit is the patch size at which Graph() folds the
// overlay into a fresh base CSR. 4096 keeps the per-read merge overhead
// bounded (the patch is a single cache-resident run) while amortizing
// the O(m) arc scatter over thousands of updates.
const DefaultCompactLimit = 4096

// Delta accumulates edge updates over an immutable base Graph. It is
// not safe for concurrent use: callers that share one (e.g. daemon
// sessions) must serialize access.
type Delta struct {
	base *Graph
	last *Graph // previous Graph() result; base before the first call
	// patch is the pending overlay: canonical-key sorted, deduplicated,
	// Weight == 0 marking a deletion.
	patch []Edge
	// sinceLast is the canonical merged batch applied since the last
	// materialization — the part of patch the previous Graph() result
	// has not absorbed yet.
	sinceLast []Edge
	// recent collects (unsorted, with duplicates) the endpoints touched
	// since the last materialization — the Dirty.Nodes source.
	recent []int32
	limit  int
	// exclusive enables move semantics: see SetExclusive.
	exclusive bool

	cached      *Graph
	cachedDirty Dirty
}

// NewDelta returns an empty overlay on base. limit is the compaction
// threshold; <= 0 selects DefaultCompactLimit.
func NewDelta(base *Graph, limit int) *Delta {
	if limit <= 0 {
		limit = DefaultCompactLimit
	}
	return &Delta{base: base, last: base, limit: limit}
}

// WithUpdates returns a Delta over g with one batch of updates already
// applied — the single-call entry point for callers that do not manage
// a long-lived overlay.
func (g *Graph) WithUpdates(updates []Update) (*Delta, error) {
	d := NewDelta(g, 0)
	if err := d.Apply(updates); err != nil {
		return nil, err
	}
	return d, nil
}

// SetExclusive declares that the caller is the overlay's only consumer
// and retains no materialization beyond the latest: after each Graph()
// call the previous result — and any score table computed for it — is
// surrendered, and the next materialization may cannibalize its arrays
// in place instead of copying them (filter.RescoreDirty honours the
// same surrender for score columns via Dirty.Exclusive). The base graph
// is never mutated. Violating the contract — reading a surrendered
// graph or table after a later Graph() call — yields garbage, not a
// crash, so enable this only where an owner serializes the whole
// read/update cycle, as the daemon's session lock does.
func (d *Delta) SetExclusive(on bool) { d.exclusive = on }

// Base returns the graph the pending patch currently applies to (it
// advances on compaction).
func (d *Delta) Base() *Graph { return d.base }

// Pending returns the number of distinct edges in the pending patch.
func (d *Delta) Pending() int { return len(d.patch) }

// Apply merges one batch of updates into the pending patch. Set
// semantics: within the batch the last update to a pair wins, and a
// later batch overrides an earlier one. The whole batch is validated
// before any of it is applied, so a failed Apply leaves the Delta
// unchanged. Deleting an absent edge is a harmless tombstone.
//
//lint:ctxflow-ok O(batch log batch) over the update batch only, no I/O; the O(m) work happens in Graph()/RescoreDirty which run under the caller's ctx
func (d *Delta) Apply(updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	n := int32(d.base.NumNodes())
	batch := make([]Edge, 0, len(updates))
	for i, u := range updates {
		if u.Src < 0 || u.Src >= n || u.Dst < 0 || u.Dst >= n {
			return fmt.Errorf("graph: update %d: edge (%d, %d) references a node outside [0, %d)", i, u.Src, u.Dst, n)
		}
		if u.Src == u.Dst {
			return fmt.Errorf("graph: update %d: self-loop on node %d", i, u.Src)
		}
		if u.Weight < 0 || u.Weight != u.Weight {
			return fmt.Errorf("graph: update %d: invalid weight %v on edge (%d, %d)", i, u.Weight, u.Src, u.Dst)
		}
		src, dst := u.Src, u.Dst
		if !d.base.directed && src > dst {
			src, dst = dst, src
		}
		batch = append(batch, Edge{Src: src, Dst: dst, Weight: u.Weight})
	}
	// Canonicalize the batch: stable sort by key preserves arrival
	// order among duplicates, so keeping the last entry per key
	// implements last-wins.
	slices.SortStableFunc(batch, cmpEdgeKey)
	dedup := batch[:0]
	for _, e := range batch {
		if k := len(dedup); k > 0 && dedup[k-1].Src == e.Src && dedup[k-1].Dst == e.Dst {
			dedup[k-1] = e
		} else {
			dedup = append(dedup, e)
		}
	}
	d.patch = mergePatch(d.patch, dedup)
	d.sinceLast = mergePatch(d.sinceLast, dedup)
	for _, e := range dedup {
		d.recent = append(d.recent, e.Src, e.Dst)
	}
	d.cached = nil
	return nil
}

// Graph materializes the overlay and reports what it dirtied relative
// to the previous materialization. The result is cached: repeated calls
// without an intervening Apply return the same *Graph and the same
// Dirty record (so a caller that missed one can still catch up).
//
// The materialized graph defers its arc scatter and global-total fold
// until an accessor needs them — frontier re-scoring (strengths +
// degrees + edge slice) never pays for either. When the patch has
// reached the compaction limit the arcs are assembled eagerly and the
// result becomes the new base.
func (d *Delta) Graph() (*Graph, Dirty) {
	if d.cached != nil {
		return d.cached, d.cachedDirty
	}
	dirty := Dirty{Base: d.last, Nodes: dedupNodes(d.recent), Exclusive: d.exclusive}
	var g *Graph
	if len(d.patch) == 0 {
		g = d.base
	} else {
		g, dirty.Diff = d.materialize(dirty.Nodes)
		if len(d.patch) >= d.limit {
			g.ensureArcs()
			d.base, d.patch = g, nil
		}
	}
	dirty.For = g
	d.last, d.recent, d.sinceLast = g, nil, nil
	d.cached, d.cachedDirty = g, dirty
	return g, dirty
}

// materialize builds the merged graph. Small batches take the
// incremental path — patch the previous materialization and report a
// RowDiff; batches a sizable fraction of the graph fall back to the
// full base+patch merge, where per-key binary searches would cost more
// than one linear pass.
func (d *Delta) materialize(dirtyNodes []int32) (*Graph, *RowDiff) {
	if len(d.sinceLast) == 0 || len(d.sinceLast)*8 > len(d.last.edges)+64 {
		return d.materializeFull(), nil
	}
	return d.materializeDelta(dirtyNodes)
}

// materializeFull merges base edges with the whole patch in one linear
// pass and recounts offsets from the result — the batch-heavy fallback.
func (d *Delta) materializeFull() *Graph {
	base := d.base
	n := base.NumNodes()
	g := &Graph{
		directed:  base.directed,
		labels:    base.labels,
		index:     base.index,
		lazy:      base.lazy,
		edges:     applyPatch(base.edges, d.patch),
		lazyArcs:  &arcsOnce{},
		lazyTotal: &totalOnce{},
	}
	g.computeOffsets(n)
	// Untouched nodes keep their exact base strengths (their fold sees
	// only their own incident edges); patched nodes are refolded.
	g.outStrength = append([]float64(nil), base.outStrength...)
	if g.directed {
		g.inStrength = append([]float64(nil), base.inStrength...)
	}
	touched := make([]int32, 0, 2*len(d.patch))
	for _, e := range d.patch {
		touched = append(touched, e.Src, e.Dst)
	}
	d.patchStrengths(g, dedupNodes(touched), d.patchDstIndex())
	if !g.directed {
		g.inStrength = g.outStrength
	}
	for u := 0; u < n; u++ {
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			g.isolates++
		}
	}
	return g
}

// nodeDelta is one node's pending degree change during an incremental
// materialization.
type nodeDelta struct {
	node  int32
	delta int32
}

// materializeDelta patches the previous materialization with the batch
// applied since. An analyze pass locates every batch key in the old
// edge slice by binary search — no data moves — and records the RowDiff
// (clean segments, changed rows) plus per-node degree deltas; the
// commit pass then moves segments into a fresh slice or, in exclusive
// mode, shifts them within the surrendered slice itself. Offset arrays
// are shared outright when no edge was inserted or deleted (a re-weight
// changes no degree) and prefix-shifted otherwise; strengths are
// refolded for batch endpoints only.
func (d *Delta) materializeDelta(dirtyNodes []int32) (*Graph, *RowDiff) {
	last := d.last
	batch := d.sinceLast
	g := &Graph{
		directed:  last.directed,
		labels:    last.labels,
		index:     last.index,
		lazy:      last.lazy,
		lazyArcs:  &arcsOnce{},
		lazyTotal: &totalOnce{},
	}

	// Analyze: clean segments between batch keys become SegCopies,
	// batch rows land in Changed, degree changes accumulate per node.
	diff := &RowDiff{}
	var outDeltas, inDeltas []nodeDelta
	iLast, forLen := 0, 0
	for _, p := range batch {
		lp := lowerBoundEdge(last.edges, p.Src, p.Dst)
		if lp > iLast {
			diff.Copies = append(diff.Copies, SegCopy{BaseLo: int32(iLast), ForLo: int32(forLen), Len: int32(lp - iLast)})
			forLen += lp - iLast
		}
		iLast = lp
		inLast := lp < len(last.edges) && last.edges[lp].Src == p.Src && last.edges[lp].Dst == p.Dst
		if inLast {
			iLast++
		}
		if p.Weight > 0 {
			diff.Changed = append(diff.Changed, int32(forLen))
			forLen++
		}
		switch {
		case !inLast && p.Weight > 0: // insert
			if g.directed {
				outDeltas = append(outDeltas, nodeDelta{p.Src, 1})
				inDeltas = append(inDeltas, nodeDelta{p.Dst, 1})
			} else {
				outDeltas = append(outDeltas, nodeDelta{p.Src, 1}, nodeDelta{p.Dst, 1})
			}
		case inLast && p.Weight == 0: // delete
			if g.directed {
				outDeltas = append(outDeltas, nodeDelta{p.Src, -1})
				inDeltas = append(inDeltas, nodeDelta{p.Dst, -1})
			} else {
				outDeltas = append(outDeltas, nodeDelta{p.Src, -1}, nodeDelta{p.Dst, -1})
			}
		}
	}
	if rest := len(last.edges) - iLast; rest > 0 {
		diff.Copies = append(diff.Copies, SegCopy{BaseLo: int32(iLast), ForLo: int32(forLen), Len: int32(rest)})
		forLen += rest
	}
	outDeltas, inDeltas = aggregateDeltas(outDeltas), aggregateDeltas(inDeltas)

	// Isolate count next, while last's offsets are still intact (the
	// exclusive commit below may shift them in place): each dirty
	// node's degree transition is its old degree plus the accumulated
	// delta.
	iso := last.isolates
	if len(outDeltas) > 0 || len(inDeltas) > 0 {
		for _, u := range dirtyNodes {
			before := last.OutDegree(int(u))
			after := before + int(deltaFor(outDeltas, u))
			if g.directed {
				in := last.InDegree(int(u))
				before += in
				after += in + int(deltaFor(inDeltas, u))
			}
			switch {
			case before == 0 && after > 0:
				iso--
			case before > 0 && after == 0:
				iso++
			}
		}
	}

	// Commit the edge slice. surrender: last is this overlay's own
	// previous materialization (never the immutable base) and the
	// caller has declared it dead, so its arrays are ours to reuse.
	surrender := d.exclusive && last != d.base
	if surrender && cap(last.edges) >= forLen {
		g.edges = moveSegments(last.edges, forLen, diff.Copies)
	} else {
		ecap := forLen
		if d.exclusive {
			// Headroom so the next materializations can shift in place:
			// net growth between compactions is bounded by the patch
			// limit (larger one-shot batches take materializeFull).
			ecap += d.limit + 64
		}
		edges := make([]Edge, forLen, ecap)
		for _, sc := range diff.Copies {
			copy(edges[sc.ForLo:sc.ForLo+sc.Len], last.edges[sc.BaseLo:sc.BaseLo+sc.Len])
		}
		g.edges = edges
	}
	ci := 0
	for _, p := range batch {
		if p.Weight > 0 {
			g.edges[diff.Changed[ci]] = p
			ci++
		}
	}

	// Offsets: a batch of pure re-weights changes no degree, so the
	// previous graph's offset arrays apply verbatim. Inserts and
	// deletes shift every offset after the affected node by the degree
	// delta — one O(n) int pass instead of an O(m) recount — in place
	// when the array is surrendered and private (offset sharing can
	// make a surrendered graph alias the immutable base's array).
	g.outOff = commitOffsets(last.outOff, outDeltas, surrender && !sameInt32Array(last.outOff, d.base.outOff))
	if g.directed {
		g.inOff = commitOffsets(last.inOff, inDeltas, surrender && !sameInt32Array(last.inOff, d.base.inOff))
	}
	g.isolates = iso

	// Strengths: untouched nodes keep the previous materialization's
	// values — by induction the exact canonical folds — and batch
	// endpoints are refolded from base arcs + full patch incidences.
	// Surrendered strength arrays are always private (both copy paths
	// allocate them), so they are reused outright.
	if surrender {
		g.outStrength = last.outStrength
		if g.directed {
			g.inStrength = last.inStrength
		}
	} else {
		g.outStrength = append([]float64(nil), last.outStrength...)
		if g.directed {
			g.inStrength = append([]float64(nil), last.inStrength...)
		}
	}
	dstIdx := d.patchDstIndex()
	d.patchStrengths(g, dirtyNodes, dstIdx)
	if !g.directed {
		g.inStrength = g.outStrength
	}

	diff.Frontier = d.frontierRows(g, dirtyNodes, dstIdx, diff.Changed)
	return g, diff
}

// moveSegments shifts the clean segments of a surrendered edge slice to
// their destination rows in place and returns the reslice at the new
// length (cap must admit it). Sources and destinations are each
// ascending and pairwise disjoint, so two memmove passes suffice:
// left-moving segments first in ascending order — a left move lands at
// or before its own source and past the previous destination, so the
// only not-yet-moved data it can overwrite is the dead gap between
// sources — then right-moving segments in descending order, whose
// destinations lie beyond every source still awaiting a move.
// Zero-shift segments never move at all, which is what makes a pure
// re-weight batch free. Changed rows are left stale here; the caller
// overwrites every one of them, and together the segments and changed
// rows partition the new row space.
func moveSegments(arr []Edge, newLen int, copies []SegCopy) []Edge {
	if newLen > len(arr) {
		arr = arr[:newLen]
	}
	for _, sc := range copies {
		if sc.ForLo < sc.BaseLo {
			copy(arr[sc.ForLo:sc.ForLo+sc.Len], arr[sc.BaseLo:sc.BaseLo+sc.Len])
		}
	}
	for k := len(copies) - 1; k >= 0; k-- {
		sc := copies[k]
		if sc.ForLo > sc.BaseLo {
			copy(arr[sc.ForLo:sc.ForLo+sc.Len], arr[sc.BaseLo:sc.BaseLo+sc.Len])
		}
	}
	return arr[:newLen]
}

// commitOffsets produces the new CSR offset array: the old one shared
// verbatim when nothing changed, shifted in place when surrendered and
// private, copied otherwise.
func commitOffsets(off []int32, deltas []nodeDelta, inPlace bool) []int32 {
	if len(deltas) == 0 {
		return off
	}
	if !inPlace {
		return shiftOffsets(off, deltas)
	}
	first := int(deltas[0].node) + 1
	cum := int32(0)
	k := 0
	for i := first; i < len(off); i++ {
		for k < len(deltas) && int(deltas[k].node) < i {
			cum += deltas[k].delta
			k++
		}
		off[i] += cum
	}
	return off
}

// deltaFor returns node u's accumulated degree delta (deltas sorted by
// node, zero when absent).
func deltaFor(deltas []nodeDelta, u int32) int32 {
	lo, hi := 0, len(deltas)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if deltas[mid].node < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(deltas) && deltas[lo].node == u {
		return deltas[lo].delta
	}
	return 0
}

// sameInt32Array reports whether two slices share a backing array (by
// first element; all aliasing in this package is whole-array).
func sameInt32Array(a, b []int32) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// aggregateDeltas sorts degree deltas by node, sums duplicates and
// drops zero-sum entries, in place.
func aggregateDeltas(ds []nodeDelta) []nodeDelta {
	if len(ds) == 0 {
		return nil
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].node < ds[j].node })
	agg := ds[:0]
	for _, x := range ds {
		if k := len(agg); k > 0 && agg[k-1].node == x.node {
			agg[k-1].delta += x.delta
		} else {
			agg = append(agg, x)
		}
	}
	k := 0
	for _, x := range agg {
		if x.delta != 0 {
			agg[k] = x
			k++
		}
	}
	return agg[:k]
}

// shiftOffsets returns a copy of a CSR offset array with each entry
// past an affected node raised (or lowered) by that node's accumulated
// degree delta. deltas must be sorted by node.
func shiftOffsets(off []int32, deltas []nodeDelta) []int32 {
	out := make([]int32, len(off))
	if len(deltas) == 0 {
		copy(out, off)
		return out
	}
	first := int(deltas[0].node) + 1
	copy(out[:first], off[:first])
	cum := int32(0)
	k := 0
	for i := first; i < len(off); i++ {
		for k < len(deltas) && int(deltas[k].node) < i {
			cum += deltas[k].delta
			k++
		}
		out[i] = off[i] + cum
	}
	return out
}

// lowerBoundEdge returns the first index in a canonical edge slice
// whose key is >= (src, dst).
func lowerBoundEdge(edges []Edge, src, dst int32) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := edges[mid]
		if e.Src < src || (e.Src == src && e.Dst < dst) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// frontierRows lists every row of g incident to a dirty node — the rows
// an endpoint-sensitive scorer must recompute. Src-side incidences are
// a contiguous run of the canonical edge slice; Dst-side incidences are
// enumerated from the base graph's adjacency plus the patch (every edge
// of g lives in one or the other) and located by binary search, so the
// cost is O(sum deg(dirty) * log m) with no arc scatter on g.
func (d *Delta) frontierRows(g *Graph, dirtyNodes []int32, dstIdx []int32, changed []int32) []int32 {
	rows := append([]int32(nil), changed...)
	edges := g.edges
	addKey := func(v, u int32) {
		p := lowerBoundEdge(edges, v, u)
		if p < len(edges) && edges[p].Src == v && edges[p].Dst == u {
			rows = append(rows, int32(p))
		}
	}
	base := d.base
	for _, u := range dirtyNodes {
		lo := lowerBoundEdge(edges, u, 0)
		hi := lowerBoundEdge(edges, u+1, 0)
		for r := lo; r < hi; r++ {
			rows = append(rows, int32(r))
		}
		if g.directed {
			for _, a := range base.In(int(u)) {
				addKey(a.To, u)
			}
		} else {
			for _, a := range base.Out(int(u)) {
				if a.To < u {
					addKey(a.To, u)
				}
			}
		}
		dlo, dhi := d.dstRun(dstIdx, u)
		for k := dlo; k < dhi; k++ {
			addKey(d.patch[dstIdx[k]].Src, u)
		}
	}
	slices.Sort(rows)
	return slices.Compact(rows)
}

// patchArc is one patch incidence as seen from a node: the far
// endpoint and the new weight (0 = deleted).
type patchArc struct {
	to int32
	w  float64
}

// patchDstIndex orders patch entries by (Dst, Src): the Dst-side
// incidence runs the per-node merges and frontier walks need. Src-side
// runs are contiguous in the patch itself.
func (d *Delta) patchDstIndex() []int32 {
	dstIdx := make([]int32, len(d.patch))
	for i := range dstIdx {
		dstIdx[i] = int32(i)
	}
	sort.Slice(dstIdx, func(a, b int) bool {
		pa, pb := d.patch[dstIdx[a]], d.patch[dstIdx[b]]
		if pa.Dst != pb.Dst {
			return pa.Dst < pb.Dst
		}
		return pa.Src < pb.Src
	})
	return dstIdx
}

// patchStrengths refolds the strength of each given node. Each refold
// merges the node's base arcs with its patch incidences in arc (To)
// order — canonical incident-edge order for that node — so the
// resulting float is bit-identical to a cold build's fold.
func (d *Delta) patchStrengths(g *Graph, nodes []int32, dstIdx []int32) {
	base := d.base
	var inc []patchArc
	for _, u := range nodes {
		sr := d.srcRun(u)
		dlo, dhi := d.dstRun(dstIdx, u)
		if g.directed {
			inc = inc[:0]
			for _, e := range sr {
				inc = append(inc, patchArc{to: e.Dst, w: e.Weight})
			}
			g.outStrength[u] = foldMerge(base.Out(int(u)), inc)
			inc = inc[:0]
			for k := dlo; k < dhi; k++ {
				e := d.patch[dstIdx[k]]
				inc = append(inc, patchArc{to: e.Src, w: e.Weight})
			}
			g.inStrength[u] = foldMerge(base.In(int(u)), inc)
			continue
		}
		// Undirected: incident patch arcs in To order are the Dst-side
		// entries (To = Src < u) followed by the Src-side entries
		// (To = Dst > u) — the same split scatterArcs relies on.
		inc = inc[:0]
		for k := dlo; k < dhi; k++ {
			e := d.patch[dstIdx[k]]
			inc = append(inc, patchArc{to: e.Src, w: e.Weight})
		}
		for _, e := range sr {
			inc = append(inc, patchArc{to: e.Dst, w: e.Weight})
		}
		g.outStrength[u] = foldMerge(base.Out(int(u)), inc)
	}
}

// srcRun returns the contiguous patch run with Src == u (Dst
// ascending).
func (d *Delta) srcRun(u int32) []Edge {
	lo := sort.Search(len(d.patch), func(i int) bool { return d.patch[i].Src >= u })
	hi := sort.Search(len(d.patch), func(i int) bool { return d.patch[i].Src > u })
	return d.patch[lo:hi]
}

// dstRun returns the dstIdx index range with Dst == u (Src ascending).
func (d *Delta) dstRun(dstIdx []int32, u int32) (int, int) {
	lo := sort.Search(len(dstIdx), func(i int) bool { return d.patch[dstIdx[i]].Dst >= u })
	hi := sort.Search(len(dstIdx), func(i int) bool { return d.patch[dstIdx[i]].Dst > u })
	return lo, hi
}

// foldMerge left-folds a node's post-patch incident weights in arc (To)
// order: base arcs merged with patch incidences, the patch overriding
// on key collision and tombstones (w == 0) contributing nothing.
func foldMerge(baseArcs []Arc, inc []patchArc) float64 {
	var s float64
	i, j := 0, 0
	for i < len(baseArcs) && j < len(inc) {
		switch {
		case baseArcs[i].To < inc[j].to:
			s += baseArcs[i].Weight
			i++
		case baseArcs[i].To > inc[j].to:
			if inc[j].w > 0 {
				s += inc[j].w
			}
			j++
		default:
			if inc[j].w > 0 {
				s += inc[j].w
			}
			i++
			j++
		}
	}
	for ; i < len(baseArcs); i++ {
		s += baseArcs[i].Weight
	}
	for ; j < len(inc); j++ {
		if inc[j].w > 0 {
			s += inc[j].w
		}
	}
	return s
}

// applyPatch merges canonical base edges with the sorted patch: patch
// entries override matching base edges (tombstones removing them) and
// insert otherwise. One linear pass, output stays canonical.
func applyPatch(edges, patch []Edge) []Edge {
	out := make([]Edge, 0, len(edges)+len(patch))
	i, j := 0, 0
	for i < len(edges) && j < len(patch) {
		switch c := cmpEdgeKey(edges[i], patch[j]); {
		case c < 0:
			out = append(out, edges[i])
			i++
		case c > 0:
			if patch[j].Weight > 0 {
				out = append(out, patch[j])
			}
			j++
		default:
			if patch[j].Weight > 0 {
				out = append(out, patch[j])
			}
			i++
			j++
		}
	}
	out = append(out, edges[i:]...)
	for ; j < len(patch); j++ {
		if patch[j].Weight > 0 {
			out = append(out, patch[j])
		}
	}
	return out
}

// mergePatch folds a canonicalized batch into the existing patch,
// newer entries winning on key collision.
func mergePatch(old, batch []Edge) []Edge {
	if len(old) == 0 {
		return append([]Edge(nil), batch...)
	}
	out := make([]Edge, 0, len(old)+len(batch))
	i, j := 0, 0
	for i < len(old) && j < len(batch) {
		switch c := cmpEdgeKey(old[i], batch[j]); {
		case c < 0:
			out = append(out, old[i])
			i++
		case c > 0:
			out = append(out, batch[j])
			j++
		default:
			out = append(out, batch[j])
			i++
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, batch[j:]...)
	return out
}

// cmpEdgeKey orders edges by canonical (Src, Dst) key.
func cmpEdgeKey(a, b Edge) int {
	switch {
	case a.Src < b.Src:
		return -1
	case a.Src > b.Src:
		return 1
	case a.Dst < b.Dst:
		return -1
	case a.Dst > b.Dst:
		return 1
	}
	return 0
}

// dedupNodes sorts and deduplicates a node-ID list, returning nil for
// an empty input.
func dedupNodes(nodes []int32) []int32 {
	if len(nodes) == 0 {
		return nil
	}
	out := append([]int32(nil), nodes...)
	slices.Sort(out)
	return slices.Compact(out)
}
