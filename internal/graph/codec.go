// Streaming, zero-allocation, parallel edge-list decoding.
//
// readEdgeList reads the input in large chunks, splits chunks on line
// boundaries, and parses fields as []byte sub-slices of the chunk
// buffer — no per-line string, no per-edge []string. Chunks fan out to
// GOMAXPROCS shard parsers; their raw-edge buffers are merged back in
// input order, interning labels through the Builder's single
// map[string]int32 with no-copy lookups and arena-packed label storage,
// so the resulting Graph is bit-identical to the line-by-line serial
// reader (pinned by TestParallelReaderMatchesSerialOracle).

package graph

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strconv"
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// Codec tunables. Vars rather than consts so tests can shrink them to
// force chunk boundaries and the concurrent path on tiny inputs.
var (
	// readChunkSize is the target size of one parse unit.
	readChunkSize = 1 << 20
	// readWorkers overrides the shard-parser count (0 = GOMAXPROCS).
	readWorkers = 0
)

// rawEdge is one parsed data line: the label fields as offset ranges
// into the chunk buffer, the parsed weight, and the 1-based input line
// number for error reporting. Offsets instead of sub-slices keep the
// per-chunk edge buffers pointer-free, so the garbage collector never
// scans them.
type rawEdge struct {
	w                              float64
	line                           int64
	srcOff, srcEnd, dstOff, dstEnd int32
}

// chunkResult is the outcome of parsing one chunk: the chunk's raw
// edges plus the buffer their offsets index into.
type chunkResult struct {
	data  []byte
	edges []rawEdge
	err   error
}

// parseJob carries one chunk to a shard parser, with the channel its
// result must be delivered on (the merger consumes results in chunk
// order regardless of which worker finishes first).
type parseJob struct {
	data      []byte
	startLine int64
	out       chan chunkResult
}

var nlByte = []byte{'\n'}

// chunkReader cuts an io.Reader into chunks that end on line
// boundaries, carrying the trailing partial line over to the next
// chunk and tracking the line number each chunk starts at. A carried
// line that outgrows maxLineBytes fails fast with the same typed error
// and line number the serial reader reports.
type chunkReader struct {
	r     io.Reader
	carry []byte
	line  int64 // line number of the first line of the next chunk
	eof   bool
}

// next returns the next newline-terminated chunk (the final chunk may
// lack the terminator) and the line number of its first line. io.EOF
// signals the end of input.
func (c *chunkReader) next() ([]byte, int64, error) {
	for {
		if c.eof {
			if len(c.carry) == 0 {
				return nil, 0, io.EOF
			}
			data, start := c.carry, c.line
			c.carry = nil
			return data, start, nil
		}
		buf := make([]byte, len(c.carry), len(c.carry)+readChunkSize)
		copy(buf, c.carry)
		n, err := io.ReadFull(c.r, buf[len(buf):cap(buf)])
		buf = buf[:len(c.carry)+n]
		switch err {
		case nil:
		//lint:errdiscipline-ok io.ReadFull documents returning these sentinels unwrapped
		case io.EOF, io.ErrUnexpectedEOF:
			c.eof = true
		default:
			return nil, 0, fmt.Errorf("graph: read: %v", err)
		}
		i := bytes.LastIndexByte(buf, '\n')
		if i < 0 {
			// No complete line yet: the whole buffer is one growing
			// line. Fail as soon as it cannot possibly fit the cap.
			if len(buf) >= maxLineBytes && !c.eof {
				return nil, 0, fmt.Errorf("graph: line %d: %w (limit %d bytes)", c.line, ErrLineTooLong, maxLineBytes)
			}
			c.carry = buf
			continue
		}
		start := c.line
		c.line += int64(bytes.Count(buf[:i+1], nlByte))
		c.carry = append([]byte(nil), buf[i+1:]...)
		return buf[:i+1], start, nil
	}
}

// readEdgeList is the registered csv/tsv reader: the chunked codec
// described in the package comment. With one worker (or one CPU) it
// parses and merges inline; otherwise chunks fan out to shard parsers
// and merge deterministically in input order. Output and error classes
// are bit-identical to readEdgeListSerial.
func readEdgeList(r io.Reader, directed bool) (*Graph, error) {
	workers := readWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := NewBuilder(directed)
	var arena labelArena
	// Known-size inputs (bytes.Reader, strings.Reader, the daemon's
	// in-memory bodies) let us presize the label index and edge buffer
	// from the first chunk's line density, avoiding incremental map
	// growth — the dominant cost of million-edge ingests.
	totalBytes := 0
	if lr, ok := r.(interface{ Len() int }); ok {
		totalBytes = lr.Len()
	}
	cr := &chunkReader{r: r, line: 1}

	// First chunk up front: single-chunk inputs (small daemon bodies)
	// and single-worker environments skip the goroutine machinery.
	first, firstStart, err := cr.next()
	//lint:errdiscipline-ok chunkReader.next hands back io.EOF unwrapped, and this runs per chunk
	if err == io.EOF {
		return b.buildOwned(), nil
	}
	if err != nil {
		return nil, err
	}
	b.presize(totalBytes, first)
	if workers == 1 || (cr.eof && len(cr.carry) == 0) {
		for {
			res := parseChunk(first, firstStart)
			// Builder errors on pre-error lines outrank the parse error:
			// the serial oracle fails on the first bad line in input order.
			if err := b.addRawEdges(&arena, &res); err != nil {
				return nil, err
			}
			if res.err != nil {
				return nil, res.err
			}
			if first, firstStart, err = cr.next(); err != nil {
				//lint:errdiscipline-ok chunkReader.next hands back io.EOF unwrapped, and this runs per chunk
				if err == io.EOF {
					return b.buildOwned(), nil
				}
				return nil, err
			}
		}
	}

	done := make(chan struct{})
	jobs := make(chan parseJob, workers)
	ordered := make(chan chan chunkResult, 2*workers)
	producerExited := make(chan struct{})
	// On any return — early error included — stop the producer and wait
	// for it: it must not touch r (or the codec tunables) after
	// readEdgeList has returned.
	defer func() { close(done); <-producerExited }()

	go func() { // chunk producer
		defer close(producerExited)
		defer close(jobs)
		defer close(ordered)
		data, start := first, firstStart
		for {
			out := make(chan chunkResult, 1)
			select {
			case ordered <- out:
			case <-done:
				return
			}
			select {
			case jobs <- parseJob{data: data, startLine: start, out: out}:
			case <-done:
				return
			}
			var err error
			if data, start, err = cr.next(); err != nil {
				//lint:errdiscipline-ok chunkReader.next hands back io.EOF unwrapped, and this runs per chunk
				if err != io.EOF {
					out := make(chan chunkResult, 1)
					out <- chunkResult{err: err}
					select {
					case ordered <- out:
					case <-done:
					}
				}
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		go func() { // shard parser
			for j := range jobs {
				j.out <- parseChunk(j.data, j.startLine)
			}
		}()
	}
	for out := range ordered { // deterministic in-order merge
		res := <-out
		// Edges first: a builder error on an earlier line outranks the
		// chunk's own parse error (serial readers fail in input order).
		if err := b.addRawEdges(&arena, &res); err != nil {
			return nil, err
		}
		if res.err != nil {
			return nil, res.err
		}
	}
	return b.buildOwned(), nil
}

// parseChunk parses the data lines of one chunk into rawEdges. Line
// semantics mirror readEdgeListSerial exactly: whole-line trim, blank
// and '#' lines skipped, tab-preferred field splitting with per-field
// trim, digit-free weight on line 1 treated as a header row.
func parseChunk(data []byte, startLine int64) chunkResult {
	base := data
	edges := make([]rawEdge, 0, bytes.Count(data, nlByte)+1)
	line := startLine
	for len(data) > 0 {
		var ln []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			ln, data = data[:i], data[i+1:]
		} else {
			ln, data = data, nil
		}
		cur := line
		line++
		if len(ln) >= maxLineBytes {
			return chunkResult{data: base, edges: edges, err: fmt.Errorf("graph: line %d: %w (limit %d bytes)", cur, ErrLineTooLong, maxLineBytes)}
		}
		ln = bytes.TrimSpace(ln)
		if len(ln) == 0 || ln[0] == '#' {
			continue
		}
		src, dst, wf, nf := splitFields3(ln)
		if nf < 3 {
			return chunkResult{data: base, edges: edges, err: fmt.Errorf("graph: line %d: want 3 fields (src,dst,weight), got %d", cur, nf)}
		}
		w, err := strconv.ParseFloat(bstr(wf), 64)
		if err != nil {
			if cur == 1 && !containsDigit(wf) {
				continue // header row: the weight field has no digits at all
			}
			return chunkResult{data: base, edges: edges, err: fmt.Errorf("graph: line %d: bad weight %q: %v", cur, wf, err)}
		}
		srcOff, dstOff := byteOffset(base, src), byteOffset(base, dst)
		edges = append(edges, rawEdge{
			w: w, line: cur,
			srcOff: srcOff, srcEnd: srcOff + int32(len(src)),
			dstOff: dstOff, dstEnd: dstOff + int32(len(dst)),
		})
	}
	return chunkResult{data: base, edges: edges}
}

// byteOffset returns sub's offset within base. sub must be a sub-slice
// of base; empty fields map to the empty range [0, 0).
func byteOffset(base, sub []byte) int32 {
	if len(sub) == 0 {
		return 0
	}
	//lint:unsafezone-ok sub is a sub-slice of base (documented precondition), so both pointers land in one allocation and the difference is a plain offset
	return int32(uintptr(unsafe.Pointer(&sub[0])) - uintptr(unsafe.Pointer(&base[0])))
}

// splitFields3 splits a trimmed line the way splitFields does — tabs
// preferred over commas over whitespace — but returns only the first
// three fields (as trimmed sub-slices) plus the total field count,
// without allocating.
func splitFields3(ln []byte) (f0, f1, f2 []byte, n int) {
	var sep byte
	switch {
	case bytes.IndexByte(ln, '\t') >= 0:
		sep = '\t'
	case bytes.IndexByte(ln, ',') >= 0:
		sep = ','
	default:
		return splitWhitespace3(ln)
	}
	n = bytes.Count(ln, []byte{sep}) + 1
	var rest []byte
	f0, rest = cutByte(ln, sep)
	f1, rest = cutByte(rest, sep)
	f2, _ = cutByte(rest, sep)
	return bytes.TrimSpace(f0), bytes.TrimSpace(f1), bytes.TrimSpace(f2), n
}

// cutByte slices b around the first occurrence of sep.
func cutByte(b []byte, sep byte) (before, after []byte) {
	if i := bytes.IndexByte(b, sep); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// splitWhitespace3 is the whitespace branch of splitFields3, matching
// strings.Fields' unicode-aware separator semantics.
func splitWhitespace3(ln []byte) (f0, f1, f2 []byte, n int) {
	i := 0
	for i < len(ln) {
		for i < len(ln) {
			space, size := spaceAt(ln, i)
			if !space {
				break
			}
			i += size
		}
		if i >= len(ln) {
			break
		}
		start := i
		for i < len(ln) {
			space, size := spaceAt(ln, i)
			if space {
				break
			}
			i += size
		}
		switch n {
		case 0:
			f0 = ln[start:i]
		case 1:
			f1 = ln[start:i]
		case 2:
			f2 = ln[start:i]
		}
		n++
	}
	return
}

// spaceAt reports whether the rune starting at b[i] is whitespace and
// how many bytes it spans, with strings.Fields' exact semantics (ASCII
// fast path, unicode.IsSpace beyond).
func spaceAt(b []byte, i int) (bool, int) {
	c := b[i]
	if c < utf8.RuneSelf {
		return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r', 1
	}
	r, size := utf8.DecodeRune(b[i:])
	return unicode.IsSpace(r), size
}

// containsDigit reports whether any byte of b is an ASCII digit — the
// header-row test: a line-1 weight field that fails to parse AND has
// no digits is a column title, anything else is a malformed data row.
func containsDigit(b []byte) bool {
	for _, c := range b {
		if '0' <= c && c <= '9' {
			return true
		}
	}
	return false
}

// hasDigit is containsDigit for strings (the serial reader's form).
func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if '0' <= s[i] && s[i] <= '9' {
			return true
		}
	}
	return false
}

// bstr views b as a string without copying. The backing bytes must not
// be mutated afterwards; chunk buffers and arena blocks are written
// exactly once, so every bstr caller in this package satisfies that.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	//lint:unsafezone-ok write-once backing bytes (doc contract above) are never mutated after the view, and the string keeps them alive
	return unsafe.String(&b[0], len(b))
}

// labelArena packs node label bytes into large shared blocks, so a
// million unique labels cost dozens of allocations instead of a
// million small ones. Blocks are append-only: strings handed out keep
// pointing into retired blocks, which stay alive through them.
type labelArena struct {
	block []byte
}

const arenaBlockSize = 64 << 10

// intern copies b into the arena and returns it as a string.
func (a *labelArena) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.block)-len(a.block) < len(b) {
		size := arenaBlockSize
		if len(b) > size {
			size = len(b)
		}
		a.block = make([]byte, 0, size)
	}
	off := len(a.block)
	a.block = append(a.block, b...)
	return bstr(a.block[off : off+len(b)])
}

// internLabel resolves a label to its node ID, creating the node on
// first appearance — AddNode's semantics (empty labels allowed but
// never indexed) with a no-copy map lookup and arena-backed storage.
func (b *Builder) internLabel(arena *labelArena, lb []byte) int32 {
	if len(lb) > 0 {
		if id, ok := b.index[string(lb)]; ok { // no-copy lookup
			return id
		}
	}
	id := int32(len(b.labels))
	s := arena.intern(lb)
	b.labels = append(b.labels, s)
	if s != "" {
		b.index[s] = id
	}
	return id
}

// addRawEdges interns each raw edge's labels in input order and
// appends the edge to the builder, reproducing AddEdgeLabels' node
// creation order and error text.
func (b *Builder) addRawEdges(arena *labelArena, res *chunkResult) error {
	b.edges = slices.Grow(b.edges, len(res.edges))
	for i := range res.edges {
		e := &res.edges[i]
		u := b.internLabel(arena, res.data[e.srcOff:e.srcEnd])
		v := b.internLabel(arena, res.data[e.dstOff:e.dstEnd])
		if err := b.AddEdge(int(u), int(v), e.w); err != nil {
			return fmt.Errorf("graph: line %d: %v", e.line, err)
		}
	}
	return nil
}
