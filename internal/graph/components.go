package graph

import "repro/internal/unionfind"

// WeakComponents returns a dense component label for each node, ignoring
// edge direction, plus the number of components. Isolated nodes form
// singleton components.
//
//lint:ctxflow-ok tight O(m α(n)) union-find pass with no I/O; the pipeline checks ctx between stages
func (g *Graph) WeakComponents() (labels []int, count int) {
	uf := unionfind.New(g.NumNodes())
	for _, e := range g.edges {
		uf.Union(int(e.Src), int(e.Dst))
	}
	return uf.Components(), uf.Sets()
}

// IsWeaklyConnected reports whether all non-isolated nodes belong to a
// single weak component and there is at least one edge.
func (g *Graph) IsWeaklyConnected() bool {
	if len(g.edges) == 0 {
		return g.NumNodes() <= 1
	}
	_, count := g.WeakComponents()
	return count-g.NumIsolates() == 1
}

// LargestComponentSize returns the node count of the largest weak component.
func (g *Graph) LargestComponentSize() int {
	labels, count := g.WeakComponents()
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}
