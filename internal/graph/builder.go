package graph

import (
	"bytes"
	"fmt"
	"math/bits"
	"slices"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Adding the same (src, dst) pair repeatedly sums the weights, which is
// the natural semantics for count data. Self-loops are rejected: the
// backboning null models are defined on interactions between distinct
// nodes (the paper's case study explicitly keeps same-occupation
// switchers out of the network, on the matrix diagonal).
//
// Edges are buffered in a flat append-only slice and deduplicated at
// Build time by a stable sort + adjacent merge, so no per-edge hashing
// happens anywhere on the build path. The stable sort keeps duplicate
// contributions in insertion order, making the merged weights
// bit-identical to a hash-map accumulation.
type Builder struct {
	directed bool
	labels   []string
	index    map[string]int32
	edges    []Edge
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{
		directed: directed,
		index:    make(map[string]int32),
	}
}

// AddNode ensures a node with the given label exists and returns its ID.
// Labels must be unique; the empty label is allowed but not indexed.
func (b *Builder) AddNode(label string) int {
	if label != "" {
		if id, ok := b.index[label]; ok {
			return int(id)
		}
	}
	id := int32(len(b.labels))
	b.labels = append(b.labels, label)
	if label != "" {
		b.index[label] = id
	}
	return int(id)
}

// AddNodes ensures at least n anonymous nodes exist (IDs 0..n-1).
func (b *Builder) AddNodes(n int) {
	for len(b.labels) < n {
		b.labels = append(b.labels, "")
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// AddEdge adds weight w to the edge between nodes u and v (by ID).
// Nodes must already exist. Negative weights and self-loops are errors;
// zero weights are ignored (absence of interaction).
func (b *Builder) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(b.labels) || v < 0 || v >= len(b.labels) {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", u, v, len(b.labels))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d not allowed", u)
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid weight %v on edge (%d,%d)", w, u, v)
	}
	if w == 0 {
		return nil
	}
	if !b.directed && u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{Src: int32(u), Dst: int32(v), Weight: w})
	return nil
}

// AddEdgeLabels is AddEdge keyed by node labels, creating nodes on demand.
func (b *Builder) AddEdgeLabels(src, dst string, w float64) error {
	return b.AddEdge(b.AddNode(src), b.AddNode(dst), w)
}

// MustAddEdge is AddEdge but panics on error. For use in tests and
// generators where inputs are constructed to be valid.
func (b *Builder) MustAddEdge(u, v int, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Build finalizes the graph. The Builder may be reused afterwards, but
// further additions do not affect the returned Graph.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	g := &Graph{
		directed: b.directed,
		labels:   append([]string(nil), b.labels...),
		index:    make(map[string]int32, len(b.index)),
		edges:    mergeEdges(b.edges),
	}
	//lint:detiter-ok copying into another map; insertion order is irrelevant
	for k, v := range b.index {
		g.index[k] = v
	}
	g.buildCSR(n)
	return g
}

// buildOwned finalizes the graph like Build, but transfers the label
// slice, label index and edge buffer into the Graph instead of copying
// them. The Builder must not be used afterwards. It exists for the
// edge-list codec, where the builder is always single-use and the index
// copy would dominate large ingests.
func (b *Builder) buildOwned() *Graph {
	n := len(b.labels)
	g := &Graph{
		directed: b.directed,
		labels:   b.labels,
		index:    b.index,
		edges:    mergeEdges(b.edges),
	}
	b.labels, b.index, b.edges = nil, nil, nil
	g.buildCSR(n)
	return g
}

// presize reserves index and edge capacity for an edge list of
// totalBytes whose first chunk is sample: the sample's line density
// extrapolates to an expected total line count, which upper-bounds
// both the edge count and (in practice) the unique label count.
// A zero or small estimate leaves the lazy defaults in place.
func (b *Builder) presize(totalBytes int, sample []byte) {
	if totalBytes <= len(sample) || len(sample) == 0 {
		totalBytes = len(sample)
	}
	lines := bytes.Count(sample, []byte{'\n'}) + 1
	est := int(float64(totalBytes) / float64(len(sample)) * float64(lines))
	if est < 1<<12 {
		return
	}
	b.index = make(map[string]int32, est)
	b.edges = make([]Edge, 0, est)
	b.labels = make([]string, 0, est)
}

// edgeRec is a sortable buffered edge: the endpoint pair packed into
// one comparable word, plus the insertion index and the weight.
type edgeRec struct {
	key uint64 // Src<<32 | Dst — node IDs are non-negative int32s
	idx int32  // insertion order; tie-break makes the sort stable
	w   float64
}

// mergeEdges returns the canonical edge slice — sorted by (Src, Dst),
// duplicates merged by summing weights — without touching the input.
// The sort is stable in insertion order, so duplicate contributions
// accumulate in that order: float addition is not associative, and
// this keeps merged weights bit-identical to per-pair accumulation.
//
// Sort keys pack (Src, Dst) into the fewest bits that hold the largest
// node ID, so the radix sort runs the fewest 16-bit passes that cover
// the actual key range (2 passes for graphs under 64k nodes, 3 up to
// 16M) instead of a full 64-bit sort.
func mergeEdges(edges []Edge) []Edge {
	recs := make([]edgeRec, len(edges))
	var maxID int32
	for _, e := range edges {
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	nb := uint(bits.Len32(uint32(maxID)))
	mask := uint64(1)<<nb - 1
	for i, e := range edges {
		recs[i] = edgeRec{key: uint64(uint32(e.Src))<<nb | uint64(uint32(e.Dst)), idx: int32(i), w: e.Weight}
	}
	sortEdgeRecs(recs, 2*nb)
	out := make([]Edge, 0, len(recs))
	prev := ^uint64(0)
	for _, r := range recs {
		if k := len(out); k > 0 && prev == r.key {
			out[k-1].Weight += r.w
		} else {
			out = append(out, Edge{Src: int32(r.key >> nb), Dst: int32(r.key & mask), Weight: r.w})
			prev = r.key
		}
	}
	return out
}

// sortEdgeRecs orders recs by key, keeping equal keys in insertion
// order. keyBits bounds the highest set bit of any key. Small inputs
// use a comparison sort; large ones an LSD radix sort over 16-bit
// digits, which is stable by construction and several times faster on
// million-edge buffers.
func sortEdgeRecs(recs []edgeRec, keyBits uint) {
	if len(recs) < 1<<13 {
		slices.SortFunc(recs, func(a, b edgeRec) int {
			if a.key != b.key {
				if a.key < b.key {
					return -1
				}
				return 1
			}
			return int(a.idx - b.idx)
		})
		return
	}
	const radix = 1 << 16
	src, dst := recs, make([]edgeRec, len(recs))
	count := make([]int32, radix)
	for shift := uint(0); shift < keyBits; shift += 16 {
		clear(count)
		for i := range src {
			count[(src[i].key>>shift)&(radix-1)]++
		}
		if int(count[(src[0].key>>shift)&(radix-1)]) == len(src) {
			continue // all records share this digit: pass is a no-op
		}
		sum := int32(0)
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].key >> shift) & (radix - 1)
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
	}
	if len(recs) > 0 && &src[0] != &recs[0] {
		copy(recs, src)
	}
}

// buildCSR assembles adjacency, strengths and the isolate count from
// g.edges, which must already be canonical (sorted by (Src, Dst), no
// duplicates). It is shared by Build and Subgraph. The three phases are
// separate methods so a delta materialization (delta.go) can build
// offsets and strengths eagerly while deferring the arc scatter until
// an accessor actually walks adjacency.
func (g *Graph) buildCSR(n int) {
	g.computeOffsets(n)
	g.accumulate(n)
	g.scatterArcs()
}

// computeOffsets builds the CSR offset arrays (counting pass plus
// prefix sum) from g.edges.
func (g *Graph) computeOffsets(n int) {
	g.outOff = make([]int32, n+1)
	if g.directed {
		g.inOff = make([]int32, n+1)
		for _, e := range g.edges {
			g.outOff[e.Src+1]++
			g.inOff[e.Dst+1]++
		}
		for u := 0; u < n; u++ {
			g.outOff[u+1] += g.outOff[u]
			g.inOff[u+1] += g.inOff[u]
		}
	} else {
		for _, e := range g.edges {
			g.outOff[e.Src+1]++
			g.outOff[e.Dst+1]++
		}
		for u := 0; u < n; u++ {
			g.outOff[u+1] += g.outOff[u]
		}
	}
}

// accumulate folds strengths, the global total and the isolate count
// from g.edges in canonical order; offsets must already exist. The fold
// order is part of the package's bit-identity contract: each node's
// strength is the left fold of its own incident edge weights in
// canonical (Src, Dst) order — independent of every other node's edges
// — and the total is the left fold over all edges. delta.go reproduces
// the per-node fold for dirty nodes and refolds the total in full.
func (g *Graph) accumulate(n int) {
	g.outStrength = make([]float64, n)
	g.inStrength = make([]float64, n)
	if g.directed {
		for _, e := range g.edges {
			g.outStrength[e.Src] += e.Weight
			g.inStrength[e.Dst] += e.Weight
			g.total += e.Weight
		}
	} else {
		for _, e := range g.edges {
			g.outStrength[e.Src] += e.Weight
			g.outStrength[e.Dst] += e.Weight
			g.total += 2 * e.Weight
		}
		copy(g.inStrength, g.outStrength)
	}
	for u := 0; u < n; u++ {
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			g.isolates++
		}
	}
}

// scatterArcs allocates and fills the arc arrays from g.edges and the
// offsets computeOffsets built.
//
// Arc ordering invariant: every node's arc range is sorted by To.
// Directed out-arcs inherit it from the edge order; directed in-arcs
// are scattered in edge order, so each node collects origins in
// ascending Src order. For undirected graphs a node u's incident arcs
// split into destinations below u (edges where u is Dst) and above u
// (edges where u is Src) — scattering all Dst-side arcs before all
// Src-side arcs therefore yields each range sorted, with no per-node
// sorting pass.
func (g *Graph) scatterArcs() {
	n := len(g.outOff) - 1
	m := len(g.edges)
	if g.directed {
		arcs := make([]Arc, m)
		inArcs := make([]Arc, m)
		outNext := append([]int32(nil), g.outOff[:n]...)
		inNext := append([]int32(nil), g.inOff[:n]...)
		for id, e := range g.edges {
			arcs[outNext[e.Src]] = Arc{To: e.Dst, EdgeID: int32(id), Weight: e.Weight}
			outNext[e.Src]++
			inArcs[inNext[e.Dst]] = Arc{To: e.Src, EdgeID: int32(id), Weight: e.Weight}
			inNext[e.Dst]++
		}
		g.arcs, g.inArcs = arcs, inArcs
	} else {
		arcs := make([]Arc, 2*m)
		next := append([]int32(nil), g.outOff[:n]...)
		for id, e := range g.edges { // Dst-side arcs first: To < node
			arcs[next[e.Dst]] = Arc{To: e.Src, EdgeID: int32(id), Weight: e.Weight}
			next[e.Dst]++
		}
		for id, e := range g.edges { // then Src-side arcs: To > node
			arcs[next[e.Src]] = Arc{To: e.Dst, EdgeID: int32(id), Weight: e.Weight}
			next[e.Src]++
		}
		g.arcs = arcs
	}
}

// FromEdges builds a graph over n anonymous nodes from an edge slice.
// It panics on invalid edges; intended for generators and tests.
//
//lint:ctxflow-ok generator/test constructor: one tight O(m) pass, not a served pipeline stage
func FromEdges(directed bool, n int, edges []Edge) *Graph {
	b := NewBuilder(directed)
	b.AddNodes(n)
	for _, e := range edges {
		b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
	}
	return b.Build()
}
