package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Adding the same (src, dst) pair repeatedly sums the weights, which is
// the natural semantics for count data. Self-loops are rejected: the
// backboning null models are defined on interactions between distinct
// nodes (the paper's case study explicitly keeps same-occupation
// switchers out of the network, on the matrix diagonal).
type Builder struct {
	directed bool
	labels   []string
	index    map[string]int32
	weights  map[[2]int32]float64
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{
		directed: directed,
		index:    make(map[string]int32),
		weights:  make(map[[2]int32]float64),
	}
}

// AddNode ensures a node with the given label exists and returns its ID.
// Labels must be unique; the empty label is allowed but not indexed.
func (b *Builder) AddNode(label string) int {
	if label != "" {
		if id, ok := b.index[label]; ok {
			return int(id)
		}
	}
	id := int32(len(b.labels))
	b.labels = append(b.labels, label)
	if label != "" {
		b.index[label] = id
	}
	return int(id)
}

// AddNodes ensures at least n anonymous nodes exist (IDs 0..n-1).
func (b *Builder) AddNodes(n int) {
	for len(b.labels) < n {
		b.labels = append(b.labels, "")
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// AddEdge adds weight w to the edge between nodes u and v (by ID).
// Nodes must already exist. Negative weights and self-loops are errors;
// zero weights are ignored (absence of interaction).
func (b *Builder) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(b.labels) || v < 0 || v >= len(b.labels) {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", u, v, len(b.labels))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d not allowed", u)
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid weight %v on edge (%d,%d)", w, u, v)
	}
	if w == 0 {
		return nil
	}
	key := [2]int32{int32(u), int32(v)}
	if !b.directed && u > v {
		key = [2]int32{int32(v), int32(u)}
	}
	b.weights[key] += w
	return nil
}

// AddEdgeLabels is AddEdge keyed by node labels, creating nodes on demand.
func (b *Builder) AddEdgeLabels(src, dst string, w float64) error {
	return b.AddEdge(b.AddNode(src), b.AddNode(dst), w)
}

// MustAddEdge is AddEdge but panics on error. For use in tests and
// generators where inputs are constructed to be valid.
func (b *Builder) MustAddEdge(u, v int, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Build finalizes the graph. The Builder may be reused afterwards, but
// further additions do not affect the returned Graph.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	g := &Graph{
		directed:    b.directed,
		labels:      append([]string(nil), b.labels...),
		index:       make(map[string]int32, len(b.index)),
		edges:       make([]Edge, 0, len(b.weights)),
		out:         make([][]Arc, n),
		outStrength: make([]float64, n),
		inStrength:  make([]float64, n),
	}
	for k, v := range b.index {
		g.index[k] = v
	}
	for key, w := range b.weights {
		g.edges = append(g.edges, Edge{Src: key[0], Dst: key[1], Weight: w})
	}
	// Canonical deterministic order: by (Src, Dst).
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].Src != g.edges[j].Src {
			return g.edges[i].Src < g.edges[j].Src
		}
		return g.edges[i].Dst < g.edges[j].Dst
	})
	if b.directed {
		g.in = make([][]Arc, n)
	}
	for id, e := range g.edges {
		g.out[e.Src] = append(g.out[e.Src], Arc{To: e.Dst, EdgeID: int32(id), Weight: e.Weight})
		g.outStrength[e.Src] += e.Weight
		if b.directed {
			g.in[e.Dst] = append(g.in[e.Dst], Arc{To: e.Src, EdgeID: int32(id), Weight: e.Weight})
			g.inStrength[e.Dst] += e.Weight
			g.total += e.Weight
		} else {
			g.out[e.Dst] = append(g.out[e.Dst], Arc{To: e.Src, EdgeID: int32(id), Weight: e.Weight})
			g.outStrength[e.Dst] += e.Weight
			g.inStrength[e.Src] += e.Weight
			g.inStrength[e.Dst] += e.Weight
			g.total += 2 * e.Weight
		}
	}
	if !b.directed {
		copy(g.inStrength, g.outStrength)
	}
	return g
}

// FromEdges builds a graph over n anonymous nodes from an edge slice.
// It panics on invalid edges; intended for generators and tests.
func FromEdges(directed bool, n int, edges []Edge) *Graph {
	b := NewBuilder(directed)
	b.AddNodes(n)
	for _, e := range edges {
		b.MustAddEdge(int(e.Src), int(e.Dst), e.Weight)
	}
	return b.Build()
}
