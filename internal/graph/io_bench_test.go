package graph

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

// benchEdgeListCSV renders a reproducible m-edge labeled edge list as
// csv bytes — the ingest benchmark corpus. Node count tracks the Fig-9
// Erdős–Rényi shape (m = 1.5·n).
func benchEdgeListCSV(m int) []byte {
	n := m * 2 / 3
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	buf.Grow(m * 24)
	buf.WriteString("src,dst,weight\n")
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		fmt.Fprintf(&buf, "n%d,n%d,%.6g\n", u, v, 1+rng.Float64()*20)
	}
	return buf.Bytes()
}

func benchRead(b *testing.B, m int, read func(r io.Reader, directed bool) (*Graph, error)) {
	data := benchEdgeListCSV(m)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := read(bytes.NewReader(data), false)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkReadCSV100k(b *testing.B) { benchRead(b, 100_000, ReadCSV) }
func BenchmarkReadCSV1M(b *testing.B)   { benchRead(b, 1_000_000, ReadCSV) }

// The pre-PR line-by-line reader stays benchmarked so the codec's
// speedup (BENCH_baseline.json post_pr4) remains re-measurable on
// identical corpora.
func BenchmarkReadCSVSerial100k(b *testing.B) { benchRead(b, 100_000, readEdgeListSerial) }
func BenchmarkReadCSVSerial1M(b *testing.B)   { benchRead(b, 1_000_000, readEdgeListSerial) }

func BenchmarkWriteCSV100k(b *testing.B) {
	g, err := ReadCSV(bytes.NewReader(benchEdgeListCSV(100_000)), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteNDJSON100k(b *testing.B) {
	g, err := ReadCSV(bytes.NewReader(benchEdgeListCSV(100_000)), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.writeNDJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
