package graph

import (
	"fmt"
	"math"
	"sync"
)

// This file is the seam between the immutable in-memory Graph and
// external storage formats (internal/binfmt): CSRView exposes the flat
// CSR arrays for zero-copy serialization, and FromCSR rebuilds a Graph
// from externally supplied arrays — possibly aliasing a read-only
// memory-mapped file — after validating every structural invariant the
// rest of the package relies on. Neither function copies slice data;
// both sides of the seam treat the arrays as immutable.

// CSRView exposes a Graph's internal CSR adjacency arrays. The slices
// alias the Graph's own storage: callers must not modify them. For
// undirected graphs InArcs/InOff are nil (In() falls through to Out()).
type CSRView struct {
	Arcs   []Arc
	OutOff []int32
	InArcs []Arc
	InOff  []int32
}

// CSRView returns the graph's CSR adjacency arrays without copying.
func (g *Graph) CSRView() CSRView {
	g.ensureArcs()
	return CSRView{Arcs: g.arcs, OutOff: g.outOff, InArcs: g.inArcs, InOff: g.inOff}
}

// CSRParts carries every array needed to assemble a Graph directly in
// CSR form, bypassing the Builder. Producers are storage loaders that
// already hold canonical arrays (e.g. a binary graph file); FromCSR
// validates the invariants the Builder would otherwise guarantee.
type CSRParts struct {
	Directed bool
	NumNodes int

	// Canonical edges, sorted ascending by (Src, Dst), deduplicated,
	// with strictly positive weights. Undirected edges have Src <= Dst.
	Edges []Edge

	// CSR adjacency: Arcs/OutOff as in Graph. For directed graphs
	// InArcs/InOff must be present; for undirected they must be nil.
	Arcs   []Arc
	OutOff []int32
	InArcs []Arc
	InOff  []int32

	// Per-node strengths and the global total. These are trusted as-is
	// (storage formats checksum them); they must have been produced by
	// the same deterministic accumulation buildCSR performs, or
	// bit-identity with Builder-built graphs is lost. For undirected
	// graphs InStrength may be nil or alias OutStrength.
	OutStrength []float64
	InStrength  []float64
	Total       float64

	// Optional node labels indexed by ID; nil means unlabeled. The
	// label->ID index is built lazily on first NodeID call, keeping
	// mmap-loaded graphs free of per-node hashing until a lookup
	// actually needs it.
	Labels []string
}

// lazyIndex materializes the label->ID map on first use. Graphs loaded
// from CSR storage share one lazyIndex across Subgraph copies, so the
// map is built at most once per loaded file however many subgraphs are
// extracted from it.
type lazyIndex struct {
	once   sync.Once
	labels []string
	m      map[string]int32
}

func (li *lazyIndex) get() map[string]int32 {
	li.once.Do(func() {
		m := make(map[string]int32, len(li.labels))
		for i, l := range li.labels {
			if l == "" {
				continue
			}
			if _, dup := m[l]; !dup {
				m[l] = int32(i)
			}
		}
		li.m = m
		li.labels = nil
	})
	return li.m
}

// labelIndex returns the label->ID map, building it lazily for graphs
// assembled by FromCSR. Builder-built graphs return their eager index.
func (g *Graph) labelIndex() map[string]int32 {
	if g.index == nil && g.lazy != nil {
		return g.lazy.get()
	}
	return g.index
}

// corruptCSR wraps a validation failure with enough context to locate
// the offending array. FromCSR callers (binary loaders) wrap it again
// in their own typed corruption error.
func corruptCSR(format string, args ...any) error {
	return fmt.Errorf("graph: invalid CSR: "+format, args...)
}

// validOffsets checks that off is a monotone CSR offset array covering
// exactly m arcs over n nodes.
func validOffsets(name string, off []int32, n, m int) error {
	if len(off) != n+1 {
		return corruptCSR("%s length %d, want %d", name, len(off), n+1)
	}
	if off[0] != 0 {
		return corruptCSR("%s[0] = %d, want 0", name, off[0])
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return corruptCSR("%s not monotone at node %d (%d < %d)", name, i, off[i], off[i-1])
		}
	}
	if int(off[n]) != m {
		return corruptCSR("%s covers %d arcs, want %d", name, off[n], m)
	}
	return nil
}

// validArcs checks every arc in a CSR range set: To in range and
// strictly increasing within each node's range (the binary-search
// invariant), EdgeID referencing a canonical edge whose endpoints and
// weight are consistent with the arc. inSide selects which endpoint of
// the referenced edge the owning node must be.
func validArcs(name string, arcs []Arc, off []int32, edges []Edge, n int, directed, inSide bool) error {
	for u := 0; u < n; u++ {
		lo, hi := off[u], off[u+1]
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			a := arcs[i]
			if a.To < 0 || int(a.To) >= n {
				return corruptCSR("%s[%d].To = %d out of range [0,%d)", name, i, a.To, n)
			}
			if a.To <= prev {
				return corruptCSR("%s arcs of node %d not strictly sorted by To", name, u)
			}
			prev = a.To
			if a.EdgeID < 0 || int(a.EdgeID) >= len(edges) {
				return corruptCSR("%s[%d].EdgeID = %d out of range [0,%d)", name, i, a.EdgeID, len(edges))
			}
			e := edges[a.EdgeID]
			if math.Float64bits(a.Weight) != math.Float64bits(e.Weight) {
				return corruptCSR("%s[%d] weight %v disagrees with edge %d weight %v", name, i, a.Weight, a.EdgeID, e.Weight)
			}
			var ok bool
			switch {
			case !directed:
				ok = (e.Src == int32(u) && e.Dst == a.To) || (e.Dst == int32(u) && e.Src == a.To)
			case inSide:
				ok = e.Dst == int32(u) && e.Src == a.To
			default:
				ok = e.Src == int32(u) && e.Dst == a.To
			}
			if !ok {
				return corruptCSR("%s[%d] (node %d -> %d) disagrees with edge %d (%d -> %d)", name, i, u, a.To, a.EdgeID, e.Src, e.Dst)
			}
		}
	}
	return nil
}

// FromCSR assembles a Graph directly from pre-built CSR arrays without
// copying them. It is the trusted entry point for binary graph loaders:
// every structural invariant (offset monotonicity, arc sort order and
// bounds, arc<->edge consistency, canonical edge order, array lengths)
// is re-validated in O(n+m) so that a malformed or adversarial file can
// produce an error but never an out-of-bounds Graph. Strengths and
// Total are trusted as-is — callers guard them with checksums — and the
// isolate count is recomputed. The returned Graph aliases every slice
// in p; callers must not modify them afterwards (they may be read-only
// mmap pages).
//
//lint:ctxflow-ok pure in-memory validation at memory bandwidth — a cancellation checkpoint would cost more than the scan it guards
func FromCSR(p CSRParts) (*Graph, error) {
	n, m := p.NumNodes, len(p.Edges)
	if n < 0 {
		return nil, corruptCSR("negative node count %d", n)
	}
	if n > math.MaxInt32 {
		return nil, corruptCSR("node count %d exceeds int32 ID space", n)
	}
	arcCount := m
	if !p.Directed {
		arcCount = 2 * m
	}
	if m > math.MaxInt32 || arcCount > math.MaxInt32 {
		return nil, corruptCSR("edge count %d exceeds int32 offset space", m)
	}
	if len(p.Arcs) != arcCount {
		return nil, corruptCSR("arc count %d, want %d", len(p.Arcs), arcCount)
	}
	if err := validOffsets("outOff", p.OutOff, n, arcCount); err != nil {
		return nil, err
	}
	if p.Directed {
		if err := validOffsets("inOff", p.InOff, n, m); err != nil {
			return nil, err
		}
		if len(p.InArcs) != m {
			return nil, corruptCSR("inArc count %d, want %d", len(p.InArcs), m)
		}
	} else if p.InArcs != nil || p.InOff != nil {
		return nil, corruptCSR("undirected graph carries in-CSR arrays")
	}
	// Canonical edge order: strictly ascending (Src, Dst), endpoints in
	// range, weights usable (positive; builder rejects <= 0 and NaN).
	var prev Edge
	for i, e := range p.Edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return nil, corruptCSR("edge %d endpoints (%d,%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
		if e.Src == e.Dst {
			return nil, corruptCSR("edge %d is a self-loop on node %d", i, e.Src)
		}
		if !p.Directed && e.Src > e.Dst {
			return nil, corruptCSR("edge %d (%d,%d) not canonical (Src > Dst in undirected graph)", i, e.Src, e.Dst)
		}
		if !(e.Weight > 0) {
			return nil, corruptCSR("edge %d weight %v not positive", i, e.Weight)
		}
		if i > 0 && (e.Src < prev.Src || (e.Src == prev.Src && e.Dst <= prev.Dst)) {
			return nil, corruptCSR("edges not strictly sorted by (Src, Dst) at %d", i)
		}
		prev = e
	}
	if err := validArcs("out", p.Arcs, p.OutOff, p.Edges, n, p.Directed, false); err != nil {
		return nil, err
	}
	if p.Directed {
		if err := validArcs("in", p.InArcs, p.InOff, p.Edges, n, true, true); err != nil {
			return nil, err
		}
	}
	if len(p.OutStrength) != n {
		return nil, corruptCSR("outStrength length %d, want %d", len(p.OutStrength), n)
	}
	inStrength := p.InStrength
	if !p.Directed && inStrength == nil {
		inStrength = p.OutStrength
	}
	if len(inStrength) != n {
		return nil, corruptCSR("inStrength length %d, want %d", len(inStrength), n)
	}
	labels := p.Labels
	if labels == nil {
		// io writers index g.labels[id] directly; a loaded graph must
		// always carry a full-length (possibly all-empty) label slice.
		labels = make([]string, n)
	} else if len(labels) != n {
		return nil, corruptCSR("label count %d, want %d", len(labels), n)
	}
	g := &Graph{
		directed:    p.Directed,
		labels:      labels,
		lazy:        &lazyIndex{labels: labels},
		edges:       p.Edges,
		arcs:        p.Arcs,
		outOff:      p.OutOff,
		inArcs:      p.InArcs,
		inOff:       p.InOff,
		outStrength: p.OutStrength,
		inStrength:  inStrength,
		total:       p.Total,
	}
	for u := 0; u < n; u++ {
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			g.isolates++
		}
	}
	return g, nil
}
