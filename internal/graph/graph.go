// Package graph implements the weighted-graph substrate used by every
// backboning algorithm in this repository.
//
// A Graph is an immutable weighted graph, directed or undirected, with
// dense integer node IDs and optional string labels. Undirected edges
// are stored exactly once (with Src <= Dst) but contribute to the
// strength of both endpoints. Parallel edges are merged at build time
// by summing weights, matching the count-data interpretation of edge
// weights in Coscia & Neffke (ICDE 2017).
//
// Adjacency is stored in CSR (compressed sparse row) form: one flat
// arc slice plus per-node offsets, with each node's arcs sorted by
// destination. The flat layout keeps neighbor iteration cache-friendly
// and lets Weight answer membership queries by binary search.
package graph

import (
	"fmt"
	"sync"
)

// Edge is a weighted (and possibly directed) connection between two nodes.
// For undirected graphs the canonical representation has Src <= Dst.
type Edge struct {
	Src, Dst int32
	Weight   float64
}

// Arc is one directed half of an edge as seen from a node's adjacency list.
// EdgeID indexes into the graph's canonical edge slice.
type Arc struct {
	To     int32
	EdgeID int32
	Weight float64
}

// Graph is an immutable weighted graph. Construct one with a Builder.
type Graph struct {
	directed bool
	labels   []string
	index    map[string]int32
	// lazy materializes the label->ID index on first NodeID call for
	// graphs assembled by FromCSR (mmap-loaded files skip per-node
	// hashing until a lookup needs it). Exactly one of index/lazy is
	// consulted; see labelIndex in raw.go.
	lazy *lazyIndex

	edges []Edge

	// CSR adjacency. arcs[outOff[u]:outOff[u+1]] are u's outgoing
	// (undirected: incident) arcs, sorted by To. For directed graphs
	// inArcs/inOff hold the incoming arcs, likewise sorted by To.
	arcs   []Arc
	outOff []int32
	inArcs []Arc
	inOff  []int32

	// lazyArcs, when non-nil, defers the arc scatter (scatterArcs in
	// builder.go) until an accessor actually needs adjacency. Delta
	// materializations (delta.go) set it: frontier re-scoring reads
	// only offsets, strengths and the edge slice, so the O(m) scatter
	// is paid only by methods that walk neighborhoods. A pointer so
	// Graph values stay copyable under vet's copylocks check.
	lazyArcs *arcsOnce

	// lazyTotal, when non-nil, defers the global-weight fold the same
	// way: the fold is a serial O(m) float chain, and the frontier
	// methods (naive, disparity) never read it. Methods with a global
	// term (noise-corrected) pay for it on first TotalWeight call.
	lazyTotal *totalOnce

	outStrength []float64
	inStrength  []float64
	total       float64
	isolates    int
}

// arcsOnce guards one-time lazy arc assembly.
type arcsOnce struct{ once sync.Once }

// totalOnce guards the one-time lazy global-weight fold.
type totalOnce struct{ once sync.Once }

// ensureArcs assembles the arc arrays on first need. Every accessor
// that reads arcs or inArcs must call it first; offsets, strengths,
// degrees and the edge slice are always eager.
func (g *Graph) ensureArcs() {
	if g.lazyArcs != nil {
		g.lazyArcs.once.Do(g.scatterArcs)
	}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumEdges returns the number of canonical edges
// (undirected edges count once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the canonical edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the canonical edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Out returns the outgoing arcs of node u, sorted by destination. For
// undirected graphs this is every incident arc. Callers must not modify
// the returned slice.
func (g *Graph) Out(u int) []Arc {
	g.ensureArcs()
	return g.arcs[g.outOff[u]:g.outOff[u+1]]
}

// In returns the incoming arcs of node u, sorted by origin. For
// undirected graphs it is identical to Out. Callers must not modify the
// returned slice.
func (g *Graph) In(u int) []Arc {
	if !g.directed {
		return g.Out(u)
	}
	g.ensureArcs()
	return g.inArcs[g.inOff[u]:g.inOff[u+1]]
}

// OutDegree returns the number of outgoing (or, undirected, incident) arcs.
func (g *Graph) OutDegree(u int) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns the number of incoming (or, undirected, incident) arcs.
func (g *Graph) InDegree(u int) int {
	if !g.directed {
		return g.OutDegree(u)
	}
	return int(g.inOff[u+1] - g.inOff[u])
}

// OutStrength returns the summed weight of u's outgoing arcs
// (incident arcs if undirected). This is the paper's N_i. .
func (g *Graph) OutStrength(u int) float64 { return g.outStrength[u] }

// InStrength returns the summed weight of u's incoming arcs
// (incident arcs if undirected). This is the paper's N_.j .
func (g *Graph) InStrength(u int) float64 { return g.inStrength[u] }

// OutStrengths returns the per-node outgoing strengths indexed by node
// ID — the flat form of OutStrength for scoring hot loops. Callers must
// not modify the returned slice.
func (g *Graph) OutStrengths() []float64 { return g.outStrength }

// InStrengths returns the per-node incoming strengths indexed by node
// ID. Callers must not modify the returned slice.
func (g *Graph) InStrengths() []float64 { return g.inStrength }

// TotalWeight returns N.., the sum of all directed interaction weights.
// For undirected graphs every edge is counted twice (once per direction),
// so that N_i. , N_.j and N.. are mutually consistent:
// sum_i N_i. == N.. in both the directed and undirected case.
func (g *Graph) TotalWeight() float64 {
	if g.lazyTotal != nil {
		g.lazyTotal.once.Do(g.foldTotal)
	}
	return g.total
}

// foldTotal computes the deferred global total with exactly
// accumulate's fold order — a left fold over canonical edges, each
// counted twice when undirected — so a lazy total is bit-identical to a
// cold build's eager one.
func (g *Graph) foldTotal() {
	if g.directed {
		for _, e := range g.edges {
			g.total += e.Weight
		}
	} else {
		for _, e := range g.edges {
			g.total += 2 * e.Weight
		}
	}
}

// Label returns the string label of node u ("" if none was assigned).
func (g *Graph) Label(u int) string {
	if u < 0 || u >= len(g.labels) {
		return ""
	}
	return g.labels[u]
}

// Labels returns all node labels, indexed by node ID.
// Callers must not modify the returned slice.
func (g *Graph) Labels() []string { return g.labels }

// NodeID returns the node ID for a label, or -1 if unknown.
func (g *Graph) NodeID(label string) int {
	if id, ok := g.labelIndex()[label]; ok {
		return int(id)
	}
	return -1
}

// searchArcs binary-searches a To-sorted arc slice for destination v.
func searchArcs(arcs []Arc, v int32) (float64, bool) {
	lo, hi := 0, len(arcs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arcs[mid].To < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(arcs) && arcs[lo].To == v {
		return arcs[lo].Weight, true
	}
	return 0, false
}

// Weight returns the weight of the edge from u to v and whether it
// exists. For undirected graphs order does not matter. Each node's arc
// range is sorted by destination, so the lookup binary-searches the
// smaller endpoint's range: O(log min(deg u, deg v)).
func (g *Graph) Weight(u, v int) (float64, bool) {
	if g.directed {
		out, in := g.Out(u), g.In(v)
		if len(in) < len(out) {
			return searchArcs(in, int32(u))
		}
		return searchArcs(out, int32(v))
	}
	a, b := g.Out(u), g.Out(v)
	if len(b) < len(a) {
		return searchArcs(b, int32(u))
	}
	return searchArcs(a, int32(v))
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, %d nodes, %d edges, total weight %.6g}",
		kind, g.NumNodes(), g.NumEdges(), g.TotalWeight())
}

// Isolates returns the IDs of nodes with no incident edges.
func (g *Graph) Isolates() []int {
	iso := make([]int, 0, g.isolates)
	for u, n := 0, g.NumNodes(); u < n; u++ {
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			iso = append(iso, u)
		}
	}
	return iso
}

// NumIsolates returns the number of nodes with no incident edges.
// The count is precomputed at build time, so this is O(1).
func (g *Graph) NumIsolates() int { return g.isolates }

// NumConnected returns the number of non-isolated nodes. O(1).
func (g *Graph) NumConnected() int { return g.NumNodes() - g.isolates }
