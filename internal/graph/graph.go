// Package graph implements the weighted-graph substrate used by every
// backboning algorithm in this repository.
//
// A Graph is an immutable weighted graph, directed or undirected, with
// dense integer node IDs and optional string labels. Undirected edges
// are stored exactly once (with Src <= Dst) but contribute to the
// strength of both endpoints. Parallel edges are merged at build time
// by summing weights, matching the count-data interpretation of edge
// weights in Coscia & Neffke (ICDE 2017).
package graph

import "fmt"

// Edge is a weighted (and possibly directed) connection between two nodes.
// For undirected graphs the canonical representation has Src <= Dst.
type Edge struct {
	Src, Dst int32
	Weight   float64
}

// Arc is one directed half of an edge as seen from a node's adjacency list.
// EdgeID indexes into the graph's canonical edge slice.
type Arc struct {
	To     int32
	EdgeID int32
	Weight float64
}

// Graph is an immutable weighted graph. Construct one with a Builder.
type Graph struct {
	directed bool
	labels   []string
	index    map[string]int32

	edges []Edge
	out   [][]Arc // directed: outgoing arcs; undirected: all incident arcs
	in    [][]Arc // directed only; nil for undirected graphs

	outStrength []float64
	inStrength  []float64
	total       float64
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of canonical edges
// (undirected edges count once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the canonical edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the canonical edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Out returns the outgoing arcs of node u. For undirected graphs this
// is every incident arc. Callers must not modify the returned slice.
func (g *Graph) Out(u int) []Arc { return g.out[u] }

// In returns the incoming arcs of node u. For undirected graphs it is
// identical to Out. Callers must not modify the returned slice.
func (g *Graph) In(u int) []Arc {
	if !g.directed {
		return g.out[u]
	}
	return g.in[u]
}

// OutDegree returns the number of outgoing (or, undirected, incident) arcs.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of incoming (or, undirected, incident) arcs.
func (g *Graph) InDegree(u int) int { return len(g.In(u)) }

// OutStrength returns the summed weight of u's outgoing arcs
// (incident arcs if undirected). This is the paper's N_i. .
func (g *Graph) OutStrength(u int) float64 { return g.outStrength[u] }

// InStrength returns the summed weight of u's incoming arcs
// (incident arcs if undirected). This is the paper's N_.j .
func (g *Graph) InStrength(u int) float64 { return g.inStrength[u] }

// TotalWeight returns N.., the sum of all directed interaction weights.
// For undirected graphs every edge is counted twice (once per direction),
// so that N_i. , N_.j and N.. are mutually consistent:
// sum_i N_i. == N.. in both the directed and undirected case.
func (g *Graph) TotalWeight() float64 { return g.total }

// Label returns the string label of node u ("" if none was assigned).
func (g *Graph) Label(u int) string {
	if u < 0 || u >= len(g.labels) {
		return ""
	}
	return g.labels[u]
}

// Labels returns all node labels, indexed by node ID.
// Callers must not modify the returned slice.
func (g *Graph) Labels() []string { return g.labels }

// NodeID returns the node ID for a label, or -1 if unknown.
func (g *Graph) NodeID(label string) int {
	if id, ok := g.index[label]; ok {
		return int(id)
	}
	return -1
}

// Weight returns the weight of the edge from u to v and whether it exists.
// For undirected graphs order does not matter. O(min deg).
func (g *Graph) Weight(u, v int) (float64, bool) {
	arcs := g.out[u]
	if g.directed && len(g.In(v)) < len(arcs) {
		for _, a := range g.In(v) {
			if int(a.To) == u {
				return a.Weight, true
			}
		}
		return 0, false
	}
	for _, a := range arcs {
		if int(a.To) == v {
			return a.Weight, true
		}
	}
	return 0, false
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, %d nodes, %d edges, total weight %.6g}",
		kind, g.NumNodes(), g.NumEdges(), g.total)
}

// Isolates returns the IDs of nodes with no incident edges.
func (g *Graph) Isolates() []int {
	var iso []int
	for u := range g.out {
		if len(g.out[u]) == 0 && len(g.In(u)) == 0 {
			iso = append(iso, u)
		}
	}
	return iso
}

// NumIsolates returns the number of nodes with no incident edges.
func (g *Graph) NumIsolates() int {
	n := 0
	for u := range g.out {
		if len(g.out[u]) == 0 && len(g.In(u)) == 0 {
			n++
		}
	}
	return n
}

// NumConnected returns the number of non-isolated nodes.
func (g *Graph) NumConnected() int { return g.NumNodes() - g.NumIsolates() }
