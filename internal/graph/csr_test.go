package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refBuild is the seed's map-of-pairs Builder, kept as the oracle for
// the sort-merge path: weights accumulate per (src,dst) key in
// insertion order, exactly as `weights[key] += w` did. It returns the
// canonical edge slice plus strengths and total computed the old way.
type refGraph struct {
	edges       []Edge
	outStrength []float64
	inStrength  []float64
	total       float64
}

func refBuild(directed bool, n int, raw []Edge) *refGraph {
	weights := make(map[[2]int32]float64)
	var order [][2]int32
	for _, e := range raw {
		key := [2]int32{e.Src, e.Dst}
		if !directed && e.Src > e.Dst {
			key = [2]int32{e.Dst, e.Src}
		}
		if _, seen := weights[key]; !seen {
			order = append(order, key)
		}
		weights[key] += e.Weight
	}
	r := &refGraph{
		outStrength: make([]float64, n),
		inStrength:  make([]float64, n),
	}
	for _, key := range order {
		r.edges = append(r.edges, Edge{Src: key[0], Dst: key[1], Weight: weights[key]})
	}
	sort.Slice(r.edges, func(i, j int) bool {
		if r.edges[i].Src != r.edges[j].Src {
			return r.edges[i].Src < r.edges[j].Src
		}
		return r.edges[i].Dst < r.edges[j].Dst
	})
	for _, e := range r.edges {
		r.outStrength[e.Src] += e.Weight
		if directed {
			r.inStrength[e.Dst] += e.Weight
			r.total += e.Weight
		} else {
			r.outStrength[e.Dst] += e.Weight
			r.total += 2 * e.Weight
		}
	}
	if !directed {
		copy(r.inStrength, r.outStrength)
	}
	return r
}

// randomRaw draws a duplicate-heavy edge multiset with irrational-ish
// weights, so any change in float summation order shows up as a bit
// difference.
func randomRaw(rng *rand.Rand, n int) []Edge {
	m := rng.Intn(4 * n)
	raw := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		raw = append(raw, Edge{Src: int32(u), Dst: int32(v), Weight: rng.ExpFloat64()})
	}
	return raw
}

func checkAgainstRef(t *testing.T, directed bool, n int, raw []Edge) {
	t.Helper()
	g := FromEdges(directed, n, raw)
	ref := refBuild(directed, n, raw)

	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	if g.NumEdges() != len(ref.edges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(ref.edges))
	}
	for id, e := range g.Edges() {
		if e != ref.edges[id] {
			t.Fatalf("edge %d = %+v, want %+v (must be bit-identical)", id, e, ref.edges[id])
		}
	}
	if g.TotalWeight() != ref.total {
		t.Fatalf("total = %v, want %v", g.TotalWeight(), ref.total)
	}
	isolates := 0
	for u := 0; u < n; u++ {
		if g.OutStrength(u) != ref.outStrength[u] {
			t.Fatalf("outStrength[%d] = %v, want %v", u, g.OutStrength(u), ref.outStrength[u])
		}
		if g.InStrength(u) != ref.inStrength[u] {
			t.Fatalf("inStrength[%d] = %v, want %v", u, g.InStrength(u), ref.inStrength[u])
		}
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			isolates++
		}
	}
	if g.NumIsolates() != isolates {
		t.Fatalf("NumIsolates = %d, want %d (precomputed count drifted)", g.NumIsolates(), isolates)
	}
	if g.NumConnected() != n-isolates {
		t.Fatalf("NumConnected = %d, want %d", g.NumConnected(), n-isolates)
	}

	// CSR adjacency invariants: arc ranges sorted by To, EdgeID/Weight
	// consistent with the canonical edge, and degree sums correct.
	checkAdjacency(t, g)

	// Weight() must agree with a linear scan for every pair.
	for u := 0; u < n; u++ {
		want := make(map[int]float64)
		for _, a := range g.Out(u) {
			want[int(a.To)] = a.Weight
		}
		for v := 0; v < n; v++ {
			w, ok := g.Weight(u, v)
			ww, wok := want[v]
			if ok != wok || w != ww {
				t.Fatalf("Weight(%d,%d) = (%v,%v), want (%v,%v)", u, v, w, ok, ww, wok)
			}
		}
	}
}

func checkAdjacency(t *testing.T, g *Graph) {
	t.Helper()
	n := g.NumNodes()
	outArcs, inArcs := 0, 0
	for u := 0; u < n; u++ {
		for i, a := range g.Out(u) {
			if i > 0 && g.Out(u)[i-1].To >= a.To {
				t.Fatalf("Out(%d) not strictly sorted by To at %d", u, i)
			}
			e := g.Edge(int(a.EdgeID))
			if a.Weight != e.Weight {
				t.Fatalf("Out(%d) arc %d weight %v != edge %v", u, i, a.Weight, e.Weight)
			}
			if g.Directed() {
				if int(e.Src) != u || e.Dst != a.To {
					t.Fatalf("Out(%d) arc %d points to edge %+v", u, i, e)
				}
			} else if !(int(e.Src) == u && e.Dst == a.To) && !(int(e.Dst) == u && e.Src == a.To) {
				t.Fatalf("Out(%d) arc %d inconsistent with edge %+v", u, i, e)
			}
		}
		outArcs += g.OutDegree(u)
		if g.Directed() {
			for i, a := range g.In(u) {
				if i > 0 && g.In(u)[i-1].To >= a.To {
					t.Fatalf("In(%d) not strictly sorted by To at %d", u, i)
				}
				e := g.Edge(int(a.EdgeID))
				if int(e.Dst) != u || e.Src != a.To || e.Weight != a.Weight {
					t.Fatalf("In(%d) arc %d inconsistent with edge %+v", u, i, e)
				}
			}
			inArcs += g.InDegree(u)
		}
	}
	if g.Directed() {
		if outArcs != g.NumEdges() || inArcs != g.NumEdges() {
			t.Fatalf("arc counts out=%d in=%d, want %d", outArcs, inArcs, g.NumEdges())
		}
	} else if outArcs != 2*g.NumEdges() {
		t.Fatalf("arc count %d, want %d", outArcs, 2*g.NumEdges())
	}
}

// TestBuilderMatchesMapReference is the tentpole property test: across
// many random duplicate-heavy inputs, the sort-merge Builder must
// produce graphs bit-identical to the seed's map-based implementation —
// edges, strengths, totals, labels and isolate counts.
func TestBuilderMatchesMapReference(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(40)
		directed := trial%2 == 0
		raw := randomRaw(rng, n)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			checkAgainstRef(t, directed, n, raw)
		})
	}
}

// TestSubgraphMatchesRebuild: pruning through the zero-rebuild CSR
// Subgraph must equal rebuilding the kept edges from scratch, for
// random keep masks — edges, strengths, totals, labels.
func TestSubgraphMatchesRebuild(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 2 + rng.Intn(30)
		directed := trial%2 == 1
		g := FromEdges(directed, n, randomRaw(rng, n))
		keep := make([]bool, g.NumEdges())
		var keptRaw []Edge
		for id, e := range g.Edges() {
			if rng.Float64() < 0.5 {
				keep[id] = true
				keptRaw = append(keptRaw, e)
			}
		}
		sub := g.Subgraph(keep)
		want := FromEdges(directed, n, keptRaw)
		if sub.NumNodes() != n || sub.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: subgraph %v, want %v", trial, sub, want)
		}
		for id, e := range sub.Edges() {
			if e != want.Edges()[id] {
				t.Fatalf("trial %d: edge %d = %+v, want %+v", trial, id, e, want.Edges()[id])
			}
		}
		if sub.TotalWeight() != want.TotalWeight() {
			t.Fatalf("trial %d: total %v, want %v", trial, sub.TotalWeight(), want.TotalWeight())
		}
		for u := 0; u < n; u++ {
			if sub.OutStrength(u) != want.OutStrength(u) || sub.InStrength(u) != want.InStrength(u) {
				t.Fatalf("trial %d: strengths differ at node %d", trial, u)
			}
		}
		if sub.NumIsolates() != want.NumIsolates() {
			t.Fatalf("trial %d: isolates %d, want %d", trial, sub.NumIsolates(), want.NumIsolates())
		}
		checkAdjacency(t, sub)
	}
}

// TestSubgraphSharesLabels: labels and the label index survive the
// zero-rebuild path.
func TestSubgraphSharesLabels(t *testing.T) {
	b := NewBuilder(false)
	b.AddEdgeLabels("a", "b", 1)
	b.AddEdgeLabels("b", "c", 2)
	g := b.Build()
	sub := g.Subgraph([]bool{false, true})
	if sub.Label(0) != "a" || sub.Label(2) != "c" {
		t.Errorf("labels lost: %v", sub.Labels())
	}
	if sub.NodeID("b") != 1 {
		t.Errorf("NodeID(b) = %d", sub.NodeID("b"))
	}
	if sub.NumEdges() != 1 || sub.Edges()[0].Weight != 2 {
		t.Errorf("wrong edge kept: %+v", sub.Edges())
	}
}

// TestBuilderLabelsPreserved: the labeled path through AddEdgeLabels
// produces the same graph as the ID path.
func TestBuilderLabelsPreserved(t *testing.T) {
	b := NewBuilder(true)
	b.AddEdgeLabels("x", "y", 1.5)
	b.AddEdgeLabels("y", "z", 2.5)
	b.AddEdgeLabels("x", "y", 0.5) // duplicate: sums
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if w, ok := g.Weight(g.NodeID("x"), g.NodeID("y")); !ok || w != 2.0 {
		t.Errorf("Weight(x,y) = %v, %v", w, ok)
	}
	if g.NodeID("z") != 2 {
		t.Errorf("NodeID(z) = %d", g.NodeID("z"))
	}
}

// FuzzBuilderMerge drives the builder/reference comparison from fuzzed
// bytes: each 5-byte group encodes (src, dst, weight).
func FuzzBuilderMerge(f *testing.F) {
	f.Add([]byte{0, 1, 10, 1, 2}, uint8(7), true)
	f.Add([]byte{3, 1, 1, 1, 3, 3, 1, 2, 2, 9}, uint8(9), false)
	f.Add([]byte{}, uint8(1), true)
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, directed bool) {
		n := 1 + int(nRaw)%32
		var raw []Edge
		for i := 0; i+4 < len(data); i += 5 {
			u := int(data[i]) % n
			v := int(data[i+1]) % n
			if u == v {
				continue
			}
			w := float64(data[i+2])/16 + float64(data[i+3])/256 + float64(data[i+4])/4096
			if w == 0 {
				continue
			}
			raw = append(raw, Edge{Src: int32(u), Dst: int32(v), Weight: w})
		}
		checkAgainstRef(t, directed, n, raw)
	})
}
