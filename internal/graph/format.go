// Graph serialization is pluggable: every edge-list encoding registers
// a Format, and ReadGraph / WriteGraph dispatch by explicit name, file
// extension, or content sniffing. Gzip-compressed input is decompressed
// transparently regardless of format.

package graph

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownFormat marks a graph format name (or file extension) absent
// from the format registry.
var ErrUnknownFormat = errors.New("unknown graph format")

// Format describes one edge-list encoding: identity, the extensions it
// claims, and its reader/writer/sniffer functions. Formats self-register
// via RegisterFormat and become available to ReadGraph, WriteGraph, the
// CLIs and the HTTP daemon without further dispatch code.
type Format struct {
	// Name is the identifier used in options, flags and query
	// parameters: "csv", "tsv", "ndjson".
	Name string
	// Exts are the file extensions the format claims, dot included
	// (".csv"). Used to resolve formats from paths.
	Exts []string
	// Desc is a one-line human description for generated tables.
	Desc string
	// Order fixes presentation (and sniffing) order in Formats().
	Order int
	// Read parses an edge list into a Graph.
	Read func(r io.Reader, directed bool) (*Graph, error)
	// Write serializes the canonical edge list.
	Write func(w io.Writer, g *Graph) error
	// Sniff reports whether the (decompressed) leading bytes of an
	// input look like this format; nil means the format cannot be
	// sniffed and must be named explicitly.
	Sniff func(prefix []byte) bool
}

// formatRegistry is a concurrency-safe name-indexed Format collection.
type formatRegistry struct {
	mu      sync.RWMutex
	formats map[string]*Format
}

var formatReg = formatRegistry{formats: make(map[string]*Format)}

// RegisterFormat adds a format to the registry, rejecting duplicates,
// missing names, and entries with neither reader nor writer.
func RegisterFormat(f *Format) error {
	if f == nil || f.Name == "" {
		return fmt.Errorf("graph: format must have a name")
	}
	if f.Read == nil && f.Write == nil {
		return fmt.Errorf("graph: format %q has neither reader nor writer", f.Name)
	}
	formatReg.mu.Lock()
	defer formatReg.mu.Unlock()
	if _, dup := formatReg.formats[f.Name]; dup {
		return fmt.Errorf("graph: format %q already registered", f.Name)
	}
	formatReg.formats[f.Name] = f
	return nil
}

// MustRegisterFormat is RegisterFormat that panics — for package init.
func MustRegisterFormat(f *Format) {
	if err := RegisterFormat(f); err != nil {
		panic(err)
	}
}

// LookupFormat resolves a format by name or by file extension (with or
// without the leading dot); ".gz" suffixes are stripped first, so
// "edges.csv.gz" resolves to csv.
func LookupFormat(name string) (*Format, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.TrimSuffix(key, ".gz")
	if i := strings.LastIndexByte(key, '.'); i > 0 {
		key = key[i:] // a path: match on its extension
	}
	formatReg.mu.RLock()
	defer formatReg.mu.RUnlock()
	if f, ok := formatReg.formats[strings.TrimPrefix(key, ".")]; ok {
		return f, nil
	}
	// The extension fallback scans in (Order, Name) order, so two
	// formats claiming one extension resolve the same way every run.
	for _, f := range sortedFormatsLocked() {
		for _, ext := range f.Exts {
			if key == ext || "."+key == ext {
				return f, nil
			}
		}
	}
	return nil, fmt.Errorf("graph: %w %q (known: %v)", ErrUnknownFormat, name, FormatNames())
}

// sortedFormatsLocked snapshots the registry in (Order, Name) order.
// The caller must hold formatReg.mu.
func sortedFormatsLocked() []*Format {
	out := make([]*Format, 0, len(formatReg.formats))
	//lint:detiter-ok collecting values only; sorted by (Order, Name) below
	for _, f := range formatReg.formats {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Formats returns every registered format sorted by (Order, Name).
func Formats() []*Format {
	formatReg.mu.RLock()
	defer formatReg.mu.RUnlock()
	return sortedFormatsLocked()
}

// FormatNames returns the registered format names in Formats order.
func FormatNames() []string {
	fs := Formats()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// writableFormatNames returns the names of formats that can serialize
// graphs, in Formats order — the suggestion list for WriteGraph errors.
func writableFormatNames() []string {
	var names []string
	for _, f := range Formats() {
		if f.Write != nil {
			names = append(names, f.Name)
		}
	}
	return names
}

// ReadOptions controls ReadGraph. The zero value sniffs the format and
// builds an undirected graph.
type ReadOptions struct {
	// Format names the input encoding; empty means sniff the content
	// (falling back to csv).
	Format string
	// Directed builds a directed graph.
	Directed bool
}

// WriteOptions controls WriteGraph. The zero value writes csv.
type WriteOptions struct {
	// Format names the output encoding (default "csv").
	Format string
	// Gzip compresses the output.
	Gzip bool
}

// sniffFormat picks the first registered format whose sniffer accepts
// the prefix; csv is the fallback (it also parses tab- and space-
// separated lines).
func sniffFormat(prefix []byte) *Format {
	for _, f := range Formats() {
		if f.Sniff != nil && f.Sniff(prefix) {
			return f
		}
	}
	if f, err := LookupFormat("csv"); err == nil {
		return f
	}
	return nil
}

// firstLine returns the first non-blank, non-comment line of prefix.
func firstLine(prefix []byte) []byte {
	for len(prefix) > 0 {
		line := prefix
		rest := []byte(nil)
		if i := bytes.IndexByte(prefix, '\n'); i >= 0 {
			line, rest = prefix[:i], prefix[i+1:]
		}
		line = bytes.TrimSpace(line)
		if len(line) > 0 && line[0] != '#' {
			return line
		}
		prefix = rest
	}
	return nil
}

// sizedReader augments a buffered reader with the total number of
// bytes left to read, so the edge-list codec can presize its label
// index and edge buffers (see Builder.presize). Len counts the bytes
// still buffered plus whatever the original source reports.
type sizedReader struct {
	*bufio.Reader
	source interface{ Len() int }
}

func (s *sizedReader) Len() int { return s.Buffered() + s.source.Len() }

// ReadGraph parses an edge list from r. Gzip-compressed input is
// detected by magic number and decompressed transparently; the format
// is then taken from o.Format or sniffed from the leading content.
// When r knows its remaining size (bytes.Reader, strings.Reader — the
// daemon's in-memory request bodies) and the input is not compressed,
// the size is forwarded to the codec for allocation presizing.
func ReadGraph(r io.Reader, o ReadOptions) (*Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	gzipped := false
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: gzip input: %v", err)
		}
		defer zr.Close()
		br = bufio.NewReaderSize(zr, 64<<10)
		gzipped = true
	}
	var f *Format
	if o.Format != "" {
		var err error
		if f, err = LookupFormat(o.Format); err != nil {
			return nil, err
		}
	} else {
		prefix, err := br.Peek(4096)
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, bufio.ErrBufferFull) {
			return nil, fmt.Errorf("graph: read: %v", err)
		}
		f = sniffFormat(prefix)
	}
	if f == nil || f.Read == nil {
		return nil, fmt.Errorf("graph: %w: no readable format", ErrUnknownFormat)
	}
	var in io.Reader = br
	if src, ok := r.(interface{ Len() int }); ok && !gzipped {
		in = &sizedReader{Reader: br, source: src}
	}
	return f.Read(in, o.Directed)
}

// WriteGraph serializes g's canonical edge list to w in the selected
// format, optionally gzip-compressed. All registered formats round-trip
// bit-identically: reading the output back yields the same canonical
// edge slice (labels and exact weights preserved).
func WriteGraph(w io.Writer, g *Graph, o WriteOptions) error {
	name := o.Format
	if name == "" {
		name = "csv"
	}
	f, err := LookupFormat(name)
	if err != nil {
		// Re-wrap with the writable subset: "edges.xyz" failing with a
		// list that names read-only formats would just misdirect.
		return fmt.Errorf("graph: cannot write %w %q (writable formats: %s)",
			ErrUnknownFormat, name, strings.Join(writableFormatNames(), ", "))
	}
	if f.Write == nil {
		return fmt.Errorf("graph: format %q is read-only (writable formats: %s)",
			f.Name, strings.Join(writableFormatNames(), ", "))
	}
	if o.Gzip {
		zw := gzip.NewWriter(w)
		if err := f.Write(zw, g); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return f.Write(w, g)
}

func init() {
	MustRegisterFormat(&Format{
		Name:  "csv",
		Exts:  []string{".csv", ".txt", ".edges"},
		Desc:  "comma-separated `src,dst,weight` lines; also accepts tab- or space-separated input, `#` comments and a header row",
		Order: 10,
		Read:  readEdgeList,
		Write: func(w io.Writer, g *Graph) error { return g.writeEdgeList(w, ',') },
		// csv is the sniffing fallback; no sniffer needed.
	})
	MustRegisterFormat(&Format{
		Name:  "tsv",
		Exts:  []string{".tsv", ".tab"},
		Desc:  "tab-separated `src\\tdst\\tweight` lines; labels may contain commas",
		Order: 20,
		Read:  readEdgeList,
		Write: func(w io.Writer, g *Graph) error { return g.writeEdgeList(w, '\t') },
		Sniff: func(prefix []byte) bool {
			return bytes.IndexByte(firstLine(prefix), '\t') >= 0
		},
	})
	MustRegisterFormat(&Format{
		Name:  "ndjson",
		Exts:  []string{".ndjson", ".jsonl"},
		Desc:  "newline-delimited JSON objects `{\"src\":…,\"dst\":…,\"weight\":…}`; src/dst may be strings or numbers",
		Order: 30,
		Read:  readNDJSON,
		Write: func(w io.Writer, g *Graph) error { return g.writeNDJSON(w) },
		Sniff: func(prefix []byte) bool {
			line := firstLine(prefix)
			return len(line) > 0 && line[0] == '{'
		},
	})
}
