package graph

import (
	"math"
	"math/rand"
	"testing"
)

// edgeKey identifies one canonical edge in oracle bookkeeping.
type edgeKey struct{ src, dst int32 }

// deltaOracle tracks the exact edge set a Delta should represent and
// can produce the cold-rebuild graph for it: the bit-identity oracle.
type deltaOracle struct {
	directed bool
	n        int
	weights  map[edgeKey]float64
	order    []edgeKey // insertion order, for deterministic iteration
}

func newDeltaOracle(base *Graph) *deltaOracle {
	o := &deltaOracle{
		directed: base.Directed(),
		n:        base.NumNodes(),
		weights:  make(map[edgeKey]float64),
	}
	for _, e := range base.Edges() {
		o.set(Update{Src: e.Src, Dst: e.Dst, Weight: e.Weight})
	}
	return o
}

func (o *deltaOracle) set(u Update) {
	src, dst := u.Src, u.Dst
	if !o.directed && src > dst {
		src, dst = dst, src
	}
	k := edgeKey{src, dst}
	if _, seen := o.weights[k]; !seen {
		o.order = append(o.order, k)
	}
	o.weights[k] = u.Weight // 0 marks deletion
}

// build cold-rebuilds the tracked edge set through the Builder
// pipeline — the from-scratch result a materialized Delta must match
// bit for bit.
func (o *deltaOracle) build() *Graph {
	edges := make([]Edge, 0, len(o.order))
	for _, k := range o.order {
		if w := o.weights[k]; w > 0 {
			edges = append(edges, Edge{Src: k.src, Dst: k.dst, Weight: w})
		}
	}
	return FromEdges(o.directed, o.n, edges)
}

// requireBitIdentical fails unless got and want agree on every field a
// cold build populates, comparing floats by bit pattern.
func requireBitIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.Directed() != want.Directed() || got.NumNodes() != want.NumNodes() {
		t.Fatalf("shape mismatch: got %v, want %v", got, want)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edge count: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for i, e := range got.Edges() {
		w := want.Edge(i)
		if e.Src != w.Src || e.Dst != w.Dst || math.Float64bits(e.Weight) != math.Float64bits(w.Weight) {
			t.Fatalf("edge %d: got %+v, want %+v", i, e, w)
		}
	}
	if math.Float64bits(got.TotalWeight()) != math.Float64bits(want.TotalWeight()) {
		t.Fatalf("total weight: got %x, want %x (%v vs %v)",
			math.Float64bits(got.TotalWeight()), math.Float64bits(want.TotalWeight()),
			got.TotalWeight(), want.TotalWeight())
	}
	if got.NumIsolates() != want.NumIsolates() {
		t.Fatalf("isolates: got %d, want %d", got.NumIsolates(), want.NumIsolates())
	}
	for u := 0; u < want.NumNodes(); u++ {
		if math.Float64bits(got.OutStrength(u)) != math.Float64bits(want.OutStrength(u)) {
			t.Fatalf("node %d out-strength: got %v, want %v", u, got.OutStrength(u), want.OutStrength(u))
		}
		if math.Float64bits(got.InStrength(u)) != math.Float64bits(want.InStrength(u)) {
			t.Fatalf("node %d in-strength: got %v, want %v", u, got.InStrength(u), want.InStrength(u))
		}
		ga, wa := got.Out(u), want.Out(u)
		if len(ga) != len(wa) {
			t.Fatalf("node %d out-degree: got %d, want %d", u, len(ga), len(wa))
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("node %d out-arc %d: got %+v, want %+v", u, i, ga[i], wa[i])
			}
		}
		gi, wi := got.In(u), want.In(u)
		if len(gi) != len(wi) {
			t.Fatalf("node %d in-degree: got %d, want %d", u, len(gi), len(wi))
		}
		for i := range gi {
			if gi[i] != wi[i] {
				t.Fatalf("node %d in-arc %d: got %+v, want %+v", u, i, gi[i], wi[i])
			}
		}
	}
}

// randomBase builds a reproducible random base graph.
func randomBase(rng *rand.Rand, directed bool, n, m int) *Graph {
	b := NewBuilder(directed)
	b.AddNodes(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, float64(rng.Intn(1000)+1)/7)
	}
	return b.Build()
}

// randomUpdate draws an upsert or delete over n nodes. Deletions come
// up often enough to hit both existing-edge and absent-edge tombstones.
func randomUpdate(rng *rand.Rand, n int) Update {
	u := Update{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	for u.Src == u.Dst {
		u.Dst = int32(rng.Intn(n))
	}
	if rng.Intn(4) != 0 { // 3/4 upserts, 1/4 deletes
		u.Weight = float64(rng.Intn(500)+1) / 3
	}
	return u
}

// TestDeltaBitIdenticalToColdRebuild is the core property test: after
// any random update stream — upserts, deletes, repeated touches of the
// same pair, multiple batches per materialization, materializations at
// random points, and compaction boundaries (small limits force several
// compactions per stream) — every materialized graph is bit-identical
// to a cold rebuild of the same edge set.
func TestDeltaBitIdenticalToColdRebuild(t *testing.T) {
	for _, exclusive := range []bool{false, true} {
		for _, directed := range []bool{false, true} {
			for _, limit := range []int{1, 7, 64, 0} { // 0 = DefaultCompactLimit: never compacts here
				rng := rand.New(rand.NewSource(int64(42 + limit)))
				n, m := 40, 150
				base := randomBase(rng, directed, n, m)
				oracle := newDeltaOracle(base)
				d := NewDelta(base, limit)
				// Exclusive mode recycles the previous materialization in
				// place; the comparison below never holds an old graph, so
				// the surrender contract is respected and the result must
				// still be bit-identical.
				d.SetExclusive(exclusive)

				for step := 0; step < 60; step++ {
					batch := make([]Update, rng.Intn(8)+1)
					for i := range batch {
						batch[i] = randomUpdate(rng, n)
						oracle.set(batch[i])
					}
					if err := d.Apply(batch); err != nil {
						t.Fatalf("exclusive=%v directed=%v limit=%d step %d: %v", exclusive, directed, limit, step, err)
					}
					if rng.Intn(3) == 0 || step == 59 {
						g, _ := d.Graph()
						requireBitIdentical(t, g, oracle.build())
					}
				}
			}
		}
	}
}

// TestDeltaDirtyNodes pins the Dirty contract: Nodes are exactly the
// sorted unique endpoints of updates applied since the previous
// materialization, Base/For tie consecutive materializations together,
// and repeated Graph() calls return the same cached record.
func TestDeltaDirtyNodes(t *testing.T) {
	base := FromEdges(false, 6, []Edge{
		{Src: 0, Dst: 1, Weight: 3},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 3, Dst: 4, Weight: 1},
	})
	d := NewDelta(base, 0)

	g0, dirty0 := d.Graph()
	if g0 != base || dirty0.Base != base || dirty0.For != base || len(dirty0.Nodes) != 0 {
		t.Fatalf("empty materialization: got %+v", dirty0)
	}

	if err := d.Apply([]Update{{Src: 4, Dst: 1, Weight: 9}, {Src: 0, Dst: 1, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	g1, dirty1 := d.Graph()
	if dirty1.Base != base || dirty1.For != g1 {
		t.Fatalf("dirty1 graphs: base ok=%v for ok=%v", dirty1.Base == base, dirty1.For == g1)
	}
	if want := []int32{0, 1, 4}; len(dirty1.Nodes) != len(want) {
		t.Fatalf("dirty1 nodes: got %v, want %v", dirty1.Nodes, want)
	} else {
		for i, u := range want {
			if dirty1.Nodes[i] != u {
				t.Fatalf("dirty1 nodes: got %v, want %v", dirty1.Nodes, want)
			}
		}
	}

	// Cached: same record again without intervening Apply.
	g1b, dirty1b := d.Graph()
	if g1b != g1 || dirty1b.Base != dirty1.Base || len(dirty1b.Nodes) != len(dirty1.Nodes) {
		t.Fatalf("Graph() not cached: %+v vs %+v", dirty1b, dirty1)
	}

	// Next round chains off g1.
	if err := d.Apply([]Update{{Src: 2, Dst: 5, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	g2, dirty2 := d.Graph()
	if dirty2.Base != g1 || dirty2.For != g2 {
		t.Fatal("dirty2 does not chain from previous materialization")
	}
	if len(dirty2.Nodes) != 2 || dirty2.Nodes[0] != 2 || dirty2.Nodes[1] != 5 {
		t.Fatalf("dirty2 nodes: got %v, want [2 5]", dirty2.Nodes)
	}
}

// TestDeltaValidation pins batch-level validation: any invalid update
// rejects the whole batch and leaves the Delta unchanged.
func TestDeltaValidation(t *testing.T) {
	base := FromEdges(false, 4, []Edge{{Src: 0, Dst: 1, Weight: 1}})
	bad := [][]Update{
		{{Src: 0, Dst: 4, Weight: 1}},                              // node out of range
		{{Src: -1, Dst: 1, Weight: 1}},                             // negative node
		{{Src: 2, Dst: 2, Weight: 1}},                              // self-loop
		{{Src: 0, Dst: 1, Weight: -2}},                             // negative weight
		{{Src: 0, Dst: 1, Weight: math.NaN()}},                     // NaN weight
		{{Src: 0, Dst: 2, Weight: 5}, {Src: 3, Dst: 3, Weight: 1}}, // valid then invalid
	}
	for i, batch := range bad {
		d := NewDelta(base, 0)
		if err := d.Apply(batch); err == nil {
			t.Fatalf("batch %d: expected error", i)
		}
		if d.Pending() != 0 {
			t.Fatalf("batch %d: failed Apply left %d pending entries", i, d.Pending())
		}
		g, _ := d.Graph()
		if g != base {
			t.Fatalf("batch %d: failed Apply changed the graph", i)
		}
	}
}

// TestWithUpdates covers the one-shot entry point, including undirected
// canonicalization of reversed pairs and last-wins within a batch.
func TestWithUpdates(t *testing.T) {
	base := FromEdges(false, 4, []Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}})
	d, err := base.WithUpdates([]Update{
		{Src: 2, Dst: 1, Weight: 7}, // reversed pair overwrites (1,2)
		{Src: 3, Dst: 0, Weight: 5}, // insert as (0,3)
		{Src: 0, Dst: 3, Weight: 2}, // last-wins over the previous line
		{Src: 0, Dst: 1, Weight: 0}, // delete
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := d.Graph()
	oracle := FromEdges(false, 4, []Edge{
		{Src: 1, Dst: 2, Weight: 7},
		{Src: 0, Dst: 3, Weight: 2},
	})
	requireBitIdentical(t, g, oracle)
	if w, ok := g.Weight(1, 2); !ok || w != 7 {
		t.Fatalf("Weight(1,2) = %v, %v", w, ok)
	}
	if _, ok := g.Weight(0, 1); ok {
		t.Fatal("deleted edge (0,1) still present")
	}
}

// TestDeltaCompaction pins compaction mechanics: once the patch reaches
// the limit, the materialized graph becomes the new base and the patch
// drains, while results remain bit-identical throughout.
func TestDeltaCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomBase(rng, false, 20, 60)
	oracle := newDeltaOracle(base)
	d := NewDelta(base, 4)

	for step := 0; step < 30; step++ {
		u := randomUpdate(rng, 20)
		oracle.set(u)
		if err := d.Apply([]Update{u}); err != nil {
			t.Fatal(err)
		}
		g, _ := d.Graph()
		requireBitIdentical(t, g, oracle.build())
		if d.Pending() >= 4 {
			t.Fatalf("step %d: patch not compacted (%d pending)", step, d.Pending())
		}
		if d.Pending() == 0 && d.Base() != g {
			t.Fatalf("step %d: compaction did not promote the materialized graph to base", step)
		}
	}
}

// TestDeltaLazyArcsIsolation checks that a materialized overlay serving
// only strength/degree reads never disturbs the base graph's arrays,
// and that adjacency assembled lazily matches the eager build.
func TestDeltaLazyArcsIsolation(t *testing.T) {
	base := FromEdges(false, 5, []Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3},
	})
	baseStrength := base.OutStrength(1)
	d, err := base.WithUpdates([]Update{{Src: 1, Dst: 3, Weight: 10}})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := d.Graph()
	// Strength/degree reads work before any arc assembly.
	if got, want := g.OutStrength(1), 1.0+2+10; got != want {
		t.Fatalf("overlay strength: got %v, want %v", got, want)
	}
	if g.OutDegree(1) != 3 {
		t.Fatalf("overlay degree: got %d, want 3", g.OutDegree(1))
	}
	if base.OutStrength(1) != baseStrength || base.OutDegree(1) != 2 {
		t.Fatal("overlay mutated the base graph")
	}
	// Adjacency (assembled lazily on first touch) matches a cold build.
	requireBitIdentical(t, g, FromEdges(false, 5, []Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 1, Dst: 3, Weight: 10},
		{Src: 2, Dst: 3, Weight: 3},
	}))
}

// FuzzApplyDelta decodes arbitrary bytes as an update stream over a
// small fixed base graph — 4-byte records: endpoints, weight (0 =
// delete), and a materialize/flush opcode — and checks every
// materialization against the cold-rebuild oracle, through both a
// copying overlay and an exclusive (in-place) one in lockstep.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{0, 1, 5, 0})
	f.Add([]byte{0, 1, 0, 1, 2, 3, 9, 0, 1, 2, 0, 1})
	f.Add([]byte{7, 3, 200, 2, 3, 7, 0, 0, 5, 6, 1, 1, 6, 5, 2, 2})

	rng := rand.New(rand.NewSource(99))
	baseEdges := randomBase(rng, false, 12, 30).Edges()

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		base := FromEdges(false, n, baseEdges)
		oracle := newDeltaOracle(base)
		d := NewDelta(base, 8) // small limit: fuzz crosses compaction often
		// Lockstep exclusive twin: same stream through a move-semantics
		// overlay, checked against the same oracle at the same points.
		dx := NewDelta(base, 8)
		dx.SetExclusive(true)

		var batch []Update
		flush := func() {
			if err := d.Apply(batch); err != nil {
				t.Fatalf("Apply(%v): %v", batch, err)
			}
			if err := dx.Apply(batch); err != nil {
				t.Fatalf("exclusive Apply(%v): %v", batch, err)
			}
			for _, u := range batch {
				oracle.set(u)
			}
			batch = batch[:0]
		}
		check := func() {
			want := oracle.build()
			g, _ := d.Graph()
			requireBitIdentical(t, g, want)
			gx, _ := dx.Graph()
			requireBitIdentical(t, gx, want)
		}
		for i := 0; i+4 <= len(data); i += 4 {
			src := int32(data[i]) % n
			dst := int32(data[i+1]) % n
			if src == dst {
				continue
			}
			batch = append(batch, Update{Src: src, Dst: dst, Weight: float64(data[i+2]) / 8})
			switch data[i+3] % 3 {
			case 0:
				flush()
				check()
			case 1:
				flush()
			}
		}
		flush()
		check()
	})
}
