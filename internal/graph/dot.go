package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls WriteDOT rendering.
type DOTOptions struct {
	// Name is the graph name in the DOT header (default "backbone").
	Name string
	// NodeColor assigns a fill-color class per node (e.g. a community
	// or occupation-classification label); nil leaves nodes unstyled.
	// The paper's Figures 1, 10 and 11 color nodes this way.
	NodeColor []int
	// NodeSize scales node area (e.g. employment); nil for uniform.
	NodeSize []float64
	// EdgeWidth scales pen width by edge weight when true.
	EdgeWidth bool
}

// dotPalette is a colorblind-safe cycle for color classes.
var dotPalette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
	"#aa3377", "#bbbbbb", "#222255", "#225555", "#555522",
}

// WriteDOT renders the graph in GraphViz DOT format, the visualization
// path for the backbone figures: color classes become fill colors and
// node sizes scale with the supplied magnitudes.
//
//lint:ctxflow-ok figure writer over an already-pruned backbone; the caller's io.Writer bounds it
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "backbone"
	}
	kind, sep := "graph", "--"
	if g.directed {
		kind, sep = "digraph", "->"
	}
	fmt.Fprintf(bw, "%s %q {\n", kind, name)
	fmt.Fprintln(bw, "  node [shape=circle style=filled fillcolor=white];")

	var maxSize float64
	if opts.NodeSize != nil {
		for _, s := range opts.NodeSize {
			if s > maxSize {
				maxSize = s
			}
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.OutDegree(v) == 0 && g.InDegree(v) == 0 {
			continue // isolates clutter the figure
		}
		var attrs []string
		label := g.Label(v)
		if label == "" {
			label = fmt.Sprint(v)
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		if opts.NodeColor != nil && v < len(opts.NodeColor) {
			c := dotPalette[((opts.NodeColor[v]%len(dotPalette))+len(dotPalette))%len(dotPalette)]
			attrs = append(attrs, fmt.Sprintf("fillcolor=%q", c))
		}
		if opts.NodeSize != nil && v < len(opts.NodeSize) && maxSize > 0 {
			side := 0.25 + 0.75*opts.NodeSize[v]/maxSize
			attrs = append(attrs, fmt.Sprintf("width=%.3f fixedsize=true", side))
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, strings.Join(attrs, " "))
	}

	var maxW float64
	for _, e := range g.edges {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	for _, e := range g.edges {
		if opts.EdgeWidth && maxW > 0 {
			fmt.Fprintf(bw, "  n%d %s n%d [penwidth=%.2f];\n",
				e.Src, sep, e.Dst, 0.5+4*e.Weight/maxW)
		} else {
			fmt.Fprintf(bw, "  n%d %s n%d;\n", e.Src, sep, e.Dst)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
