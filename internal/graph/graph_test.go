package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(directed)
	a, bb, c := b.AddNode("a"), b.AddNode("b"), b.AddNode("c")
	b.MustAddEdge(a, bb, 1)
	b.MustAddEdge(bb, c, 2)
	b.MustAddEdge(c, a, 3)
	return b.Build()
}

func TestBuildDirectedBasics(t *testing.T) {
	g := buildTriangle(t, true)
	if !g.Directed() {
		t.Fatal("expected directed")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if got := g.TotalWeight(); got != 6 {
		t.Errorf("TotalWeight = %v, want 6", got)
	}
	a := g.NodeID("a")
	if g.OutStrength(a) != 1 || g.InStrength(a) != 3 {
		t.Errorf("node a: out=%v in=%v, want 1, 3", g.OutStrength(a), g.InStrength(a))
	}
	if w, ok := g.Weight(a, g.NodeID("b")); !ok || w != 1 {
		t.Errorf("Weight(a,b) = %v,%v want 1,true", w, ok)
	}
	if _, ok := g.Weight(g.NodeID("b"), a); ok {
		t.Error("Weight(b,a) should not exist in directed graph")
	}
}

func TestBuildUndirectedStrengths(t *testing.T) {
	g := buildTriangle(t, false)
	// Undirected: strengths are incident sums, total counts both directions.
	a := g.NodeID("a")
	if g.OutStrength(a) != 4 || g.InStrength(a) != 4 {
		t.Errorf("node a strength = %v/%v, want 4/4", g.OutStrength(a), g.InStrength(a))
	}
	if g.TotalWeight() != 12 {
		t.Errorf("TotalWeight = %v, want 12 (2x undirected sum)", g.TotalWeight())
	}
	// sum_i N_i. must equal N.. in both conventions.
	var sum float64
	for u := 0; u < g.NumNodes(); u++ {
		sum += g.OutStrength(u)
	}
	if sum != g.TotalWeight() {
		t.Errorf("sum of strengths %v != total %v", sum, g.TotalWeight())
	}
	if w, ok := g.Weight(g.NodeID("b"), a); !ok || w != 1 {
		t.Errorf("undirected Weight(b,a) = %v,%v want 1,true", w, ok)
	}
}

func TestDuplicateEdgesAccumulate(t *testing.T) {
	b := NewBuilder(true)
	u, v := b.AddNode("u"), b.AddNode("v")
	b.MustAddEdge(u, v, 1.5)
	b.MustAddEdge(u, v, 2.5)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Edges()[0].Weight != 4 {
		t.Errorf("weight = %v, want 4", g.Edges()[0].Weight)
	}
}

func TestUndirectedCanonicalOrder(t *testing.T) {
	b := NewBuilder(false)
	b.AddNodes(3)
	b.MustAddEdge(2, 0, 1)
	b.MustAddEdge(0, 2, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (both orders merge)", g.NumEdges())
	}
	e := g.Edges()[0]
	if e.Src != 0 || e.Dst != 2 || e.Weight != 2 {
		t.Errorf("edge = %+v, want {0 2 2}", e)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(true)
	b.AddNodes(2)
	if err := b.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := b.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := b.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := b.AddEdge(0, 1, 0); err != nil {
		t.Errorf("zero weight should be silently ignored: %v", err)
	}
	if g := b.Build(); g.NumEdges() != 0 {
		t.Errorf("zero-weight edge materialized: %d edges", g.NumEdges())
	}
}

func TestIsolates(t *testing.T) {
	b := NewBuilder(true)
	b.AddNodes(5)
	b.MustAddEdge(0, 1, 1)
	g := b.Build()
	if got := g.NumIsolates(); got != 3 {
		t.Errorf("NumIsolates = %d, want 3", got)
	}
	if got := g.NumConnected(); got != 2 {
		t.Errorf("NumConnected = %d, want 2", got)
	}
	iso := g.Isolates()
	if len(iso) != 3 || iso[0] != 2 || iso[2] != 4 {
		t.Errorf("Isolates = %v, want [2 3 4]", iso)
	}
}

func TestKeepEdgesPreservesNodes(t *testing.T) {
	g := buildTriangle(t, true)
	sub := g.KeepEdges(map[int32]bool{0: true})
	if sub.NumNodes() != 3 {
		t.Errorf("node set shrank: %d", sub.NumNodes())
	}
	if sub.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", sub.NumEdges())
	}
	if sub.NodeID("c") != g.NodeID("c") {
		t.Error("labels lost in KeepEdges")
	}
}

func TestFilterEdges(t *testing.T) {
	g := buildTriangle(t, false)
	sub := g.FilterEdges(func(id int, e Edge) bool { return e.Weight >= 2 })
	if sub.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", sub.NumEdges())
	}
	for _, e := range sub.Edges() {
		if e.Weight < 2 {
			t.Errorf("edge %+v should have been filtered", e)
		}
	}
}

func TestUndirectedView(t *testing.T) {
	b := NewBuilder(true)
	u, v := b.AddNode("u"), b.AddNode("v")
	b.MustAddEdge(u, v, 3)
	b.MustAddEdge(v, u, 4)
	g := b.Build()
	ug := g.Undirected()
	if ug.Directed() {
		t.Fatal("still directed")
	}
	if ug.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", ug.NumEdges())
	}
	if w, _ := ug.Weight(u, v); w != 7 {
		t.Errorf("merged weight = %v, want 7", w)
	}
	und := buildTriangle(t, false)
	if und.Undirected() != und {
		t.Error("Undirected() of undirected graph should be identity")
	}
}

func TestWeakComponents(t *testing.T) {
	b := NewBuilder(true)
	b.AddNodes(6)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(3, 4, 1)
	g := b.Build()
	labels, count := g.WeakComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] || labels[5] == labels[0] {
		t.Errorf("labels = %v", labels)
	}
	if g.IsWeaklyConnected() {
		t.Error("disconnected graph reported connected")
	}
	if got := g.LargestComponentSize(); got != 3 {
		t.Errorf("LargestComponentSize = %d, want 3", got)
	}
	tri := buildTriangle(t, true)
	if !tri.IsWeaklyConnected() {
		t.Error("triangle reported disconnected")
	}
}

func TestEdgeSetAndWeightMap(t *testing.T) {
	g := buildTriangle(t, false)
	set := g.EdgeSet()
	if len(set) != 3 {
		t.Fatalf("EdgeSet size = %d, want 3", len(set))
	}
	// Keys normalized regardless of insertion order.
	if !set[EdgeKey{0, 2}] {
		t.Errorf("missing normalized key {0,2}: %v", set)
	}
	wm := g.WeightMap()
	if wm[EdgeKey{0, 1}] != 1 {
		t.Errorf("WeightMap[{0,1}] = %v, want 1", wm[EdgeKey{0, 1}])
	}
}

func TestReadWriteCSVRoundTrip(t *testing.T) {
	in := "src,dst,weight\na,b,2\nb,c,3.5\n# comment\nc,a,1\n"
	g, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(strings.NewReader(sb.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.TotalWeight() != g.TotalWeight() {
		t.Errorf("round trip mismatch: %v vs %v", g2, g)
	}
	if w, ok := g2.Weight(g2.NodeID("b"), g2.NodeID("c")); !ok || w != 3.5 {
		t.Errorf("Weight(b,c) = %v,%v", w, ok)
	}
}

func TestReadCSVWhitespaceAndErrors(t *testing.T) {
	g, err := ReadCSV(strings.NewReader("a b 1\nb c 2\n"), false)
	if err != nil {
		t.Fatalf("space-separated: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), false); err == nil {
		t.Error("two-field line accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,1\nc,d,bogus\n"), false); err == nil {
		t.Error("bad weight on non-header line accepted")
	}
}

// Property: for random directed graphs, sum of out-strengths ==
// sum of in-strengths == total weight, and every edge appears exactly
// once in its source's Out and target's In.
func TestQuickStrengthConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewBuilder(true)
		b.AddNodes(n)
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			b.MustAddEdge(u, v, float64(1+rng.Intn(9)))
		}
		g := b.Build()
		var outSum, inSum float64
		for u := 0; u < n; u++ {
			outSum += g.OutStrength(u)
			inSum += g.InStrength(u)
		}
		if math.Abs(outSum-g.TotalWeight()) > 1e-9 || math.Abs(inSum-g.TotalWeight()) > 1e-9 {
			return false
		}
		for id, e := range g.Edges() {
			foundOut, foundIn := false, false
			for _, a := range g.Out(int(e.Src)) {
				if a.EdgeID == int32(id) {
					foundOut = true
				}
			}
			for _, a := range g.In(int(e.Dst)) {
				if a.EdgeID == int32(id) {
					foundIn = true
				}
			}
			if !foundOut || !foundIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
