// Package loadgen is an open-loop HTTP load generator for driving a
// backboned daemon into (and past) saturation: arrivals are scheduled
// on a wall clock at a configured — optionally ramping — rate,
// independent of how fast the server answers, so queueing delay and
// shedding behavior are actually observable instead of being hidden by
// closed-loop back-pressure. It is the measurement engine behind
// cmd/backbonegen and the overload e2e suite.
//
// Each request POSTs one body from a fixed working set (selected
// uniformly or zipfian, so cache-hit skew is reproducible), carries
// the daemon's deadline-propagation header (X-Backbone-Deadline) and
// classifies the result: 2xx is goodput, 503 a shed, 504 an expired
// budget, client-side expiry a timeout, everything else an error.
// Latencies are recorded per outcome and summarized as percentiles
// plus a log-scale histogram.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Outcome classifies one completed request.
type Outcome string

const (
	// OK is a 2xx response with a fully read body: goodput.
	OK Outcome = "ok"
	// Shed is a 503 — the admission path refused the request.
	Shed Outcome = "shed"
	// Expired is a 504 — the budget ran out server-side.
	Expired Outcome = "expired"
	// Timeout is a client-side deadline expiry (no response in budget).
	Timeout Outcome = "timeout"
	// Errored is any other status or transport failure.
	Errored Outcome = "error"
)

// Config tunes one load run.
type Config struct {
	// URL is the daemon base URL (http://host:port); Path the endpoint
	// (default /backbone); Query the raw query string without the
	// leading "?" (e.g. "method=nc&delta=1.0").
	URL   string
	Path  string
	Query string
	// RPS is the arrival rate at t=0; RampTo, when > 0, is the rate at
	// t=Duration with linear interpolation between (an RPS ramp). The
	// schedule is open-loop: arrivals never wait for responses.
	RPS      float64
	RampTo   float64
	Duration time.Duration
	// Timeout is the per-request budget; it is also propagated as the
	// X-Backbone-Deadline header so the server sheds work it cannot
	// finish in time. Default 5s.
	Timeout time.Duration
	// Bodies is the request working set; one is POSTed per arrival.
	Bodies [][]byte
	// Zipf > 1 selects bodies zipfian with that exponent (body 0
	// hottest); otherwise selection is uniform.
	Zipf float64
	// Seed fixes the body-selection RNG.
	Seed int64
	// MaxInFlight caps concurrent requests client-side (default 512);
	// arrivals past the cap are counted as Dropped, not sent — the
	// open-loop signal that the server has fallen behind the offered
	// rate by more than the cap.
	MaxInFlight int
	// Client overrides the HTTP client (tests); default is a dedicated
	// client with a generous connection pool.
	Client *http.Client
}

// LatencySummary describes one outcome's latency distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	MinMs float64 `json:"min_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Bucket is one log-scale histogram cell over all completed requests.
type Bucket struct {
	LeMs  float64 `json:"le_ms"` // upper bound, inclusive
	Count int     `json:"count"`
}

// Report is the result of one load run.
type Report struct {
	DurationSeconds float64 `json:"duration_seconds"`
	// Offered counts scheduled arrivals; Sent the ones actually issued;
	// Dropped the arrivals refused client-side at MaxInFlight.
	Offered int `json:"offered"`
	Sent    int `json:"sent"`
	Dropped int `json:"dropped"`
	// Outcomes maps outcome name to count over sent requests.
	Outcomes map[Outcome]int `json:"outcomes"`
	// GoodputRPS is OK responses per second of run duration.
	GoodputRPS float64 `json:"goodput_rps"`
	// RetryAfterSeconds sums the Retry-After hints on shed responses
	// (RetryAfterCount the responses carrying one) — the mean hint is
	// their ratio.
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
	RetryAfterCount   int     `json:"retry_after_count"`
	// Latency summarizes per outcome; Histogram spans all completed
	// requests whatever their outcome.
	Latency   map[Outcome]LatencySummary `json:"latency"`
	Histogram []Bucket                   `json:"histogram"`
}

// result is one completed request as recorded by workers.
type result struct {
	outcome    Outcome
	latency    time.Duration
	retryAfter float64
}

// Run drives one open-loop load run and blocks until every in-flight
// request has completed (or ctx is canceled, which stops scheduling
// and abandons the tail).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be > 0 (got %g)", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be > 0 (got %v)", cfg.Duration)
	}
	if len(cfg.Bodies) == 0 {
		return nil, fmt.Errorf("loadgen: need at least one body")
	}
	if cfg.Path == "" {
		cfg.Path = "/backbone"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		}}
	}
	target := cfg.URL + cfg.Path
	if cfg.Query != "" {
		target += "?" + cfg.Query
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() []byte { return cfg.Bodies[rng.Intn(len(cfg.Bodies))] }
	if cfg.Zipf > 1 && len(cfg.Bodies) > 1 {
		z := rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(cfg.Bodies)-1))
		pick = func() []byte { return cfg.Bodies[z.Uint64()] }
	}

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	inFlight := make(chan struct{}, cfg.MaxInFlight)
	rep := &Report{Outcomes: map[Outcome]int{}, Latency: map[Outcome]LatencySummary{}}

	start := time.Now()
	elapsed := time.Duration(0)
	// Open-loop schedule: the next arrival is 1/r(t) after the current
	// one, r interpolating linearly from RPS to RampTo. Sleeping to the
	// absolute schedule (not relative) keeps the offered rate honest
	// even when this loop itself is briefly descheduled.
	for elapsed < cfg.Duration {
		frac := float64(elapsed) / float64(cfg.Duration)
		rate := cfg.RPS
		if cfg.RampTo > 0 {
			rate = cfg.RPS + (cfg.RampTo-cfg.RPS)*frac
		}
		rep.Offered++
		body := pick()
		select {
		case inFlight <- struct{}{}:
			rep.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := fire(ctx, client, target, body, cfg.Timeout)
				<-inFlight
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}()
		default:
			rep.Dropped++
		}

		elapsed += time.Duration(float64(time.Second) / rate)
		if d := start.Add(elapsed).Sub(time.Now()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
	}
	wg.Wait()
	rep.DurationSeconds = time.Since(start).Seconds()

	byOutcome := map[Outcome][]time.Duration{}
	var all []time.Duration
	for _, r := range results {
		rep.Outcomes[r.outcome]++
		byOutcome[r.outcome] = append(byOutcome[r.outcome], r.latency)
		all = append(all, r.latency)
		if r.retryAfter > 0 {
			rep.RetryAfterSeconds += r.retryAfter
			rep.RetryAfterCount++
		}
	}
	for o, ls := range byOutcome {
		rep.Latency[o] = summarize(ls)
	}
	rep.Histogram = histogram(all)
	if rep.DurationSeconds > 0 {
		rep.GoodputRPS = float64(rep.Outcomes[OK]) / rep.DurationSeconds
	}
	return rep, nil
}

// fire issues one request and classifies the result.
func fire(ctx context.Context, client *http.Client, target string, body []byte, timeout time.Duration) result {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	started := time.Now()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return result{outcome: Errored, latency: time.Since(started)}
	}
	req.Header.Set("Content-Type", "text/csv")
	// Propagate the full budget; the server (and any fleet forward)
	// deducts from it and sheds what cannot finish in time.
	req.Header.Set(fleet.DeadlineHeader, strconv.FormatInt(timeout.Milliseconds(), 10))
	resp, err := client.Do(req)
	if err != nil {
		if errors.Is(rctx.Err(), context.DeadlineExceeded) {
			return result{outcome: Timeout, latency: time.Since(started)}
		}
		return result{outcome: Errored, latency: time.Since(started)}
	}
	defer resp.Body.Close()
	_, readErr := io.Copy(io.Discard, resp.Body)
	lat := time.Since(started)
	switch {
	case readErr != nil:
		if errors.Is(rctx.Err(), context.DeadlineExceeded) {
			return result{outcome: Timeout, latency: lat}
		}
		return result{outcome: Errored, latency: lat}
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return result{outcome: OK, latency: lat}
	case resp.StatusCode == http.StatusServiceUnavailable:
		ra, _ := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
		return result{outcome: Shed, latency: lat, retryAfter: ra}
	case resp.StatusCode == http.StatusGatewayTimeout:
		return result{outcome: Expired, latency: lat}
	default:
		return result{outcome: Errored, latency: lat}
	}
}

// summarize computes nearest-rank percentiles over one outcome's
// latencies.
func summarize(ls []time.Duration) LatencySummary {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rank := func(q float64) time.Duration {
		idx := int(q*float64(len(ls))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		return ls[idx]
	}
	return LatencySummary{
		Count: len(ls),
		MinMs: ms(ls[0]),
		P50Ms: ms(rank(0.50)),
		P90Ms: ms(rank(0.90)),
		P99Ms: ms(rank(0.99)),
		MaxMs: ms(ls[len(ls)-1]),
	}
}

// histogram buckets latencies into powers of two milliseconds (1, 2,
// 4, ... capped at 65536ms), dropping empty leading/trailing cells.
func histogram(ls []time.Duration) []Bucket {
	if len(ls) == 0 {
		return nil
	}
	const cells = 17 // 1ms .. 65536ms
	counts := make([]int, cells)
	for _, d := range ls {
		ms := d.Milliseconds()
		cell := 0
		for cell < cells-1 && int64(1)<<cell < ms {
			cell++
		}
		counts[cell]++
	}
	var out []Bucket
	for i, c := range counts {
		if c > 0 {
			out = append(out, Bucket{LeMs: float64(int64(1) << i), Count: c})
		}
	}
	return out
}

// Bodies builds a working set of n distinct CSV edge-list bodies of
// roughly m edges each (Barabási–Albert topology with the paper
// generators), deterministically from seed — the reusable corpus for
// load runs and the overload e2e.
func Bodies(n, m int, seed int64) ([][]byte, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("loadgen: need n >= 1 bodies of m >= 1 edges (got %d, %d)", n, m)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		// Mean degree 2 gives ~2 edges per node in BA; size the node
		// count so the edge count lands near m.
		nodes := m/2 + 2
		g := gen.BarabasiAlbert(rng, nodes, 2)
		var buf bytes.Buffer
		if err := graph.WriteGraph(&buf, g, graph.WriteOptions{Format: "csv"}); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}
