// Package loadgen is an open-loop HTTP load generator for driving a
// backboned daemon into (and past) saturation: arrivals are scheduled
// on a wall clock at a configured — optionally ramping — rate,
// independent of how fast the server answers, so queueing delay and
// shedding behavior are actually observable instead of being hidden by
// closed-loop back-pressure. It is the measurement engine behind
// cmd/backbonegen and the overload e2e suite.
//
// Each request POSTs one body from a fixed working set (selected
// uniformly or zipfian, so cache-hit skew is reproducible), carries
// the daemon's deadline-propagation header (X-Backbone-Deadline) and
// classifies the result: 2xx is goodput, 503 a shed, 504 an expired
// budget, client-side expiry a timeout, everything else an error.
// Latencies are recorded per outcome and summarized as percentiles
// plus a log-scale histogram.
//
// UpdateFraction > 0 switches the run to a mixed incremental
// workload: setup opens one live session per body (POST /session),
// and each arrival then either applies a single-edge update batch to
// its body's session or reads the session's backbone — exercising the
// daemon's delta/re-scoring path under the same open-loop pressure.
// The report breaks outcomes and latencies down per operation.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Outcome classifies one completed request.
type Outcome string

const (
	// OK is a 2xx response with a fully read body: goodput.
	OK Outcome = "ok"
	// Shed is a 503 — the admission path refused the request.
	Shed Outcome = "shed"
	// Expired is a 504 — the budget ran out server-side.
	Expired Outcome = "expired"
	// Timeout is a client-side deadline expiry (no response in budget).
	Timeout Outcome = "timeout"
	// Errored is any other status or transport failure.
	Errored Outcome = "error"
)

// Config tunes one load run.
type Config struct {
	// URL is the daemon base URL (http://host:port); Path the endpoint
	// (default /backbone); Query the raw query string without the
	// leading "?" (e.g. "method=nc&delta=1.0").
	URL   string
	Path  string
	Query string
	// RPS is the arrival rate at t=0; RampTo, when > 0, is the rate at
	// t=Duration with linear interpolation between (an RPS ramp). The
	// schedule is open-loop: arrivals never wait for responses.
	RPS      float64
	RampTo   float64
	Duration time.Duration
	// Timeout is the per-request budget; it is also propagated as the
	// X-Backbone-Deadline header so the server sheds work it cannot
	// finish in time. Default 5s.
	Timeout time.Duration
	// Bodies is the request working set; one is POSTed per arrival.
	Bodies [][]byte
	// Zipf > 1 selects bodies zipfian with that exponent (body 0
	// hottest); otherwise selection is uniform.
	Zipf float64
	// Seed fixes the body-selection RNG.
	Seed int64
	// MaxInFlight caps concurrent requests client-side (default 512);
	// arrivals past the cap are counted as Dropped, not sent — the
	// open-loop signal that the server has fallen behind the offered
	// rate by more than the cap.
	MaxInFlight int
	// UpdateFraction in [0,1) switches the run to a mixed incremental
	// workload: setup opens one session per body, then that share of
	// arrivals POST a single-edge update to the selected body's
	// session and the rest GET its backbone (or score table, when
	// Path is /score). 0 keeps the stateless POST workload. Bodies
	// must be CSV for update-edge synthesis.
	UpdateFraction float64
	// Client overrides the HTTP client (tests); default is a dedicated
	// client with a generous connection pool.
	Client *http.Client
}

// LatencySummary describes one outcome's latency distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	MinMs float64 `json:"min_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Bucket is one log-scale histogram cell over all completed requests.
type Bucket struct {
	LeMs  float64 `json:"le_ms"` // upper bound, inclusive
	Count int     `json:"count"`
}

// Report is the result of one load run.
type Report struct {
	DurationSeconds float64 `json:"duration_seconds"`
	// Offered counts scheduled arrivals; Sent the ones actually issued;
	// Dropped the arrivals refused client-side at MaxInFlight.
	Offered int `json:"offered"`
	Sent    int `json:"sent"`
	Dropped int `json:"dropped"`
	// Outcomes maps outcome name to count over sent requests.
	Outcomes map[Outcome]int `json:"outcomes"`
	// GoodputRPS is OK responses per second of run duration.
	GoodputRPS float64 `json:"goodput_rps"`
	// RetryAfterSeconds sums the Retry-After hints on shed responses
	// (RetryAfterCount the responses carrying one) — the mean hint is
	// their ratio.
	RetryAfterSeconds float64 `json:"retry_after_seconds"`
	RetryAfterCount   int     `json:"retry_after_count"`
	// Latency summarizes per outcome; Histogram spans all completed
	// requests whatever their outcome.
	Latency   map[Outcome]LatencySummary `json:"latency"`
	Histogram []Bucket                   `json:"histogram"`
	// Sessions counts the incremental sessions a mixed run opened
	// during setup; Ops and OpLatency break sent requests down per
	// operation ("update" / "read"). All empty for stateless runs.
	Sessions  int                                   `json:"sessions,omitempty"`
	Ops       map[string]map[Outcome]int            `json:"ops,omitempty"`
	OpLatency map[string]map[Outcome]LatencySummary `json:"op_latency,omitempty"`
}

// result is one completed request as recorded by workers.
type result struct {
	outcome    Outcome
	latency    time.Duration
	retryAfter float64
	op         string
}

// arrival describes one scheduled request; the scheduler builds it
// (keeping all RNG use single-threaded) and a worker goroutine fires
// it.
type arrival struct {
	method      string
	target      string
	contentType string
	body        []byte
	op          string
}

// Run drives one open-loop load run and blocks until every in-flight
// request has completed (or ctx is canceled, which stops scheduling
// and abandons the tail).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be > 0 (got %g)", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be > 0 (got %v)", cfg.Duration)
	}
	if len(cfg.Bodies) == 0 {
		return nil, fmt.Errorf("loadgen: need at least one body")
	}
	if cfg.Path == "" {
		cfg.Path = "/backbone"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.UpdateFraction < 0 || cfg.UpdateFraction >= 1 {
		return nil, fmt.Errorf("loadgen: UpdateFraction must be in [0,1) (got %g)", cfg.UpdateFraction)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		}}
	}
	target := cfg.URL + cfg.Path
	if cfg.Query != "" {
		target += "?" + cfg.Query
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int { return rng.Intn(len(cfg.Bodies)) }
	if cfg.Zipf > 1 && len(cfg.Bodies) > 1 {
		z := rand.NewZipf(rng, cfg.Zipf, 1, uint64(len(cfg.Bodies)-1))
		pick = func() int { return int(z.Uint64()) }
	}

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	inFlight := make(chan struct{}, cfg.MaxInFlight)
	rep := &Report{Outcomes: map[Outcome]int{}, Latency: map[Outcome]LatencySummary{}}

	// Mixed workload: open one live session per body before the clock
	// starts, so session-create cost never pollutes the measured run.
	var sessions []sessionTarget
	if cfg.UpdateFraction > 0 {
		var err error
		sessions, err = openSessions(ctx, client, cfg, rng)
		if err != nil {
			return nil, err
		}
		rep.Sessions = len(sessions)
		defer closeSessions(client, cfg.URL, sessions)
	}
	readPath := "backbone"
	if cfg.Path == "/score" {
		readPath = "score"
	}
	nextArrival := func() arrival {
		idx := pick()
		if sessions == nil {
			return arrival{method: http.MethodPost, target: target,
				contentType: "text/csv", body: cfg.Bodies[idx], op: "post"}
		}
		sess := sessions[idx]
		if rng.Float64() < cfg.UpdateFraction {
			return arrival{method: http.MethodPost,
				target:      cfg.URL + "/session/" + sess.id + "/update",
				contentType: "application/json",
				body:        randomUpdate(rng, sess.labels), op: "update"}
		}
		t := cfg.URL + "/session/" + sess.id + "/" + readPath
		if cfg.Query != "" {
			t += "?" + cfg.Query
		}
		return arrival{method: http.MethodGet, target: t, op: "read"}
	}

	start := time.Now()
	elapsed := time.Duration(0)
	// Open-loop schedule: the next arrival is 1/r(t) after the current
	// one, r interpolating linearly from RPS to RampTo. Sleeping to the
	// absolute schedule (not relative) keeps the offered rate honest
	// even when this loop itself is briefly descheduled.
	for elapsed < cfg.Duration {
		frac := float64(elapsed) / float64(cfg.Duration)
		rate := cfg.RPS
		if cfg.RampTo > 0 {
			rate = cfg.RPS + (cfg.RampTo-cfg.RPS)*frac
		}
		rep.Offered++
		a := nextArrival()
		select {
		case inFlight <- struct{}{}:
			rep.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := fire(ctx, client, a, cfg.Timeout)
				<-inFlight
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}()
		default:
			rep.Dropped++
		}

		elapsed += time.Duration(float64(time.Second) / rate)
		if d := start.Add(elapsed).Sub(time.Now()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
	}
	wg.Wait()
	rep.DurationSeconds = time.Since(start).Seconds()

	byOutcome := map[Outcome][]time.Duration{}
	byOp := map[string]map[Outcome][]time.Duration{}
	var all []time.Duration
	for _, r := range results {
		rep.Outcomes[r.outcome]++
		byOutcome[r.outcome] = append(byOutcome[r.outcome], r.latency)
		all = append(all, r.latency)
		if r.retryAfter > 0 {
			rep.RetryAfterSeconds += r.retryAfter
			rep.RetryAfterCount++
		}
		if sessions != nil {
			if byOp[r.op] == nil {
				byOp[r.op] = map[Outcome][]time.Duration{}
			}
			byOp[r.op][r.outcome] = append(byOp[r.op][r.outcome], r.latency)
		}
	}
	for o, ls := range byOutcome {
		rep.Latency[o] = summarize(ls)
	}
	if len(byOp) > 0 {
		rep.Ops = map[string]map[Outcome]int{}
		rep.OpLatency = map[string]map[Outcome]LatencySummary{}
		for op, outcomes := range byOp {
			rep.Ops[op] = map[Outcome]int{}
			rep.OpLatency[op] = map[Outcome]LatencySummary{}
			for o, ls := range outcomes {
				rep.Ops[op][o] = len(ls)
				rep.OpLatency[op][o] = summarize(ls)
			}
		}
	}
	rep.Histogram = histogram(all)
	if rep.DurationSeconds > 0 {
		rep.GoodputRPS = float64(rep.Outcomes[OK]) / rep.DurationSeconds
	}
	return rep, nil
}

// fire issues one request and classifies the result.
func fire(ctx context.Context, client *http.Client, a arrival, timeout time.Duration) result {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	started := time.Now()
	var rd io.Reader
	if a.body != nil {
		rd = bytes.NewReader(a.body)
	}
	req, err := http.NewRequestWithContext(rctx, a.method, a.target, rd)
	if err != nil {
		return result{outcome: Errored, latency: time.Since(started), op: a.op}
	}
	if a.contentType != "" {
		req.Header.Set("Content-Type", a.contentType)
	}
	// Propagate the full budget; the server (and any fleet forward)
	// deducts from it and sheds what cannot finish in time.
	req.Header.Set(fleet.DeadlineHeader, strconv.FormatInt(timeout.Milliseconds(), 10))
	resp, err := client.Do(req)
	if err != nil {
		if errors.Is(rctx.Err(), context.DeadlineExceeded) {
			return result{outcome: Timeout, latency: time.Since(started), op: a.op}
		}
		return result{outcome: Errored, latency: time.Since(started), op: a.op}
	}
	defer resp.Body.Close()
	_, readErr := io.Copy(io.Discard, resp.Body)
	lat := time.Since(started)
	r := result{latency: lat, op: a.op}
	switch {
	case readErr != nil:
		r.outcome = Errored
		if errors.Is(rctx.Err(), context.DeadlineExceeded) {
			r.outcome = Timeout
		}
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		r.outcome = OK
	case resp.StatusCode == http.StatusServiceUnavailable:
		r.outcome = Shed
		r.retryAfter, _ = strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	case resp.StatusCode == http.StatusGatewayTimeout:
		r.outcome = Expired
	default:
		r.outcome = Errored
	}
	return r
}

// sessionTarget is one live incremental session opened during setup
// for a mixed read/update run.
type sessionTarget struct {
	id     string
	labels []string
}

// openSessions opens one session per body. Creates are not part of
// the measured run, so they get a generous fixed budget rather than
// cfg.Timeout (a cold parse of a large body may exceed the per-op
// budget the run itself uses).
func openSessions(ctx context.Context, client *http.Client, cfg Config, rng *rand.Rand) ([]sessionTarget, error) {
	out := make([]sessionTarget, 0, len(cfg.Bodies))
	for i, body := range cfg.Bodies {
		labels := csvLabels(body)
		if len(labels) < 2 {
			return nil, fmt.Errorf("loadgen: body %d: need >= 2 node labels for updates (is it CSV?)", i)
		}
		rctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.URL+"/session", bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", "text/csv")
		resp, err := client.Do(req)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("loadgen: create session for body %d: %w", i, err)
		}
		var created struct {
			Session string `json:"session"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&created)
		resp.Body.Close()
		cancel()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("loadgen: create session for body %d: status %d", i, resp.StatusCode)
		}
		if derr != nil || created.Session == "" {
			return nil, fmt.Errorf("loadgen: create session for body %d: bad response (%v)", i, derr)
		}
		out = append(out, sessionTarget{id: created.Session, labels: labels})
	}
	return out, nil
}

// closeSessions best-effort DELETEs the run's sessions so repeated
// runs do not pile residents up to the daemon's -max-sessions bound.
func closeSessions(client *http.Client, base string, sessions []sessionTarget) {
	for _, s := range sessions {
		req, err := http.NewRequest(http.MethodDelete, base+"/session/"+s.id, nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
			resp.Body.Close()
		}
	}
}

// randomUpdate synthesizes a single-edge update batch: mostly upserts
// with a fresh weight, occasionally a delete (weight 0 — a no-op when
// the pair is absent, which the daemon accepts).
func randomUpdate(rng *rand.Rand, labels []string) []byte {
	u := rng.Intn(len(labels))
	v := rng.Intn(len(labels))
	for v == u {
		v = rng.Intn(len(labels))
	}
	w := 0.0
	if rng.Intn(8) != 0 {
		w = float64(rng.Intn(50) + 1)
	}
	raw, _ := json.Marshal(map[string]any{"updates": []map[string]any{
		{"src": labels[u], "dst": labels[v], "weight": w},
	}})
	return raw
}

// csvLabels scans a CSV edge-list body for its node labels in
// first-appearance order.
func csvLabels(body []byte) []string {
	seen := map[string]bool{}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		f := strings.SplitN(line, ",", 3)
		if len(f) < 3 || f[0] == "src" || f[0] == "" {
			continue
		}
		for _, l := range f[:2] {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// summarize computes nearest-rank percentiles over one outcome's
// latencies.
func summarize(ls []time.Duration) LatencySummary {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rank := func(q float64) time.Duration {
		idx := int(q*float64(len(ls))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		return ls[idx]
	}
	return LatencySummary{
		Count: len(ls),
		MinMs: ms(ls[0]),
		P50Ms: ms(rank(0.50)),
		P90Ms: ms(rank(0.90)),
		P99Ms: ms(rank(0.99)),
		MaxMs: ms(ls[len(ls)-1]),
	}
}

// histogram buckets latencies into powers of two milliseconds (1, 2,
// 4, ... capped at 65536ms), dropping empty leading/trailing cells.
func histogram(ls []time.Duration) []Bucket {
	if len(ls) == 0 {
		return nil
	}
	const cells = 17 // 1ms .. 65536ms
	counts := make([]int, cells)
	for _, d := range ls {
		ms := d.Milliseconds()
		cell := 0
		for cell < cells-1 && int64(1)<<cell < ms {
			cell++
		}
		counts[cell]++
	}
	var out []Bucket
	for i, c := range counts {
		if c > 0 {
			out = append(out, Bucket{LeMs: float64(int64(1) << i), Count: c})
		}
	}
	return out
}

// Bodies builds a working set of n distinct CSV edge-list bodies of
// roughly m edges each (Barabási–Albert topology with the paper
// generators), deterministically from seed — the reusable corpus for
// load runs and the overload e2e.
func Bodies(n, m int, seed int64) ([][]byte, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("loadgen: need n >= 1 bodies of m >= 1 edges (got %d, %d)", n, m)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		// Mean degree 2 gives ~2 edges per node in BA; size the node
		// count so the edge count lands near m.
		nodes := m/2 + 2
		g := gen.BarabasiAlbert(rng, nodes, 2)
		var buf bytes.Buffer
		if err := graph.WriteGraph(&buf, g, graph.WriteOptions{Format: "csv"}); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}
