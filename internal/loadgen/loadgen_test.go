package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/graph"
)

func TestBodiesDeterministicAndParseable(t *testing.T) {
	a, err := Bodies(3, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bodies(3, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("body %d not deterministic", i)
		}
	}
	if string(a[0]) == string(a[1]) {
		t.Fatal("bodies 0 and 1 identical, want distinct networks")
	}
	for i, body := range a {
		g, err := graph.ReadGraph(bytes.NewReader(body), graph.ReadOptions{})
		if err != nil {
			t.Fatalf("body %d unparseable: %v", i, err)
		}
		if e := g.NumEdges(); e < 32 || e > 128 {
			t.Fatalf("body %d has %d edges, want near 64", i, e)
		}
	}
}

func TestRunClassifiesOutcomesAndComputesGoodput(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(fleet.DeadlineHeader) == "" {
			t.Error("request missing deadline header")
		}
		switch n.Add(1) % 4 {
		case 0:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 1:
			w.WriteHeader(http.StatusGatewayTimeout)
		case 2:
			w.WriteHeader(http.StatusBadRequest)
		default:
			w.Write([]byte("ok"))
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:      ts.URL,
		RPS:      200,
		Duration: 300 * time.Millisecond,
		Timeout:  2 * time.Second,
		Bodies:   [][]byte{[]byte("a,b,1\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered < 40 || rep.Sent != rep.Offered || rep.Dropped != 0 {
		t.Fatalf("offered/sent/dropped = %d/%d/%d", rep.Offered, rep.Sent, rep.Dropped)
	}
	for _, o := range []Outcome{OK, Shed, Expired, Errored} {
		if rep.Outcomes[o] == 0 {
			t.Errorf("outcome %s never observed: %v", o, rep.Outcomes)
		}
	}
	if rep.Outcomes[Timeout] != 0 {
		t.Errorf("spurious timeouts: %v", rep.Outcomes)
	}
	if rep.RetryAfterCount != rep.Outcomes[Shed] || rep.RetryAfterSeconds != 2*float64(rep.RetryAfterCount) {
		t.Errorf("retry-after accounting: %v/%v for %d sheds",
			rep.RetryAfterCount, rep.RetryAfterSeconds, rep.Outcomes[Shed])
	}
	if rep.GoodputRPS <= 0 {
		t.Errorf("goodput = %v", rep.GoodputRPS)
	}
	if s := rep.Latency[OK]; s.Count != rep.Outcomes[OK] || s.P50Ms < 0 || s.MaxMs < s.MinMs {
		t.Errorf("latency[ok] = %+v", s)
	}
	total := 0
	for _, b := range rep.Histogram {
		total += b.Count
	}
	if total != rep.Sent {
		t.Errorf("histogram covers %d of %d sent", total, rep.Sent)
	}
}

func TestRunClientTimeoutIsOutcome(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	// LIFO: unblock the handlers before ts.Close() waits on them.
	defer ts.Close()
	defer close(release)

	rep, err := Run(context.Background(), Config{
		URL:      ts.URL,
		RPS:      50,
		Duration: 100 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
		Bodies:   [][]byte{[]byte("a,b,1\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[Timeout] == 0 || rep.Outcomes[OK] != 0 {
		t.Fatalf("outcomes = %v, want only timeouts", rep.Outcomes)
	}
}

func TestRunDropsArrivalsPastMaxInFlight(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()

	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(context.Background(), Config{
			URL:         ts.URL,
			RPS:         500,
			Duration:    200 * time.Millisecond,
			Timeout:     5 * time.Second,
			MaxInFlight: 4,
			Bodies:      [][]byte{[]byte("a,b,1\n")},
		})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	time.Sleep(250 * time.Millisecond)
	close(release)
	rep := <-done
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Sent > 8 {
		t.Errorf("sent %d with MaxInFlight 4, want <= 8", rep.Sent)
	}
	if rep.Dropped == 0 || rep.Offered != rep.Sent+rep.Dropped {
		t.Errorf("offered/sent/dropped = %d/%d/%d", rep.Offered, rep.Sent, rep.Dropped)
	}
}

func TestRunZipfSkewsBodySelection(t *testing.T) {
	bodies, err := Bodies(8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	var hot atomic.Int64
	var total atomic.Int64
	hotLen := int64(len(bodies[0]))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		if r.ContentLength == hotLen {
			hot.Add(1)
		}
	}))
	defer ts.Close()

	if _, err := Run(context.Background(), Config{
		URL:      ts.URL,
		RPS:      400,
		Duration: 250 * time.Millisecond,
		Timeout:  time.Second,
		Bodies:   bodies,
		Zipf:     1.5,
	}); err != nil {
		t.Fatal(err)
	}
	if tot := total.Load(); tot == 0 || float64(hot.Load())/float64(tot) < 0.3 {
		t.Errorf("hottest body got %d of %d requests, want zipf-skewed majority share", hot.Load(), total.Load())
	}
}

func TestRunValidatesConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero rps":          {Duration: time.Second, Bodies: [][]byte{[]byte("x")}},
		"zero duration":     {RPS: 1, Bodies: [][]byte{[]byte("x")}},
		"no bodies":         {RPS: 1, Duration: time.Second},
		"bad frac negative": {RPS: 1, Duration: time.Second, Bodies: [][]byte{[]byte("x")}, UpdateFraction: -0.1},
		"bad frac one":      {RPS: 1, Duration: time.Second, Bodies: [][]byte{[]byte("x")}, UpdateFraction: 1},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestRunMixedUpdateWorkload: UpdateFraction > 0 opens one session per
// body during setup, splits arrivals into session updates and session
// reads near the configured ratio, reports per-op outcomes, and closes
// its sessions afterwards.
func TestRunMixedUpdateWorkload(t *testing.T) {
	bodies, err := Bodies(3, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	var creates, updates, reads, deletes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/session":
			id := creates.Add(1)
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"session":"s%d","nodes":1,"edges":1}`, id)
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/update"):
			var body struct {
				Updates []struct{ Src, Dst string } `json:"updates"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Updates) == 0 {
				t.Errorf("malformed update body: %v", err)
			}
			updates.Add(1)
			w.Write([]byte(`{"applied":1}`))
		case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/backbone"):
			if r.URL.RawQuery != "method=nc" {
				t.Errorf("read query = %q", r.URL.RawQuery)
			}
			reads.Add(1)
			w.Write([]byte("src,dst,weight\n"))
		case r.Method == http.MethodDelete:
			deletes.Add(1)
			w.WriteHeader(http.StatusNoContent)
		default:
			t.Errorf("unexpected %s %s in mixed run", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:            ts.URL,
		Query:          "method=nc",
		RPS:            400,
		Duration:       300 * time.Millisecond,
		Timeout:        2 * time.Second,
		Bodies:         bodies,
		UpdateFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 || creates.Load() != 3 {
		t.Fatalf("sessions = %d (creates %d), want 3", rep.Sessions, creates.Load())
	}
	if deletes.Load() != 3 {
		t.Errorf("run closed %d of 3 sessions", deletes.Load())
	}
	u, r := int(updates.Load()), int(reads.Load())
	if u == 0 || r == 0 || u+r != rep.Sent {
		t.Fatalf("updates/reads = %d/%d of %d sent", u, r, rep.Sent)
	}
	frac := float64(u) / float64(u+r)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("update fraction %.2f, want near 0.3", frac)
	}
	if rep.Ops["update"][OK] != u || rep.Ops["read"][OK] != r {
		t.Errorf("per-op report %v does not match served %d/%d", rep.Ops, u, r)
	}
	if s := rep.OpLatency["read"][OK]; s.Count != r || s.MaxMs < s.MinMs {
		t.Errorf("op latency[read] = %+v", s)
	}
}
