//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package binfmt

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("binfmt: mmap not supported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) { return nil, errNoMmap }

func munmap(b []byte) error { return nil }
