package binfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/graph"
)

// File is an opened .bbg graph. When the platform supports it (and the
// host layout allows zero-copy aliasing) the graph's CSR arrays alias
// a read-only memory mapping of the file: opening is O(validation),
// the heap holds no copy of the arrays, and concurrent processes
// mapping the same file share its pages through the OS page cache.
// Otherwise Open transparently falls back to the copying reader and
// the File owns an ordinary heap-backed graph.
type File struct {
	g        *graph.Graph
	data     []byte // the mapping; nil on the copying fallback
	mapped   bool
	sections int
}

// Graph returns the loaded graph. For mapped files it aliases the
// mapping: neither the graph nor anything derived from it (subgraphs
// share label storage) may be used after Close.
func (f *File) Graph() *graph.Graph { return f.g }

// Mapped reports whether the graph aliases an mmap of the file rather
// than a heap copy.
func (f *File) Mapped() bool { return f.mapped }

// Sections returns the number of file sections backing the graph.
func (f *File) Sections() int { return f.sections }

// MappedBytes returns the size of the live mapping (0 when copied).
func (f *File) MappedBytes() int64 { return int64(len(f.data)) }

// Close releases the mapping, if any. The graph must not be used
// afterwards; long-lived servers simply never close (the kernel
// reclaims clean mapped pages under memory pressure on its own).
func (f *File) Close() error {
	data := f.data
	f.data, f.g = nil, nil
	if data == nil {
		return nil
	}
	return munmap(data)
}

// Open loads a .bbg file, preferring the zero-copy mmap path and
// falling back to the copying reader when the platform cannot map
// (unsupported OS, filesystem refusal, big-endian host). Corrupt
// content is never "fallen back" past: both paths verify the same
// checksums and CSR invariants and return an error wrapping
// ErrCorrupt/ErrUnsupported.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("%s: %w: empty file", path, ErrCorrupt)
	}
	if mmapSupported && zeroCopy && uint64(size) <= math.MaxInt {
		data, merr := mmapFile(f, int(size))
		if merr == nil {
			g, nsec, lerr := loadMapped(data)
			if lerr != nil {
				munmap(data)
				return nil, fmt.Errorf("%s: %w", path, lerr)
			}
			return &File{g: g, data: data, mapped: true, sections: nsec}, nil
		}
		// mmap syscall refused (e.g. a filesystem without mapping
		// support): the copying path below reads the same bytes.
	}
	g, err := read(bufio.NewReaderSize(f, 1<<20), size)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{g: g, sections: len(expectedLayout(headerOf(g)))}, nil
}

// headerOf reconstructs the header a graph would serialize with — used
// only to report a section count for copy-loaded files.
func headerOf(g *graph.Graph) header {
	labeled := false
	for _, l := range g.Labels() {
		if l != "" {
			labeled = true
			break
		}
	}
	return header{directed: g.Directed(), labeled: labeled, numNodes: g.NumNodes(), numEdges: g.NumEdges()}
}

// loadMapped validates a complete mapped file and assembles a Graph
// whose slices alias the mapping directly. The validation ladder:
// header sanity and meta checksum, canonical section table
// (checkTable pins every offset and length, so all later slicing is
// in-bounds by construction), per-section CRC-32C, alignment of every
// typed view, then graph.FromCSR re-proving the CSR invariants. After
// it succeeds the graph is structurally indistinguishable from a
// Builder-built one.
func loadMapped(data []byte) (*graph.Graph, int, error) {
	if len(data) < headerSize+4 {
		return nil, 0, corruptf("file of %d bytes is shorter than the header", len(data))
	}
	h, count, err := parseHeader(data[:headerSize])
	if err != nil {
		return nil, 0, err
	}
	ml := metaLen(count)
	if len(data) < ml {
		return nil, 0, corruptf("file of %d bytes truncates the %d-byte section table", len(data), ml)
	}
	if got, want := crc32.Checksum(data[:ml-4], castagnoli), binary.LittleEndian.Uint32(data[ml-4:]); got != want {
		return nil, 0, corruptf("header checksum mismatch (%08x != %08x)", got, want)
	}
	secs, err := decodeTable(data[headerSize:ml-4], count)
	if err != nil {
		return nil, 0, err
	}
	if err := checkTable(h, secs); err != nil {
		return nil, 0, err
	}
	if want := fileSize(count, secs); uint64(len(data)) != want {
		return nil, 0, corruptf("file is %d bytes, layout implies %d", len(data), want)
	}
	payload := make(map[uint32][]byte, len(secs))
	for _, sec := range secs {
		b := data[sec.off : sec.off+sec.length]
		if got, want := crc32.Checksum(b, castagnoli), binary.LittleEndian.Uint32(data[sec.off+sec.length:]); got != want {
			return nil, 0, corruptf("section %s checksum mismatch (%08x != %08x)", secName(sec.id), got, want)
		}
		if !alignedTo(b, 8) {
			return nil, 0, corruptf("section %s misaligned in mapping", secName(sec.id))
		}
		payload[sec.id] = b
	}
	parts := graph.CSRParts{
		Directed:    h.directed,
		NumNodes:    h.numNodes,
		Edges:       aliasRecords[graph.Edge](payload[secEdges]),
		Arcs:        aliasRecords[graph.Arc](payload[secArcs]),
		OutOff:      aliasRecords[int32](payload[secOutOff]),
		OutStrength: aliasRecords[float64](payload[secOutStrength]),
		Total:       h.total,
	}
	if h.directed {
		parts.InArcs = aliasRecords[graph.Arc](payload[secInArcs])
		parts.InOff = aliasRecords[int32](payload[secInOff])
		parts.InStrength = aliasRecords[float64](payload[secInStrength])
	}
	if h.labeled {
		labels, err := decodeLabels(h.numNodes, aliasRecords[uint64](payload[secLabelOff]), payload[secLabelArena])
		if err != nil {
			return nil, 0, err
		}
		parts.Labels = labels
	}
	g, err := graph.FromCSR(parts)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, len(secs), nil
}
