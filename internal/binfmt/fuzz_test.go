package binfmt_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/binfmt"
	"repro/internal/graph"
)

// FuzzReadBBG hammers the stream reader with mutated binary input.
// The invariant under fuzzing: Read either returns a typed error
// (ErrCorrupt/ErrUnsupported) or a graph whose every access path —
// adjacency, weights, labels, lazy index, subgraph extraction — is
// memory-safe. Seeds cover each layout variant so mutations reach
// every section decoder.
func FuzzReadBBG(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x89BBG\r\n\x1a\n"))
	f.Add(writeBBG(f, randomGraph(f, 1, 8, 20, false)))   // undirected, labeled
	f.Add(writeBBG(f, randomGraph(f, 2, 8, 20, true)))    // directed, labeled
	f.Add(writeBBG(f, unlabeledGraph(f, 3, 8, 20, true))) // directed, unlabeled
	f.Add(writeBBG(f, graph.NewBuilder(false).Build()))   // empty

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := binfmt.Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, binfmt.ErrCorrupt) && !errors.Is(err, binfmt.ErrUnsupported) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Accepted input: the graph must be fully traversable.
		n := g.NumNodes()
		var sum float64
		for u := 0; u < n; u++ {
			for _, a := range g.Out(u) {
				w, ok := g.Weight(u, int(a.To))
				if !ok {
					t.Fatalf("arc %d->%d not found by Weight", u, a.To)
				}
				sum += w
			}
			for _, a := range g.In(u) {
				_ = g.Edge(int(a.EdgeID))
			}
			if l := g.Label(u); l != "" {
				_ = g.NodeID(l)
			}
		}
		_ = sum
		if m := g.NumEdges(); m > 0 {
			keep := make([]bool, m)
			for i := 0; i < m; i += 2 {
				keep[i] = true
			}
			_ = g.Subgraph(keep).NumEdges()
		}
		// Round-trip what we accepted: it must re-serialize and load
		// back bit-identical (the format has one canonical encoding).
		re, err := binfmt.Read(bytes.NewReader(writeBBG(t, g)))
		if err != nil {
			t.Fatalf("re-read of accepted graph failed: %v", err)
		}
		if re.NumNodes() != n || re.NumEdges() != g.NumEdges() {
			t.Fatalf("re-read changed shape: %v vs %v", re, g)
		}
	})
}
