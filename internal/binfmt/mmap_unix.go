//go:build linux || darwin || freebsd || netbsd || openbsd

package binfmt

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: mapped pages
// come straight from (and stay in) the OS page cache, so N processes
// serving the same graph file share one physical copy. PROT_READ also
// turns any accidental write through an aliased slice into a fault
// instead of silent file corruption.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
