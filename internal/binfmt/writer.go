package binfmt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// crcWriter forwards writes while tracking the running CRC-32C and
// byte count of the current section.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   uint64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	n, err := cw.w.Write(p)
	cw.n += uint64(n)
	return n, err
}

var zeroPad [align]byte

func writeZeros(w io.Writer, n uint64) error {
	for n > 0 {
		k := min(n, align)
		if _, err := w.Write(zeroPad[:k]); err != nil {
			return err
		}
		n -= k
	}
	return nil
}

// emitSlice streams a typed array: a single zero-copy byte view on
// little-endian hosts, a buffered per-element encode elsewhere.
func emitSlice[T any](cw *crcWriter, s []T, size int, enc func([]byte, T)) error {
	if zeroCopy {
		_, err := cw.Write(sliceBytes(s))
		return err
	}
	buf := make([]byte, 0, 64<<10)
	for _, v := range s {
		if len(buf)+size > cap(buf) {
			if _, err := cw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		buf = buf[:len(buf)+size]
		enc(buf[len(buf)-size:], v)
	}
	_, err := cw.Write(buf)
	return err
}

func encEdge(b []byte, e graph.Edge) {
	binary.LittleEndian.PutUint32(b, uint32(e.Src))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.Dst))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.Weight))
}

func encArc(b []byte, a graph.Arc) {
	binary.LittleEndian.PutUint32(b, uint32(a.To))
	binary.LittleEndian.PutUint32(b[4:], uint32(a.EdgeID))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(a.Weight))
}

func encInt32(b []byte, v int32)     { binary.LittleEndian.PutUint32(b, uint32(v)) }
func encUint64(b []byte, v uint64)   { binary.LittleEndian.PutUint64(b, v) }
func encFloat64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }

// emitArena streams the concatenated label bytes through a reusable
// buffer (labels are short; per-label Write calls would re-CRC tiny
// fragments and defeat the bufio batching).
func emitArena(cw *crcWriter, labels []string, n int) error {
	buf := make([]byte, 0, 64<<10)
	for i := 0; i < n; i++ {
		var l string
		if i < len(labels) {
			l = labels[i]
		}
		if len(buf)+len(l) > cap(buf) && len(buf) > 0 {
			if _, err := cw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		buf = append(buf, l...)
	}
	_, err := cw.Write(buf)
	return err
}

type sectionEmit struct {
	id     uint32
	length uint64
	emit   func(*crcWriter) error
}

// Write serializes g to w in .bbg form. The output is deterministic —
// the same graph always produces the same bytes, so digest-addressed
// stores (backboned -graphdir) stay stable — and is streamed without
// seeking: section offsets are computed up front from the header, and
// each section's checksum trails its payload.
//
//lint:ctxflow-ok sequential buffered serialization of already-built arrays, no scoring work; callers needing cancellation wrap w
func Write(w io.Writer, g *graph.Graph) error {
	view := g.CSRView()
	edges := g.Edges()
	labels := g.Labels()
	n := g.NumNodes()
	m := len(edges)
	outOff := view.OutOff
	if outOff == nil {
		outOff = []int32{0} // zero-value Graph: no nodes, one boundary
	}

	labeled := false
	for _, l := range labels {
		if l != "" {
			labeled = true
			break
		}
	}
	var labOff []uint64
	if labeled {
		labOff = make([]uint64, n+1)
		for i := 0; i < n; i++ {
			labOff[i+1] = labOff[i] + uint64(len(g.Label(i)))
		}
	}

	flags := uint32(0)
	if g.Directed() {
		flags |= flagDirected
	}
	if labeled {
		flags |= flagLabeled
	}

	specs := []sectionEmit{
		{secEdges, uint64(m) * recordSize, func(cw *crcWriter) error {
			return emitSlice(cw, edges, recordSize, encEdge)
		}},
		{secOutOff, uint64(len(outOff)) * offsetSize, func(cw *crcWriter) error {
			return emitSlice(cw, outOff, offsetSize, encInt32)
		}},
		{secArcs, uint64(len(view.Arcs)) * recordSize, func(cw *crcWriter) error {
			return emitSlice(cw, view.Arcs, recordSize, encArc)
		}},
	}
	if g.Directed() {
		specs = append(specs,
			sectionEmit{secInOff, uint64(len(view.InOff)) * offsetSize, func(cw *crcWriter) error {
				return emitSlice(cw, view.InOff, offsetSize, encInt32)
			}},
			sectionEmit{secInArcs, uint64(len(view.InArcs)) * recordSize, func(cw *crcWriter) error {
				return emitSlice(cw, view.InArcs, recordSize, encArc)
			}})
	}
	specs = append(specs, sectionEmit{secOutStrength, uint64(n) * weightSize, func(cw *crcWriter) error {
		return emitSlice(cw, g.OutStrengths(), weightSize, encFloat64)
	}})
	if g.Directed() {
		specs = append(specs, sectionEmit{secInStrength, uint64(n) * weightSize, func(cw *crcWriter) error {
			return emitSlice(cw, g.InStrengths(), weightSize, encFloat64)
		}})
	}
	if labeled {
		specs = append(specs,
			sectionEmit{secLabelOff, uint64(len(labOff)) * labelOffLen, func(cw *crcWriter) error {
				return emitSlice(cw, labOff, labelOffLen, encUint64)
			}},
			sectionEmit{secLabelArena, labOff[n], func(cw *crcWriter) error {
				return emitArena(cw, labels, n)
			}})
	}

	// Header + section table, CRC'd together.
	meta := make([]byte, metaLen(len(specs)))
	copy(meta, magic)
	binary.LittleEndian.PutUint32(meta[8:], version)
	binary.LittleEndian.PutUint32(meta[12:], flags)
	binary.LittleEndian.PutUint64(meta[16:], uint64(n))
	binary.LittleEndian.PutUint64(meta[24:], uint64(m))
	binary.LittleEndian.PutUint64(meta[32:], math.Float64bits(g.TotalWeight()))
	binary.LittleEndian.PutUint32(meta[48:], uint32(len(specs)))
	offs := make([]uint64, len(specs))
	off := alignUp(uint64(len(meta)))
	for i, sp := range specs {
		e := meta[headerSize+i*entrySize:]
		binary.LittleEndian.PutUint32(e, sp.id)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], sp.length)
		offs[i] = off
		off = alignUp(off + sp.length + 4)
	}
	end := off
	binary.LittleEndian.PutUint32(meta[len(meta)-4:],
		crc32.Checksum(meta[:len(meta)-4], castagnoli))

	bw := bufio.NewWriterSize(w, 256<<10)
	if _, err := bw.Write(meta); err != nil {
		return err
	}
	pos := uint64(len(meta))
	for i, sp := range specs {
		if err := writeZeros(bw, offs[i]-pos); err != nil {
			return err
		}
		cw := crcWriter{w: bw}
		if err := sp.emit(&cw); err != nil {
			return err
		}
		if cw.n != sp.length {
			return fmt.Errorf("binfmt: internal error: section %s emitted %d bytes, declared %d", secName(sp.id), cw.n, sp.length)
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], cw.crc)
		if _, err := bw.Write(crc[:]); err != nil {
			return err
		}
		pos = offs[i] + sp.length + 4
	}
	if err := writeZeros(bw, end-pos); err != nil {
		return err
	}
	return bw.Flush()
}
