package binfmt_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/binfmt"
	"repro/internal/graph"
)

// labelAlphabet exercises the arena with everything the text formats
// struggle with: unicode, commas, quotes, spaces inside labels.
var labelAlphabet = []string{
	"n%d", "node %d", "héllo-%d", "名前%d", "a,b:%d", "\"q\"%d", "🌐%d", "x\t%d",
}

// randomGraph builds a pseudo-random graph: mixed directedness comes
// from the caller, isolates from registering more nodes than the edges
// touch, weights include repeated and extreme values, and duplicate
// AddEdge calls exercise the builder's merge path.
func randomGraph(t testing.TB, seed int64, n, m int, directed bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		style := labelAlphabet[rng.Intn(len(labelAlphabet))]
		b.AddNode(fmt.Sprintf(style, i))
	}
	weights := []float64{0.5, 1, 1, 2, 3, 1e-12, 1e12, math.Pi}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		w := weights[rng.Intn(len(weights))]
		if rng.Intn(20) == 0 {
			w = 0 // dropped by AddEdge; must not disturb anything
		}
		b.MustAddEdge(u, v, w)
	}
	return b.Build()
}

// unlabeledGraph builds a graph whose nodes never got labels.
func unlabeledGraph(t testing.TB, seed int64, n, m int, directed bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v, Weight: float64(1 + rng.Intn(9))})
	}
	return graph.FromEdges(directed, n, edges)
}

// mustIdentical asserts a and b are bit-identical graphs: same
// directedness, node/edge/isolate counts, exact edge and strength
// bits, equal CSR arrays, equal labels, and working label lookups.
func mustIdentical(t *testing.T, what string, a, b *graph.Graph) {
	t.Helper()
	if a.Directed() != b.Directed() {
		t.Fatalf("%s: directedness %v != %v", what, a.Directed(), b.Directed())
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.NumIsolates() != b.NumIsolates() {
		t.Fatalf("%s: shape (%d,%d,%d) != (%d,%d,%d)", what,
			a.NumNodes(), a.NumEdges(), a.NumIsolates(), b.NumNodes(), b.NumEdges(), b.NumIsolates())
	}
	if math.Float64bits(a.TotalWeight()) != math.Float64bits(b.TotalWeight()) {
		t.Fatalf("%s: total %v != %v", what, a.TotalWeight(), b.TotalWeight())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i].Src != be[i].Src || ae[i].Dst != be[i].Dst ||
			math.Float64bits(ae[i].Weight) != math.Float64bits(be[i].Weight) {
			t.Fatalf("%s: edge %d: %+v != %+v", what, i, ae[i], be[i])
		}
	}
	av, bv := a.CSRView(), b.CSRView()
	if len(av.Arcs) != len(bv.Arcs) || len(av.OutOff) != len(bv.OutOff) ||
		len(av.InArcs) != len(bv.InArcs) || len(av.InOff) != len(bv.InOff) {
		t.Fatalf("%s: CSR shapes differ", what)
	}
	for i := range av.Arcs {
		if av.Arcs[i] != bv.Arcs[i] {
			t.Fatalf("%s: arc %d: %+v != %+v", what, i, av.Arcs[i], bv.Arcs[i])
		}
	}
	for i := range av.OutOff {
		if av.OutOff[i] != bv.OutOff[i] {
			t.Fatalf("%s: outOff %d: %d != %d", what, i, av.OutOff[i], bv.OutOff[i])
		}
	}
	for u := 0; u < a.NumNodes(); u++ {
		if math.Float64bits(a.OutStrength(u)) != math.Float64bits(b.OutStrength(u)) ||
			math.Float64bits(a.InStrength(u)) != math.Float64bits(b.InStrength(u)) {
			t.Fatalf("%s: strengths of node %d differ", what, u)
		}
		la, lb := a.Label(u), b.Label(u)
		if la != lb {
			t.Fatalf("%s: label of node %d: %q != %q", what, u, la, lb)
		}
		if la != "" && b.NodeID(la) != u && a.NodeID(la) == u {
			t.Fatalf("%s: NodeID(%q) = %d, want %d", what, la, b.NodeID(la), u)
		}
	}
}

func writeBBG(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := binfmt.Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func openTemp(t testing.TB, data []byte) *binfmt.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bbg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := binfmt.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestRoundTripProperty is the PR's core property: for random graphs
// of every shape, the .bbg round trip through BOTH readers must
// reproduce the original graph bit-for-bit — including what the text
// formats cannot carry (isolated nodes, exact strength bits).
func TestRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		directed := seed%2 == 1
		n := 2 + int(seed*7)%40
		m := int(seed * 13 % 200)
		var g *graph.Graph
		if seed%3 == 2 {
			g = unlabeledGraph(t, seed, n, m, directed)
		} else {
			g = randomGraph(t, seed, n, m, directed)
		}
		data := writeBBG(t, g)

		got, err := binfmt.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: Read: %v", seed, err)
		}
		mustIdentical(t, fmt.Sprintf("seed %d copy", seed), g, got)

		f := openTemp(t, data)
		mustIdentical(t, fmt.Sprintf("seed %d mmap", seed), g, f.Graph())
		if !f.Mapped() {
			t.Logf("seed %d: mmap unavailable, copying fallback exercised", seed)
		}

		// The stream reader must also work without a Len() hint.
		got2, err := binfmt.Read(onlyReader{bytes.NewReader(data)})
		if err != nil {
			t.Fatalf("seed %d: Read (unsized): %v", seed, err)
		}
		mustIdentical(t, fmt.Sprintf("seed %d unsized", seed), g, got2)
	}
}

// onlyReader hides every optional interface of the wrapped reader.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// TestAgainstTextRoundTrip pins bbg against the text formats: loading
// the bbg bytes must agree bit-for-bit with re-reading the graph's own
// csv serialization (on everything csv can represent — the text round
// trip drops isolated nodes, so shapes are compared on edges).
func TestAgainstTextRoundTrip(t *testing.T) {
	for seed := int64(1); seed < 6; seed++ {
		g := randomGraph(t, seed, 30, 120, seed%2 == 0)
		var txt bytes.Buffer
		if err := graph.WriteGraph(&txt, g, graph.WriteOptions{Format: "ndjson"}); err != nil {
			t.Fatal(err)
		}
		fromText, err := graph.ReadGraph(bytes.NewReader(txt.Bytes()), graph.ReadOptions{Directed: g.Directed()})
		if err != nil {
			t.Fatal(err)
		}
		fromBin, err := binfmt.Read(bytes.NewReader(writeBBG(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		// The text round trip renumbers nodes by first appearance in
		// the serialized edge list, so compare label-keyed edge sets.
		tset, bset := labelEdgeSet(fromText), labelEdgeSet(fromBin)
		if len(tset) != len(bset) {
			t.Fatalf("seed %d: %d text edges != %d bbg edges", seed, len(tset), len(bset))
		}
		for i := range tset {
			if tset[i] != bset[i] {
				t.Fatalf("seed %d: edge %d differs:\n  text %q\n  bbg  %q", seed, i, tset[i], bset[i])
			}
		}
	}
}

// labelEdgeSet canonicalizes a graph to sorted label-keyed edge
// triples with exact weight bits, independent of node numbering.
func labelEdgeSet(g *graph.Graph) []string {
	out := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		l1, l2 := g.Label(int(e.Src)), g.Label(int(e.Dst))
		if !g.Directed() && l1 > l2 {
			l1, l2 = l2, l1
		}
		out = append(out, fmt.Sprintf("%s\x00%s\x00%016x", l1, l2, math.Float64bits(e.Weight)))
	}
	sort.Strings(out)
	return out
}

// TestWriteDeterministic: digest-addressed stores (backboned
// -graphdir) need the same graph to serialize to the same bytes.
func TestWriteDeterministic(t *testing.T) {
	g := randomGraph(t, 42, 25, 80, true)
	if !bytes.Equal(writeBBG(t, g), writeBBG(t, g)) {
		t.Fatal("two writes of the same graph differ")
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	empty := graph.NewBuilder(false).Build()
	got, err := binfmt.Read(bytes.NewReader(writeBBG(t, empty)))
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty graph round-tripped to %v", got)
	}

	b := graph.NewBuilder(true)
	for i := 0; i < 5; i++ {
		b.AddNode(fmt.Sprintf("iso%d", i))
	}
	isolated := b.Build()
	f := openTemp(t, writeBBG(t, isolated))
	mustIdentical(t, "isolates-only", isolated, f.Graph())
	if f.Graph().NumIsolates() != 5 {
		t.Fatalf("isolates = %d, want 5", f.Graph().NumIsolates())
	}
}

// TestIsolatesSurviveBinary: the binary format's advantage over the
// text formats — node set (and thus coverage denominators) preserved.
func TestIsolatesSurviveBinary(t *testing.T) {
	b := graph.NewBuilder(false)
	for _, l := range []string{"a", "b", "lonely", "c", "alone"} {
		b.AddNode(l)
	}
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 3, 2)
	g := b.Build()
	got, err := binfmt.Read(bytes.NewReader(writeBBG(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumIsolates() != 2 {
		t.Fatalf("isolates = %d, want 2", got.NumIsolates())
	}
	if id := got.NodeID("lonely"); id != 2 {
		t.Fatalf("NodeID(lonely) = %d, want 2", id)
	}
}

// TestMmapLazyIndexAcrossSubgraph: label lookups must work on
// subgraphs extracted from an mmap-loaded graph (the lazy index is
// shared, not rebuilt or lost).
func TestMmapLazyIndexAcrossSubgraph(t *testing.T) {
	g := randomGraph(t, 7, 20, 60, false)
	f := openTemp(t, writeBBG(t, g))
	loaded := f.Graph()
	keep := make([]bool, loaded.NumEdges())
	for i := range keep {
		keep[i] = i%2 == 0
	}
	sub := loaded.Subgraph(keep)
	for u := 0; u < g.NumNodes(); u++ {
		if l := g.Label(u); l != "" && g.NodeID(l) == u {
			if got := sub.NodeID(l); got != u {
				t.Fatalf("subgraph NodeID(%q) = %d, want %d", l, got, u)
			}
		}
	}
}
