package binfmt

import (
	"io"

	"repro/internal/graph"
)

// The bbg format self-registers like the text formats, so everything
// built on the registry — repro.ReadGraph/WriteGraph, both CLIs, the
// daemon's sniffed request bodies, gzip transparency — handles binary
// graphs with no further dispatch code. Sniffing keys on the 8-byte
// magic; its embedded "\n" guarantees the text sniffers (which look at
// the first line) can never claim a bbg stream first.
func init() {
	graph.MustRegisterFormat(&graph.Format{
		Name:  "bbg",
		Exts:  []string{".bbg"},
		Desc:  "binary CSR graph container (magic `\\x89BBG`): little-endian arrays + interned label arena, CRC-32C per section, mmap-loadable; directedness is stored in the file (see `backbone -convert`)",
		Order: 40,
		Read: func(r io.Reader, directed bool) (*graph.Graph, error) {
			// directed is ignored: the file header is authoritative.
			return Read(r)
		},
		Write: Write,
		Sniff: func(prefix []byte) bool {
			return len(prefix) >= len(magic) && string(prefix[:len(magic)]) == magic
		},
	})
}
