package binfmt_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/binfmt"
)

// typedOrNil asserts the malformed-input contract: a reader either
// succeeds or fails with an error wrapping one of the package's typed
// sentinels — never a panic, never an untyped error.
func typedOrNil(t *testing.T, what string, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, binfmt.ErrCorrupt) && !errors.Is(err, binfmt.ErrUnsupported) {
		t.Fatalf("%s: untyped error %v", what, err)
	}
}

// TestTruncations: every proper prefix of a valid file must fail with
// a typed error — except prefixes that only cut the final zero
// padding, which the stream reader (correctly) never needs and must
// then still decode to the bit-identical graph. The mmap loader pins
// the exact padded file size, so it must reject every truncation.
func TestTruncations(t *testing.T) {
	g := randomGraph(t, 3, 12, 40, true)
	data := writeBBG(t, g)
	orig, err := binfmt.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut < len(data); cut += 7 {
		if got, err := binfmt.Read(bytes.NewReader(data[:cut])); err == nil {
			mustIdentical(t, "truncation inside final padding (copy)", orig, got)
		} else {
			typedOrNil(t, "truncated copy read", err)
		}
		// The unsized path takes the chunked-growth branch.
		if got, err := binfmt.Read(onlyReader{bytes.NewReader(data[:cut])}); err == nil {
			mustIdentical(t, "truncation inside final padding (unsized)", orig, got)
		}
		path := filepath.Join(dir, "t.bbg")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := binfmt.Open(path)
		if err == nil {
			f.Close()
			t.Fatalf("mmap loader accepted %d/%d-byte truncation", cut, len(data))
		}
		typedOrNil(t, "truncated mmap open", err)
	}
}

// TestBitFlips flips one bit in every byte of a small valid file. The
// contract: each flip either fails typed, or — when it lands in
// padding or another byte no checksum covers that cannot affect the
// result — loads a graph bit-identical to the original.
func TestBitFlips(t *testing.T) {
	g := randomGraph(t, 5, 8, 24, false)
	data := writeBBG(t, g)
	orig, err := binfmt.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1 << (i % 8)

		got, err := binfmt.Read(bytes.NewReader(mut))
		if err != nil {
			typedOrNil(t, "bit-flipped copy read", err)
		} else {
			mustIdentical(t, "bit flip in uncovered padding (copy)", orig, got)
		}

		path := filepath.Join(dir, "f.bbg")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := binfmt.Open(path)
		if err != nil {
			typedOrNil(t, "bit-flipped mmap open", err)
			continue
		}
		mustIdentical(t, "bit flip in uncovered padding (mmap)", orig, f.Graph())
		f.Close()
	}
}

// TestHostileHeaders: crafted headers that lie about sizes must fail
// typed without huge allocations (the reader bounds every allocation
// by the actual input size).
func TestHostileHeaders(t *testing.T) {
	valid := writeBBG(t, randomGraph(t, 1, 6, 12, false))

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), valid...)
		f(b)
		if _, err := binfmt.Read(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: accepted", name)
		} else {
			typedOrNil(t, name, err)
		}
		// And through the unsized path, where Len() cannot bound it.
		if _, err := binfmt.Read(onlyReader{bytes.NewReader(b)}); err == nil {
			t.Fatalf("%s (unsized): accepted", name)
		}
	}

	mutate("absurd node count", func(b []byte) {
		for i := 16; i < 24; i++ {
			b[i] = 0xff
		}
	})
	mutate("absurd edge count", func(b []byte) {
		for i := 24; i < 32; i++ {
			b[i] = 0x7f
		}
	})
	mutate("future version", func(b []byte) { b[8] = 99 })
	mutate("unknown flags", func(b []byte) { b[12] |= 0x80 })
	mutate("zero magic", func(b []byte) { b[0] = 0 })
	mutate("section count 0", func(b []byte) { b[48] = 0 })
	mutate("section count over max", func(b []byte) { b[48] = 200 })
}

// TestErrorTexts pins the wrapped sentinel so daemon/CLI callers can
// branch with errors.Is.
func TestErrorTexts(t *testing.T) {
	_, err := binfmt.Read(bytes.NewReader([]byte("src,dst,weight\na,b,1\n")))
	if !errors.Is(err, binfmt.ErrCorrupt) {
		t.Fatalf("csv bytes: err = %v, want ErrCorrupt", err)
	}
	if _, err := binfmt.Open(filepath.Join(t.TempDir(), "missing.bbg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.bbg")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := binfmt.Open(empty); !errors.Is(err, binfmt.ErrCorrupt) {
		t.Fatalf("empty file: err = %v, want ErrCorrupt", err)
	}
}

// TestNoSilentPartialGraphs: a file whose strengths section checksum
// is valid but whose CSR arrays are internally inconsistent (crafted,
// not random) must be rejected by the FromCSR validation layer.
func TestCraftedInconsistentCSR(t *testing.T) {
	g := randomGraph(t, 9, 10, 30, false)
	data := writeBBG(t, g)
	if g.NumEdges() < 2 {
		t.Skip("need edges")
	}
	// Parse the section table to find the arcs payload, corrupt one
	// arc's EdgeID, and re-stamp that section's CRC so the corruption
	// is only catchable by structural validation.
	// Section table entry 3 (arcs) lives at 56 + 2*24.
	off := int(le64(data[56+2*24+8:]))
	length := int(le64(data[56+2*24+16:]))
	mut := append([]byte(nil), data...)
	// Arc records are {To u32, EdgeID u32, Weight f64}: point EdgeID 0
	// at a different (valid) edge so every per-field bound still holds.
	mut[off+4] ^= 1
	restamp(mut, off, length)
	if _, err := binfmt.Read(bytes.NewReader(mut)); !errors.Is(err, binfmt.ErrCorrupt) {
		t.Fatalf("inconsistent arc accepted: %v", err)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// restamp recomputes a section's trailing CRC-32C after mutation.
func restamp(data []byte, off, length int) {
	crc := crc32.Checksum(data[off:off+length], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[off+length:], crc)
}
