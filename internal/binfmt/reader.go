package binfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"repro/internal/graph"
)

// src tracks position and (when the caller knows it) remaining input
// size while decoding a stream. A known size lets a truncated or
// size-lying file fail before any allocation; an unknown size falls
// back to chunked growth so a hostile header can never force an
// allocation larger than what the stream actually delivers.
type src struct {
	r   io.Reader
	rem int64 // bytes remaining, or -1 if unknown
	pos uint64
}

func (s *src) full(b []byte) error {
	if s.rem >= 0 && int64(len(b)) > s.rem {
		return corruptf("truncated at offset %d: need %d bytes, %d left", s.pos, len(b), s.rem)
	}
	n, err := io.ReadFull(s.r, b)
	s.pos += uint64(n)
	if s.rem >= 0 {
		s.rem -= int64(n)
	}
	if err != nil {
		return corruptf("truncated at offset %d: %v", s.pos, err)
	}
	return nil
}

// skip consumes inter-section padding. checkTable pins section offsets
// exactly, so gaps are always shorter than one alignment unit.
func (s *src) skip(n uint64) error {
	if n >= align {
		return corruptf("internal: %d-byte gap at offset %d", n, s.pos)
	}
	var pad [align]byte
	return s.full(pad[:n])
}

// section reads one payload of the declared length. With a known
// remaining size the buffer is allocated exactly; otherwise it grows
// in bounded chunks so the allocation never outruns the actual data.
func (s *src) section(length uint64) ([]byte, error) {
	const chunk = 4 << 20
	if s.rem >= 0 {
		if int64(length)+4 > s.rem { // +4: the trailing CRC must exist too
			return nil, corruptf("truncated at offset %d: section of %d bytes, %d left", s.pos, length, s.rem)
		}
		b := make([]byte, length)
		return b, s.full(b)
	}
	var b []byte
	for uint64(len(b)) < length {
		k := min(chunk, length-uint64(len(b)))
		b = slices.Grow(b, int(k))[:uint64(len(b))+k]
		if err := s.full(b[uint64(len(b))-k:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Read decodes a .bbg stream into a Graph, copying every array out of
// the stream (the portable counterpart to the mmap loader in open.go;
// this is what the format registry calls when a .bbg body arrives over
// HTTP or through ReadGraph). Directedness comes from the file's
// header. Every malformed input — truncation, checksum mismatch,
// layout or CSR-invariant violation — returns an error wrapping
// ErrCorrupt (or ErrUnsupported for future versions); no partial
// graph is ever returned.
func Read(r io.Reader) (*graph.Graph, error) {
	rem := int64(-1)
	if l, ok := r.(interface{ Len() int }); ok {
		rem = int64(l.Len())
	}
	return read(r, rem)
}

func read(r io.Reader, rem int64) (*graph.Graph, error) {
	s := &src{r: r, rem: rem}
	head := make([]byte, headerSize)
	if err := s.full(head); err != nil {
		return nil, err
	}
	h, count, err := parseHeader(head)
	if err != nil {
		return nil, err
	}
	meta := append(head, make([]byte, metaLen(count)-headerSize)...)
	if err := s.full(meta[headerSize:]); err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(meta[:len(meta)-4], castagnoli), binary.LittleEndian.Uint32(meta[len(meta)-4:]); got != want {
		return nil, corruptf("header checksum mismatch (%08x != %08x)", got, want)
	}
	secs, err := decodeTable(meta[headerSize:len(meta)-4], count)
	if err != nil {
		return nil, err
	}
	if err := checkTable(h, secs); err != nil {
		return nil, err
	}

	payload := make(map[uint32][]byte, len(secs))
	for _, sec := range secs {
		if err := s.skip(sec.off - s.pos); err != nil {
			return nil, err
		}
		b, err := s.section(sec.length)
		if err != nil {
			return nil, err
		}
		var crc [4]byte
		if err := s.full(crc[:]); err != nil {
			return nil, err
		}
		if got, want := crc32.Checksum(b, castagnoli), binary.LittleEndian.Uint32(crc[:]); got != want {
			return nil, corruptf("section %s checksum mismatch (%08x != %08x)", secName(sec.id), got, want)
		}
		payload[sec.id] = b
	}
	// Trailing padding is not read: streams may carry further data
	// (e.g. a reader handed a larger buffer), and nothing after the
	// last checksum affects the graph.

	parts := graph.CSRParts{
		Directed:    h.directed,
		NumNodes:    h.numNodes,
		Edges:       decodeEdges(payload[secEdges]),
		Arcs:        decodeArcs(payload[secArcs]),
		OutOff:      decodeInt32s(payload[secOutOff]),
		OutStrength: decodeFloat64s(payload[secOutStrength]),
		Total:       h.total,
	}
	if h.directed {
		parts.InArcs = decodeArcs(payload[secInArcs])
		parts.InOff = decodeInt32s(payload[secInOff])
		parts.InStrength = decodeFloat64s(payload[secInStrength])
	}
	if h.labeled {
		labels, err := decodeLabels(h.numNodes, decodeUint64s(payload[secLabelOff]), payload[secLabelArena])
		if err != nil {
			return nil, err
		}
		parts.Labels = labels
	}
	g, err := graph.FromCSR(parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// decodeLabels materializes the per-node label slice from the offsets
// table and arena. Label strings alias the arena rather than copying:
// both callers own their arena exclusively and immutably for the life
// of the graph (the mmap loader's PROT_READ pages, the stream reader's
// freshly read section buffer), so n labels cost one []string
// allocation instead of n string copies.
func decodeLabels(n int, offs []uint64, arena []byte) ([]string, error) {
	if offs[0] != 0 {
		return nil, corruptf("labelOff[0] = %d, want 0", offs[0])
	}
	if offs[n] != uint64(len(arena)) {
		return nil, corruptf("labelOff end %d, arena is %d bytes", offs[n], len(arena))
	}
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		if offs[i+1] < offs[i] {
			return nil, corruptf("labelOff not monotone at node %d", i)
		}
		labels[i] = arenaString(arena[offs[i]:offs[i+1]])
	}
	return labels, nil
}

// The decode* helpers turn a checksummed payload (whose length
// checkTable already pinned to an exact multiple of the record size)
// into a freshly allocated typed slice: one memcpy on little-endian
// hosts, a per-record loop elsewhere.

func decodeEdges(b []byte) []graph.Edge {
	out := make([]graph.Edge, len(b)/recordSize)
	if zeroCopy {
		copy(sliceBytes(out), b)
		return out
	}
	for i := range out {
		r := b[i*recordSize:]
		out[i] = graph.Edge{
			Src:    int32(binary.LittleEndian.Uint32(r)),
			Dst:    int32(binary.LittleEndian.Uint32(r[4:])),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(r[8:])),
		}
	}
	return out
}

func decodeArcs(b []byte) []graph.Arc {
	out := make([]graph.Arc, len(b)/recordSize)
	if zeroCopy {
		copy(sliceBytes(out), b)
		return out
	}
	for i := range out {
		r := b[i*recordSize:]
		out[i] = graph.Arc{
			To:     int32(binary.LittleEndian.Uint32(r)),
			EdgeID: int32(binary.LittleEndian.Uint32(r[4:])),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(r[8:])),
		}
	}
	return out
}

func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/offsetSize)
	if zeroCopy {
		copy(sliceBytes(out), b)
		return out
	}
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*offsetSize:]))
	}
	return out
}

func decodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/weightSize)
	if zeroCopy {
		copy(sliceBytes(out), b)
		return out
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*weightSize:]))
	}
	return out
}

func decodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/labelOffLen)
	if zeroCopy {
		copy(sliceBytes(out), b)
		return out
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*labelOffLen:])
	}
	return out
}
