package binfmt_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/binfmt"
)

// benchCSV renders the same labeled Erdős–Rényi corpus (seed 11,
// m = 1.5·n, "n%d" labels) as the graph package's csv ingest
// benchmarks, so the load-vs-parse comparison in BENCH_baseline.json
// is like for like.
func benchCSV(m int) []byte {
	n := m * 2 / 3
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	buf.Grow(m * 24)
	buf.WriteString("src,dst,weight\n")
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		fmt.Fprintf(&buf, "n%d,n%d,%.6g\n", u, v, 1+rng.Float64()*20)
	}
	return buf.Bytes()
}

type benchCorpus struct {
	g   *repro.Graph
	bbg []byte
}

var (
	benchMu  sync.Mutex
	benchMem = map[int]*benchCorpus{}
)

// corpus parses the m-edge csv corpus once per process and caches its
// graph and binary encoding for every benchmark that needs them.
func corpus(b *testing.B, m int) *benchCorpus {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if c, ok := benchMem[m]; ok {
		return c
	}
	g, err := repro.ReadGraph(bytes.NewReader(benchCSV(m)), repro.WithDirected(false))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := binfmt.Write(&buf, g); err != nil {
		b.Fatal(err)
	}
	c := &benchCorpus{g: g, bbg: buf.Bytes()}
	benchMem[m] = c
	return c
}

// benchLoad measures the full Open path — open, map, checksum and CSR
// re-validation, Close — the daemon's cold-start cost per -graphdir
// graph. Allocation count must stay flat across corpus sizes: the
// arrays alias the mapping, never the heap.
func benchLoad(b *testing.B, m int) {
	c := corpus(b, m)
	path := filepath.Join(b.TempDir(), "bench.bbg")
	if err := os.WriteFile(path, c.bbg, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(c.bbg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := binfmt.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if f.Graph().NumEdges() == 0 {
			b.Fatal("empty graph")
		}
		f.Close()
	}
}

func BenchmarkLoadBBG100k(b *testing.B) { benchLoad(b, 100_000) }
func BenchmarkLoadBBG1M(b *testing.B)   { benchLoad(b, 1_000_000) }

// benchReadCopy measures the portable copying reader on in-memory
// bytes — the path big-endian hosts and mmap-refusing filesystems get.
func benchReadCopy(b *testing.B, m int) {
	c := corpus(b, m)
	b.SetBytes(int64(len(c.bbg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := binfmt.Read(bytes.NewReader(c.bbg))
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkReadBBG100k(b *testing.B) { benchReadCopy(b, 100_000) }
func BenchmarkReadBBG1M(b *testing.B)   { benchReadCopy(b, 1_000_000) }

func BenchmarkWriteBBG1M(b *testing.B) {
	c := corpus(b, 1_000_000)
	b.SetBytes(int64(len(c.bbg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := binfmt.Write(io.Discard, c.g); err != nil {
			b.Fatal(err)
		}
	}
}
