// Package binfmt implements the repository's binary graph container
// (`.bbg`): the CSR arrays a graph.Graph already holds in memory,
// written to disk little-endian with per-section checksums, so that
// loading is an mmap plus validation instead of a parse.
//
// On-disk layout (version 1, all integers little-endian):
//
//	offset  size  field
//	0       8     magic "\x89BBG\r\n\x1a\n"
//	8       4     version (1)
//	12      4     flags: bit0 directed, bit1 labeled
//	16      8     numNodes
//	24      8     numEdges (canonical; undirected edges count once)
//	32      8     total weight (IEEE-754 bits)
//	40      8     reserved (0)
//	48      4     section count
//	52      4     reserved (0)
//	56      24×k  section table: {id u32, reserved u32, offset u64, length u64}
//	…       4     CRC-32C over everything above
//
// Each section's payload starts at the 64-byte-aligned offset recorded
// in the table and is followed immediately by its own CRC-32C, then
// zero padding to the next 64-byte boundary (the file ends padded
// too, so its size is deterministic from the header). The section
// sequence is fixed by the flags — edges, outOff, arcs, [inOff,
// inArcs], outStrength, [inStrength], [labelOff, labelArena] — which
// lets the writer stream without seeking and lets readers reject any
// table that deviates from the canonical layout.
//
// Payloads are the graph's own array representations: Edge and Arc
// records are 16 bytes ({int32, int32, float64}), offsets are the CSR
// int32 arrays, strengths are float64 arrays, and labels are an
// interned byte arena indexed by an (n+1)-entry uint64 prefix-sum
// table. On little-endian hosts (every supported production target)
// the in-memory and on-disk representations are bit-identical, so the
// mmap loader aliases file sections directly as Graph slices and the
// copying reader decodes with memcpy; big-endian hosts transparently
// take a per-record portable path. Directedness is a property of the
// file, not of the read request.
package binfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Typed failure modes. Every malformed input surfaces as ErrCorrupt
// (wrapped with detail); files written by a future incompatible
// version surface as ErrUnsupported.
var (
	ErrCorrupt     = errors.New("binfmt: corrupt graph file")
	ErrUnsupported = errors.New("binfmt: unsupported graph file version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

const (
	version    = 1
	headerSize = 56
	entrySize  = 24
	align      = 64

	flagDirected = 1 << 0
	flagLabeled  = 1 << 1

	recordSize  = 16 // Edge and Arc records
	offsetSize  = 4  // CSR offsets (int32)
	weightSize  = 8  // strengths (float64)
	labelOffLen = 8  // label arena offsets (uint64)

	// maxArena bounds the label arena a header may claim, keeping
	// offset arithmetic far from uint64 overflow on hostile input.
	maxArena = 1 << 48
)

// magic opens every .bbg file. Modeled on the PNG signature: the high
// bit catches 7-bit transports, "\r\n" catches newline translation,
// 0x1a stops accidental terminal cats. The early "\n" also makes the
// text sniffers' first "line" the non-tab, non-brace "\x89BBG", so no
// registered text format can claim a binary file.
const magic = "\x89BBG\r\n\x1a\n"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section IDs in canonical file order.
const (
	secEdges uint32 = iota + 1
	secOutOff
	secArcs
	secInOff
	secInArcs
	secOutStrength
	secInStrength
	secLabelOff
	secLabelArena
)

func secName(id uint32) string {
	switch id {
	case secEdges:
		return "edges"
	case secOutOff:
		return "outOff"
	case secArcs:
		return "arcs"
	case secInOff:
		return "inOff"
	case secInArcs:
		return "inArcs"
	case secOutStrength:
		return "outStrength"
	case secInStrength:
		return "inStrength"
	case secLabelOff:
		return "labelOff"
	case secLabelArena:
		return "labelArena"
	}
	return fmt.Sprintf("section#%d", id)
}

// header is the decoded fixed-size file prefix.
type header struct {
	directed bool
	labeled  bool
	numNodes int
	numEdges int
	total    float64
}

// arcCount returns the length of the flat out-arc array: one arc per
// direction, so undirected edges appear twice.
func (h header) arcCount() int {
	if h.directed {
		return h.numEdges
	}
	return 2 * h.numEdges
}

// section is one decoded table entry.
type section struct {
	id          uint32
	off, length uint64
}

// parseHeader validates the 56-byte fixed prefix and returns the
// decoded header plus the section count. Every limit that later sizes
// an allocation or an offset computation is enforced here.
func parseHeader(b []byte) (header, int, error) {
	var h header
	if len(b) < headerSize {
		return h, 0, corruptf("short header: %d bytes", len(b))
	}
	if string(b[:8]) != magic {
		return h, 0, corruptf("bad magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != version {
		return h, 0, fmt.Errorf("%w: file version %d, this build reads version %d", ErrUnsupported, v, version)
	}
	flags := binary.LittleEndian.Uint32(b[12:])
	if flags&^uint32(flagDirected|flagLabeled) != 0 {
		return h, 0, corruptf("unknown flag bits %#x", flags)
	}
	h.directed = flags&flagDirected != 0
	h.labeled = flags&flagLabeled != 0
	nodes := binary.LittleEndian.Uint64(b[16:])
	edges := binary.LittleEndian.Uint64(b[24:])
	if nodes > math.MaxInt32 {
		return h, 0, corruptf("node count %d exceeds int32 ID space", nodes)
	}
	maxEdges := uint64(math.MaxInt32)
	if !h.directed {
		maxEdges /= 2 // undirected edges take two int32-indexed arc slots
	}
	if edges > maxEdges {
		return h, 0, corruptf("edge count %d exceeds int32 offset space", edges)
	}
	h.numNodes = int(nodes)
	h.numEdges = int(edges)
	h.total = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	if binary.LittleEndian.Uint64(b[40:]) != 0 || binary.LittleEndian.Uint32(b[52:]) != 0 {
		return h, 0, corruptf("reserved header bytes not zero")
	}
	count := int(binary.LittleEndian.Uint32(b[48:]))
	if count < 3 || count > 9 {
		return h, 0, corruptf("section count %d outside [3,9]", count)
	}
	return h, count, nil
}

// metaLen returns the byte length of header + section table + its CRC.
func metaLen(count int) int { return headerSize + count*entrySize + 4 }

// decodeTable decodes count raw table entries (reserved words checked).
func decodeTable(b []byte, count int) ([]section, error) {
	secs := make([]section, count)
	for i := range secs {
		e := b[i*entrySize:]
		secs[i] = section{
			id:     binary.LittleEndian.Uint32(e),
			off:    binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
		}
		if binary.LittleEndian.Uint32(e[4:]) != 0 {
			return nil, corruptf("section %s: reserved table bytes not zero", secName(secs[i].id))
		}
	}
	return secs, nil
}

// expectedLayout returns the section sequence the flags imply, with
// exact payload lengths (the label arena's, unknowable from the
// header, is returned as the sentinel lenVariable).
const lenVariable = ^uint64(0)

func expectedLayout(h header) []section {
	n, m := uint64(h.numNodes), uint64(h.numEdges)
	secs := []section{
		{id: secEdges, length: m * recordSize},
		{id: secOutOff, length: (n + 1) * offsetSize},
		{id: secArcs, length: uint64(h.arcCount()) * recordSize},
	}
	if h.directed {
		secs = append(secs,
			section{id: secInOff, length: (n + 1) * offsetSize},
			section{id: secInArcs, length: m * recordSize})
	}
	secs = append(secs, section{id: secOutStrength, length: n * weightSize})
	if h.directed {
		secs = append(secs, section{id: secInStrength, length: n * weightSize})
	}
	if h.labeled {
		secs = append(secs,
			section{id: secLabelOff, length: (n + 1) * labelOffLen},
			section{id: secLabelArena, length: lenVariable})
	}
	return secs
}

func alignUp(x uint64) uint64 { return (x + align - 1) &^ (align - 1) }

// checkTable verifies a decoded section table against the canonical
// layout: the exact ID sequence the flags imply, the exact lengths the
// node/edge counts imply, and the exact offsets the streaming writer
// would have produced. Anything else is corruption — version 1 has one
// valid layout per header, which is what makes writes deterministic
// and lets readers trust offset arithmetic after this check.
func checkTable(h header, secs []section) error {
	want := expectedLayout(h)
	if len(secs) != len(want) {
		return corruptf("%d sections, layout implies %d", len(secs), len(want))
	}
	off := alignUp(uint64(metaLen(len(want))))
	for i, w := range want {
		got := secs[i]
		if got.id != w.id {
			return corruptf("section %d is %s, want %s", i, secName(got.id), secName(w.id))
		}
		if w.length != lenVariable && got.length != w.length {
			return corruptf("section %s: length %d, want %d", secName(w.id), got.length, w.length)
		}
		if w.length == lenVariable && got.length > maxArena {
			return corruptf("section %s: length %d exceeds limit", secName(w.id), got.length)
		}
		if got.off != off {
			return corruptf("section %s: offset %d, want %d", secName(w.id), got.off, off)
		}
		off = alignUp(off + got.length + 4)
	}
	return nil
}

// fileSize returns the total (padded) file size implied by a validated
// section table.
func fileSize(count int, secs []section) uint64 {
	if len(secs) == 0 {
		return alignUp(uint64(metaLen(count)))
	}
	last := secs[len(secs)-1]
	return alignUp(last.off + last.length + 4)
}
