package binfmt

// This file holds every unsafe construct in the binfmt package — it is
// the package's entry in backbonevet's unsafezone allowlist, mirroring
// the codec's byte<->string bridging in internal/graph/codec.go. All
// three helpers express the same fact: on a little-endian host whose
// Edge/Arc struct layout matches the on-disk record layout (verified
// below at init, consulted everywhere as zeroCopy), a typed slice and
// its byte serialization are the same memory, so serialization is a
// view change rather than a copy. Callers guarantee lifetime (mapped
// sections outlive the graphs aliasing them) and immutability (mapped
// pages are PROT_READ; writer views are read-only).

import (
	"encoding/binary"
	"unsafe"

	"repro/internal/graph"
)

// zeroCopy reports whether typed arrays can alias their on-disk bytes
// directly: the host must be little-endian and the record structs must
// have exactly the on-disk field offsets (no padding surprises). When
// false — big-endian or exotic ABI — every read and write transparently
// takes the portable per-record path; only speed is lost.
var zeroCopy = func() bool {
	probe := []byte{0x01, 0x02, 0x03, 0x04}
	if binary.NativeEndian.Uint32(probe) != binary.LittleEndian.Uint32(probe) {
		return false
	}
	var e graph.Edge
	var a graph.Arc
	//lint:unsafezone-ok compile-time layout introspection only; Sizeof/Offsetof dereference nothing
	edgeOK := unsafe.Sizeof(e) == recordSize && unsafe.Offsetof(e.Src) == 0 && unsafe.Offsetof(e.Dst) == 4 && unsafe.Offsetof(e.Weight) == 8
	//lint:unsafezone-ok compile-time layout introspection only; Sizeof/Offsetof dereference nothing
	arcOK := unsafe.Sizeof(a) == recordSize && unsafe.Offsetof(a.To) == 0 && unsafe.Offsetof(a.EdgeID) == 4 && unsafe.Offsetof(a.Weight) == 8
	return edgeOK && arcOK
}()

// sliceBytes returns the backing bytes of a typed slice without
// copying. Used by the writer (read-only view of graph arrays while
// streaming them out) and by the copying reader (to memcpy file bytes
// into a freshly allocated typed slice). Only called when zeroCopy
// confirmed the layout, so the byte length is exactly len(s)*Sizeof(T).
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	//lint:unsafezone-ok same allocation reinterpreted at byte granularity; length covers exactly the slice's elements, and T (int32/uint64/float64/Edge/Arc) contains no pointers for the GC to lose
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

// aliasRecords views a mapped file section as a typed slice without
// copying. The loader guarantees b is a whole multiple of Sizeof(T)
// (checkTable pins exact section lengths) and naturally aligned
// (sections sit at 64-byte offsets inside a page-aligned mapping,
// re-checked by alignedTo below before any call).
func aliasRecords[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	var t T
	//lint:unsafezone-ok bounds come from the mapping itself: the returned slice spans len(b)/Sizeof(T) records inside b, alignment is pre-checked by alignedTo, and T contains no pointers
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/int(unsafe.Sizeof(t)))
}

// alignedTo reports whether b's first byte sits on an a-byte boundary.
// Defense in depth for aliasRecords: with a page-aligned mapping and
// 64-byte section offsets this cannot fail, but a false return turns a
// would-be unaligned alias into a typed load error instead of UB.
func alignedTo(b []byte, a uintptr) bool {
	if len(b) == 0 {
		return true
	}
	//lint:unsafezone-ok pointer converted only to an integer for an alignment check; never dereferenced or converted back
	return uintptr(unsafe.Pointer(&b[0]))%a == 0
}

// arenaString views one label's bytes in the arena as a string without
// copying — mapped labels share the file's pages and stream-read
// labels share their section buffer instead of duplicating either on
// the heap.
func arenaString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	//lint:unsafezone-ok strings are immutable views and both arenas outlive the graph and are never written again (a PROT_READ mapping under the File.Close contract, or a private section buffer); identical to the codec's bstr bridging
	return unsafe.String(&b[0], len(b))
}
