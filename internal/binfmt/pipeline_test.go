package binfmt_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/binfmt"
)

// TestPipelinesBitIdentical is the PR's acceptance property: a graph
// loaded from .bbg — through the copying reader AND the mmap loader —
// must drive every registered method's full pipeline to a backbone
// bit-identical to the one computed from the text-parsed graph. This
// is what lets the daemon substitute an mmap for a parse without any
// behavioural difference.
func TestPipelinesBitIdentical(t *testing.T) {
	for _, directed := range []bool{false, true} {
		// Moderate integer weights: every method (including the
		// Sinkhorn-Knopp iteration behind ds) must converge, so the
		// comparison covers the full registry.
		src := pipelineGraph(t, 21+boolSeed(directed), directed)

		// Reference: the graph as the daemon would parse it from text.
		var txt bytes.Buffer
		if err := repro.WriteGraph(&txt, src, repro.WithFormat("ndjson")); err != nil {
			t.Fatal(err)
		}
		ref, err := repro.ReadGraph(bytes.NewReader(txt.Bytes()), repro.WithDirected(directed))
		if err != nil {
			t.Fatal(err)
		}

		// Same graph through the binary container: write the PARSED
		// graph (so node numbering matches ref) and load it both ways.
		data := writeBBG(t, ref)
		copied, err := binfmt.Read(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		mapped := openTemp(t, data).Graph()

		ran := 0
		for _, m := range repro.Methods() {
			want, werr := repro.Backbone(ref, repro.WithMethod(m.Name))
			for name, g := range map[string]*repro.Graph{"copy": copied, "mmap": mapped} {
				got, err := repro.Backbone(g, repro.WithMethod(m.Name))
				if werr != nil {
					// Error parity: a method that cannot run on this
					// graph must fail identically however it was loaded.
					if err == nil || err.Error() != werr.Error() {
						t.Fatalf("%s/%s: err = %v, text-parsed err = %v", m.Name, name, err, werr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s on %s-loaded graph: %v", m.Name, name, err)
				}
				ran++
				we, ge := want.Backbone.Edges(), got.Backbone.Edges()
				if len(we) != len(ge) {
					t.Fatalf("%s/%s: %d edges, want %d", m.Name, name, len(ge), len(we))
				}
				for i := range we {
					if we[i].Src != ge[i].Src || we[i].Dst != ge[i].Dst ||
						math.Float64bits(we[i].Weight) != math.Float64bits(ge[i].Weight) {
						t.Fatalf("%s/%s: edge %d = %+v, want %+v", m.Name, name, i, ge[i], we[i])
					}
				}
				if want.NodeCoverage != got.NodeCoverage || want.EdgeCoverage != got.EdgeCoverage {
					t.Fatalf("%s/%s: coverage (%v,%v), want (%v,%v)",
						m.Name, name, got.NodeCoverage, got.EdgeCoverage, want.NodeCoverage, want.EdgeCoverage)
				}
			}
		}
		if minRan := 2 * (len(repro.Methods()) - 1); ran < minRan {
			t.Fatalf("only %d method/load combinations ran successfully, want >= %d", ran, minRan)
		}
	}
}

func boolSeed(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// pipelineGraph is randomGraph with count-like weights (the paper's
// data shape) so iterative scorers converge.
func pipelineGraph(t testing.TB, seed int64, directed bool) *repro.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := repro.NewBuilder(directed)
	// Dense on purpose: the Sinkhorn-Knopp iteration behind ds only
	// converges on matrices with enough support.
	const n, m = 20, 500
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("node-%d", i))
	}
	// A base cycle keeps every node's in- and out-strength positive,
	// which the doubly-stochastic method requires on directed input.
	for i := 0; i < n; i++ {
		b.MustAddEdge(i, (i+1)%n, float64(1+rng.Intn(5)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, float64(1+rng.Intn(30)))
	}
	return b.Build()
}

// TestRegistryIntegration: the bbg format must be a full registry
// citizen — sniffed from content, resolved from extensions, gzip
// transparent, listed in FormatsTable.
func TestRegistryIntegration(t *testing.T) {
	g := randomGraph(t, 11, 15, 50, false)
	data := writeBBG(t, g)

	sniffed, err := repro.ReadGraph(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("sniffed read: %v", err)
	}
	mustIdentical(t, "sniffed", g, sniffed)

	var gz bytes.Buffer
	if err := repro.WriteGraph(&gz, g, repro.WithFormat("bbg"), repro.WithGzip()); err != nil {
		t.Fatal(err)
	}
	unz, err := repro.ReadGraph(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatalf("gzipped read: %v", err)
	}
	mustIdentical(t, "gzipped", g, unz)

	f, err := repro.LookupFormat("edges.bbg")
	if err != nil || f.Name != "bbg" {
		t.Fatalf("LookupFormat(edges.bbg) = %v, %v", f, err)
	}
	if table := repro.FormatsTable(); !bytes.Contains([]byte(table), []byte("`bbg`")) {
		t.Fatalf("FormatsTable missing bbg:\n%s", table)
	}
}
