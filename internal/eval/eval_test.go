package eval

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func chain(n int, weights ...float64) *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	for i, w := range weights {
		b.MustAddEdge(i, i+1, w)
	}
	return b.Build()
}

func TestCoverage(t *testing.T) {
	orig := chain(4, 1, 2, 3) // all 4 nodes connected
	bb := orig.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight >= 2 })
	// Edges (1,2),(2,3) survive: node 0 isolated -> coverage 3/4.
	if got := Coverage(orig, bb); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.75", got)
	}
	if got := Coverage(orig, orig); got != 1 {
		t.Errorf("self coverage = %v", got)
	}
	empty := graph.NewBuilder(false).Build()
	if !math.IsNaN(Coverage(empty, empty)) {
		t.Error("coverage of empty graph should be NaN")
	}
}

func TestJaccardAndRecovery(t *testing.T) {
	a := map[graph.EdgeKey]bool{{U: 0, V: 1}: true, {U: 1, V: 2}: true}
	b := map[graph.EdgeKey]bool{{U: 1, V: 2}: true, {U: 2, V: 3}: true}
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v", got)
	}
	if !math.IsNaN(Jaccard(nil, nil)) {
		t.Error("empty Jaccard should be NaN")
	}
	g := chain(3, 1, 1)
	truth := g.EdgeSet()
	if got := Recovery(g, truth); got != 1 {
		t.Errorf("Recovery = %v", got)
	}
}

func TestStabilityPerfectAndPerturbed(t *testing.T) {
	t0 := chain(5, 4, 3, 2, 1)
	// Identical next year: stability 1.
	if got := Stability(t0, t0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Stability identical = %v", got)
	}
	// Reversed ranks next year: stability -1.
	t1 := chain(5, 1, 2, 3, 4)
	if got := Stability(t0, t1); math.Abs(got+1) > 1e-12 {
		t.Errorf("Stability reversed = %v", got)
	}
	// Missing edges in t1 count as zero weight.
	t2 := chain(5, 8)
	got := Stability(t0, t2)
	if math.IsNaN(got) {
		t.Error("missing edges should not produce NaN")
	}
}

type mockDesigner struct{}

// Design predicts y = log(w+1) from a noisy copy of itself; "good"
// edges (weight >= 10) follow the model exactly, others are noise.
func (mockDesigner) Design(_ string, edges []graph.Edge) ([]float64, [][]float64, error) {
	y := make([]float64, len(edges))
	x := make([]float64, len(edges))
	for i, e := range edges {
		y[i] = math.Log1p(e.Weight)
		if e.Weight >= 10 {
			x[i] = y[i] // perfectly predictable
		} else {
			x[i] = float64(i%7) * 0.13 // junk
		}
	}
	return y, [][]float64{x}, nil
}

func TestQualityRatio(t *testing.T) {
	// Full graph: half predictable, half junk. Backbone keeps the
	// predictable half -> quality ratio above 1.
	b := graph.NewBuilder(false)
	b.AddNodes(40)
	for i := 0; i < 39; i++ {
		w := 1.0 + float64(i%5)
		if i%2 == 0 {
			w = 10 + float64(i)
		}
		b.MustAddEdge(i, i+1, w)
	}
	full := b.Build()
	bb := full.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight >= 10 })
	res, err := Quality(mockDesigner{}, "test", full, bb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= 1 {
		t.Errorf("Quality = %v, want > 1 (backbone should help)", res.Quality)
	}
	if res.R2Backbone < 0.99 {
		t.Errorf("backbone R² = %v, want ~1", res.R2Backbone)
	}
	if res.EdgesBackbone >= res.EdgesFull {
		t.Error("edge counts inconsistent")
	}
}
