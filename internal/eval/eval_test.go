package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func chain(n int, weights ...float64) *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	for i, w := range weights {
		b.MustAddEdge(i, i+1, w)
	}
	return b.Build()
}

func TestCoverage(t *testing.T) {
	orig := chain(4, 1, 2, 3) // all 4 nodes connected
	bb := orig.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight >= 2 })
	// Edges (1,2),(2,3) survive: node 0 isolated -> coverage 3/4.
	if got := Coverage(orig, bb); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.75", got)
	}
	if got := Coverage(orig, orig); got != 1 {
		t.Errorf("self coverage = %v", got)
	}
	empty := graph.NewBuilder(false).Build()
	if !math.IsNaN(Coverage(empty, empty)) {
		t.Error("coverage of empty graph should be NaN")
	}
}

func TestJaccardAndRecovery(t *testing.T) {
	a := map[graph.EdgeKey]bool{{U: 0, V: 1}: true, {U: 1, V: 2}: true}
	b := map[graph.EdgeKey]bool{{U: 1, V: 2}: true, {U: 2, V: 3}: true}
	if got := Jaccard(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v", got)
	}
	if !math.IsNaN(Jaccard(nil, nil)) {
		t.Error("empty Jaccard should be NaN")
	}
	g := chain(3, 1, 1)
	if got := Recovery(g, g); got != 1 {
		t.Errorf("Recovery = %v", got)
	}
	// Ground truth with different weights but the same pairs: still 1.
	truth := chain(3, 7, 9)
	if got := Recovery(g, truth); got != 1 {
		t.Errorf("Recovery vs reweighted truth = %v", got)
	}
	empty := graph.NewBuilder(false).Build()
	if !math.IsNaN(EdgeJaccard(empty, empty)) {
		t.Error("empty EdgeJaccard should be NaN")
	}
}

func TestStabilityPerfectAndPerturbed(t *testing.T) {
	t0 := chain(5, 4, 3, 2, 1)
	// Identical next year: stability 1.
	if got := Stability(t0, t0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Stability identical = %v", got)
	}
	// Reversed ranks next year: stability -1.
	t1 := chain(5, 1, 2, 3, 4)
	if got := Stability(t0, t1); math.Abs(got+1) > 1e-12 {
		t.Errorf("Stability reversed = %v", got)
	}
	// Missing edges in t1 count as zero weight.
	t2 := chain(5, 8)
	got := Stability(t0, t2)
	if math.IsNaN(got) {
		t.Error("missing edges should not produce NaN")
	}
}

// randomGraph builds a reproducible random graph: n nodes of which only
// the first ceil(n·density) participate in edges (the rest are
// isolates), small-integer weights so values collide (rank ties), and
// optional directedness.
func randomGraph(rng *rand.Rand, n int, edges int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	b.AddNodes(n)
	active := n/2 + 1 // the upper half of the ID space stays isolated
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(active), rng.Intn(active)
		if u == v {
			continue
		}
		// Weights from a tiny alphabet force collisions; the join's
		// zero-fill for absent pairs then collides with them in ranks.
		b.MustAddEdge(u, v, float64(1+rng.Intn(3)))
	}
	return b.Build()
}

// randomSubgraph keeps each edge with probability p.
func randomSubgraph(rng *rand.Rand, g *graph.Graph, p float64) *graph.Graph {
	return g.FilterEdges(func(int, graph.Edge) bool { return rng.Float64() < p })
}

// sameFloat compares bit-for-bit up to NaN equivalence.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// TestEdgeJaccardMatchesOracle pins the CSR merge-walk intersection
// bit-identical to the map-based oracle on random graph pairs,
// including graphs with isolates, empty graphs, and directed pairs.
func TestEdgeJaccardMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 1
		n := 2 + rng.Intn(30)
		a := randomGraph(rng, n, rng.Intn(80), directed)
		b := randomGraph(rng, n, rng.Intn(80), directed)
		got := EdgeJaccard(a, b)
		want := Jaccard(a.EdgeSet(), b.EdgeSet())
		if !sameFloat(got, want) {
			t.Errorf("seed %d: EdgeJaccard = %v, oracle = %v", seed, got, want)
		}
		// Subgraph against its source: exact edge-count ratio.
		sub := randomSubgraph(rng, a, 0.5)
		if a.NumEdges() > 0 {
			want := float64(sub.NumEdges()) / float64(a.NumEdges())
			if got := EdgeJaccard(sub, a); !sameFloat(got, want) {
				t.Errorf("seed %d: subgraph Jaccard = %v, want %v", seed, got, want)
			}
		}
	}
}

// TestEdgeJaccardMixedDirectedness pins the fallback path: comparing a
// symmetrized backbone against a directed graph must equal the key-set
// oracle exactly.
func TestEdgeJaccardMixedDirectedness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomGraph(rng, 12, 40, true)
	u := d.Undirected()
	got := EdgeJaccard(u, d)
	want := Jaccard(u.EdgeSet(), d.EdgeSet())
	if !sameFloat(got, want) {
		t.Errorf("mixed EdgeJaccard = %v, oracle = %v", got, want)
	}
}

// TestStabilityMatchesOracle pins the CSR merge-walk weight join
// bit-identical to the WeightMap oracle on random backbone/next pairs —
// including isolates, pairs absent from the next snapshot (zero-weight
// fills colliding with each other in the rank correlation), and the
// mixed-directedness case of symmetrized backbones over directed
// observations.
func TestStabilityMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		directed := seed%2 == 1
		n := 2 + rng.Intn(30)
		g1 := randomGraph(rng, n, 20+rng.Intn(80), directed)
		next := randomGraph(rng, n, rng.Intn(80), directed)
		bb := randomSubgraph(rng, g1, 0.6)
		if got, want := Stability(bb, next), StabilityOracle(bb, next); !sameFloat(got, want) {
			t.Errorf("seed %d: Stability = %v, oracle = %v", seed, got, want)
		}
		// Mixed directedness: undirected backbone joined against the
		// directed snapshot sums both arc directions.
		if directed {
			ubb := randomSubgraph(rng, g1.Undirected(), 0.6)
			if got, want := Stability(ubb, next), StabilityOracle(ubb, next); !sameFloat(got, want) {
				t.Errorf("seed %d: mixed Stability = %v, oracle = %v", seed, got, want)
			}
		}
	}
}

// TestWeightJoinBufferReuse: the join appends into caller buffers, so a
// reused buffer pair produces identical joins with zero allocations —
// the property BenchmarkEvaluate100k measures.
func TestWeightJoinBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 200, false)
	next := randomGraph(rng, 40, 150, false)
	bb := randomSubgraph(rng, g, 0.5)
	cur1, nxt1 := WeightJoin(bb, next, nil, nil)
	buf1, buf2 := make([]float64, 0, bb.NumEdges()), make([]float64, 0, bb.NumEdges())
	cur2, nxt2 := WeightJoin(bb, next, buf1[:0], buf2[:0])
	if len(cur1) != len(cur2) || len(nxt1) != len(nxt2) {
		t.Fatalf("join lengths differ: %d/%d vs %d/%d", len(cur1), len(nxt1), len(cur2), len(nxt2))
	}
	for i := range cur1 {
		if cur1[i] != cur2[i] || nxt1[i] != nxt2[i] {
			t.Fatalf("join row %d differs", i)
		}
	}
}

// TestRestrictEdgesMatchesOracle pins the CSR restriction bit-identical
// to the key-set oracle, including the directed-full/undirected-backbone
// case the Quality regressions hit.
func TestRestrictEdgesMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		directed := seed%2 == 1
		n := 2 + rng.Intn(30)
		full := randomGraph(rng, n, 20+rng.Intn(100), directed)
		bb := randomSubgraph(rng, full, 0.4)
		check := func(label string, full, bb *graph.Graph) {
			t.Helper()
			got := RestrictEdges(full, bb)
			want := RestrictEdgesOracle(full, bb)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d edges, oracle %d", seed, label, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: edge %d = %+v, oracle %+v", seed, label, i, got[i], want[i])
				}
			}
		}
		check("same", full, bb)
		if directed {
			check("mixed", full, randomSubgraph(rng, full.Undirected(), 0.4))
		}
	}
}

type mockDesigner struct{}

// Design predicts y = log(w+1) from a noisy copy of itself; "good"
// edges (weight >= 10) follow the model exactly, others are noise.
func (mockDesigner) Design(_ string, edges []graph.Edge) ([]float64, [][]float64, error) {
	y := make([]float64, len(edges))
	x := make([]float64, len(edges))
	for i, e := range edges {
		y[i] = math.Log1p(e.Weight)
		if e.Weight >= 10 {
			x[i] = y[i] // perfectly predictable
		} else {
			x[i] = float64(i%7) * 0.13 // junk
		}
	}
	return y, [][]float64{x}, nil
}

func TestQualityRatio(t *testing.T) {
	// Full graph: half predictable, half junk. Backbone keeps the
	// predictable half -> quality ratio above 1.
	b := graph.NewBuilder(false)
	b.AddNodes(40)
	for i := 0; i < 39; i++ {
		w := 1.0 + float64(i%5)
		if i%2 == 0 {
			w = 10 + float64(i)
		}
		b.MustAddEdge(i, i+1, w)
	}
	full := b.Build()
	bb := full.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight >= 10 })
	res, err := Quality(mockDesigner{}, "test", full, bb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= 1 {
		t.Errorf("Quality = %v, want > 1 (backbone should help)", res.Quality)
	}
	if res.R2Backbone < 0.99 {
		t.Errorf("backbone R² = %v, want ~1", res.R2Backbone)
	}
	if res.EdgesBackbone >= res.EdgesFull {
		t.Error("edge counts inconsistent")
	}
}
