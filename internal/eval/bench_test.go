package eval

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The criteria benchmarks pin the PR-5 acceptance criterion: grading a
// backbone through the CSR merge-walk criteria allocates O(1) —
// EdgeJaccard walks the two canonical edge slices in place and
// WeightJoin appends into caller-reused buffers — where the retained
// map-based oracle materializes map[EdgeKey] sets and weight maps
// proportional to the edge count on every call.

type evalBenchFixture struct {
	g, next, bb, truth *graph.Graph
	cur, nxt           []float64
}

func newEvalBenchFixture(b *testing.B, n int) *evalBenchFixture {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	g := gen.ErdosRenyiGNM(rng, n, n*3/2)
	next := gen.ErdosRenyiGNM(rng, n, n*3/2)
	truth := g.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight > 0.5 })
	bb := g.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight > 0.9 })
	m := bb.NumEdges()
	return &evalBenchFixture{
		g: g, next: next, bb: bb, truth: truth,
		cur: make([]float64, 0, m), nxt: make([]float64, 0, m),
	}
}

// BenchmarkEvaluate100k grades one 150k-edge backbone under the full
// criteria set (coverage, recovery, stability weight join) through the
// CSR merge-walks. With the join buffers reused, the loop allocates
// O(1) per grading — compare BenchmarkEvaluateOracle100k.
func BenchmarkEvaluate100k(b *testing.B) {
	f := newEvalBenchFixture(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coverage(f.g, f.bb)
		_ = Recovery(f.bb, f.truth)
		f.cur, f.nxt = WeightJoin(f.bb, f.next, f.cur[:0], f.nxt[:0])
	}
}

// BenchmarkEvaluateOracle100k is the identical grading through the
// retained map-based oracles: per call it builds the EdgeSet maps of
// both graphs plus next's WeightMap — O(edges) allocations.
func BenchmarkEvaluateOracle100k(b *testing.B) {
	f := newEvalBenchFixture(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coverage(f.g, f.bb)
		_ = Jaccard(f.bb.EdgeSet(), f.truth.EdgeSet())
		f.cur, f.nxt = weightJoinOracle(f.bb, f.next)
	}
}

// BenchmarkStability100k measures the full Stability criterion (join +
// Spearman) at scale; the rank correlation dominates once the join is
// allocation-free.
func BenchmarkStability100k(b *testing.B) {
	f := newEvalBenchFixture(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Stability(f.bb, f.next); s != 0 {
			_ = s
		}
	}
}
