package eval

import (
	"math"

	"repro/internal/graph"
	"repro/internal/stats"
)

// This file retains the original map-materializing criterion
// implementations. They are no longer on any hot path — the CSR
// merge-walks in eval.go replaced them — but stay in-tree as
// property-test oracles pinning the merge-walk results bit-identical,
// the same pattern as the PR-2 Subgraph and PR-4 codec oracles.

// Jaccard returns |A ∩ B| / |A ∪ B| between two edge-key sets. It is
// the map-based oracle behind EdgeJaccard (and its fallback when the
// compared graphs disagree on directedness).
func Jaccard(a, b map[graph.EdgeKey]bool) float64 {
	inter := 0
	//lint:detiter-ok integer membership count; commutative in any order
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return math.NaN()
	}
	return float64(inter) / float64(union)
}

// StabilityOracle is the map-based oracle behind Stability: it
// materializes next's full WeightMap per call, where the production
// path merge-walks the canonical edge slices. Semantics are identical,
// including the both-direction sum when an undirected backbone is
// joined against a directed snapshot.
func StabilityOracle(backbone *graph.Graph, next *graph.Graph) float64 {
	cur, nxt := weightJoinOracle(backbone, next)
	return stats.Spearman(cur, nxt)
}

// weightJoinOracle is WeightJoin through a WeightMap.
func weightJoinOracle(backbone, next *graph.Graph) (cur, nxt []float64) {
	wNext := next.WeightMap()
	mixed := backbone.Directed() != next.Directed()
	for _, e := range backbone.Edges() {
		cur = append(cur, e.Weight)
		if mixed {
			nxt = append(nxt, wNext[graph.EdgeKey{U: e.Src, V: e.Dst}]+wNext[graph.EdgeKey{U: e.Dst, V: e.Src}])
		} else {
			nxt = append(nxt, wNext[backbone.Key(e)])
		}
	}
	return cur, nxt
}

// RestrictEdgesOracle is the map-based oracle behind RestrictEdges: a
// key set over the backbone (both orientations when the backbone is
// undirected) filters the full edge slice.
//
//lint:ctxflow-ok property-test oracle: exported for the eval tests, never on a served path
func RestrictEdgesOracle(full, bb *graph.Graph) []graph.Edge {
	keep := make(map[graph.EdgeKey]bool, bb.NumEdges())
	for _, e := range bb.Edges() {
		k := bb.Key(e)
		keep[k] = true
		if !bb.Directed() {
			keep[graph.EdgeKey{U: k.V, V: k.U}] = true
		}
	}
	var out []graph.Edge
	for _, e := range full.Edges() {
		if keep[full.Key(e)] {
			out = append(out, e)
		}
	}
	return out
}
