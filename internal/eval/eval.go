// Package eval implements the paper's three backbone quality criteria
// (problem definition, Section III-A) plus the synthetic-recovery
// measure of Section V-A:
//
//   - Coverage: share of originally non-isolated nodes that the backbone
//     keeps non-isolated (Topology, Fig 7).
//   - Quality: R² of an OLS prediction restricted to backbone edges,
//     relative to the R² on all edges (Table II).
//   - Stability: Spearman correlation of edge weights across consecutive
//     observations, over backbone edges (Fig 8).
//   - Recovery: Jaccard similarity between the backbone edge set and the
//     true planted edge set (Fig 4).
package eval

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Coverage returns |non-isolated nodes in backbone| / |non-isolated
// nodes in original|. A perfect backbone keeps every node reachable.
func Coverage(original, backbone *graph.Graph) float64 {
	denom := original.NumConnected()
	if denom == 0 {
		return math.NaN()
	}
	return float64(backbone.NumConnected()) / float64(denom)
}

// Jaccard returns |A ∩ B| / |A ∪ B| between two edge-key sets.
func Jaccard(a, b map[graph.EdgeKey]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return math.NaN()
	}
	return float64(inter) / float64(union)
}

// Recovery returns the Jaccard similarity between a backbone's edge set
// and the ground-truth edge set — the paper's Fig-4 quality target.
func Recovery(backbone *graph.Graph, truth map[graph.EdgeKey]bool) float64 {
	return Jaccard(backbone.EdgeSet(), truth)
}

// Stability computes the Spearman rank correlation between the weights
// of the backbone's edges at time t and the same pairs' weights at time
// t+1 (absent pairs count as weight zero), following Section V-F: the
// correlation is calculated "using only the edges present in the
// backbones".
func Stability(backbone *graph.Graph, next *graph.Graph) float64 {
	wNext := next.WeightMap()
	var cur, nxt []float64
	for _, e := range backbone.Edges() {
		cur = append(cur, e.Weight)
		nxt = append(nxt, wNext[backbone.Key(e)])
	}
	return stats.Spearman(cur, nxt)
}

// QualityResult reports the Table-II quality experiment for one method
// on one network.
type QualityResult struct {
	// R2Full is the OLS fit on every edge of the original network.
	R2Full float64
	// R2Backbone is the fit restricted to backbone edges.
	R2Backbone float64
	// Quality is their ratio: > 1 means the backbone helps prediction.
	Quality float64
	// EdgesFull and EdgesBackbone are the observation counts.
	EdgesFull, EdgesBackbone int
}

// Designer supplies OLS designs for edge sets; *world.Predictors
// satisfies it for the country networks.
type Designer interface {
	Design(dataset string, edges []graph.Edge) (y []float64, xs [][]float64, err error)
}

// Quality runs the paper's Quality criterion: fit the same OLS model on
// the full edge set and on the backbone's edge set, and return the R²
// ratio.
func Quality(d Designer, dataset string, full, backbone *graph.Graph) (*QualityResult, error) {
	yF, xF, err := d.Design(dataset, full.Edges())
	if err != nil {
		return nil, fmt.Errorf("eval: full design: %w", err)
	}
	fitF, err := stats.OLS(yF, xF...)
	if err != nil {
		return nil, fmt.Errorf("eval: full fit: %w", err)
	}
	yB, xB, err := d.Design(dataset, backbone.Edges())
	if err != nil {
		return nil, fmt.Errorf("eval: backbone design: %w", err)
	}
	fitB, err := stats.OLS(yB, xB...)
	if err != nil {
		return nil, fmt.Errorf("eval: backbone fit: %w", err)
	}
	res := &QualityResult{
		R2Full:        fitF.R2,
		R2Backbone:    fitB.R2,
		EdgesFull:     full.NumEdges(),
		EdgesBackbone: backbone.NumEdges(),
	}
	if fitF.R2 > 0 {
		res.Quality = fitB.R2 / fitF.R2
	} else {
		res.Quality = math.NaN()
	}
	return res, nil
}
