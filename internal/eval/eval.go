// Package eval is the backbone-evaluation subsystem: the paper's three
// quality criteria (problem definition, Section III-A) plus the
// synthetic-recovery measure of Section V-A, and a registry-driven
// engine (engine.go) that grades every backboning method on one graph
// under those criteria:
//
//   - Coverage: share of originally non-isolated nodes that the backbone
//     keeps non-isolated (Topology, Fig 7).
//   - Quality: R² of an OLS prediction restricted to backbone edges,
//     relative to the R² on all edges (Table II).
//   - Stability: Spearman correlation of edge weights across consecutive
//     observations, over backbone edges (Fig 8).
//   - Recovery: Jaccard similarity between the backbone edge set and the
//     true planted edge set (Fig 4).
//
// The criteria are CSR-native: edge-set intersections and cross-snapshot
// weight joins are merge-walks over the graphs' canonical edge slices
// (sorted by (Src, Dst) since the CSR substrate of PR 2), so grading a
// backbone allocates O(1) instead of materializing map[EdgeKey] sets and
// weight maps per call. The original map-based implementations are
// retained in oracle.go as property-test oracles, the same pattern as
// the PR-2 Subgraph and PR-4 codec oracles.
package eval

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Coverage returns |non-isolated nodes in backbone| / |non-isolated
// nodes in original|. A perfect backbone keeps every node reachable.
// Both counts are precomputed at build time, so this is O(1).
//
// When the original network has no connected nodes at all the criterion
// is undefined and NaN is returned; JSON surfaces must encode that as
// null (encoding/json rejects NaN — see Float).
func Coverage(original, backbone *graph.Graph) float64 {
	denom := original.NumConnected()
	if denom == 0 {
		return math.NaN()
	}
	return float64(backbone.NumConnected()) / float64(denom)
}

// keyLess orders two canonical edges by their (Src, Dst) endpoint pair —
// the order the graph substrate guarantees for Edges().
func keyLess(a, b graph.Edge) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// EdgeJaccard returns |A ∩ B| / |A ∪ B| between the edge sets of two
// graphs over the same node-ID space. When both graphs share a
// directedness the intersection is a single merge-walk over the two
// canonical (Src, Dst)-sorted edge slices — zero allocations. Comparing
// a symmetrized (undirected) backbone against a directed graph falls
// back to the order-normalized set semantics of the Jaccard oracle.
func EdgeJaccard(a, b *graph.Graph) float64 {
	if a.Directed() != b.Directed() {
		return Jaccard(a.EdgeSet(), b.EdgeSet())
	}
	ea, eb := a.Edges(), b.Edges()
	inter := 0
	i, j := 0, 0
	for i < len(ea) && j < len(eb) {
		switch {
		case ea[i].Src == eb[j].Src && ea[i].Dst == eb[j].Dst:
			inter++
			i++
			j++
		case keyLess(ea[i], eb[j]):
			i++
		default:
			j++
		}
	}
	union := len(ea) + len(eb) - inter
	if union == 0 {
		return math.NaN()
	}
	return float64(inter) / float64(union)
}

// Recovery returns the Jaccard similarity between a backbone's edge set
// and the ground-truth graph's edge set — the paper's Fig-4 quality
// target.
func Recovery(backbone, truth *graph.Graph) float64 {
	return EdgeJaccard(backbone, truth)
}

// WeightJoin appends, for every backbone edge, its weight at time t to
// cur and the same node pair's weight in next (zero when the pair is
// absent — the paper's convention) to nxt, returning the extended
// slices. Callers reuse cur/nxt across calls to keep the join
// allocation-free.
//
// When backbone and next share a directedness the join is one
// merge-walk over the two canonical sorted edge slices. When the
// backbone is undirected but next is directed (HSS and MST symmetrize
// directed inputs) each pair's weight is the sum of both directions,
// looked up by binary search — the semantics year-over-year comparisons
// need (see graph.UndirectedWeight).
//
//lint:ctxflow-ok merge-walk criterion primitive: the eval engine checks ctx between criteria
func WeightJoin(backbone, next *graph.Graph, cur, nxt []float64) ([]float64, []float64) {
	eb := backbone.Edges()
	if backbone.Directed() != next.Directed() {
		for _, e := range eb {
			cur = append(cur, e.Weight)
			nxt = append(nxt, next.UndirectedWeight(int(e.Src), int(e.Dst)))
		}
		return cur, nxt
	}
	en := next.Edges()
	j := 0
	for _, e := range eb {
		for j < len(en) && keyLess(en[j], e) {
			j++
		}
		w := 0.0
		if j < len(en) && en[j].Src == e.Src && en[j].Dst == e.Dst {
			w = en[j].Weight
		}
		cur = append(cur, e.Weight)
		nxt = append(nxt, w)
	}
	return cur, nxt
}

// Stability computes the Spearman rank correlation between the weights
// of the backbone's edges at time t and the same pairs' weights at time
// t+1 (absent pairs count as weight zero), following Section V-F: the
// correlation is calculated "using only the edges present in the
// backbones". Fewer than two backbone edges yield NaN (the correlation
// is undefined); JSON surfaces must encode that as null.
func Stability(backbone *graph.Graph, next *graph.Graph) float64 {
	m := backbone.NumEdges()
	cur := make([]float64, 0, m)
	nxt := make([]float64, 0, m)
	cur, nxt = WeightJoin(backbone, next, cur, nxt)
	return stats.Spearman(cur, nxt)
}

// RestrictEdges returns the edges of full whose node pair survives in
// the backbone — how the Quality regressions restrict their observation
// set. With matching directedness it is a merge-walk over the two
// canonical sorted edge slices; an undirected backbone over a directed
// full graph keeps both orientations of each surviving pair, resolved
// by binary-search membership tests.
//
//lint:ctxflow-ok merge-walk criterion primitive: the eval engine checks ctx between criteria
func RestrictEdges(full, bb *graph.Graph) []graph.Edge {
	out := make([]graph.Edge, 0, bb.NumEdges())
	ef := full.Edges()
	if full.Directed() == bb.Directed() {
		eb := bb.Edges()
		j := 0
		for _, e := range ef {
			for j < len(eb) && keyLess(eb[j], e) {
				j++
			}
			if j < len(eb) && eb[j].Src == e.Src && eb[j].Dst == e.Dst {
				out = append(out, e)
			}
		}
		return out
	}
	for _, e := range ef {
		u, v := int(e.Src), int(e.Dst)
		if !full.Directed() {
			// Normalized full pair vs a directed backbone: membership means
			// the backbone has exactly that orientation (the key-set
			// semantics of the map oracle).
			if _, ok := bb.Weight(u, v); ok {
				// For directed bb, Weight(u,v) checks u→v only when bb is
				// directed — which is the case on this branch.
				out = append(out, e)
			}
			continue
		}
		// Directed full, undirected backbone: Weight is order-insensitive.
		if _, ok := bb.Weight(u, v); ok {
			out = append(out, e)
		}
	}
	return out
}

// QualityResult reports the Table-II quality experiment for one method
// on one network.
type QualityResult struct {
	// R2Full is the OLS fit on every edge of the original network.
	R2Full float64
	// R2Backbone is the fit restricted to backbone edges.
	R2Backbone float64
	// Quality is their ratio: > 1 means the backbone helps prediction.
	Quality float64
	// EdgesFull and EdgesBackbone are the observation counts.
	EdgesFull, EdgesBackbone int
}

// Designer supplies OLS designs for edge sets; *world.Predictors
// satisfies it for the country networks.
type Designer interface {
	Design(dataset string, edges []graph.Edge) (y []float64, xs [][]float64, err error)
}

// Quality runs the paper's Quality criterion: fit the same OLS model on
// the full edge set and on the backbone's edge set, and return the R²
// ratio.
func Quality(d Designer, dataset string, full, backbone *graph.Graph) (*QualityResult, error) {
	yF, xF, err := d.Design(dataset, full.Edges())
	if err != nil {
		return nil, fmt.Errorf("eval: full design: %w", err)
	}
	fitF, err := stats.OLS(yF, xF...)
	if err != nil {
		return nil, fmt.Errorf("eval: full fit: %w", err)
	}
	yB, xB, err := d.Design(dataset, backbone.Edges())
	if err != nil {
		return nil, fmt.Errorf("eval: backbone design: %w", err)
	}
	fitB, err := stats.OLS(yB, xB...)
	if err != nil {
		return nil, fmt.Errorf("eval: backbone fit: %w", err)
	}
	res := &QualityResult{
		R2Full:        fitF.R2,
		R2Backbone:    fitB.R2,
		EdgesFull:     full.NumEdges(),
		EdgesBackbone: backbone.NumEdges(),
	}
	if fitF.R2 > 0 {
		res.Quality = fitB.R2 / fitF.R2
	} else {
		res.Quality = math.NaN()
	}
	return res, nil
}
