package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Float is a float64 whose JSON form is null when the value is NaN or
// infinite — encoding/json rejects those outright, and the criteria
// legitimately produce NaN on empty denominators (Coverage of an
// edgeless network, Stability of a one-edge backbone, the paper's "n/a"
// Quality cells). Criterion fields in Report/MethodEval use it so every
// report marshals cleanly on every input.
type Float float64

// MarshalJSON encodes NaN and ±Inf as null, everything else as a plain
// JSON number.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON decodes null back to NaN, inverting MarshalJSON.
func (f *Float) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// ScoreSource supplies a (possibly cached) significance table for a
// method, returning whether the call skipped scoring — the backboned
// daemon plugs its content-addressed score cache in here so
// re-evaluating a cached body scores nothing at all. Methods are
// evaluated concurrently, so the source must be safe for concurrent
// calls (a cache.LRU is; a bare map is not).
type ScoreSource func(ctx context.Context, m *filter.Method) (*filter.Scores, bool, error)

// Config parameterizes one evaluation run. The zero value evaluates
// every method of the default registry with only the always-available
// criteria (coverage, edge share).
type Config struct {
	// Registry to draw methods from; nil means filter.Default.
	Registry *filter.Registry
	// Methods narrows the evaluation to the named methods; empty means
	// every registered method, in registry order.
	Methods []string
	// TopK / Frac pin the comparison size for rankable methods (Compare
	// only; fixed-size and extract-only methods keep their natural size,
	// as in the paper's sweep figures). When neither is set Compare
	// defaults to Frac = 0.1.
	TopK    int
	TopKSet bool
	Frac    float64
	FracSet bool
	// Parallel requests each method's multi-core scorer when it has one.
	Parallel bool
	// MaxConcurrent bounds how many methods evaluate at once; 0 means
	// all of them (one goroutine per method). The backboned daemon sets
	// 1 so a single /evaluate request consumes one worker-pool slot's
	// worth of scoring at a time, like its sibling endpoints.
	MaxConcurrent int
	// Params are ride-along parameter overrides, applied leniently: each
	// method resolves only the parameters it declares (BackboneAll
	// semantics). A parameter no selected method declares is an error.
	Params filter.Params
	// Next, when non-nil, is the t+1 observation of the same network and
	// enables the Stability criterion.
	Next *graph.Graph
	// Truth, when non-nil, is the planted ground-truth graph and enables
	// the Recovery criterion.
	Truth *graph.Graph
	// Designer + Dataset enable the Quality criterion (R² ratio of the
	// designer's OLS model restricted to each backbone).
	Designer Designer
	Dataset  string
	// Source, when non-nil, replaces direct scoring; see ScoreSource.
	Source ScoreSource
	// Progress, when non-nil, receives per-method scoring progress. It
	// is called concurrently from the per-method goroutines.
	Progress func(method string, done, total int)
}

// MethodEval grades one method's backbone under the configured
// criteria. Criterion fields are NaN (JSON: null) when their inputs
// were not supplied or the criterion is undefined on this graph.
type MethodEval struct {
	Method string             `json:"method"`
	Title  string             `json:"title"`
	Params map[string]float64 `json:"params,omitempty"`
	// Err is the method's runtime failure ("" when it ran): e.g. the
	// doubly stochastic transformation not existing for this graph — the
	// "n/a" entries of the paper's Table II. Criteria are NaN when set.
	Err string `json:"error,omitempty"`
	// Edges is the backbone size; EdgeShare its fraction of the input's
	// edges (informative for fixed-size methods, which ignore TopK/Frac).
	Edges     int   `json:"edges"`
	EdgeShare Float `json:"edge_share"`
	// Coverage is the share of originally non-isolated nodes kept
	// non-isolated (Fig 7).
	Coverage Float `json:"coverage"`
	// Stability is the cross-snapshot Spearman weight correlation over
	// backbone edges (Fig 8); NaN without Config.Next.
	Stability Float `json:"stability"`
	// Recovery is the Jaccard similarity to the ground-truth edge set
	// (Fig 4); NaN without Config.Truth.
	Recovery Float `json:"recovery"`
	// Quality is the restricted-OLS R² ratio (Table II); NaN without
	// Config.Designer.
	Quality Float `json:"quality"`
	// Composite is the mean of the available criteria — the ranking key.
	Composite Float `json:"composite"`
	// ScoreCached reports that the significance table came from the
	// ScoreSource's cache, skipping scoring entirely.
	ScoreCached bool  `json:"score_cached,omitempty"`
	DurationMs  int64 `json:"duration_ms"`

	// scored marks methods that needed a significance table at all
	// (extract-only runs never score); it feeds Report.ScoredMethods.
	scored bool
}

// Report is the full evaluation of one graph: per-method criteria plus,
// for Compare runs, the size-matched ranking.
type Report struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// SizeMatched marks Compare runs: rankable methods were cut to
	// TargetEdges before grading, the paper's equal-|E*| protocol.
	SizeMatched bool `json:"size_matched"`
	TargetEdges int  `json:"target_edges,omitempty"`
	// Methods holds one entry per evaluated method, in selection order.
	Methods []*MethodEval `json:"methods"`
	// Ranking lists the methods that ran, best Composite first
	// (Compare only).
	Ranking []string `json:"ranking,omitempty"`
	// ScoredMethods counts methods that needed a significance table;
	// CacheHits how many of those tables the ScoreSource served without
	// scoring. ScoredMethods == CacheHits means the run scored nothing.
	ScoredMethods int   `json:"scored_methods"`
	CacheHits     int   `json:"cache_hits"`
	DurationMs    int64 `json:"duration_ms"`
}

// Evaluate grades each selected method at its own natural operating
// point: scoring methods prune at their default (or overridden)
// threshold via their Cut rule, extract-only methods run their
// extractor. Use Compare for the paper's size-matched protocol.
func Evaluate(ctx context.Context, g *graph.Graph, cfg Config) (*Report, error) {
	return run(ctx, g, cfg, false)
}

// Compare grades every selected method at one common backbone size
// (TopK/Frac, default the top 10% of edges) — the paper's protocol of
// comparing algorithms at identical backbone sizes — and ranks them by
// composite criterion. Fixed-size methods (mst, ds) keep their natural
// size and are reported alongside, as in the paper's sweep figures.
func Compare(ctx context.Context, g *graph.Graph, cfg Config) (*Report, error) {
	return run(ctx, g, cfg, true)
}

// run is the shared engine: resolve the method set, precompute the
// shared Quality denominator, evaluate every method concurrently (one
// goroutine per method, mirroring BackboneAll), then aggregate.
func run(ctx context.Context, g *graph.Graph, cfg Config, sizeMatched bool) (*Report, error) {
	start := time.Now()
	reg := cfg.Registry
	if reg == nil {
		reg = filter.Default
	}
	names := cfg.Methods
	if len(names) == 0 {
		names = reg.Names()
	}
	selected := make([]*filter.Method, 0, len(names))
	for _, name := range names {
		m, err := reg.Lookup(name)
		if err != nil {
			return nil, err
		}
		selected = append(selected, m)
	}
	// Ride-along parameters must be declared by at least one selected
	// method — an undeclared one is a misspelling (BackboneAll rule).
	// Sorted order pins which one the error names.
	for _, name := range cfg.Params.Names() {
		declared := false
		for _, m := range selected {
			if _, ok := m.Param(name); ok {
				declared = true
				break
			}
		}
		if !declared {
			return nil, &filter.ParamError{Param: name, Reason: "no selected method declares this parameter", Err: filter.ErrUnknownParam}
		}
	}

	// Comparison size for rankable methods.
	target := 0
	if sizeMatched {
		switch {
		case cfg.TopKSet:
			target = cfg.TopK
		case cfg.FracSet:
			target = int(cfg.Frac*float64(g.NumEdges()) + 0.5)
		default:
			target = int(0.1*float64(g.NumEdges()) + 0.5)
		}
		if target < 0 {
			return nil, &filter.ParamError{Param: "top", Reason: fmt.Sprintf("comparison size %d must be non-negative", target)}
		}
	}

	// The Quality denominator — the OLS fit on the full edge set — is
	// shared by every method, so it is computed once per run.
	r2Full := math.NaN()
	if cfg.Designer != nil {
		yF, xF, err := cfg.Designer.Design(cfg.Dataset, g.Edges())
		if err != nil {
			return nil, fmt.Errorf("eval: full design: %w", err)
		}
		fit, err := stats.OLS(yF, xF...)
		if err != nil {
			return nil, fmt.Errorf("eval: full fit: %w", err)
		}
		r2Full = fit.R2
	}

	rep := &Report{
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		SizeMatched: sizeMatched,
		TargetEdges: target,
		Methods:     make([]*MethodEval, len(selected)),
	}
	var sem chan struct{}
	if cfg.MaxConcurrent > 0 {
		sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	var wg sync.WaitGroup
	for i, m := range selected {
		wg.Add(1)
		go func(i int, m *filter.Method) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			rep.Methods[i] = evaluateMethod(ctx, g, m, cfg, sizeMatched, target, r2Full)
		}(i, m)
	}
	wg.Wait()
	// Cooperative cancellation: any per-method ctx failure means the
	// whole run was cut short, not that a method is infeasible.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, me := range rep.Methods {
		if me.ScoreCached {
			rep.CacheHits++
		}
		if me.scored {
			rep.ScoredMethods++
		}
	}
	if sizeMatched {
		rep.Ranking = ranking(rep.Methods)
	}
	rep.DurationMs = time.Since(start).Milliseconds()
	return rep, nil
}

// ranking orders the methods that ran by Composite, descending, with
// NaN composites last and selection order breaking ties — deterministic
// across runs.
func ranking(evals []*MethodEval) []string {
	idx := make([]int, 0, len(evals))
	for i, me := range evals {
		if me.Err == "" {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ca, cb := float64(evals[idx[a]].Composite), float64(evals[idx[b]].Composite)
		switch {
		case math.IsNaN(ca):
			return false
		case math.IsNaN(cb):
			return true
		default:
			return ca > cb
		}
	})
	out := make([]string, len(idx))
	for i, id := range idx {
		out[i] = evals[id].Method
	}
	return out
}

// lenientParams keeps only the overrides the method declares —
// BackboneAll's ride-along semantics.
func lenientParams(m *filter.Method, overrides filter.Params) filter.Params {
	kept := filter.Params{}
	//lint:detiter-ok filtering into another map; the kept set is order-independent
	for name, v := range overrides {
		if _, ok := m.Param(name); ok {
			kept[name] = v
		}
	}
	return kept
}

// evaluateMethod runs one method and grades its backbone. Failures land
// in MethodEval.Err (criteria NaN), matching the "n/a" cells of the
// paper's tables; context expiry is surfaced the same way and promoted
// to a run-level error by the caller.
func evaluateMethod(ctx context.Context, g *graph.Graph, m *filter.Method, cfg Config, sizeMatched bool, target int, r2Full float64) (me *MethodEval) {
	start := time.Now()
	nan := Float(math.NaN())
	me = &MethodEval{
		Method: m.Name, Title: m.Title,
		EdgeShare: nan, Coverage: nan, Stability: nan, Recovery: nan, Quality: nan, Composite: nan,
	}
	defer func() { me.DurationMs = time.Since(start).Milliseconds() }()

	params, err := m.Resolve(lenientParams(m, cfg.Params))
	if err != nil {
		me.Err = err.Error()
		return me
	}
	me.Params = params

	score := func() (*filter.Scores, error) {
		me.scored = true
		if cfg.Source != nil {
			s, cached, err := cfg.Source(ctx, m)
			me.ScoreCached = cached
			return s, err
		}
		opts := filter.ScoreOpts{Parallel: cfg.Parallel}
		if cfg.Progress != nil {
			opts.Progress = func(done, total int) { cfg.Progress(m.Name, done, total) }
		}
		return m.ScoreCtx(ctx, g, opts)
	}

	var bb *graph.Graph
	switch {
	case sizeMatched && m.CanScore() && !m.FixedSize:
		s, err := score()
		if err != nil {
			me.Err = err.Error()
			return me
		}
		bb = s.TopK(target)
	case !sizeMatched && m.CanScore() && m.Cut != nil:
		s, err := score()
		if err != nil {
			me.Err = err.Error()
			return me
		}
		bb = s.Threshold(m.Cut(params))
	default:
		// Fixed-size and extract-only methods (mst; ds in both modes, in
		// Evaluate mode because its default backbone is its extractor's):
		// their natural output, regardless of the comparison size — the
		// paper plots them as single points.
		if err := ctx.Err(); err != nil {
			me.Err = err.Error()
			return me
		}
		bb, err = m.Extractor.Extract(g)
		if err != nil {
			me.Err = err.Error()
			return me
		}
	}

	me.Edges = bb.NumEdges()
	if e := g.NumEdges(); e > 0 {
		me.EdgeShare = Float(float64(bb.NumEdges()) / float64(e))
	}
	me.Coverage = Float(Coverage(g, bb))
	if cfg.Next != nil {
		me.Stability = Float(Stability(bb, cfg.Next))
	}
	if cfg.Truth != nil {
		me.Recovery = Float(Recovery(bb, cfg.Truth))
	}
	if cfg.Designer != nil {
		me.Quality = Float(quality(cfg.Designer, cfg.Dataset, g, bb, r2Full))
	}
	me.Composite = composite(me)
	return me
}

// quality computes the Table-II criterion against a precomputed full
// fit: NaN (the paper's "n/a") when the backbone leaves no usable
// observations or the restricted fit fails.
func quality(d Designer, dataset string, full, bb *graph.Graph, r2Full float64) float64 {
	edges := RestrictEdges(full, bb)
	if len(edges) == 0 || math.IsNaN(r2Full) || r2Full <= 0 {
		return math.NaN()
	}
	yB, xB, err := d.Design(dataset, edges)
	if err != nil {
		return math.NaN()
	}
	fit, err := stats.OLS(yB, xB...)
	if err != nil {
		return math.NaN()
	}
	return fit.R2 / r2Full
}

// composite averages the available (non-NaN) criteria — coverage,
// stability, recovery, quality — into the ranking key. Which criteria
// are available depends on the inputs supplied in Config, so rankings
// are only comparable across runs with the same criteria enabled.
func composite(me *MethodEval) Float {
	var sum float64
	n := 0
	for _, v := range []Float{me.Coverage, me.Stability, me.Recovery, me.Quality} {
		if f := float64(v); !math.IsNaN(f) && !math.IsInf(f, 0) {
			sum += f
			n++
		}
	}
	if n == 0 {
		return Float(math.NaN())
	}
	return Float(sum / float64(n))
}
