package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/graph"

	// The algorithm packages self-register their methods into the
	// default registry the engine draws from.
	_ "repro/internal/backbone"
	_ "repro/internal/core"
)

// engineGraph builds a connected weighted test graph with clear
// signal/noise structure so every method has something to keep.
func engineGraph(t testing.TB, m int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	n := m/4 + 2
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.MustAddEdge(u, v, 1+rng.Float64()*20)
		added++
	}
	return b.Build()
}

func TestEvaluateDefaults(t *testing.T) {
	g := engineGraph(t, 400)
	rep, err := Evaluate(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Methods) != len(filter.All()) {
		t.Fatalf("evaluated %d methods, registry has %d", len(rep.Methods), len(filter.All()))
	}
	if rep.SizeMatched || len(rep.Ranking) != 0 {
		t.Error("Evaluate must not size-match or rank")
	}
	for _, me := range rep.Methods {
		if me.Err != "" {
			continue
		}
		if c := float64(me.Coverage); math.IsNaN(c) || c < 0 || c > 1 {
			t.Errorf("%s: coverage = %v", me.Method, c)
		}
		// No snapshot/truth/design supplied: those criteria must be NaN.
		for name, v := range map[string]Float{"stability": me.Stability, "recovery": me.Recovery, "quality": me.Quality} {
			if !math.IsNaN(float64(v)) {
				t.Errorf("%s: %s = %v without inputs, want NaN", me.Method, name, v)
			}
		}
	}
}

func TestCompareSizeMatchAndRanking(t *testing.T) {
	g := engineGraph(t, 600)
	target := 60
	rep, err := Compare(context.Background(), g, Config{TopK: target, TopKSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SizeMatched || rep.TargetEdges != target {
		t.Fatalf("size matching lost: %+v", rep)
	}
	ran := 0
	for _, me := range rep.Methods {
		if me.Err != "" {
			continue
		}
		ran++
		m, err := filter.Lookup(me.Method)
		if err != nil {
			t.Fatal(err)
		}
		if m.CanScore() && !m.FixedSize && me.Edges != target {
			t.Errorf("%s: %d edges, want size-matched %d", me.Method, me.Edges, target)
		}
	}
	if len(rep.Ranking) != ran {
		t.Errorf("ranking has %d entries, %d methods ran", len(rep.Ranking), ran)
	}
	// The ranking is sorted by composite, best first.
	byName := map[string]*MethodEval{}
	for _, me := range rep.Methods {
		byName[me.Method] = me
	}
	for i := 1; i < len(rep.Ranking); i++ {
		a, b := float64(byName[rep.Ranking[i-1]].Composite), float64(byName[rep.Ranking[i]].Composite)
		if !math.IsNaN(a) && !math.IsNaN(b) && a < b {
			t.Errorf("ranking not sorted: %v(%v) before %v(%v)", rep.Ranking[i-1], a, rep.Ranking[i], b)
		}
	}
}

func TestCompareCriteriaAgainstDirectCalls(t *testing.T) {
	g := engineGraph(t, 400)
	next := engineGraph(t, 300)
	truth := g.FilterEdges(func(_ int, e graph.Edge) bool { return e.Weight > 12 })
	rep, err := Compare(context.Background(), g, Config{
		Methods: []string{"nc"},
		TopK:    truth.NumEdges(), TopKSet: true,
		Next: next, Truth: truth,
	})
	if err != nil {
		t.Fatal(err)
	}
	me := rep.Methods[0]
	// Recompute through the pipeline primitives and the criteria
	// directly; the engine must agree bit-for-bit.
	m, _ := filter.Lookup("nc")
	s, err := m.Score(g, false)
	if err != nil {
		t.Fatal(err)
	}
	bb := s.TopK(truth.NumEdges())
	if want := Coverage(g, bb); float64(me.Coverage) != want {
		t.Errorf("coverage = %v, direct %v", me.Coverage, want)
	}
	if want := Stability(bb, next); float64(me.Stability) != want {
		t.Errorf("stability = %v, direct %v", me.Stability, want)
	}
	if want := Recovery(bb, truth); float64(me.Recovery) != want {
		t.Errorf("recovery = %v, direct %v", me.Recovery, want)
	}
}

func TestEngineErrors(t *testing.T) {
	g := engineGraph(t, 100)
	if _, err := Evaluate(context.Background(), g, Config{Methods: []string{"bogus"}}); !errors.Is(err, filter.ErrUnknownMethod) {
		t.Errorf("unknown method error = %v", err)
	}
	if _, err := Evaluate(context.Background(), g, Config{Params: filter.Params{"nope": 1}}); !errors.Is(err, filter.ErrUnknownParam) {
		t.Errorf("undeclared ride-along param error = %v", err)
	}
	// Declared by at least one method: rides along leniently.
	rep, err := Evaluate(context.Background(), g, Config{
		Methods: []string{"nc", "mst"},
		Params:  filter.Params{"delta": 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Methods[0].Params["delta"] != 2.5 {
		t.Errorf("nc params = %v, want delta 2.5", rep.Methods[0].Params)
	}
	if rep.Methods[1].Err != "" {
		t.Errorf("mst must ignore the ride-along delta, got err %q", rep.Methods[1].Err)
	}
	// Cancelled context surfaces as the context error, not per-method n/a.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compare(ctx, g, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run error = %v", err)
	}
}

// TestScoreSourceReuse: a caching source is consulted once per method
// per run, and a second run served entirely from the cache reports
// CacheHits == ScoredMethods — the daemon's "re-evaluating a cached
// body skips scoring" contract.
func TestScoreSourceReuse(t *testing.T) {
	g := engineGraph(t, 400)
	// The engine consults the source from concurrent per-method
	// goroutines — the fake cache must lock like a real one would.
	var mu sync.Mutex
	cache := map[string]*filter.Scores{}
	calls := map[string]int{}
	src := func(ctx context.Context, m *filter.Method) (*filter.Scores, bool, error) {
		mu.Lock()
		s, ok := cache[m.Name]
		mu.Unlock()
		if ok {
			return s, true, nil
		}
		s, err := m.ScoreCtx(ctx, g, filter.ScoreOpts{})
		if err != nil {
			return nil, false, err
		}
		mu.Lock()
		calls[m.Name]++
		cache[m.Name] = s
		mu.Unlock()
		return s, false, nil
	}
	cfg := Config{Source: src}
	rep1, err := Compare(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.ScoredMethods == 0 || rep1.CacheHits != 0 {
		t.Fatalf("first run: scored %d, cache hits %d", rep1.ScoredMethods, rep1.CacheHits)
	}
	for name, n := range calls {
		if n != 1 {
			t.Errorf("%s scored %d times in one comparison", name, n)
		}
	}
	rep2, err := Compare(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != rep2.ScoredMethods || rep2.ScoredMethods != rep1.ScoredMethods {
		t.Errorf("second run: %d cache hits of %d scored methods, want all (first run scored %d)",
			rep2.CacheHits, rep2.ScoredMethods, rep1.ScoredMethods)
	}
	for _, me := range rep2.Methods {
		m, _ := filter.Lookup(me.Method)
		if m.CanScore() && !m.FixedSize && !me.ScoreCached {
			t.Errorf("%s not served from cache on second run", me.Method)
		}
	}
}

// TestReportJSONNaNAsNull is the regression test for the NaN-criteria
// bugfix: Coverage/Stability return NaN on empty denominators, and
// encoding/json rejects NaN — the report must marshal them as explicit
// nulls, and unmarshal them back to NaN.
func TestReportJSONNaNAsNull(t *testing.T) {
	g := engineGraph(t, 60)
	rep, err := Compare(context.Background(), g, Config{Methods: []string{"nc", "mst"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report with NaN criteria failed to marshal: %v", err)
	}
	// No snapshot was supplied, so every method's stability is NaN and
	// must appear as a literal null.
	if !strings.Contains(string(data), `"stability":null`) {
		t.Errorf("NaN stability not encoded as null: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.Methods[0].Stability)) {
		t.Errorf("null did not round-trip to NaN: %v", back.Methods[0].Stability)
	}
	// Direct Float checks, including the infinities.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, err := json.Marshal(Float(v))
		if err != nil || string(b) != "null" {
			t.Errorf("Float(%v) marshaled to %q, %v", v, b, err)
		}
	}
	if b, _ := json.Marshal(Float(0.25)); string(b) != "0.25" {
		t.Errorf("Float(0.25) = %s", b)
	}
}

// TestEvaluateNativeThresholds: Evaluate prunes scoring methods at
// their own Cut rule — nc at delta, overridable via Params.
func TestEvaluateNativeThresholds(t *testing.T) {
	g := engineGraph(t, 400)
	loose, err := Evaluate(context.Background(), g, Config{Methods: []string{"nc"}, Params: filter.Params{"delta": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Evaluate(context.Background(), g, Config{Methods: []string{"nc"}, Params: filter.Params{"delta": 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Methods[0].Edges <= strict.Methods[0].Edges {
		t.Errorf("delta 0.5 kept %d edges, delta 3.5 kept %d — threshold not applied",
			loose.Methods[0].Edges, strict.Methods[0].Edges)
	}
}

func TestRankingDeterminism(t *testing.T) {
	g := engineGraph(t, 300)
	var first []string
	for i := 0; i < 3; i++ {
		rep, err := Compare(context.Background(), g, Config{Frac: 0.2, FracSet: true})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep.Ranking
			continue
		}
		if fmt.Sprint(rep.Ranking) != fmt.Sprint(first) {
			t.Fatalf("ranking changed across runs: %v vs %v", rep.Ranking, first)
		}
	}
}
