package occupations

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stats"
)

func smallConfig() Config {
	return Config{Seed: 5, Majors: 4, MinorsPerMajor: 2, OccsPerMinor: 8,
		CoreSkills: 10, GenericSkills: 15}
}

func TestGenerateShapes(t *testing.T) {
	d := Generate(smallConfig())
	n := 4 * 2 * 8
	if d.NumOccupations() != n {
		t.Fatalf("occupations = %d, want %d", d.NumOccupations(), n)
	}
	if len(d.Major) != n || len(d.Minor) != n || len(d.Size) != n {
		t.Fatal("attribute slices wrong length")
	}
	nSkill := 4*2*10 + 15
	for i := range d.Skills {
		if len(d.Skills[i]) != nSkill {
			t.Fatalf("skill row %d length %d, want %d", i, len(d.Skills[i]), nSkill)
		}
	}
	if d.CoOccurrence.Directed() {
		t.Error("co-occurrence must be undirected")
	}
	if !d.Flows.Directed() {
		t.Error("flows must be directed")
	}
	for i := 0; i < n; i++ {
		if d.Major[i] != d.Minor[i]/2 {
			t.Errorf("major/minor inconsistent at %d", i)
		}
		if d.Size[i] <= 0 {
			t.Errorf("size %v", d.Size[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1 := Generate(smallConfig())
	d2 := Generate(smallConfig())
	if d1.CoOccurrence.TotalWeight() != d2.CoOccurrence.TotalWeight() {
		t.Error("co-occurrence not deterministic")
	}
	if d1.Flows.TotalWeight() != d2.Flows.TotalWeight() {
		t.Error("flows not deterministic")
	}
}

func TestHairballDensity(t *testing.T) {
	// Generic skills should make the co-occurrence network near-complete
	// — the hairball motivating backboning.
	d := Generate(smallConfig())
	n := d.NumOccupations()
	possible := n * (n - 1) / 2
	density := float64(d.CoOccurrence.NumEdges()) / float64(possible)
	if density < 0.9 {
		t.Errorf("co-occurrence density = %v, want hairball (>= 0.9)", density)
	}
}

func TestWithinGroupOverlapIsHigher(t *testing.T) {
	d := Generate(smallConfig())
	n := d.NumOccupations()
	var within, between []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w, _ := d.CoOccurrence.Weight(i, j)
			if d.Minor[i] == d.Minor[j] {
				within = append(within, w)
			} else if d.Major[i] != d.Major[j] {
				between = append(between, w)
			}
		}
	}
	mw, mb := stats.Mean(within), stats.Mean(between)
	if mw <= mb+2 {
		t.Errorf("within-minor overlap %v not clearly above cross-major %v", mw, mb)
	}
}

func TestFlowsFollowRelatedness(t *testing.T) {
	d := Generate(smallConfig())
	n := d.NumOccupations()
	var within, between []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			w, _ := d.Flows.Weight(i, j)
			if d.Minor[i] == d.Minor[j] {
				within = append(within, w)
			} else if d.Major[i] != d.Major[j] {
				between = append(between, w)
			}
		}
	}
	if stats.Mean(within) <= stats.Mean(between) {
		t.Errorf("within flows %v <= cross flows %v", stats.Mean(within), stats.Mean(between))
	}
}

func TestFlowDesignAndPrediction(t *testing.T) {
	d := Generate(smallConfig())
	pairs := d.AllPairs()
	n := d.NumOccupations()
	if len(pairs) != n*(n-1) {
		t.Fatalf("pairs = %d", len(pairs))
	}
	y, xs := d.FlowDesign(pairs)
	if len(y) != len(pairs) || len(xs) != 3 {
		t.Fatal("design shape wrong")
	}
	res, err := stats.OLS(y, xs...)
	if err != nil {
		t.Fatal(err)
	}
	r := math.Sqrt(math.Max(0, res.R2))
	if r < 0.2 {
		t.Errorf("flow prediction corr = %v, want meaningful (paper: 0.390)", r)
	}
	// Skill co-occurrence must have a positive coefficient.
	if res.Coef[1] <= 0 {
		t.Errorf("C_ij coefficient = %v, want positive", res.Coef[1])
	}
}

func TestPairsFromBackbone(t *testing.T) {
	d := Generate(smallConfig())
	bb := d.CoOccurrence.FilterEdges(func(id int, _ graph.Edge) bool { return id < 5 })
	pairs := PairsFromBackbone(bb)
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d, want 10 (both directions of 5 edges)", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Error("self pair")
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
		if !seen[[2]int{p[1], p[0]}] {
			// its mirror must eventually appear; checked after loop
			continue
		}
	}
	for _, p := range pairs {
		if !seen[[2]int{p[1], p[0]}] {
			t.Errorf("mirror of %v missing", p)
		}
	}
}
