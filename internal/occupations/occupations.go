// Package occupations synthesizes the data behind the paper's case
// study (Section VI): an O*NET-like occupation-skill matrix and
// CPS-like inter-occupational labor flows.
//
// The real inputs are public (O*NET 17.0 and the Census CPS) but not
// redistributable here, so the generator plants the structure the case
// study depends on: occupations grouped into an expert two-digit
// classification, minor groups sharing core skill clusters, a pool of
// generic skills that nearly every occupation uses (the noise source
// that makes the raw co-occurrence network a hairball — "certain skills
// are so generic that they show up in most occupations, leading to
// spurious connections"), and labor flows driven by occupation size and
// true skill relatedness.
package occupations

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Config parameterizes the synthetic occupation world.
type Config struct {
	// Seed fixes all randomness.
	Seed int64
	// Majors is the number of one-digit major groups (default 9).
	Majors int
	// MinorsPerMajor is the number of two-digit groups per major
	// (default 3).
	MinorsPerMajor int
	// OccsPerMinor is the number of occupations per minor group
	// (default 16; defaults give 432 occupations, the scale of the
	// paper's O*NET-based network).
	OccsPerMinor int
	// CoreSkills is the number of specific skills per minor group
	// (default 14).
	CoreSkills int
	// GenericSkills is the number of skills shared economy-wide
	// (default 30).
	GenericSkills int
}

// DefaultConfig returns the case-study scale.
func DefaultConfig() Config {
	return Config{Seed: 2610, Majors: 9, MinorsPerMajor: 3, OccsPerMinor: 16,
		CoreSkills: 14, GenericSkills: 30}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.Majors == 0 {
		c.Majors = d.Majors
	}
	if c.MinorsPerMajor == 0 {
		c.MinorsPerMajor = d.MinorsPerMajor
	}
	if c.OccsPerMinor == 0 {
		c.OccsPerMinor = d.OccsPerMinor
	}
	if c.CoreSkills == 0 {
		c.CoreSkills = d.CoreSkills
	}
	if c.GenericSkills == 0 {
		c.GenericSkills = d.GenericSkills
	}
}

// Data is a generated case-study instance.
type Data struct {
	// Names holds occupation codes like "23-0007".
	Names []string
	// Major and Minor are the ground-truth classification digits of each
	// occupation (the node colors and the modularity classes of the
	// paper's Figures 10-11).
	Major, Minor []int
	// Size is each occupation's employment (job switchers originate and
	// land proportionally to it).
	Size []float64
	// Skills[i][s] marks skill s as relevant to occupation i after the
	// O*NET-style importance-and-level thresholding, as *measured*:
	// survey noise adds and drops skills, and it is strongest for small
	// occupations, whose O*NET profiles rest on few respondents.
	Skills [][]bool
	// TrueSkills is the latent skill profile that actually drives labor
	// flows; analysis pipelines never see it.
	TrueSkills [][]bool
	// CoOccurrence is the undirected skill-sharing network: C_ij =
	// number of skills occupations i and j have in common.
	CoOccurrence *graph.Graph
	// Flows is the directed job-switcher network F_ij.
	Flows *graph.Graph
	// OutSwitch and InSwitch are total switches originating from and
	// arriving at each occupation (the S_i. and S_.j regression size
	// controls).
	OutSwitch, InSwitch []float64
}

// NumOccupations returns the node count.
func (d *Data) NumOccupations() int { return len(d.Names) }

// Generate builds a deterministic case-study instance.
func Generate(cfg Config) *Data {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nOcc := cfg.Majors * cfg.MinorsPerMajor * cfg.OccsPerMinor
	nMinor := cfg.Majors * cfg.MinorsPerMajor
	nSkill := nMinor*cfg.CoreSkills + cfg.GenericSkills

	d := &Data{
		Names: make([]string, nOcc),
		Major: make([]int, nOcc),
		Minor: make([]int, nOcc),
		Size:  make([]float64, nOcc),
	}
	for i := 0; i < nOcc; i++ {
		minor := i / cfg.OccsPerMinor
		d.Minor[i] = minor
		d.Major[i] = minor / cfg.MinorsPerMajor
		d.Names[i] = fmt.Sprintf("%d%d-%04d", d.Major[i]+1, minor%cfg.MinorsPerMajor+1, i)
		d.Size[i] = stats.SampleLogNormal(rng, 10, 1.1) // employment
	}

	// Skill matrix. Skill layout: minor-group cores first, then the
	// generic pool.
	d.TrueSkills = make([][]bool, nOcc)
	genericBase := nMinor * cfg.CoreSkills
	for i := 0; i < nOcc; i++ {
		d.TrueSkills[i] = make([]bool, nSkill)
		minor := d.Minor[i]
		// Own minor-group core: high probability.
		for s := 0; s < cfg.CoreSkills; s++ {
			if rng.Float64() < 0.75 {
				d.TrueSkills[i][minor*cfg.CoreSkills+s] = true
			}
		}
		// Sibling minors within the same major: moderate sharing — this
		// makes major groups recoverable as communities.
		for m := 0; m < nMinor; m++ {
			if m == minor || m/cfg.MinorsPerMajor != d.Major[i] {
				continue
			}
			for s := 0; s < cfg.CoreSkills; s++ {
				if rng.Float64() < 0.25 {
					d.TrueSkills[i][m*cfg.CoreSkills+s] = true
				}
			}
		}
		// Foreign minors: rare leakage.
		for m := 0; m < nMinor; m++ {
			if m/cfg.MinorsPerMajor == d.Major[i] {
				continue
			}
			for s := 0; s < cfg.CoreSkills; s++ {
				if rng.Float64() < 0.03 {
					d.TrueSkills[i][m*cfg.CoreSkills+s] = true
				}
			}
		}
		// Generic skills: the hairball source — most occupations "use"
		// most of them.
		for s := 0; s < cfg.GenericSkills; s++ {
			if rng.Float64() < 0.65 {
				d.TrueSkills[i][genericBase+s] = true
			}
		}
	}

	// Measured skills: survey noise flips entries, far more often for
	// small occupations (few O*NET respondents). The flipped entries
	// poison precisely the edges the Disparity Filter favors — any edge
	// is a large share of a small occupation's strength — while the NC
	// posterior variance discounts them.
	sizeMed := stats.Median(d.Size)
	d.Skills = make([][]bool, nOcc)
	for i := 0; i < nOcc; i++ {
		d.Skills[i] = make([]bool, nSkill)
		copy(d.Skills[i], d.TrueSkills[i])
		flip := 0.01 + 0.22*math.Exp(-d.Size[i]/sizeMed)
		for s := 0; s < nSkill; s++ {
			if rng.Float64() < flip {
				d.Skills[i][s] = !d.Skills[i][s]
			}
		}
	}

	// Co-occurrence network: C_ij = |skills in common|.
	b := graph.NewBuilder(false)
	for _, name := range d.Names {
		b.AddNode(name)
	}
	for i := 0; i < nOcc; i++ {
		for j := i + 1; j < nOcc; j++ {
			common := 0.0
			for s := 0; s < nSkill; s++ {
				if d.Skills[i][s] && d.Skills[j][s] {
					common++
				}
			}
			if common > 0 {
				b.MustAddEdge(i, j, common)
			}
		}
	}
	d.CoOccurrence = b.Build()

	// Labor flows: gravity in occupation size times true relatedness.
	// True relatedness uses only the specific (non-generic) skill
	// overlap, so flows are predictable from C_ij but not from its noisy
	// generic component — exactly the signal backboning must recover.
	fb := graph.NewBuilder(true)
	for _, name := range d.Names {
		fb.AddNode(name)
	}
	for i := 0; i < nOcc; i++ {
		for j := 0; j < nOcc; j++ {
			if i == j {
				continue
			}
			specific := 0.0
			for s := 0; s < genericBase; s++ {
				if d.TrueSkills[i][s] && d.TrueSkills[j][s] {
					specific++
				}
			}
			lam := 3e-8 * d.Size[i] * d.Size[j] * math.Exp(0.5*specific)
			if lam > 2e5 {
				lam = 2e5 // cap pathological pairs
			}
			f := float64(stats.SamplePoisson(rng, lam))
			if f > 0 {
				fb.MustAddEdge(i, j, f)
			}
		}
	}
	d.Flows = fb.Build()

	d.OutSwitch = make([]float64, nOcc)
	d.InSwitch = make([]float64, nOcc)
	for i := 0; i < nOcc; i++ {
		d.OutSwitch[i] = d.Flows.OutStrength(i)
		d.InSwitch[i] = d.Flows.InStrength(i)
	}
	return d
}

// FlowDesign builds the case study's flow-prediction regression
// F_ij = β1·C_ij + β2·S_i. + β3·S_.j over the given ordered pairs:
// y is the observed flow, the three predictor columns follow the model
// of Section VI. Pairs may include zero-flow and zero-co-occurrence
// combinations.
func (d *Data) FlowDesign(pairs [][2]int) (y []float64, xs [][]float64) {
	cw := d.CoOccurrence.WeightMap()
	fw := d.Flows.WeightMap()
	y = make([]float64, len(pairs))
	xs = [][]float64{make([]float64, len(pairs)), make([]float64, len(pairs)), make([]float64, len(pairs))}
	for r, p := range pairs {
		i, j := p[0], p[1]
		key := graph.EdgeKey{U: int32(i), V: int32(j)}
		if i > j {
			key = graph.EdgeKey{U: int32(j), V: int32(i)}
		}
		y[r] = fw[graph.EdgeKey{U: int32(i), V: int32(j)}]
		xs[0][r] = cw[key]
		xs[1][r] = d.OutSwitch[i]
		xs[2][r] = d.InSwitch[j]
	}
	return y, xs
}

// AllPairs returns every ordered pair (i, j), i != j.
func (d *Data) AllPairs() [][2]int {
	n := d.NumOccupations()
	out := make([][2]int, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// PairsFromBackbone returns the ordered pairs (both directions) of an
// undirected backbone's edges — the restriction used by the case
// study's "only the (i, j) pairs included in the backbone" regressions.
func PairsFromBackbone(bb *graph.Graph) [][2]int {
	out := make([][2]int, 0, 2*bb.NumEdges())
	for _, e := range bb.Edges() {
		out = append(out, [2]int{int(e.Src), int(e.Dst)})
		out = append(out, [2]int{int(e.Dst), int(e.Src)})
	}
	return out
}
