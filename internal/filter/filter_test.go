package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func scoredLine(weights []float64, scores []float64) *Scores {
	b := graph.NewBuilder(false)
	b.AddNodes(len(weights) + 1)
	for i, w := range weights {
		b.MustAddEdge(i, i+1, w)
	}
	return &Scores{G: b.Build(), Score: scores, Method: "test"}
}

func TestValidate(t *testing.T) {
	s := scoredLine([]float64{1, 2}, []float64{0.5, 0.7})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := scoredLine([]float64{1, 2}, []float64{0.5})
	if err := bad.Validate(); err == nil {
		t.Error("mismatched score length accepted")
	}
	s.Aux = map[string][]float64{"x": {1}}
	if err := s.Validate(); err == nil {
		t.Error("ragged aux column accepted")
	}
	nilg := &Scores{}
	if err := nilg.Validate(); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestThresholdStrict(t *testing.T) {
	s := scoredLine([]float64{1, 2, 3}, []float64{0.1, 0.5, 0.9})
	bb := s.Threshold(0.5)
	if bb.NumEdges() != 1 {
		t.Fatalf("strict threshold kept %d, want 1", bb.NumEdges())
	}
	if bb.Edges()[0].Weight != 3 {
		t.Errorf("wrong edge survived: %v", bb.Edges()[0])
	}
}

func TestTopKTieBreaking(t *testing.T) {
	// Equal scores: heavier edge wins; equal weight: lower ID wins.
	s := scoredLine([]float64{5, 9, 9}, []float64{1, 1, 1})
	bb := s.TopK(1)
	if bb.NumEdges() != 1 {
		t.Fatal("TopK(1) size wrong")
	}
	e := bb.Edges()[0]
	if e.Weight != 9 || e.Src != 1 {
		t.Errorf("tie-break picked %+v, want edge (1,2) weight 9", e)
	}
}

func TestThresholdForK(t *testing.T) {
	s := scoredLine([]float64{1, 2, 3}, []float64{0.2, 0.8, 0.5})
	if got := s.ThresholdForK(1); got != 0.8 {
		t.Errorf("ThresholdForK(1) = %v", got)
	}
	if got := s.ThresholdForK(3); got != 0.2 {
		t.Errorf("ThresholdForK(3) = %v", got)
	}
	if got := s.ThresholdForK(99); got != 0.2 {
		t.Errorf("ThresholdForK(99) = %v", got)
	}
	if got := s.ThresholdForK(0); got != 0 {
		t.Errorf("ThresholdForK(0) = %v", got)
	}
}

// Property: TopK sizes are exact, nested, and consistent with ranking.
func TestQuickTopKNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(30)
		weights := make([]float64, m)
		scores := make([]float64, m)
		for i := range weights {
			weights[i] = 1 + rng.Float64()*10
			scores[i] = rng.NormFloat64()
		}
		s := scoredLine(weights, scores)
		prev := map[graph.EdgeKey]bool{}
		for k := 0; k <= m; k++ {
			bb := s.TopK(k)
			if bb.NumEdges() != k {
				return false
			}
			cur := bb.EdgeSet()
			for key := range prev {
				if !cur[key] {
					return false // nesting violated
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
