package filter

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Params maps parameter names to values. Integer-valued parameters
// (Param.Integer) are carried as float64 and truncated at use.
type Params map[string]float64

// Clone returns an independent copy of p.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	//lint:detiter-ok copying into another map; insertion order is irrelevant
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Names returns p's parameter names in sorted order — the canonical
// iteration order, so validation errors and reports do not inherit
// Go's randomized map range order.
func (p Params) Names() []string {
	names := make([]string, 0, len(p))
	//lint:detiter-ok collecting keys only; sorted before use
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Param describes one tunable parameter of a backboning method: its
// flag/option name, default value and meaning. The schema drives CLI
// flag generation and option validation, so adding a parameter to a
// registered method automatically surfaces it everywhere.
type Param struct {
	// Name is the identifier used in options and CLI flags, e.g. "delta".
	Name string
	// Default is the value used when the caller does not set one.
	Default float64
	// Integer marks parameters that only take whole values (e.g. kcore's
	// k); the CLI renders them as integer flags.
	Integer bool
	// Desc is a one-line human meaning, e.g. "significance threshold in
	// standard deviations".
	Desc string
}

// Method is the registry entry unifying the Scorer and Extractor views
// of one backboning algorithm. It carries everything a caller needs to
// run the method without knowing its concrete type: identity,
// documentation, the typed parameter schema, and the pruning rule that
// turns parameters into a canonical Score threshold.
type Method struct {
	// Name is the short identifier used for lookup and on the command
	// line: "nc", "df", "hss", "ds", "mst", "nt", "kcore", "nc-binomial".
	Name string
	// Title is the display name used in tables ("Noise-Corrected").
	Title string
	// Desc is a one-line description with the originating citation.
	Desc string
	// Order fixes the presentation position in Registry.All — the
	// paper's methods keep its presentation order regardless of package
	// init sequence.
	Order int
	// Params is the typed parameter schema. Empty for parameter-free
	// methods (mst, ds).
	Params []Param
	// Scorer computes the per-edge significance table; nil for
	// extract-only methods (mst).
	Scorer Scorer
	// ParallelScorer, when non-nil, is a drop-in Scorer producing the
	// same table on all CPUs (the nc method provides one).
	ParallelScorer Scorer
	// Extractor directly produces a fixed backbone subgraph; nil for
	// threshold-only methods.
	Extractor Extractor
	// FixedSize marks methods whose backbone size cannot be tuned (mst,
	// and ds in its connectivity-stopping form), which appear as single
	// points in the paper's sweep figures.
	FixedSize bool
	// Cut maps resolved parameters to the canonical Score threshold
	// implementing the method's natural pruning rule (nc: δ itself;
	// df: 1−α; nc-binomial: −log10 α; kcore: k−½). Nil when the default
	// backbone comes from Extractor instead.
	Cut func(p Params) float64
	// Delta, when non-nil, declares the method's incremental
	// re-scoring capability — its dirtiness signature (delta.go).
	// Requires Scorer to implement RangeScorer so RescoreDirty can
	// recompute dirty row runs in place; methods that leave it nil get
	// a transparent full-rescore fallback.
	Delta *DeltaScorer
}

// Param returns the schema entry with the given name.
func (m *Method) Param(name string) (Param, bool) {
	for _, p := range m.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Defaults returns the method's parameters at their default values.
func (m *Method) Defaults() Params {
	p := make(Params, len(m.Params))
	for _, d := range m.Params {
		p[d.Name] = d.Default
	}
	return p
}

// Resolve merges overrides into the method's defaults. Overrides the
// schema does not declare are an error — passing delta to mst is a
// caller bug, not something to ignore silently.
func (m *Method) Resolve(overrides Params) (Params, error) {
	p := m.Defaults()
	// Sorted order pins which override a multi-error input is reported
	// for, keeping the failure deterministic.
	for _, name := range overrides.Names() {
		if _, ok := m.Param(name); !ok {
			return nil, &ParamError{
				Method: m.Name,
				Param:  name,
				Reason: fmt.Sprintf("not declared by this method (its parameters: %v)", m.paramNames()),
				Err:    ErrUnknownParam,
			}
		}
		p[name] = overrides[name]
	}
	return p, nil
}

// paramNames lists the schema's parameter names for error messages.
func (m *Method) paramNames() []string {
	names := make([]string, len(m.Params))
	for i, p := range m.Params {
		names[i] = p.Name
	}
	return names
}

// CanScore reports whether the method produces a Scores table, i.e.
// supports ranked (top-k) pruning.
func (m *Method) CanScore() bool { return m.Scorer != nil }

// ScoreOpts bundles the cross-cutting controls of one scoring run:
// parallelism, cooperative cancellation granularity and progress
// reporting. The zero value scores serially with no reporting.
type ScoreOpts struct {
	// Parallel requests the method's multi-core scorer when registered.
	Parallel bool
	// Workers overrides the parallel worker count (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after every scored checkpoint
	// range with the cumulative number of scored edges and the total.
	// Parallel runs invoke it concurrently from worker goroutines.
	Progress func(done, total int)
}

// Score computes the method's significance table, preferring the
// parallel scorer when parallel is set and one is registered.
func (m *Method) Score(g *graph.Graph, parallel bool) (*Scores, error) {
	return m.ScoreCtx(context.Background(), g, ScoreOpts{Parallel: parallel})
}

// ScoreCtx is Score under a context: scoring checks ctx between
// checkpoint ranges (see Checkpoint) and returns ctx.Err() when the
// context is cancelled, leaving the partial table behind. Scorers that
// do not decompose into ranges (hss, ds) run to completion and honor
// the context only at their boundaries.
func (m *Method) ScoreCtx(ctx context.Context, g *graph.Graph, o ScoreOpts) (*Scores, error) {
	s := m.Scorer
	if o.Parallel && m.ParallelScorer != nil {
		s = m.ParallelScorer
	}
	if s == nil {
		return nil, fmt.Errorf("filter: method %q: %w", m.Name, ErrNoScorer)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch sc := s.(type) {
	case ContextScorer:
		return sc.ScoresCtx(ctx, g, o)
	case RangeScorer:
		return SerialCtx(ctx, sc, g, o.Progress)
	}
	out, err := s.Scores(g)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Backbone extracts the method's backbone with the given parameter
// overrides (nil means all defaults): scoring methods apply their Cut
// rule, extract-only methods run their Extractor.
func (m *Method) Backbone(g *graph.Graph, overrides Params) (*graph.Graph, error) {
	bb, _, _, err := m.BackboneScored(g, overrides, false)
	return bb, err
}

// BackboneScored is Backbone exposing the full run: the backbone, the
// Scores table it was pruned from (nil for extract-only methods), and
// the resolved parameters, optionally scoring on all CPUs. It is the
// single implementation of the score-then-Cut rule.
func (m *Method) BackboneScored(g *graph.Graph, overrides Params, parallel bool) (*graph.Graph, *Scores, Params, error) {
	return m.BackboneScoredCtx(context.Background(), g, overrides, ScoreOpts{Parallel: parallel})
}

// BackboneScoredCtx is BackboneScored under a context: scoring methods
// propagate ctx into ScoreCtx, extract-only methods check it before
// running their (uninterruptible) extractor.
func (m *Method) BackboneScoredCtx(ctx context.Context, g *graph.Graph, overrides Params, o ScoreOpts) (*graph.Graph, *Scores, Params, error) {
	p, err := m.Resolve(overrides)
	if err != nil {
		return nil, nil, nil, err
	}
	if m.Scorer != nil && m.Cut != nil {
		s, err := m.ScoreCtx(ctx, g, o)
		if err != nil {
			return nil, nil, nil, err
		}
		return s.Threshold(m.Cut(p)), s, p, nil
	}
	if m.Extractor != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		bb, err := m.Extractor.Extract(g)
		return bb, nil, p, err
	}
	return nil, nil, nil, fmt.Errorf("filter: method %q has neither a pruning rule nor an extractor", m.Name)
}

// reservedParams are names claimed by the shared pipeline/CLI options
// (method selection, top-k pruning, I/O); a parameter schema reusing
// one would collide with the generated CLI flags, so registration
// rejects them up front — the collision then surfaces as a clear error
// in any test run of the registering package instead of a flag-redefine
// panic in the CLI.
var reservedParams = map[string]bool{
	"method": true, "top": true, "frac": true, "parallel": true,
	"directed": true, "o": true, "list": true, "help": true,
	"format": true, "outformat": true,
	"eval": true, "methods": true, "next": true, "response": true,
}

// validate checks a Method for registration.
func (m *Method) validate() error {
	if m == nil || m.Name == "" {
		return fmt.Errorf("filter: method must have a name")
	}
	if m.Scorer == nil && m.Extractor == nil {
		return fmt.Errorf("filter: method %q has neither scorer nor extractor", m.Name)
	}
	if m.Cut != nil && m.Scorer == nil {
		return fmt.Errorf("filter: method %q has a threshold rule but no scorer", m.Name)
	}
	if m.Scorer != nil && m.Cut == nil && m.Extractor == nil {
		return fmt.Errorf("filter: scoring method %q needs a threshold rule or an extractor for its default backbone", m.Name)
	}
	seen := make(map[string]bool, len(m.Params))
	for _, p := range m.Params {
		if p.Name == "" {
			return fmt.Errorf("filter: method %q has an unnamed parameter", m.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("filter: method %q declares parameter %q twice", m.Name, p.Name)
		}
		if reservedParams[p.Name] {
			return fmt.Errorf("filter: method %q parameter %q collides with a reserved pipeline option name", m.Name, p.Name)
		}
		seen[p.Name] = true
	}
	if m.Delta != nil {
		if _, ok := m.Scorer.(RangeScorer); !ok {
			return fmt.Errorf("filter: method %q declares a delta capability but its scorer is not a RangeScorer", m.Name)
		}
	}
	return nil
}

// Registry is a concurrency-safe name-indexed collection of Methods.
// The package-level Default registry is the one algorithms self-register
// into; independent registries exist for tests and embedders.
type Registry struct {
	mu      sync.RWMutex
	methods map[string]*Method
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{methods: make(map[string]*Method)}
}

// Register adds a method, rejecting invalid entries and duplicate names.
func (r *Registry) Register(m *Method) error {
	if err := m.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.methods[m.Name]; dup {
		return fmt.Errorf("filter: method %q already registered", m.Name)
	}
	r.methods[m.Name] = m
	return nil
}

// MustRegister is Register that panics on error — for package init.
func (r *Registry) MustRegister(m *Method) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup returns the method registered under name.
func (r *Registry) Lookup(name string) (*Method, error) {
	r.mu.RLock()
	m, ok := r.methods[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("filter: %w %q (known: %v)", ErrUnknownMethod, name, r.Names())
	}
	return m, nil
}

// All returns every registered method sorted by (Order, Name).
func (r *Registry) All() []*Method {
	r.mu.RLock()
	out := make([]*Method, 0, len(r.methods))
	//lint:detiter-ok collecting values only; sorted by (Order, Name) below
	for _, m := range r.methods {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the registered method names in All order.
func (r *Registry) Names() []string {
	ms := r.All()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// Default is the registry the algorithm packages self-register into.
var Default = NewRegistry()

// Register adds a method to the Default registry.
func Register(m *Method) error { return Default.Register(m) }

// MustRegister adds a method to the Default registry, panicking on error.
func MustRegister(m *Method) { Default.MustRegister(m) }

// Lookup finds a method in the Default registry.
func Lookup(name string) (*Method, error) { return Default.Lookup(name) }

// All lists the Default registry's methods in presentation order.
func All() []*Method { return Default.All() }
