package filter

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ParallelEdges partitions the edge-ID space [0, m) into contiguous
// chunks and runs fn on each chunk concurrently, returning once every
// chunk is done. workers <= 0 means GOMAXPROCS. fn is called with
// non-overlapping half-open ranges covering [0, m) exactly once; with
// one worker (or m <= 1) it runs inline on the caller's goroutine.
//
// This is the single chunked-worker loop shared by every parallel
// scorer — per-edge significance computations are independent given
// the graph, so splitting the table by ranges is race-free as long as
// fn only writes rows in [lo, hi).
func ParallelEdges(m, workers int, fn func(lo, hi int)) {
	if m <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers == 1 {
		fn(0, m)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RangeScorer is the decomposed form of a Scorer whose per-edge work is
// independent given the graph: table allocation and row computation are
// separate, so the same kernel can run serially or chunked across CPUs
// with bit-identical results.
type RangeScorer interface {
	// Name returns the scorer's short identifier ("nc", "df", ...).
	Name() string
	// NewTable allocates the empty Scores table (Score and Aux columns
	// sized to g.NumEdges(), Method set) without computing any rows.
	NewTable(g *graph.Graph) (*Scores, error)
	// ScoreEdges computes rows [lo, hi) of a table produced by NewTable.
	// It must not touch rows outside the range.
	ScoreEdges(s *Scores, lo, hi int)
}

// Serial computes a RangeScorer's full table on the calling goroutine —
// the standard body of the sequential Scores method.
func Serial(rs RangeScorer, g *graph.Graph) (*Scores, error) {
	s, err := rs.NewTable(g)
	if err != nil {
		return nil, err
	}
	rs.ScoreEdges(s, 0, len(s.Score))
	return s, nil
}

// Parallel wraps a RangeScorer into a drop-in Scorer that computes the
// identical table on all CPUs. Small graphs are scored serially: below
// MinEdges the goroutine fan-out costs more than it saves.
type Parallel struct {
	RS RangeScorer
	// Workers overrides the worker count (default: GOMAXPROCS).
	Workers int
	// MinEdges is the serial-fallback cutoff (default 4096).
	MinEdges int
}

// Parallelize returns the default parallel wrapping of rs.
func Parallelize(rs RangeScorer) *Parallel { return &Parallel{RS: rs} }

// Name implements Scorer.
func (p *Parallel) Name() string { return p.RS.Name() + "-parallel" }

// Scores implements Scorer. The result is bit-identical to the wrapped
// scorer's sequential output: the per-edge kernel is the same code, and
// rows do not interact.
func (p *Parallel) Scores(g *graph.Graph) (*Scores, error) {
	s, err := p.RS.NewTable(g)
	if err != nil {
		return nil, err
	}
	m := len(s.Score)
	minEdges := p.MinEdges
	if minEdges == 0 {
		minEdges = 4096
	}
	if m < minEdges {
		p.RS.ScoreEdges(s, 0, m)
	} else {
		ParallelEdges(m, p.Workers, func(lo, hi int) { p.RS.ScoreEdges(s, lo, hi) })
	}
	s.Method = p.Name()
	return s, nil
}
