package filter

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Checkpoint is the number of edges a scoring worker processes between
// cancellation checks and progress reports. Cancelling a context stops
// in-flight scoring within one checkpoint range per worker. It is a
// variable (not a constant) so tests can shrink the interval; treat it
// as read-only outside tests.
var Checkpoint = 4096

// ParallelEdges partitions the edge-ID space [0, m) into contiguous
// chunks and runs fn on each chunk concurrently, returning once every
// chunk is done. workers <= 0 means GOMAXPROCS. fn is called with
// non-overlapping half-open ranges covering [0, m) exactly once; with
// one worker (or m <= 1) it runs inline on the caller's goroutine.
//
// This is the single chunked-worker loop shared by every parallel
// scorer — per-edge significance computations are independent given
// the graph, so splitting the table by ranges is race-free as long as
// fn only writes rows in [lo, hi).
func ParallelEdges(m, workers int, fn func(lo, hi int)) {
	ParallelEdgesCtx(context.Background(), m, workers, nil, fn)
}

// ParallelEdgesCtx is ParallelEdges under a context with optional
// progress reporting. Each worker walks its chunk in Checkpoint-sized
// sub-ranges, checking ctx between them; when the context is cancelled
// every worker stops at its next checkpoint, the call returns ctx.Err()
// and the uncovered ranges are never passed to fn. progress, when
// non-nil, is invoked after each completed sub-range with the
// cumulative count of processed edges — concurrently, when more than
// one worker runs. A nil return value guarantees fn covered [0, m)
// exactly once.
func ParallelEdgesCtx(ctx context.Context, m, workers int, progress func(done, total int), fn func(lo, hi int)) error {
	if m <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	step := Checkpoint
	if step <= 0 {
		step = 1
	}
	var done atomic.Int64
	report := func(n int) {
		if progress != nil {
			progress(int(done.Add(int64(n))), m)
		}
	}
	// run covers [lo, hi) in checkpoint steps; false means cancelled.
	run := func(lo, hi int) bool {
		for sub := lo; sub < hi; sub += step {
			if ctx.Err() != nil {
				return false
			}
			end := sub + step
			if end > hi {
				end = hi
			}
			fn(sub, end)
			report(end - sub)
		}
		return true
	}
	if workers == 1 {
		if !run(0, m) {
			return ctx.Err()
		}
		return ctx.Err()
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// RangeScorer is the decomposed form of a Scorer whose per-edge work is
// independent given the graph: table allocation and row computation are
// separate, so the same kernel can run serially or chunked across CPUs
// with bit-identical results.
type RangeScorer interface {
	// Name returns the scorer's short identifier ("nc", "df", ...).
	Name() string
	// NewTable allocates the empty Scores table (Score and Aux columns
	// sized to g.NumEdges(), Method set) without computing any rows.
	NewTable(g *graph.Graph) (*Scores, error)
	// ScoreEdges computes rows [lo, hi) of a table produced by NewTable.
	// It must not touch rows outside the range.
	ScoreEdges(s *Scores, lo, hi int)
}

// ContextScorer is a Scorer that additionally supports cooperative
// cancellation and progress reporting. Method.ScoreCtx prefers this
// interface when the selected scorer implements it.
type ContextScorer interface {
	Scorer
	// ScoresCtx computes the table under ctx, honoring o.Workers and
	// o.Progress. On cancellation it returns ctx.Err() (and no table).
	ScoresCtx(ctx context.Context, g *graph.Graph, o ScoreOpts) (*Scores, error)
}

// Serial computes a RangeScorer's full table on the calling goroutine —
// the standard body of the sequential Scores method.
func Serial(rs RangeScorer, g *graph.Graph) (*Scores, error) {
	return SerialCtx(context.Background(), rs, g, nil)
}

// SerialCtx computes rs's table on the calling goroutine in Checkpoint
// steps, checking ctx between steps and reporting to progress.
func SerialCtx(ctx context.Context, rs RangeScorer, g *graph.Graph, progress func(done, total int)) (*Scores, error) {
	s, err := rs.NewTable(g)
	if err != nil {
		return nil, err
	}
	if err := ParallelEdgesCtx(ctx, len(s.Score), 1, progress, func(lo, hi int) {
		rs.ScoreEdges(s, lo, hi)
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// Parallel wraps a RangeScorer into a drop-in Scorer that computes the
// identical table on all CPUs. Small graphs are scored serially: below
// MinEdges the goroutine fan-out costs more than it saves.
type Parallel struct {
	RS RangeScorer
	// Workers overrides the worker count (default: GOMAXPROCS).
	Workers int
	// MinEdges is the serial-fallback cutoff (default 4096).
	MinEdges int
}

// Parallelize returns the default parallel wrapping of rs.
func Parallelize(rs RangeScorer) *Parallel { return &Parallel{RS: rs} }

// Name implements Scorer.
func (p *Parallel) Name() string { return p.RS.Name() + "-parallel" }

// Scores implements Scorer. The result is bit-identical to the wrapped
// scorer's sequential output: the per-edge kernel is the same code, and
// rows do not interact.
func (p *Parallel) Scores(g *graph.Graph) (*Scores, error) {
	return p.ScoresCtx(context.Background(), g, ScoreOpts{})
}

// ScoresCtx implements ContextScorer: the same bit-identical table,
// with cancellation checkpoints and progress reporting.
func (p *Parallel) ScoresCtx(ctx context.Context, g *graph.Graph, o ScoreOpts) (*Scores, error) {
	s, err := p.RS.NewTable(g)
	if err != nil {
		return nil, err
	}
	m := len(s.Score)
	workers := p.Workers
	if o.Workers != 0 {
		workers = o.Workers
	}
	minEdges := p.MinEdges
	if minEdges == 0 {
		minEdges = 4096
	}
	if m < minEdges {
		workers = 1
	}
	if err := ParallelEdgesCtx(ctx, m, workers, o.Progress, func(lo, hi int) {
		p.RS.ScoreEdges(s, lo, hi)
	}); err != nil {
		return nil, err
	}
	s.Method = p.Name()
	return s, nil
}
