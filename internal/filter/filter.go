// Package filter defines the common scoring-and-pruning framework shared
// by every backboning method in this repository.
//
// Backboning is a two-phase operation, mirroring the design of the
// paper's released Python module: a Scorer computes a per-edge
// significance table (Scores) from a weighted graph, and the table is
// then pruned — by significance threshold, by top-K, or by top share of
// edges. Separating the phases lets the experiments compare methods at
// exactly equal backbone sizes, as the paper does ("we fix the number of
// edges we include in the backbone", Section V-E).
package filter

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Scores is a per-edge significance table over a graph's canonical edges.
type Scores struct {
	// G is the graph the scores refer to; Score[i] belongs to G.Edges()[i].
	G *graph.Graph
	// Score is the canonical significance of each edge: higher means more
	// salient, and Threshold(t) keeps edges with Score > t. Methods map
	// their native statistic so that their natural pruning rule becomes a
	// plain threshold (NC: score/σ vs δ; DF: 1−α vs 1−α_crit; ...).
	Score []float64
	// Aux holds optional method-specific columns aligned with Score
	// (e.g. the NC backbone exposes "nc_score" and "sdev" so callers can
	// reproduce the paper's Figure 2 or compare two edges statistically).
	Aux map[string][]float64
	// Method names the producing algorithm.
	Method string
}

// Scorer computes an edge significance table for a graph.
type Scorer interface {
	// Name returns a short identifier such as "nc" or "df".
	Name() string
	// Scores computes the per-edge significance table.
	Scores(g *graph.Graph) (*Scores, error)
}

// Extractor directly produces a backbone subgraph. Parameter-free
// methods whose output is a fixed edge set (Maximum Spanning Tree,
// the connectivity-stopping Doubly Stochastic variant) implement this
// instead of, or in addition to, Scorer.
type Extractor interface {
	Name() string
	Extract(g *graph.Graph) (*graph.Graph, error)
}

// Validate checks internal consistency; all constructors in this module
// produce valid tables, so failures indicate programmer error.
func (s *Scores) Validate() error {
	if s.G == nil {
		return fmt.Errorf("filter: nil graph")
	}
	if len(s.Score) != s.G.NumEdges() {
		return fmt.Errorf("filter: %d scores for %d edges", len(s.Score), s.G.NumEdges())
	}
	// Sorted order pins which column a multi-error table is reported for.
	names := make([]string, 0, len(s.Aux))
	//lint:detiter-ok collecting keys only; sorted before use
	for name := range s.Aux {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(s.Aux[name]) != len(s.Score) {
			return fmt.Errorf("filter: aux column %q has %d rows, want %d", name, len(s.Aux[name]), len(s.Score))
		}
	}
	return nil
}

// Threshold returns the backbone keeping edges with Score > t.
// The full node set is preserved so coverage can be measured. One pass:
// survivors are collected directly off the score column and handed to
// SubgraphEdges, skipping the keep mask and its extra edge-slice scans.
func (s *Scores) Threshold(t float64) *graph.Graph {
	all := s.G.Edges()
	var edges []graph.Edge
	for id, v := range s.Score {
		if v > t {
			edges = append(edges, all[id])
		}
	}
	return s.G.SubgraphEdges(edges)
}

// CountAbove returns how many edges have Score > t.
func (s *Scores) CountAbove(t float64) int {
	n := 0
	for _, v := range s.Score {
		if v > t {
			n++
		}
	}
	return n
}

// outranks reports whether edge a ranks above edge b: higher score
// first, then higher weight, then lower edge ID. It is a strict total
// order, so every top-k edge set is unique and deterministic.
func (s *Scores) outranks(edges []graph.Edge, a, b int) bool {
	if s.Score[a] != s.Score[b] {
		return s.Score[a] > s.Score[b]
	}
	if edges[a].Weight != edges[b].Weight {
		return edges[a].Weight > edges[b].Weight
	}
	return a < b
}

// selectTop partially orders ids in place so that ids[:k] are the k
// highest-ranked edges (in unspecified order). Hoare-partition
// quickselect with median-of-three pivots: expected O(m), replacing
// the former full O(m log m) stable sort on the top-k path.
func (s *Scores) selectTop(ids []int, k int) {
	if k <= 0 || k >= len(ids) {
		return
	}
	edges := s.G.Edges()
	before := func(a, b int) bool { return s.outranks(edges, a, b) }
	lo, hi := 0, len(ids)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if before(ids[mid], ids[lo]) {
			ids[mid], ids[lo] = ids[lo], ids[mid]
		}
		if before(ids[hi], ids[lo]) {
			ids[hi], ids[lo] = ids[lo], ids[hi]
		}
		if before(ids[hi], ids[mid]) {
			ids[hi], ids[mid] = ids[mid], ids[hi]
		}
		pivot := ids[mid]
		i, j := lo, hi
		for i <= j {
			for before(ids[i], pivot) {
				i++
			}
			for before(pivot, ids[j]) {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// topIDs returns the ids of the k highest-ranked edges, unordered.
func (s *Scores) topIDs(k int) []int {
	ids := make([]int, len(s.Score))
	for i := range ids {
		ids[i] = i
	}
	s.selectTop(ids, k)
	return ids[:k]
}

// TopK returns the backbone with the k most significant edges
// (all edges if k exceeds the edge count).
func (s *Scores) TopK(k int) *graph.Graph {
	m := len(s.Score)
	if k < 0 {
		k = 0
	}
	if k > m {
		k = m
	}
	keep := make([]bool, m)
	if k == m {
		for i := range keep {
			keep[i] = true
		}
	} else if k > 0 {
		for _, id := range s.topIDs(k) {
			keep[id] = true
		}
	}
	return s.G.Subgraph(keep)
}

// TopFraction returns the backbone keeping the given share (0..1] of
// edges, rounding to the nearest whole edge.
func (s *Scores) TopFraction(f float64) *graph.Graph {
	k := int(f*float64(len(s.Score)) + 0.5)
	return s.TopK(k)
}

// ThresholdForK returns the significance value of the k-th ranked edge,
// i.e. the cut that TopK(k) implies. NaN-free inputs assumed.
func (s *Scores) ThresholdForK(k int) float64 {
	if k <= 0 || len(s.Score) == 0 {
		return 0
	}
	if k > len(s.Score) {
		k = len(s.Score)
	}
	// The k-th ranked edge is the lowest-ranked of the top k.
	ids := s.topIDs(k)
	edges := s.G.Edges()
	worst := ids[0]
	for _, id := range ids[1:] {
		if s.outranks(edges, worst, id) {
			worst = id
		}
	}
	return s.Score[worst]
}
