package filter

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestParallelEdgesCtxCancelStopsWork: cancelling mid-run stops the
// workers at their next checkpoint — the uncovered ranges are never
// visited and the call reports context.Canceled.
func TestParallelEdgesCtxCancelStopsWork(t *testing.T) {
	const m = 1 << 20
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var visited atomic.Int64
		var once sync.Once
		err := ParallelEdgesCtx(ctx, m, workers, nil, func(lo, hi int) {
			visited.Add(int64(hi - lo))
			once.Do(cancel) // cancel from inside the first scored range
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Each worker may finish the sub-range it was inside, but no
		// worker starts a new one: at most workers × Checkpoint edges.
		if got := visited.Load(); got > int64(workers*Checkpoint) {
			t.Errorf("workers=%d: %d edges scored after cancellation, want <= %d", workers, got, workers*Checkpoint)
		}
		cancel()
	}
}

// TestParallelEdgesCtxCoverage: without cancellation the checkpointed
// runner still covers [0, m) exactly once and reports monotone progress
// ending at the total.
func TestParallelEdgesCtxCoverage(t *testing.T) {
	for _, m := range []int{1, 7, Checkpoint, Checkpoint + 1, 3*Checkpoint + 17} {
		for _, workers := range []int{1, 2, 7} {
			seen := make([]int32, m)
			var reported atomic.Int64
			err := ParallelEdgesCtx(context.Background(), m, workers,
				func(done, total int) {
					if total != m {
						t.Fatalf("progress total = %d, want %d", total, m)
					}
					reported.Store(int64(done))
				},
				func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
			if err != nil {
				t.Fatalf("m=%d workers=%d: %v", m, workers, err)
			}
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("m=%d workers=%d: index %d visited %d times", m, workers, i, n)
				}
			}
			if got := reported.Load(); got != int64(m) {
				t.Errorf("m=%d workers=%d: final progress %d, want %d", m, workers, got, m)
			}
		}
	}
}

// TestScoreCtxPreCancelled: an already-cancelled context fails fast,
// before any scoring.
func TestScoreCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := &Method{Name: "x", Scorer: stubScorer{}, Cut: func(Params) float64 { return 0 }}
	if _, err := m.ScoreCtx(ctx, nil, ScoreOpts{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ScoreCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

type stubScorer struct{}

func (stubScorer) Name() string { return "stub" }
func (stubScorer) Scores(g *graph.Graph) (*Scores, error) {
	return &Scores{G: g, Method: "stub"}, nil
}

// TestTypedErrors pins each sentinel to its producing call.
func TestTypedErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Lookup("nope"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("Lookup: %v, want ErrUnknownMethod", err)
	}
	m := &Method{Name: "x", Title: "X", Extractor: stubExtractor{}}
	if _, err := m.Resolve(Params{"delta": 1}); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("Resolve: %v, want ErrUnknownParam", err)
	}
	var pe *ParamError
	if _, err := m.Resolve(Params{"delta": 1}); !errors.As(err, &pe) || pe.Param != "delta" || pe.Method != "x" {
		t.Errorf("Resolve: %v, want *ParamError{Method: x, Param: delta}", err)
	}
	if _, err := m.Score(nil, false); !errors.Is(err, ErrNoScorer) {
		t.Errorf("Score: %v, want ErrNoScorer", err)
	}
}

type stubExtractor struct{}

func (stubExtractor) Name() string { return "stub" }
func (stubExtractor) Extract(g *graph.Graph) (*graph.Graph, error) {
	return g, nil
}
