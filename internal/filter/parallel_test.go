package filter

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestParallelEdgesCoverage: every index in [0, m) is visited exactly
// once, for worker counts below, at and above m. Run under -race (the
// CI default) this also exercises the fan-out for data races.
func TestParallelEdgesCoverage(t *testing.T) {
	for _, m := range []int{0, 1, 2, 7, 100, 4097} {
		for _, workers := range []int{0, 1, 2, 3, 16, 1000} {
			hits := make([]int32, m)
			ParallelEdges(m, workers, func(lo, hi int) {
				if lo < 0 || hi > m || lo >= hi {
					t.Errorf("m=%d workers=%d: bad range [%d,%d)", m, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("m=%d workers=%d: index %d visited %d times", m, workers, i, h)
				}
			}
		}
	}
}

// fakeRangeScorer writes a deterministic function of the edge ID so
// chunked and serial execution are trivially comparable.
type fakeRangeScorer struct{}

func (fakeRangeScorer) Name() string { return "fake" }

func (fakeRangeScorer) NewTable(g *graph.Graph) (*Scores, error) {
	m := g.NumEdges()
	return &Scores{
		G:      g,
		Score:  make([]float64, m),
		Method: "fake",
		Aux:    map[string][]float64{"aux": make([]float64, m)},
	}, nil
}

func (fakeRangeScorer) ScoreEdges(s *Scores, lo, hi int) {
	edges := s.G.Edges()
	aux := s.Aux["aux"]
	for id := lo; id < hi; id++ {
		s.Score[id] = float64(id) * edges[id].Weight
		aux[id] = -s.Score[id]
	}
}

func TestParallelizeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(false)
	b.AddNodes(200)
	for i := 0; i < 5000; i++ {
		u, v := rng.Intn(200), rng.Intn(200)
		if u != v {
			b.MustAddEdge(u, v, rng.Float64())
		}
	}
	g := b.Build()
	serial, err := Serial(fakeRangeScorer{}, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		p := &Parallel{RS: fakeRangeScorer{}, Workers: workers, MinEdges: 1}
		got, err := p.Scores(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Method != "fake-parallel" {
			t.Errorf("method = %q", got.Method)
		}
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := range serial.Score {
			if got.Score[i] != serial.Score[i] || got.Aux["aux"][i] != serial.Aux["aux"][i] {
				t.Fatalf("workers=%d: row %d differs", workers, i)
			}
		}
	}
}

// TestTopKMatchesFullSort pins the quickselect pruning path to a full
// stable sort of the ranking order, including ThresholdForK, across
// random score tables heavy with ties.
func TestTopKMatchesFullSort(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(trial%2 == 0)
		b.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				// Coarse weights force ties on both score and weight.
				b.MustAddEdge(u, v, float64(1+rng.Intn(3)))
			}
		}
		g := b.Build()
		m := g.NumEdges()
		s := &Scores{G: g, Score: make([]float64, m), Method: "test"}
		for i := range s.Score {
			s.Score[i] = float64(rng.Intn(4)) // heavy score ties
		}

		// Reference ranking: the seed's full stable sort.
		ids := make([]int, m)
		for i := range ids {
			ids[i] = i
		}
		edges := g.Edges()
		sortStableByRank(ids, s.Score, edges)

		for _, k := range []int{0, 1, m / 3, m - 1, m, m + 5} {
			bb := s.TopK(k)
			want := k
			if want < 0 {
				want = 0
			}
			if want > m {
				want = m
			}
			if bb.NumEdges() != want {
				t.Fatalf("trial %d: TopK(%d) kept %d edges", trial, k, bb.NumEdges())
			}
			wantKeep := make(map[graph.EdgeKey]bool, want)
			for _, id := range ids[:want] {
				wantKeep[g.Key(edges[id])] = true
			}
			for _, e := range bb.Edges() {
				if !wantKeep[g.Key(e)] {
					t.Fatalf("trial %d: TopK(%d) kept unranked edge %+v", trial, k, e)
				}
			}
			if k >= 1 && k <= m {
				if got, want := s.ThresholdForK(k), s.Score[ids[k-1]]; got != want {
					t.Fatalf("trial %d: ThresholdForK(%d) = %v, want %v", trial, k, got, want)
				}
			}
		}
	}
}

// sortStableByRank is the seed implementation of the ranking order:
// score desc, weight desc, id asc.
func sortStableByRank(ids []int, score []float64, edges []graph.Edge) {
	for i := 1; i < len(ids); i++ { // insertion sort: simple, stable
		for j := i; j > 0; j-- {
			a, b := ids[j], ids[j-1]
			better := false
			if score[a] != score[b] {
				better = score[a] > score[b]
			} else if edges[a].Weight != edges[b].Weight {
				better = edges[a].Weight > edges[b].Weight
			} else {
				better = a < b
			}
			if !better {
				break
			}
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
