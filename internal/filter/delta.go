package filter

// Incremental re-scoring: given a score table computed for one graph
// and the graph.Dirty record tying it to a delta-materialized
// successor, RescoreDirty produces the successor's table by copying
// every row the update stream cannot have changed and re-running the
// scorer only on the dirty rows. Which rows an update dirties is the
// method's dirtiness signature, declared on the registry Method via the
// DeltaScorer capability; methods without it fall back to a full
// rescore transparently, so callers never branch on capability.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Dirtiness classifies how far one edge update reaches into a method's
// score table.
type Dirtiness int

const (
	// DirtyEdge marks scores that are functions of the edge's own
	// weight only (naive threshold): an update dirties exactly the rows
	// whose weight changed, plus inserted rows.
	DirtyEdge Dirtiness = iota
	// DirtyEndpoints marks scores that additionally read endpoint
	// strength or degree (disparity): an update dirties the frontier —
	// every row incident to a touched node.
	DirtyEndpoints
	// DirtyGlobal marks scores with a global term (noise-corrected's
	// total weight): any update dirties the whole table. The
	// incremental path still skips parsing and CSR assembly but
	// re-scores every row.
	DirtyGlobal
)

// String names the signature for logs and docs.
func (d Dirtiness) String() string {
	switch d {
	case DirtyEdge:
		return "edge"
	case DirtyEndpoints:
		return "endpoints"
	case DirtyGlobal:
		return "global"
	}
	return fmt.Sprintf("Dirtiness(%d)", int(d))
}

// DeltaScorer is the incremental re-scoring capability a Method may
// declare. A method that declares one must have a Scorer implementing
// RangeScorer (Method.validate enforces this), so dirty row runs can be
// recomputed in place on a fresh table.
type DeltaScorer struct {
	// Dirtiness is the method's dirtiness signature: how far one edge
	// update reaches into its score table.
	Dirtiness Dirtiness
}

// RescoreDirty computes method m's score table for dirty.For, reusing
// rows from old — the table previously computed for dirty.Base — that
// the update stream between the two graphs cannot have changed. The
// result is bit-identical to scoring dirty.For from scratch; the int
// result is the number of rows actually re-scored.
//
// Fallback is transparent: if m declares no DeltaScorer capability, its
// scorer is not a RangeScorer, old is nil, or old was computed for a
// different graph than dirty.Base, the full ScoreCtx path runs instead
// (and the rescored count is the table size).
func RescoreDirty(ctx context.Context, m *Method, old *Scores, dirty graph.Dirty, o ScoreOpts) (*Scores, int, error) {
	g := dirty.For
	if g == nil {
		return nil, 0, fmt.Errorf("filter: RescoreDirty: dirty record has no target graph")
	}
	rs, ranged := m.Scorer.(RangeScorer)
	if m.Delta == nil || !ranged || old == nil || old.G != dirty.Base ||
		old.Method != m.Scorer.Name() || m.Delta.Dirtiness == DirtyGlobal {
		s, err := m.ScoreCtx(ctx, g, o)
		if err != nil {
			return nil, 0, err
		}
		return s, g.NumEdges(), nil
	}

	// Fast path: a delta materialization already knows the row-level
	// diff between the two graphs (graph.RowDiff), so clean rows are
	// carried over through the precomputed segment map and the dirty
	// set is read off the diff — no O(m) lockstep walk over the edge
	// slices. When the previous generation is surrendered
	// (Dirty.Exclusive) the old columns themselves become the new
	// table, segments shifted in place; otherwise they are block-copied
	// into a fresh table.
	if diff := dirty.Diff; diff != nil {
		var s *Scores
		if dirty.Exclusive {
			// The migration mutates the surrendered columns, so it must
			// not fail once started: one ctx check up front, none in
			// the (frontier-sized, bounded) rescore loop below.
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			s = migrateTable(old, g, diff)
		} else {
			var err error
			s, err = rs.NewTable(g)
			if err != nil {
				return nil, 0, err
			}
			cols, ok := pairColumns(s, old)
			if !ok {
				// Aux layout mismatch between the two tables — should
				// not happen for one method, but a full rescore is
				// always correct.
				full, ferr := m.ScoreCtx(ctx, g, o)
				if ferr != nil {
					return nil, 0, ferr
				}
				return full, g.NumEdges(), nil
			}
			for _, c := range cols {
				for _, sc := range diff.Copies {
					copy(c.dst[sc.ForLo:sc.ForLo+sc.Len], c.src[sc.BaseLo:sc.BaseLo+sc.Len])
				}
			}
		}
		rows := diff.Changed
		if m.Delta.Dirtiness == DirtyEndpoints {
			rows = diff.Frontier
		}
		rescored := 0
		for i := 0; i < len(rows); {
			if !dirty.Exclusive {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			lo := int(rows[i])
			hi := lo + 1
			i++
			for i < len(rows) && int(rows[i]) == hi && hi-lo < Checkpoint {
				hi++
				i++
			}
			rs.ScoreEdges(s, lo, hi)
			rescored += hi - lo
		}
		return s, rescored, nil
	}

	s, err := rs.NewTable(g)
	if err != nil {
		return nil, 0, err
	}
	cols, ok := pairColumns(s, old)
	if !ok {
		// Aux layout mismatch between the two tables — should not
		// happen for one method, but a full rescore is always correct.
		full, ferr := m.ScoreCtx(ctx, g, o)
		if ferr != nil {
			return nil, 0, ferr
		}
		return full, g.NumEdges(), nil
	}

	var dirtyNode []bool
	if m.Delta.Dirtiness == DirtyEndpoints {
		dirtyNode = make([]bool, g.NumNodes())
		for _, u := range dirty.Nodes {
			dirtyNode[u] = true
		}
	}

	dirtyRuns := planRescore(old.G.Edges(), g.Edges(), dirtyNode, cols)

	rescored := 0
	for _, r := range dirtyRuns {
		for lo := r[0]; lo < r[1]; lo += Checkpoint {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			hi := lo + Checkpoint
			if hi > r[1] {
				hi = r[1]
			}
			rs.ScoreEdges(s, lo, hi)
			rescored += hi - lo
		}
	}
	return s, rescored, nil
}

// tableSlack is the extra capacity a migrated column is reallocated
// with, so a run of insert-heavy updates pays for one reallocation and
// then shifts in place until the delta compacts.
const tableSlack = 4096

// migrateTable turns the surrendered previous-generation table into
// g's: every column whose capacity admits the new row count is resliced
// and its clean segments shifted in place — a pure re-weight batch
// moves nothing, since zero-shift segments are skipped — and columns
// that must grow beyond capacity (NewTable allocates exact-capacity
// columns, so the first insert after a full scoring lands here) are
// reallocated once with slack. Dirty rows are left stale; the caller
// re-scores all of them. The structure (Method, Aux names) is cloned
// from the old table, which the delta-capable scorers' NewTable
// implementations produce from those same fields alone.
func migrateTable(old *Scores, g *graph.Graph, diff *graph.RowDiff) *Scores {
	newM := g.NumEdges()
	move := func(src []float64) []float64 {
		if cap(src) >= newM {
			// Shift within the shared backing; sources are read through
			// src (the old length) since a shrinking batch leaves them
			// beyond the new length.
			dst := src[:newM]
			for _, sc := range diff.Copies {
				if sc.ForLo < sc.BaseLo {
					copy(dst[sc.ForLo:sc.ForLo+sc.Len], src[sc.BaseLo:sc.BaseLo+sc.Len])
				}
			}
			for k := len(diff.Copies) - 1; k >= 0; k-- {
				sc := diff.Copies[k]
				if sc.ForLo > sc.BaseLo {
					copy(dst[sc.ForLo:sc.ForLo+sc.Len], src[sc.BaseLo:sc.BaseLo+sc.Len])
				}
			}
			return dst
		}
		dst := make([]float64, newM, newM+tableSlack)
		for _, sc := range diff.Copies {
			copy(dst[sc.ForLo:sc.ForLo+sc.Len], src[sc.BaseLo:sc.BaseLo+sc.Len])
		}
		return dst
	}
	s := &Scores{G: g, Method: old.Method, Score: move(old.Score)}
	if len(old.Aux) > 0 {
		s.Aux = make(map[string][]float64, len(old.Aux))
		//lint:detiter-ok writes into a fresh map; iteration order is irrelevant
		for name, col := range old.Aux {
			s.Aux[name] = move(col)
		}
	}
	return s
}

// colPair ties one destination column of the new table to its source
// column in the old table.
type colPair struct{ dst, src []float64 }

// pairColumns lines up the Score and Aux columns of the new and old
// tables; ok is false when the old table is missing a column the new
// one has.
func pairColumns(s, old *Scores) ([]colPair, bool) {
	cols := []colPair{{dst: s.Score, src: old.Score}}
	names := make([]string, 0, len(s.Aux))
	//lint:detiter-ok keys are sorted before use
	for name := range s.Aux {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, ok := old.Aux[name]
		if !ok {
			return nil, false
		}
		cols = append(cols, colPair{dst: s.Aux[name], src: src})
	}
	return cols, true
}

// planRescore walks old and new canonical edge slices in lockstep,
// copies clean rows from the old columns into the new ones (in
// contiguous runs, so the copies are memmoves) and returns the [lo, hi)
// row runs that must be re-scored. A new row is clean when it matches
// an old edge bit-for-bit in weight and — when an endpoint frontier
// applies — touches no dirty node; inserted rows and rows whose weight
// changed are dirty, and deleted old edges only break run contiguity.
func planRescore(oldEdges, newEdges []graph.Edge, dirtyNode []bool, cols []colPair) [][2]int {
	var runs [][2]int
	markDirty := func(row int) {
		if k := len(runs); k > 0 && runs[k-1][1] == row {
			runs[k-1][1] = row + 1
			return
		}
		runs = append(runs, [2]int{row, row + 1})
	}
	// Current clean run: new rows [runNew, runNew+runLen) mirror old
	// rows [runOld, runOld+runLen). Matched pairs advance both cursors
	// together, so an unbroken run is contiguous on both sides.
	runNew, runOld, runLen := 0, 0, 0
	flush := func() {
		if runLen == 0 {
			return
		}
		for _, c := range cols {
			copy(c.dst[runNew:runNew+runLen], c.src[runOld:runOld+runLen])
		}
		runLen = 0
	}
	i, j := 0, 0
	for j < len(newEdges) {
		if i < len(oldEdges) {
			oe, ne := oldEdges[i], newEdges[j]
			if oe.Src == ne.Src && oe.Dst == ne.Dst {
				clean := math.Float64bits(oe.Weight) == math.Float64bits(ne.Weight) &&
					(dirtyNode == nil || (!dirtyNode[ne.Src] && !dirtyNode[ne.Dst]))
				if clean {
					if runLen == 0 {
						runNew, runOld = j, i
					}
					runLen++
				} else {
					flush()
					markDirty(j)
				}
				i++
				j++
				continue
			}
			if oe.Src < ne.Src || (oe.Src == ne.Src && oe.Dst < ne.Dst) {
				// Old edge deleted: no new row, but the old-side cursor
				// jumps, so any open run must flush.
				flush()
				i++
				continue
			}
		}
		// New edge with no old counterpart: inserted, always dirty.
		flush()
		markDirty(j)
		j++
	}
	flush()
	return runs
}
