package filter

import (
	"errors"
	"fmt"
)

// Sentinel errors for the failure categories callers dispatch on. They
// are wrapped (never returned bare) by the functions of this package,
// so match with errors.Is, not equality. The HTTP daemon maps each of
// them to a 4xx status; everything else is a 5xx.
var (
	// ErrUnknownMethod marks a method name absent from the registry.
	ErrUnknownMethod = errors.New("unknown method")
	// ErrUnknownParam marks a parameter the selected method's schema
	// does not declare. It is always carried inside a ParamError.
	ErrUnknownParam = errors.New("unknown parameter")
	// ErrNoScorer marks an operation that needs a significance table —
	// Score, top-k pruning — requested of an extract-only method (mst).
	ErrNoScorer = errors.New("method does not produce scores")
)

// ParamError reports an invalid parameter: either a name the method
// does not declare (Unwrap yields ErrUnknownParam) or a value outside
// the parameter's domain. It supports errors.As for structured
// inspection and errors.Is against the wrapped sentinel.
type ParamError struct {
	// Method is the method whose schema rejected the parameter; empty
	// when the parameter belongs to the shared pipeline options
	// (top, frac) rather than one method.
	Method string
	// Param is the offending parameter name.
	Param string
	// Reason is the human-readable rejection.
	Reason string
	// Err is the sentinel category (ErrUnknownParam), or nil for
	// domain errors on declared parameters.
	Err error
}

func (e *ParamError) Error() string {
	if e.Method != "" {
		return fmt.Sprintf("filter: method %q: parameter %q: %s", e.Method, e.Param, e.Reason)
	}
	return fmt.Sprintf("filter: parameter %q: %s", e.Param, e.Reason)
}

func (e *ParamError) Unwrap() error { return e.Err }
