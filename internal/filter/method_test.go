package filter

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// fakeScorer scores edges by raw weight, enough to exercise the
// registry plumbing without importing the algorithm packages (which
// would create an import cycle).
type fakeScorer struct{ name string }

func (f fakeScorer) Name() string { return f.name }
func (f fakeScorer) Scores(g *graph.Graph) (*Scores, error) {
	s := &Scores{G: g, Score: make([]float64, g.NumEdges()), Method: f.name}
	for i, e := range g.Edges() {
		s.Score[i] = e.Weight
	}
	return s, nil
}

type fakeExtractor struct{ name string }

func (f fakeExtractor) Name() string { return f.name }
func (f fakeExtractor) Extract(g *graph.Graph) (*graph.Graph, error) {
	return g.FilterEdges(func(int, graph.Edge) bool { return true }), nil
}

func methodGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(false)
	for i := 0; i < 4; i++ {
		b.AddNode("")
	}
	b.MustAddEdge(0, 1, 5)
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(2, 3, 1)
	return b.Build()
}

func testMethod() *Method {
	return &Method{
		Name:   "fake",
		Title:  "Fake",
		Params: []Param{{Name: "cut", Default: 2, Desc: "weight cut"}},
		Scorer: fakeScorer{"fake"},
		Cut:    func(p Params) float64 { return p["cut"] },
	}
}

func TestRegistryRegisterLookupAll(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testMethod()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testMethod()); err == nil {
		t.Error("duplicate name accepted")
	}
	m, err := r.Lookup("fake")
	if err != nil || m.Title != "Fake" {
		t.Fatalf("Lookup: %v, %v", m, err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("unknown name accepted")
	} else if !strings.Contains(err.Error(), "fake") {
		t.Errorf("unknown-name error should list known methods, got %v", err)
	}
	ext := &Method{Name: "aaa", Order: 99, Extractor: fakeExtractor{"aaa"}}
	if err := r.Register(ext); err != nil {
		t.Fatal(err)
	}
	all := r.All()
	if len(all) != 2 || all[0].Name != "fake" || all[1].Name != "aaa" {
		t.Errorf("All order: %v (want Order field to win over name)", r.Names())
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	bad := []*Method{
		nil,
		{Name: ""},
		{Name: "noimpl"},
		{Name: "cutnoscorer", Cut: func(Params) float64 { return 0 }, Extractor: fakeExtractor{"x"}},
		{Name: "scorernodefault", Scorer: fakeScorer{"x"}},
		{Name: "dupparam", Scorer: fakeScorer{"x"}, Cut: func(Params) float64 { return 0 },
			Params: []Param{{Name: "a"}, {Name: "a"}}},
		{Name: "unnamedparam", Scorer: fakeScorer{"x"}, Cut: func(Params) float64 { return 0 },
			Params: []Param{{Name: ""}}},
		{Name: "reservedparam", Scorer: fakeScorer{"x"}, Cut: func(Params) float64 { return 0 },
			Params: []Param{{Name: "top"}}},
	}
	for _, m := range bad {
		if err := r.Register(m); err == nil {
			t.Errorf("invalid method %+v accepted", m)
		}
	}
	if len(r.All()) != 0 {
		t.Errorf("registry not empty after rejected registrations: %v", r.Names())
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on invalid method")
		}
	}()
	NewRegistry().MustRegister(&Method{Name: "broken"})
}

func TestMethodResolve(t *testing.T) {
	m := testMethod()
	p, err := m.Resolve(nil)
	if err != nil || p["cut"] != 2 {
		t.Fatalf("defaults: %v, %v", p, err)
	}
	p, err = m.Resolve(Params{"cut": 4})
	if err != nil || p["cut"] != 4 {
		t.Fatalf("override: %v, %v", p, err)
	}
	if _, err := m.Resolve(Params{"delta": 1}); err == nil {
		t.Error("undeclared parameter accepted")
	}
}

func TestMethodBackbone(t *testing.T) {
	g := methodGraph(t)
	m := testMethod()
	bb, err := m.Backbone(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() != 2 { // weights 5 and 3 beat the default cut 2
		t.Errorf("default cut kept %d edges, want 2", bb.NumEdges())
	}
	bb, err = m.Backbone(g, Params{"cut": 4})
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() != 1 {
		t.Errorf("cut 4 kept %d edges, want 1", bb.NumEdges())
	}

	ext := &Method{Name: "keepall", Extractor: fakeExtractor{"keepall"}}
	bb, err = ext.Backbone(g, nil)
	if err != nil || bb.NumEdges() != g.NumEdges() {
		t.Fatalf("extractor path: %d edges, %v", bb.NumEdges(), err)
	}
	if _, err := ext.Score(g, false); err == nil {
		t.Error("extract-only method produced scores")
	}
}

func TestParamsClone(t *testing.T) {
	p := Params{"a": 1}
	c := p.Clone()
	c["a"] = 2
	if p["a"] != 1 {
		t.Error("Clone aliases the original map")
	}
}
