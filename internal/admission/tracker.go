package admission

import (
	"sort"
	"sync"
	"time"
)

const (
	// ringSize bounds each cost key's latency window: large enough to
	// smooth scheduling noise, small enough that the estimate tracks a
	// workload shift within a few seconds of traffic.
	ringSize = 128
	// minSamples gates every estimate: below it the tracker reports
	// "no evidence" and admission stays permissive rather than
	// fast-failing requests on noise.
	minSamples = 8
)

// series is one key's ring of recent execution latencies.
type series struct {
	buf  [ringSize]time.Duration
	n    int // filled length
	next int // next write slot
}

func (s *series) observe(d time.Duration) {
	s.buf[s.next] = d
	s.next = (s.next + 1) % ringSize
	if s.n < ringSize {
		s.n++
	}
}

// window returns the filled samples, appended to dst.
func (s *series) window(dst []time.Duration) []time.Duration {
	return append(dst, s.buf[:s.n]...)
}

// Tracker records recent *execution* latencies (admission to release,
// queue wait excluded) per cost key. The window minimum serves as the
// no-contention baseline for the AIMD congestion test; the p90 is the
// cost estimate behind deadline fast-fail and the computed Retry-After.
type Tracker struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{series: make(map[string]*series)}
}

// Observe records one execution latency under key.
func (t *Tracker) Observe(key string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	s := t.series[key]
	if s == nil {
		s = &series{}
		t.series[key] = s
	}
	s.observe(d)
	t.mu.Unlock()
}

// Quantile returns the q-quantile of key's recent window. ok is false
// until the window holds minSamples observations.
func (t *Tracker) Quantile(key string, q float64) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.series[key]
	if s == nil || s.n < minSamples {
		return 0, false
	}
	w := s.window(make([]time.Duration, 0, ringSize))
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	return quantileSorted(w, q), true
}

// P90 is the cost estimate used for deadline fast-fail and
// Retry-After computation.
func (t *Tracker) P90(key string) (time.Duration, bool) {
	return t.Quantile(key, 0.90)
}

// Baseline returns the window minimum — the best latency the key has
// achieved recently, i.e. its cost without queueing or contention.
func (t *Tracker) Baseline(key string) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.series[key]
	if s == nil || s.n < minSamples {
		return 0, false
	}
	min := s.buf[0]
	for _, d := range s.buf[1:s.n] {
		if d < min {
			min = d
		}
	}
	return min, true
}

// quantileSorted picks the q-quantile from an ascending slice using the
// nearest-rank method.
func quantileSorted(w []time.Duration, q float64) time.Duration {
	if len(w) == 0 {
		return 0
	}
	idx := int(q*float64(len(w))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(w) {
		idx = len(w) - 1
	}
	return w[idx]
}

// KeyLatency is one key's /statsz row, in milliseconds for direct
// consumption by dashboards and backbonegen reports.
type KeyLatency struct {
	Samples int     `json:"samples"`
	MinMs   float64 `json:"min_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
}

// Snapshot summarizes every key's window (keys below minSamples are
// included with their sample count so warm-up is visible).
func (t *Tracker) Snapshot() map[string]KeyLatency {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]KeyLatency, len(t.series))
	w := make([]time.Duration, 0, ringSize)
	for key, s := range t.series {
		kl := KeyLatency{Samples: s.n}
		if s.n > 0 {
			w = s.window(w[:0])
			sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
			kl.MinMs = ms(w[0])
			kl.P50Ms = ms(quantileSorted(w, 0.50))
			kl.P90Ms = ms(quantileSorted(w, 0.90))
		}
		out[key] = kl
	}
	return out
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
