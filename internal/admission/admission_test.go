package admission

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced resilient.Clock: admission and
// release timestamps come from it, so tests control every observed
// execution latency exactly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.advance(d)
	return ctx.Err()
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(t *testing.T, cfg Config) *Limiter {
	t.Helper()
	l, err := NewLimiter(cfg)
	if err != nil {
		t.Fatalf("NewLimiter: %v", err)
	}
	return l
}

// waitQueued spins until the limiter reports depth waiters queued in
// lane (tests enqueue from goroutines and need the ordering pinned).
func waitQueued(t *testing.T, l *Limiter, lane Lane, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := l.Stats()
		q := st.Fast.Queued
		if lane == Cold {
			q = st.Cold.Queued
		}
		if q == depth {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("lane %s never reached queue depth %d", lane, depth)
}

// seedCost gives key (and the lane aggregate) a full-confidence window
// of identical samples, so p90 == baseline == cost.
func seedCost(l *Limiter, lane Lane, key string, cost time.Duration) {
	for i := 0; i < minSamples; i++ {
		l.Tracker().Observe(key, cost)
		l.Tracker().Observe(laneKey(lane), cost)
	}
}

func TestAdmitsUpToCapThenShedsOnQueueTimeout(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 3, FastReserve: -1, Clock: newFakeClock()})

	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := l.Acquire(context.Background(), Cold, "nc")
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := l.Acquire(ctx, Cold, "nc")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("4th acquire: want ShedError, got %v", err)
	}
	if shed.Reason != ReasonQueueTimeout {
		t.Fatalf("reason = %q, want %q", shed.Reason, ReasonQueueTimeout)
	}
	if s := shed.RetryAfterSeconds(); s < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", s)
	}

	st := l.Stats()
	if st.Cold.InFlight != 3 || st.Cold.Queued != 0 {
		t.Fatalf("stats after shed: in_flight=%d queued=%d, want 3/0", st.Cold.InFlight, st.Cold.Queued)
	}
	if st.Cold.Sheds != 1 || st.Cold.QueueTimeouts != 1 {
		t.Fatalf("sheds=%d queue_timeouts=%d, want 1/1", st.Cold.Sheds, st.Cold.QueueTimeouts)
	}

	for _, tk := range tickets {
		tk.Release(OK)
	}
	if st := l.Stats(); st.Cold.InFlight != 0 {
		t.Fatalf("in_flight after release = %d, want 0", st.Cold.InFlight)
	}
}

func TestReleaseAdmitsQueuedWaiterFIFO(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 1, FastReserve: -1, Clock: newFakeClock()})
	holder, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	enqueue := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := l.Acquire(context.Background(), Cold, "nc")
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			tk.Release(OK)
		}()
	}
	enqueue(1)
	waitQueued(t, l, Cold, 1)
	enqueue(2)
	waitQueued(t, l, Cold, 2)

	holder.Release(OK)
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("admission order = %d,%d; want FIFO 1,2", first, second)
	}
}

func TestFastLanePoppedBeforeCold(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 1, FastReserve: -1, Clock: newFakeClock()})
	holder, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	order := make(chan Lane, 2)
	var wg sync.WaitGroup
	enqueue := func(lane Lane) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := l.Acquire(context.Background(), lane, "k")
			if err != nil {
				t.Errorf("%s waiter: %v", lane, err)
				return
			}
			order <- lane
			tk.Release(OK)
		}()
	}
	// Cold queues first; the later fast arrival must still win.
	enqueue(Cold)
	waitQueued(t, l, Cold, 1)
	enqueue(Fast)
	waitQueued(t, l, Fast, 1)

	holder.Release(OK)
	wg.Wait()
	if first := <-order; first != Fast {
		t.Fatalf("first admitted lane = %s, want fast", first)
	}
}

func TestFastReserveKeepsSlotFreeOfColdWork(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 4, FastReserve: 1, Clock: newFakeClock()})

	for i := 0; i < 3; i++ {
		if _, err := l.Acquire(context.Background(), Cold, "nc"); err != nil {
			t.Fatalf("cold acquire %d: %v", i, err)
		}
	}
	// The 4th slot is reserved: cold work queues, fast work sails in.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, Cold, "nc"); err == nil {
		t.Fatal("4th cold acquire took the reserved slot")
	}
	tk, err := l.Acquire(context.Background(), Fast, "cached")
	if err != nil {
		t.Fatalf("fast acquire into reserved slot: %v", err)
	}
	tk.Release(OK)
}

func TestExpiredBudgetRejectedOnArrival(t *testing.T) {
	clk := newFakeClock()
	l := newTestLimiter(t, Config{MaxConcurrent: 2, Clock: clk})

	ctx, cancel := context.WithDeadline(context.Background(), clk.Now())
	defer cancel()
	_, err := l.Acquire(ctx, Cold, "nc")
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	if st := l.Stats(); st.Expired != 1 || st.Cold.Admitted != 0 {
		t.Fatalf("expired=%d admitted=%d, want 1/0", st.Expired, st.Cold.Admitted)
	}
}

func TestDeadlineFastFailUsesObservedP90(t *testing.T) {
	clk := newFakeClock()
	l := newTestLimiter(t, Config{MaxConcurrent: 2, Clock: clk})
	seedCost(l, Cold, "nc", 100*time.Millisecond)

	// 20ms of budget cannot cover an observed 100ms p90: shed.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(20*time.Millisecond))
	defer cancel()
	_, err := l.Acquire(ctx, Cold, "nc")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline ShedError", err)
	}
	if st := l.Stats(); st.DeadlineRejects != 1 {
		t.Fatalf("deadline_rejects = %d, want 1", st.DeadlineRejects)
	}

	// An ample budget is admitted.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.Now().Add(10*time.Second))
	defer cancel2()
	tk, err := l.Acquire(ctx2, Cold, "nc")
	if err != nil {
		t.Fatalf("ample-budget acquire: %v", err)
	}
	tk.Release(OK)

	// A key with no samples stays permissive even on a tight budget.
	ctx3, cancel3 := context.WithDeadline(context.Background(), clk.Now().Add(20*time.Millisecond))
	defer cancel3()
	tk, err = l.Acquire(ctx3, Fast, "unknown")
	if err != nil {
		t.Fatalf("unseeded-key acquire: %v", err)
	}
	tk.Release(OK)
}

func TestRetryAfterComputedFromQueueDepth(t *testing.T) {
	clk := newFakeClock()
	l := newTestLimiter(t, Config{
		MaxConcurrent: 1, FastReserve: -1, MaxQueue: 5, Clock: clk,
	})
	seedCost(l, Cold, "nc", time.Second)

	holder, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	// Shallow state: a deadline reject sees 1 in flight + itself at
	// 1s/slot => 2s hint.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(50*time.Millisecond))
	_, err = l.Acquire(ctx, Cold, "nc")
	cancel()
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline ShedError", err)
	}
	if got := shed.RetryAfterSeconds(); got != 2 {
		t.Fatalf("shallow Retry-After = %ds, want 2", got)
	}

	// Fill the queue; the queue-full hint must now cover the drain of
	// everything ahead: 1 in flight + 5 queued + itself => 7s.
	waitCtx, cancelWaiters := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Acquire(waitCtx, Cold, "nc") //nolint:errcheck // canceled below
		}()
		waitQueued(t, l, Cold, i+1)
	}
	_, err = l.Acquire(context.Background(), Cold, "nc")
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("err = %v, want queue-full ShedError", err)
	}
	if got := shed.RetryAfterSeconds(); got != 7 {
		t.Fatalf("deep Retry-After = %ds, want 7", got)
	}

	cancelWaiters()
	wg.Wait()
	holder.Release(OK)
}

func TestAIMDDecreaseOnCongestionAndTimeout(t *testing.T) {
	clk := newFakeClock()
	l := newTestLimiter(t, Config{
		MaxConcurrent: 8, Adaptive: true, FastReserve: -1,
		Tolerance: 2, DecreaseFactor: 0.75, DecreaseCooldown: time.Hour,
		Clock: clk,
	})

	run := func(exec time.Duration, outcome Outcome) {
		tk, err := l.Acquire(context.Background(), Cold, "nc")
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		clk.advance(exec)
		tk.Release(outcome)
	}

	// Establish a 10ms baseline; good completions keep the limit at cap.
	for i := 0; i < minSamples; i++ {
		run(10*time.Millisecond, OK)
	}
	if st := l.Stats(); st.Limit != 8 {
		t.Fatalf("limit after warm-up = %v, want 8", st.Limit)
	}

	// 100ms > 2 x 10ms baseline: multiplicative decrease.
	run(100*time.Millisecond, OK)
	if st := l.Stats(); st.Limit != 6 || st.Decreases != 1 {
		t.Fatalf("limit after congestion = %v (decreases %d), want 6 (1)", st.Limit, st.Decreases)
	}

	// A second congested completion inside the cooldown must not
	// collapse the limit further.
	run(100*time.Millisecond, OK)
	if st := l.Stats(); st.Limit != 6 || st.Decreases != 1 {
		t.Fatalf("cooldown ignored: limit = %v, decreases = %d", st.Limit, st.Decreases)
	}

	// Past the cooldown, a deadline-timeout execution decreases again.
	clk.advance(2 * time.Hour)
	run(10*time.Millisecond, Timeout)
	if st := l.Stats(); st.Limit != 4.5 || st.Decreases != 2 {
		t.Fatalf("limit after timeout = %v (decreases %d), want 4.5 (2)", st.Limit, st.Decreases)
	}

	// Healthy completions grow the limit back additively (+1/limit).
	before := l.Stats().Limit
	clk.advance(2 * time.Hour)
	for i := 0; i < 20; i++ {
		run(10*time.Millisecond, OK)
	}
	after := l.Stats().Limit
	if after <= before {
		t.Fatalf("limit did not recover: %v -> %v", before, after)
	}
	if after > 8 {
		t.Fatalf("limit exceeded hard cap: %v", after)
	}

	// Errored completions carry no signal.
	mid := l.Stats().Limit
	run(time.Second, Errored)
	if got := l.Stats().Limit; got != mid {
		t.Fatalf("Errored outcome moved the limit: %v -> %v", mid, got)
	}
}

func TestShrunkLimitGatesAdmission(t *testing.T) {
	clk := newFakeClock()
	l := newTestLimiter(t, Config{
		MaxConcurrent: 4, Adaptive: true, FastReserve: -1,
		MinLimit: 1, Tolerance: 2, DecreaseFactor: 0.25, Clock: clk,
	})
	// Baseline then one hard congestion event: limit 4 -> 1.
	run := func(exec time.Duration) {
		tk, err := l.Acquire(context.Background(), Cold, "nc")
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		clk.advance(exec)
		tk.Release(OK)
	}
	for i := 0; i < minSamples; i++ {
		run(10 * time.Millisecond)
	}
	run(200 * time.Millisecond)
	if st := l.Stats(); st.Limit != 1 {
		t.Fatalf("limit = %v, want 1", st.Limit)
	}

	// The hard cap is 4 but only 1 slot is admissible now.
	tk, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("first acquire under shrunk limit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, Cold, "nc"); err == nil {
		t.Fatal("second acquire admitted past the shrunk limit")
	}
	tk.Release(Errored)
}

func TestCanceledWaiterLeavesSlotUsable(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 1, FastReserve: -1, Clock: newFakeClock()})
	holder, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, Cold, "nc")
		errc <- err
	}()
	waitQueued(t, l, Cold, 1)
	cancel()
	var shed *ShedError
	if err := <-errc; !errors.As(err, &shed) || shed.Reason != ReasonQueueTimeout {
		t.Fatalf("canceled waiter err = %v, want queue-timeout ShedError", err)
	}

	holder.Release(OK)
	tk, err := l.Acquire(context.Background(), Cold, "nc")
	if err != nil {
		t.Fatalf("acquire after canceled waiter: %v", err)
	}
	tk.Release(OK)
}

func TestReleaseIsIdempotent(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 2, Clock: newFakeClock()})
	tk, err := l.Acquire(context.Background(), Fast, "cached")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	tk.Release(OK)
	tk.Release(OK)
	tk.Release(Errored)
	var nilTicket *Ticket
	nilTicket.Release(OK) // must not panic
	if st := l.Stats(); st.Fast.InFlight != 0 {
		t.Fatalf("in_flight = %d after double release, want 0", st.Fast.InFlight)
	}
}

// TestConcurrentStress exercises the limiter under the race detector:
// many goroutines across both lanes acquiring, releasing, and
// abandoning waits. Afterward nothing may remain in flight or queued.
func TestConcurrentStress(t *testing.T) {
	l := newTestLimiter(t, Config{MaxConcurrent: 4, Adaptive: true})
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 40; i++ {
				lane := Cold
				if rng.Intn(2) == 0 {
					lane = Fast
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(5)+1)*time.Millisecond)
				tk, err := l.Acquire(ctx, lane, "stress")
				if err == nil {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					tk.Release(Outcome(rng.Intn(3)))
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Fast.InFlight != 0 || st.Cold.InFlight != 0 {
		t.Fatalf("in flight after drain: fast=%d cold=%d", st.Fast.InFlight, st.Cold.InFlight)
	}
	if st.Fast.Queued != 0 || st.Cold.Queued != 0 {
		t.Fatalf("queued after drain: fast=%d cold=%d", st.Fast.Queued, st.Cold.Queued)
	}
	if st.Limit < 1 || st.Limit > 4 {
		t.Fatalf("limit out of range: %v", st.Limit)
	}
}
