package admission

import (
	"testing"
	"time"
)

func TestTrackerGatesEstimatesOnMinSamples(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < minSamples-1; i++ {
		tr.Observe("k", time.Millisecond)
	}
	if _, ok := tr.P90("k"); ok {
		t.Fatal("P90 reported with fewer than minSamples observations")
	}
	if _, ok := tr.Baseline("k"); ok {
		t.Fatal("Baseline reported with fewer than minSamples observations")
	}
	tr.Observe("k", time.Millisecond)
	if _, ok := tr.P90("k"); !ok {
		t.Fatal("P90 missing at minSamples observations")
	}
	if _, ok := tr.P90("other"); ok {
		t.Fatal("P90 reported for an unobserved key")
	}
}

func TestTrackerQuantileAndBaseline(t *testing.T) {
	tr := NewTracker()
	// 1ms..10ms: p90 (nearest rank) = 9ms, median = 5ms, min = 1ms.
	for i := 1; i <= 10; i++ {
		tr.Observe("k", time.Duration(i)*time.Millisecond)
	}
	if p90, ok := tr.P90("k"); !ok || p90 != 9*time.Millisecond {
		t.Fatalf("P90 = %v (%v), want 9ms", p90, ok)
	}
	if p50, ok := tr.Quantile("k", 0.50); !ok || p50 != 5*time.Millisecond {
		t.Fatalf("p50 = %v (%v), want 5ms", p50, ok)
	}
	if base, ok := tr.Baseline("k"); !ok || base != time.Millisecond {
		t.Fatalf("Baseline = %v (%v), want 1ms", base, ok)
	}
}

func TestTrackerWindowEvictsOldSamples(t *testing.T) {
	tr := NewTracker()
	tr.Observe("k", time.Microsecond) // ancient fast sample
	for i := 0; i < ringSize; i++ {
		tr.Observe("k", 10*time.Millisecond)
	}
	// The ring holds only the last ringSize samples, so the ancient
	// minimum has aged out.
	if base, ok := tr.Baseline("k"); !ok || base != 10*time.Millisecond {
		t.Fatalf("Baseline = %v (%v), want 10ms after eviction", base, ok)
	}
}

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker()
	for i := 1; i <= 10; i++ {
		tr.Observe("k", time.Duration(i)*time.Millisecond)
	}
	tr.Observe("warming", time.Millisecond)
	snap := tr.Snapshot()
	k := snap["k"]
	if k.Samples != 10 || k.MinMs != 1 || k.P50Ms != 5 || k.P90Ms != 9 {
		t.Fatalf("snapshot[k] = %+v", k)
	}
	if w := snap["warming"]; w.Samples != 1 {
		t.Fatalf("snapshot[warming] = %+v, want 1 sample visible", w)
	}
}
