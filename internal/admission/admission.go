// Package admission is the daemon's overload-control front door. It
// replaces a fixed counting semaphore with three cooperating pieces:
//
//   - An adaptive concurrency limiter: AIMD on observed per-key
//     *execution* latency (admission to release, queue wait excluded).
//     Good completions grow the limit additively toward the hard cap;
//     a completion whose execution latency blows past Tolerance x the
//     key's recent best — or one that dies on its deadline mid-run —
//     shrinks it multiplicatively. Measuring execution (not total)
//     latency matters: queue wait under overload is the queue doing
//     its job, while execution inflation means the workers themselves
//     are contending and concurrency should drop.
//
//   - A deadline-aware queue: a request whose remaining budget cannot
//     cover the observed p90 cost of its work plus the predicted drain
//     time of the queue ahead of it is failed immediately with a
//     Retry-After computed from queue depth, instead of burning a slot
//     (or queue residence) on a response nobody will wait for.
//
//   - Two priority lanes: Fast (cache-hit / mmap-served work) is
//     always popped before Cold (full scoring), and FastReserve slots
//     are kept free of cold work, so cheap requests stay cheap while
//     the cold lane sheds.
package admission

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilient"
)

// Lane is a priority class.
type Lane int

const (
	// Fast is the cheap lane: score-cache hits and mmap-served bodies
	// whose cost is serialization, not scoring.
	Fast Lane = iota
	// Cold is full scoring work.
	Cold

	numLanes = 2
)

func (l Lane) String() string {
	if l == Fast {
		return "fast"
	}
	return "cold"
}

// laneKey is the tracker's aggregate series for a lane, used for
// queue-drain estimates when a request's own key has no samples yet.
func laneKey(l Lane) string {
	return "lane:" + l.String()
}

// Outcome classifies a released ticket for the AIMD controller.
type Outcome int

const (
	// OK: completed successfully; its execution latency is evidence.
	OK Outcome = iota
	// Timeout: died on its deadline while executing — a congestion
	// signal even without a latency baseline.
	Timeout
	// Errored: failed for non-capacity reasons (bad input, client
	// gone, panic); carries no signal either way.
	Errored
)

// ErrExpired reports a request whose budget was already spent on
// arrival; the caller maps it to 504 without queueing or executing.
var ErrExpired = errors.New("admission: request deadline already expired")

// Shed reasons.
const (
	ReasonDeadline     = "deadline"      // budget cannot cover predicted cost
	ReasonQueueFull    = "queue-full"    // lane queue at capacity
	ReasonQueueTimeout = "queue-timeout" // expired or canceled while queued
)

// ShedError is a load-shedding rejection: the caller maps it to 503
// with the computed Retry-After.
type ShedError struct {
	Reason     string
	Lane       Lane
	RetryAfter time.Duration
	Err        error
}

func (e *ShedError) Error() string {
	msg := fmt.Sprintf("admission: %s lane shed (%s), retry after %s", e.Lane, e.Reason, e.RetryAfter)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *ShedError) Unwrap() error { return e.Err }

// RetryAfterSeconds renders the hint for an HTTP Retry-After header
// (integer seconds, minimum 1).
func (e *ShedError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// Config tunes a Limiter. The zero value of every field applies the
// default documented on it; MaxConcurrent is required.
type Config struct {
	// MaxConcurrent is the hard concurrency cap (the daemon's
	// -workers); the adaptive limit lives in [MinLimit, MaxConcurrent].
	MaxConcurrent int
	// Adaptive false pins the limit at MaxConcurrent, reproducing the
	// static-semaphore behavior (lanes and deadline checks still
	// apply).
	Adaptive bool
	// MinLimit floors the adaptive limit (default 1).
	MinLimit int
	// Tolerance: an execution latency above Tolerance x the key's
	// window-best counts as congestion (default 4).
	Tolerance float64
	// DecreaseFactor is the multiplicative decrease (default 0.75).
	DecreaseFactor float64
	// DecreaseCooldown spaces decreases so one burst of slow
	// completions — all observing the same congestion event — cannot
	// collapse the limit (default 250ms).
	DecreaseCooldown time.Duration
	// MaxQueue bounds each lane's wait queue (default 8x
	// MaxConcurrent, minimum 32).
	MaxQueue int
	// FastReserve is how many slots cold work may never occupy, kept
	// free for fast-lane arrivals (default 1 when MaxConcurrent >= 2;
	// set negative to disable).
	FastReserve int
	// DefaultCost seeds Retry-After computation before any latency
	// samples exist (default 100ms).
	DefaultCost time.Duration
	// RetryAfterCap bounds the computed Retry-After (default 30s).
	RetryAfterCap time.Duration
	// Clock defaults to resilient.SystemClock.
	Clock resilient.Clock
}

func (cfg *Config) applyDefaults() error {
	if cfg.MaxConcurrent <= 0 {
		return fmt.Errorf("admission: MaxConcurrent must be positive, got %d", cfg.MaxConcurrent)
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 1
	}
	if cfg.MinLimit > cfg.MaxConcurrent {
		cfg.MinLimit = cfg.MaxConcurrent
	}
	if cfg.Tolerance <= 1 {
		cfg.Tolerance = 4
	}
	if cfg.DecreaseFactor <= 0 || cfg.DecreaseFactor >= 1 {
		cfg.DecreaseFactor = 0.75
	}
	if cfg.DecreaseCooldown <= 0 {
		cfg.DecreaseCooldown = 250 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8 * cfg.MaxConcurrent
		if cfg.MaxQueue < 32 {
			cfg.MaxQueue = 32
		}
	}
	switch {
	case cfg.FastReserve < 0:
		cfg.FastReserve = 0
	case cfg.FastReserve == 0 && cfg.MaxConcurrent >= 2:
		cfg.FastReserve = 1
	}
	if cfg.FastReserve >= cfg.MaxConcurrent {
		cfg.FastReserve = cfg.MaxConcurrent - 1
	}
	if cfg.DefaultCost <= 0 {
		cfg.DefaultCost = 100 * time.Millisecond
	}
	if cfg.RetryAfterCap <= 0 {
		cfg.RetryAfterCap = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = resilient.SystemClock
	}
	return nil
}

// waiter is one queued acquisition; the admitting goroutine builds the
// ticket and hands it over, so admission time (and thus execution
// latency) starts when the slot is granted, not when the wait began.
type waiter struct {
	lane  Lane
	key   string
	ready chan *Ticket // buffered(1); send happens under l.mu
}

// Limiter is the adaptive, lane-aware admission controller.
type Limiter struct {
	cfg     Config
	tracker *Tracker

	mu           sync.Mutex
	limit        float64 // adaptive limit in [MinLimit, MaxConcurrent]
	inFlight     [numLanes]int
	queues       [numLanes]*list.List // of *waiter
	lastDecrease time.Time
	decreased    bool

	admitted        [numLanes]uint64
	sheds           [numLanes]uint64
	queueTimeouts   [numLanes]uint64
	deadlineRejects uint64
	expired         uint64
	decreases       uint64
}

// NewLimiter builds a limiter whose limit starts at the hard cap, so
// an unloaded daemon behaves exactly like the static semaphore it
// replaces.
func NewLimiter(cfg Config) (*Limiter, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	l := &Limiter{
		cfg:     cfg,
		tracker: NewTracker(),
		limit:   float64(cfg.MaxConcurrent),
	}
	for i := range l.queues {
		l.queues[i] = list.New()
	}
	return l, nil
}

// Tracker exposes the latency tracker (the daemon seeds nothing; tests
// and diagnostics read it).
func (l *Limiter) Tracker() *Tracker { return l.tracker }

// Acquire admits the request, queues it, or rejects it. A nil error
// obliges the caller to Release the ticket exactly once. ErrExpired
// means the context deadline had already passed on arrival; a
// *ShedError carries the shed reason and the computed Retry-After.
func (l *Limiter) Acquire(ctx context.Context, lane Lane, key string) (*Ticket, error) {
	now := l.cfg.Clock.Now()
	hasDeadline := false
	var remaining time.Duration
	if dl, ok := ctx.Deadline(); ok {
		hasDeadline = true
		remaining = dl.Sub(now)
		if remaining <= 0 {
			l.mu.Lock()
			l.expired++
			l.mu.Unlock()
			return nil, fmt.Errorf("%w (%s lane)", ErrExpired, lane)
		}
	}

	l.mu.Lock()
	if hasDeadline {
		if cost, ok := l.predictedCostLocked(lane, key); ok && remaining < cost {
			l.deadlineRejects++
			ra := l.retryAfterLocked(lane)
			l.mu.Unlock()
			return nil, &ShedError{Reason: ReasonDeadline, Lane: lane, RetryAfter: ra}
		}
	}
	if l.queues[lane].Len() == 0 && l.admissibleLocked(lane) {
		t := l.grantLocked(lane, key)
		l.mu.Unlock()
		return t, nil
	}
	if l.queues[lane].Len() >= l.cfg.MaxQueue {
		l.sheds[lane]++
		ra := l.retryAfterLocked(lane)
		l.mu.Unlock()
		return nil, &ShedError{Reason: ReasonQueueFull, Lane: lane, RetryAfter: ra}
	}
	w := &waiter{lane: lane, key: key, ready: make(chan *Ticket, 1)}
	elem := l.queues[lane].PushBack(w)
	l.mu.Unlock()

	select {
	case t := <-w.ready:
		return t, nil
	case <-ctx.Done():
	}

	// Canceled or expired while queued. The grant may have raced the
	// cancellation; if it did, the slot is ours to hand back.
	l.mu.Lock()
	var granted *Ticket
	select {
	case granted = <-w.ready:
	default:
		l.queues[lane].Remove(elem)
	}
	l.queueTimeouts[lane]++
	l.sheds[lane]++
	ra := l.retryAfterLocked(lane)
	l.mu.Unlock()
	if granted != nil {
		granted.Release(Errored)
	}
	return nil, &ShedError{Reason: ReasonQueueTimeout, Lane: lane, RetryAfter: ra, Err: ctx.Err()}
}

// admissibleLocked reports whether a lane may take a slot right now.
func (l *Limiter) admissibleLocked(lane Lane) bool {
	eff := l.effLimitLocked()
	total := l.inFlight[Fast] + l.inFlight[Cold]
	if total >= eff {
		return false
	}
	if lane == Cold {
		coldMax := eff - l.cfg.FastReserve
		if coldMax < 1 {
			coldMax = 1
		}
		if l.inFlight[Cold] >= coldMax {
			return false
		}
	}
	return true
}

// effLimitLocked is the adaptive limit as a whole slot count.
func (l *Limiter) effLimitLocked() int {
	eff := int(math.Round(l.limit))
	if eff < l.cfg.MinLimit {
		eff = l.cfg.MinLimit
	}
	if eff > l.cfg.MaxConcurrent {
		eff = l.cfg.MaxConcurrent
	}
	return eff
}

// grantLocked takes a slot and mints its ticket.
func (l *Limiter) grantLocked(lane Lane, key string) *Ticket {
	l.inFlight[lane]++
	l.admitted[lane]++
	return &Ticket{l: l, lane: lane, key: key, start: l.cfg.Clock.Now()}
}

// promoteLocked drains every admissible waiter, fast lane first. It
// runs after any release or limit change, which maintains the
// invariant that an admissible waiter never sits queued.
func (l *Limiter) promoteLocked() {
	for {
		var lane Lane
		switch {
		case l.queues[Fast].Len() > 0 && l.admissibleLocked(Fast):
			lane = Fast
		case l.queues[Cold].Len() > 0 && l.admissibleLocked(Cold):
			lane = Cold
		default:
			return
		}
		elem := l.queues[lane].Front()
		l.queues[lane].Remove(elem)
		w := elem.Value.(*waiter)
		w.ready <- l.grantLocked(w.lane, w.key)
	}
}

// predictedCostLocked estimates what serving this request will cost:
// its own p90 execution cost plus the drain time of the work ahead of
// it. ok is false when there is no evidence yet — admission stays
// permissive until the tracker warms up.
func (l *Limiter) predictedCostLocked(lane Lane, key string) (time.Duration, bool) {
	own, ok := l.tracker.P90(key)
	if !ok {
		own, ok = l.tracker.P90(laneKey(lane))
		if !ok {
			return 0, false
		}
	}
	drain, ok2 := l.tracker.P90(laneKey(lane))
	if !ok2 {
		drain = own
	}
	ahead := l.queues[lane].Len() + l.inFlight[Fast] + l.inFlight[Cold]
	if lane == Cold {
		// Fast waiters jump the cold queue, so they are ahead too.
		ahead += l.queues[Fast].Len()
	}
	eff := l.effLimitLocked()
	return own + time.Duration(float64(ahead)*float64(drain)/float64(eff)), true
}

// retryAfterLocked computes the 503 hint from queue depth: how long
// until the work ahead of a hypothetical new arrival has drained, at
// the lane-aggregate p90 per slot. Clamped to [1s, RetryAfterCap];
// with no samples yet DefaultCost keeps it at the 1s floor.
func (l *Limiter) retryAfterLocked(lane Lane) time.Duration {
	cost, ok := l.tracker.P90(laneKey(lane))
	if !ok {
		cost = l.cfg.DefaultCost
	}
	ahead := 1 + l.queues[Fast].Len() + l.queues[Cold].Len() + l.inFlight[Fast] + l.inFlight[Cold]
	eff := l.effLimitLocked()
	d := time.Duration(float64(ahead) * float64(cost) / float64(eff))
	if d < time.Second {
		d = time.Second
	}
	if d > l.cfg.RetryAfterCap {
		d = l.cfg.RetryAfterCap
	}
	return d
}

// adjustLocked is the AIMD step, driven by one released ticket.
func (l *Limiter) adjustLocked(outcome Outcome, congested bool) {
	if !l.cfg.Adaptive {
		return
	}
	switch {
	case outcome == Timeout || (outcome == OK && congested):
		now := l.cfg.Clock.Now()
		if l.decreased && now.Sub(l.lastDecrease) < l.cfg.DecreaseCooldown {
			return
		}
		l.limit *= l.cfg.DecreaseFactor
		if l.limit < float64(l.cfg.MinLimit) {
			l.limit = float64(l.cfg.MinLimit)
		}
		l.lastDecrease, l.decreased = now, true
		l.decreases++
	case outcome == OK:
		l.limit += 1 / math.Max(l.limit, 1)
		if l.limit > float64(l.cfg.MaxConcurrent) {
			l.limit = float64(l.cfg.MaxConcurrent)
		}
	}
}

// Ticket is one admitted request's slot. Release is idempotent and
// panic-safe to defer.
type Ticket struct {
	l        *Limiter
	lane     Lane
	key      string
	start    time.Time
	released atomic.Bool
}

// Lane reports which lane admitted the ticket.
func (t *Ticket) Lane() Lane { return t.lane }

// Release returns the slot, feeds the execution latency to the
// tracker (OK outcomes only — failures are not cost evidence), runs
// the AIMD step, and wakes admissible waiters.
func (t *Ticket) Release(outcome Outcome) {
	if t == nil || !t.released.CompareAndSwap(false, true) {
		return
	}
	l := t.l
	elapsed := l.cfg.Clock.Now().Sub(t.start)
	congested := false
	if outcome == OK {
		l.tracker.Observe(t.key, elapsed)
		l.tracker.Observe(laneKey(t.lane), elapsed)
		if base, ok := l.tracker.Baseline(t.key); ok &&
			float64(elapsed) > l.cfg.Tolerance*float64(base) {
			congested = true
		}
	}
	l.mu.Lock()
	l.adjustLocked(outcome, congested)
	l.inFlight[t.lane]--
	l.promoteLocked()
	l.mu.Unlock()
}

// LaneStats is one lane's /statsz row.
type LaneStats struct {
	InFlight      int    `json:"in_flight"`
	Queued        int    `json:"queued"`
	Admitted      uint64 `json:"admitted"`
	Sheds         uint64 `json:"sheds"`
	QueueTimeouts uint64 `json:"queue_timeouts"`
}

// Stats is the limiter's /statsz snapshot.
type Stats struct {
	Adaptive        bool                  `json:"adaptive"`
	Limit           float64               `json:"limit"`
	MaxConcurrent   int                   `json:"max_concurrent"`
	FastReserve     int                   `json:"fast_reserve"`
	Fast            LaneStats             `json:"fast"`
	Cold            LaneStats             `json:"cold"`
	DeadlineRejects uint64                `json:"deadline_rejects"`
	Expired         uint64                `json:"expired"`
	Decreases       uint64                `json:"limit_decreases"`
	Latency         map[string]KeyLatency `json:"latency_ms,omitempty"`
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Adaptive:        l.cfg.Adaptive,
		Limit:           math.Round(l.limit*100) / 100,
		MaxConcurrent:   l.cfg.MaxConcurrent,
		FastReserve:     l.cfg.FastReserve,
		DeadlineRejects: l.deadlineRejects,
		Expired:         l.expired,
		Decreases:       l.decreases,
	}
	for lane := Lane(0); lane < numLanes; lane++ {
		ls := LaneStats{
			InFlight:      l.inFlight[lane],
			Queued:        l.queues[lane].Len(),
			Admitted:      l.admitted[lane],
			Sheds:         l.sheds[lane],
			QueueTimeouts: l.queueTimeouts[lane],
		}
		if lane == Fast {
			st.Fast = ls
		} else {
			st.Cold = ls
		}
	}
	l.mu.Unlock()
	st.Latency = l.tracker.Snapshot()
	return st
}
