package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock advances instantly: Sleep records the requested duration
// and moves Now forward, so a multi-second backoff schedule is pinned
// in microseconds of test time.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// The base is the real present: deadline tests hand ctx a wall-clock
// deadline slightly in the real future, which the instantly-advancing
// fake clock then crosses long before the real one would.
func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Now()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// maxRand drives jitter to the top of its range: Rand(n) = n-1, so the
// sleep before attempt k+1 is exactly cap_k and the schedule is pinned.
func maxRand(n int64) int64 { return n - 1 }

var errFlaky = errors.New("flaky")

// TestRetryBackoffSchedule pins the deterministic fake-clock schedule:
// with full jitter forced to its maximum, the sleeps are exactly the
// caps base, base*2, base*4, ... clamped at MaxDelay.
func TestRetryBackoffSchedule(t *testing.T) {
	clock := newFakeClock()
	r := Retry{
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Clock:       clock,
		Rand:        maxRand,
	}
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context, attempt int) error {
		if attempt != calls {
			t.Errorf("attempt %d delivered as %d", calls, attempt)
		}
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("exhaustion error %v does not wrap the last attempt error", err)
	}
	if calls != 6 {
		t.Fatalf("op ran %d times, want 6", calls)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1000 * time.Millisecond, // capped at MaxDelay
	}
	got := clock.sleeps()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRetryJitterBounds is the jitter property: with the default-style
// rand, every sleep before attempt k+1 lies in [0, cap_k].
func TestRetryJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	caps := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
	}
	for trial := 0; trial < 200; trial++ {
		clock := newFakeClock()
		r := Retry{
			MaxAttempts: 5,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Multiplier:  2,
			Clock:       clock,
			Rand:        rng.Int63n,
		}
		r.Do(context.Background(), func(context.Context, int) error { return errFlaky })
		sleeps := clock.sleeps()
		if len(sleeps) != len(caps) {
			t.Fatalf("trial %d: %d sleeps, want %d", trial, len(sleeps), len(caps))
		}
		for i, d := range sleeps {
			if d < 0 || d > caps[i] {
				t.Fatalf("trial %d: sleep %d = %v outside [0, %v]", trial, i, d, caps[i])
			}
		}
	}
}

// TestRetryDeadlineBounded pins the budget rule: no attempt starts at
// or after the context deadline, and the would-overshoot sleep is not
// taken. With 100ms attempts against a 450ms budget exactly five
// attempts fit (t = 0, 100, 200, 300, 400ms).
func TestRetryDeadlineBounded(t *testing.T) {
	clock := newFakeClock()
	deadline := clock.Now().Add(450 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	r := Retry{
		MaxAttempts: 100,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  1,
		Clock:       clock,
		Rand:        maxRand,
	}
	calls := 0
	err := r.Do(ctx, func(ctx context.Context, attempt int) error {
		if !clock.Now().Before(deadline) {
			t.Errorf("attempt %d started at %v, at/after deadline %v", attempt, clock.Now(), deadline)
		}
		calls++
		return errFlaky
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("error %v does not wrap the attempt error", err)
	}
	if calls != 5 {
		t.Errorf("op ran %d times, want 5 within the 450ms budget", calls)
	}
}

// TestRetryPermanent: a Permanent error stops after the failing
// attempt and is returned unwrapped-ly reachable via errors.Is.
func TestRetryPermanent(t *testing.T) {
	clock := newFakeClock()
	r := Retry{MaxAttempts: 5, Clock: clock, Rand: maxRand}
	calls := 0
	err := r.Do(context.Background(), func(context.Context, int) error {
		calls++
		return Permanent(errFlaky)
	})
	if calls != 1 {
		t.Errorf("op ran %d times, want 1", calls)
	}
	if !errors.Is(err, errFlaky) || !IsPermanent(err) {
		t.Errorf("error %v lost its identity or permanence", err)
	}
	if len(clock.sleeps()) != 0 {
		t.Errorf("slept %v after a permanent error", clock.sleeps())
	}
}

// TestRetrySucceedsMidway: success stops retrying and returns nil.
func TestRetrySucceedsMidway(t *testing.T) {
	r := Retry{MaxAttempts: 5, Clock: newFakeClock(), Rand: maxRand}
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context, attempt int) error {
		calls++
		if attempt < 2 {
			return errFlaky
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d, want nil after 3", err, calls)
	}
}

// TestRetryAfterHintRaisesSleep: a server Retry-After hint overrides a
// smaller jittered backoff.
func TestRetryAfterHintRaisesSleep(t *testing.T) {
	clock := newFakeClock()
	r := Retry{
		MaxAttempts: 2,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Clock:       clock,
		Rand:        maxRand,
	}
	err := r.Do(context.Background(), func(context.Context, int) error {
		return WithRetryAfter(errFlaky, 300*time.Millisecond)
	})
	if !errors.Is(err, errFlaky) {
		t.Fatal(err)
	}
	sleeps := clock.sleeps()
	if len(sleeps) != 1 || sleeps[0] != 300*time.Millisecond {
		t.Errorf("slept %v, want exactly the 300ms hint", sleeps)
	}
}

// TestRetryContextErrorsNotRetried: an attempt failing with the
// context's own error returns immediately.
func TestRetryContextErrorsNotRetried(t *testing.T) {
	r := Retry{MaxAttempts: 5, Clock: newFakeClock(), Rand: maxRand}
	calls := 0
	err := r.Do(context.Background(), func(context.Context, int) error {
		calls++
		return fmt.Errorf("attempt: %w", context.DeadlineExceeded)
	})
	if calls != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("calls=%d err=%v, want 1 attempt returning the deadline error", calls, err)
	}
}
