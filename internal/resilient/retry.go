package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Retry executes an operation with capped exponential backoff and full
// jitter. The zero value is usable and applies the defaults below.
//
// Backoff follows the "full jitter" scheme: before attempt k+1 the
// executor sleeps a uniformly random duration in [0, cap_k], where
// cap_0 = BaseDelay and cap_{k+1} = min(MaxDelay, cap_k*Multiplier).
// Jitter decorrelates the retry storms of many clients that failed at
// the same instant, which is exactly the fleet's peer-loss scenario.
//
// Retries are budget-aware: no attempt ever starts after the request
// context's deadline, and a sleep that would overshoot the deadline is
// not taken — Do returns the last attempt's error immediately instead
// of burning the caller's remaining budget on a wait that cannot be
// followed by work.
type Retry struct {
	// MaxAttempts bounds total attempts (first try included). <= 0
	// means the default of 3.
	MaxAttempts int
	// BaseDelay is the first backoff cap (default 50ms); MaxDelay the
	// cap's ceiling (default 2s); Multiplier the cap's growth factor
	// (default 2).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Clock defaults to SystemClock. Rand returns a uniform int64 in
	// [0, n) and defaults to math/rand.Int63n; tests substitute both
	// to pin exact schedules.
	Clock Clock
	Rand  func(n int64) int64
}

// Permanent marks err as non-retryable: Do returns it after the
// current attempt without further tries. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// WithRetryAfter attaches a server-provided backoff hint (an HTTP
// Retry-After, typically) to err: the sleep before the next attempt is
// raised to at least after. A nil err stays nil.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterError{err: err, after: after}
}

type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// RetryAfterHint extracts the most recent WithRetryAfter hint from
// err's chain.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// Do runs op until it succeeds, returns a Permanent or context error,
// exhausts MaxAttempts, or the next attempt would start after ctx's
// deadline. attempt counts from 0. The returned error wraps the last
// attempt's error, so errors.Is/As see through the exhaustion wrapper.
func (r Retry) Do(ctx context.Context, op func(ctx context.Context, attempt int) error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	base := r.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	mult := r.Multiplier
	if mult < 1 {
		mult = 2
	}
	clock := r.Clock
	if clock == nil {
		clock = SystemClock
	}
	randn := r.Rand
	if randn == nil {
		randn = rand.Int63n
	}

	var lastErr error
	backoffCap := base
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("resilient: %v after %d attempts: %w", err, attempt, lastErr)
			}
			return err
		}
		err := op(ctx, attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		if IsPermanent(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		// Full jitter within the current cap, raised to any server hint.
		delay := time.Duration(randn(int64(backoffCap) + 1))
		if hint, ok := RetryAfterHint(err); ok && hint > delay {
			delay = hint
		}
		// Budget-aware: an attempt scheduled at or past the deadline
		// could never finish — stop now with the real failure.
		if dl, ok := ctx.Deadline(); ok && !clock.Now().Add(delay).Before(dl) {
			return fmt.Errorf("resilient: deadline leaves no budget for attempt %d: %w", attempt+2, lastErr)
		}
		if serr := clock.Sleep(ctx, delay); serr != nil {
			return fmt.Errorf("resilient: %v while backing off: %w", serr, lastErr)
		}
		backoffCap = min(maxDelay, time.Duration(float64(backoffCap)*mult))
	}
	return fmt.Errorf("resilient: %d attempts exhausted: %w", attempts, lastErr)
}
