package resilient

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFaultNilIsInert: the production configuration injects nothing.
func TestFaultNilIsInert(t *testing.T) {
	var f *Fault
	if err := f.Inject(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Partial() {
		t.Fatal("nil fault truncated a response")
	}
	if s := f.Stats(); s != (FaultStats{}) {
		t.Fatalf("nil fault stats = %+v", s)
	}
}

// TestFaultRates: rate 1 always injects, rate 0 never does, and the
// counters record what happened.
func TestFaultRates(t *testing.T) {
	always := &Fault{ErrorRate: 1, PartialRate: 1}
	for i := 0; i < 100; i++ {
		if err := always.Inject(context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
		if !always.Partial() {
			t.Fatalf("call %d: no partial at rate 1", i)
		}
	}
	if s := always.Stats(); s.Errors != 100 || s.Partials != 100 {
		t.Errorf("stats = %+v, want 100 errors and partials", s)
	}

	never := &Fault{ErrorRate: 0, PartialRate: 0, Latency: time.Hour, LatencyRate: 0}
	for i := 0; i < 100; i++ {
		if err := never.Inject(context.Background()); err != nil {
			t.Fatalf("call %d: err = %v at rate 0", i, err)
		}
		if never.Partial() {
			t.Fatal("partial at rate 0")
		}
	}
	if s := never.Stats(); s != (FaultStats{}) {
		t.Errorf("stats = %+v, want zeros", s)
	}
}

// TestFaultLatencyUsesClock: latency injection sleeps on the
// injectable clock and respects context expiry.
func TestFaultLatencyUsesClock(t *testing.T) {
	clock := newFakeClock()
	f := &Fault{Latency: 250 * time.Millisecond, LatencyRate: 1, Clock: clock}
	if err := f.Inject(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sleeps := clock.sleeps(); len(sleeps) != 1 || sleeps[0] != 250*time.Millisecond {
		t.Errorf("slept %v, want one 250ms sleep", sleeps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Inject(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("latency against a dead context: err = %v", err)
	}
}

// TestParseFaultSpec covers the -chaos flag grammar.
func TestParseFaultSpec(t *testing.T) {
	f, err := ParseFaultSpec("error=0.25,latency=50ms,latency-rate=0.5,partial=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if f.ErrorRate != 0.25 || f.Latency != 50*time.Millisecond || f.LatencyRate != 0.5 || f.PartialRate != 0.1 {
		t.Errorf("parsed %+v", f)
	}

	// Latency without an explicit rate means "always".
	f, err = ParseFaultSpec("latency=10ms")
	if err != nil {
		t.Fatal(err)
	}
	if f.LatencyRate != 1 {
		t.Errorf("latency-rate defaulted to %v, want 1", f.LatencyRate)
	}

	// Empty spec: chaos disabled.
	if f, err = ParseFaultSpec("  "); err != nil || f != nil {
		t.Errorf("empty spec: %v %v", f, err)
	}

	for _, bad := range []string{
		"error=2", "error=x", "latency=fast", "latency=-5ms",
		"partial=-0.1", "nonsense=1", "error",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
