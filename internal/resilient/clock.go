// Package resilient is the daemon fleet's failure-handling substrate:
// a deadline-bounded retry executor with capped exponential backoff and
// full jitter, a per-peer circuit breaker, and a fault-injection hook
// for chaos testing. Every component takes an injectable Clock (and,
// where it randomizes, an injectable rand source) so tests pin exact
// schedules without sleeping.
package resilient

import (
	"context"
	"time"
)

// Clock abstracts wall time and interruptible sleeping so retry
// schedules and breaker cooldowns are deterministic under test.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, whichever comes first,
	// returning ctx.Err() when the context won.
	Sleep(ctx context.Context, d time.Duration) error
}

// SystemClock is the process clock: time.Now and a timer-backed,
// context-interruptible sleep.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
