package resilient

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker rejects
// traffic: the peer failed enough recently that probing it again now
// would only burn the request's budget.
var ErrOpen = errors.New("resilient: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed passes all traffic (the healthy steady state).
	Closed BreakerState = iota
	// Open rejects all traffic until the cooldown elapses.
	Open
	// HalfOpen passes a single probe; its outcome decides Closed vs Open.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value applies the defaults
// documented per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// ErrorRate additionally opens the breaker when the failure
	// fraction within the current Window reaches it, once the window
	// holds at least WindowMinRequests samples. 0 disables the
	// rate trigger.
	ErrorRate         float64
	WindowMinRequests int           // default 10
	Window            time.Duration // default 10s
	// Cooldown is how long an open breaker rejects before allowing a
	// half-open probe (default 5s).
	Cooldown time.Duration
	Clock    Clock
}

// BreakerStats is a point-in-time snapshot for observability surfaces
// (the daemon's /statsz).
type BreakerStats struct {
	State               string `json:"state"`
	Opens               uint64 `json:"opens"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
}

// Breaker is a per-peer circuit breaker: closed → open on a
// consecutive-failure or windowed error-rate threshold → half-open
// probe after a cooldown → closed on probe success, reopen on probe
// failure. A nil *Breaker passes all traffic and records nothing, so
// callers without breaker config need not branch.
//
// Usage: if Allow returns nil the caller must Record the outcome of
// exactly one operation; in the half-open state that pairing is what
// limits the probe to a single in-flight request.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	winStart    time.Time
	winReqs     int
	winFails    int
	openedAt    time.Time
	probing     bool
	opens       uint64
}

// NewBreaker returns a Breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.WindowMinRequests <= 0 {
		cfg.WindowMinRequests = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock
	}
	b := &Breaker{cfg: cfg}
	b.winStart = cfg.Clock.Now()
	return b
}

// Allow reports whether a request may proceed. A nil return obliges
// the caller to call Record exactly once with the outcome.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return ErrOpen
		}
		// Cooldown over: move to half-open and admit this caller as
		// the probe.
		b.state = HalfOpen
		b.probing = true
		return nil
	case HalfOpen:
		if b.probing {
			return ErrOpen // one probe at a time
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// Record reports one allowed operation's outcome and drives the state
// transitions.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock.Now()

	if b.state == HalfOpen {
		b.probing = false
		if success {
			b.toClosed(now)
		} else {
			b.toOpen(now)
		}
		return
	}
	if b.state == Open {
		// A straggler from before the trip; its outcome is stale.
		return
	}

	// Closed: roll the error-rate window, then count.
	if now.Sub(b.winStart) > b.cfg.Window {
		b.winStart, b.winReqs, b.winFails = now, 0, 0
	}
	b.winReqs++
	if success {
		b.consecFails = 0
		return
	}
	b.winFails++
	b.consecFails++
	if b.consecFails >= b.cfg.FailureThreshold {
		b.toOpen(now)
		return
	}
	if b.cfg.ErrorRate > 0 && b.winReqs >= b.cfg.WindowMinRequests &&
		float64(b.winFails)/float64(b.winReqs) >= b.cfg.ErrorRate {
		b.toOpen(now)
	}
}

// toOpen / toClosed run under b.mu.
func (b *Breaker) toOpen(now time.Time) {
	b.state = Open
	b.openedAt = now
	b.opens++
	b.probing = false
}

func (b *Breaker) toClosed(now time.Time) {
	b.state = Closed
	b.consecFails = 0
	b.winStart, b.winReqs, b.winFails = now, 0, 0
	b.probing = false
}

// State returns the breaker's current position, surfacing an elapsed
// cooldown as HalfOpen without consuming the probe slot.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Stats snapshots the breaker for observability. A nil breaker reports
// a closed state with zero counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: Closed.String()}
	}
	st := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: st.String(), Opens: b.opens, ConsecutiveFailures: b.consecFails}
}
