package resilient

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestBreaker(clock Clock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         5 * time.Second,
		Clock:            clock,
	})
}

// TestBreakerHealthyPeerPassesEverything is the property test pinned
// by the issue: against a peer that always succeeds, the breaker
// passes 100% of traffic and never leaves Closed — whatever the
// request volume or timing.
func TestBreakerHealthyPeerPassesEverything(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
		b.Record(true)
		// Arbitrary pacing must not matter.
		clock.advance(time.Duration(rng.Intn(500)) * time.Millisecond)
	}
	if st := b.State(); st != Closed {
		t.Errorf("state = %v after an all-success stream", st)
	}
	if s := b.Stats(); s.Opens != 0 || s.ConsecutiveFailures != 0 {
		t.Errorf("stats = %+v after an all-success stream", s)
	}
}

// TestBreakerSubThresholdFailuresStayClosed: failures interleaved with
// successes never accumulate to the consecutive threshold.
func TestBreakerSubThresholdFailuresStayClosed(t *testing.T) {
	b := newTestBreaker(newFakeClock())
	for i := 0; i < 1000; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
		// Two failures then a success: always below threshold 3.
		b.Record(i%3 == 2)
	}
	if st := b.State(); st != Closed {
		t.Errorf("state = %v, want closed", st)
	}
}

// TestBreakerLifecycle walks the full state machine: consecutive
// failures open it, the cooldown admits exactly one half-open probe,
// and the probe's outcome picks Closed or re-Open.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock)

	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if st := b.State(); st != Open {
		t.Fatalf("state after 3 failures = %v, want open", st)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed traffic (err=%v)", err)
	}

	// Cooldown not yet over.
	clock.advance(4 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("breaker reopened before the cooldown elapsed")
	}

	// Cooldown over: exactly one probe.
	clock.advance(2 * time.Second)
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe: straight back to open, cooldown restarted.
	b.Record(false)
	if st := b.State(); st != Open {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	clock.advance(6 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(true)
	if st := b.State(); st != Closed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if s := b.Stats(); s.Opens != 2 {
		t.Errorf("opens = %d, want 2", s.Opens)
	}

	// Fully recovered: traffic flows again.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
}

// TestBreakerErrorRateTrigger: the windowed rate trigger opens the
// breaker even when successes keep resetting the consecutive counter.
func TestBreakerErrorRateTrigger(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold:  1000, // out of reach: isolate the rate trigger
		ErrorRate:         0.5,
		WindowMinRequests: 10,
		Window:            time.Minute,
		Cooldown:          5 * time.Second,
		Clock:             clock,
	})
	// Alternate failure/success: rate 0.5, consecutive never above 1.
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d rejected before the window filled: %v", i, err)
		}
		b.Record(i%2 == 0)
	}
	if st := b.State(); st != Open {
		t.Errorf("state = %v after 50%% failures over 10 requests, want open", st)
	}
}

// TestBreakerWindowExpiryForgetsOldFailures: failures older than the
// window do not count toward the rate.
func TestBreakerWindowExpiryForgetsOldFailures(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold:  1000,
		ErrorRate:         0.5,
		WindowMinRequests: 4,
		Window:            time.Second,
		Cooldown:          5 * time.Second,
		Clock:             clock,
	})
	// Three failures... then a quiet spell longer than the window.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(i != 0) // one failure, two successes: rate primed but below min
	}
	clock.advance(2 * time.Second)
	// A fresh window of successes with a single failure stays closed.
	for i := 0; i < 8; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
		b.Record(i != 0)
	}
	if st := b.State(); st != Closed {
		t.Errorf("state = %v, want closed (old failures must age out)", st)
	}
}

// TestBreakerNil: the nil breaker is the no-op pass-through.
func TestBreakerNil(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if st := b.State(); st != Closed {
		t.Errorf("nil breaker state = %v", st)
	}
	if s := b.Stats(); s.State != "closed" {
		t.Errorf("nil breaker stats = %+v", s)
	}
}

// TestBreakerConcurrentHalfOpenProbes: when the cooldown elapses and
// many goroutines race Allow simultaneously, exactly one is admitted
// as the half-open probe; every loser fails fast with ErrOpen instead
// of queueing behind it. The probe's success then closes the breaker
// for everyone.
func TestBreakerConcurrentHalfOpenProbes(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	if st := b.State(); st != Open {
		t.Fatalf("state = %v after threshold failures, want open", st)
	}
	clock.advance(5 * time.Second) // cooldown over: next Allow is the probe

	const racers = 32
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int32
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			switch err := b.Allow(); {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrOpen):
				rejected.Add(1)
			default:
				t.Errorf("unexpected Allow error: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("admitted %d probes, want exactly 1", got)
	}
	if got := rejected.Load(); got != racers-1 {
		t.Fatalf("rejected %d, want %d (losers fail fast)", got, racers-1)
	}

	// While the probe is still in flight the slot stays taken.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second probe admitted while first in flight: %v", err)
	}
	b.Record(true) // the winner reports success
	if st := b.State(); st != Closed {
		t.Fatalf("state = %v after probe success, want closed", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected traffic: %v", err)
	}
	b.Record(true)
}

// TestBreakerFailedProbeReopensUnderRace: a failed probe re-opens the
// breaker and restarts the cooldown — concurrent callers racing the
// Record keep getting ErrOpen, and the next probe is again singular.
func TestBreakerFailedProbeReopensUnderRace(t *testing.T) {
	clock := newFakeClock()
	b := newTestBreaker(clock)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(false)
	}
	clock.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Record(false) // probe fails concurrently with the Allow storm
	}()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Allow(); err == nil {
				// Raced ahead of the failing Record while half-open: that
				// caller holds the probe slot and must report an outcome.
				b.Record(false)
			}
		}()
	}
	wg.Wait()
	if st := b.State(); st != Open {
		t.Fatalf("state = %v after failed probe, want open", st)
	}
	// Cooldown restarts from the failure: still rejecting now...
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted during cooldown: %v", err)
	}
	// ...and exactly one probe again once it elapses.
	clock.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Record(true)
	if st := b.State(); st != Closed {
		t.Fatalf("state = %v, want closed", st)
	}
}
