package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the error produced by an ErrorRate fault injection;
// handlers map it like any other internal failure.
var ErrInjected = errors.New("resilient: injected fault")

// Fault is a chaos-testing hook: it injects errors, latency and
// partial (truncated) responses at configurable rates. A nil *Fault is
// the production configuration — every method returns immediately, so
// the hook costs one nil check on the hot path and nothing else.
// Faults are injected by the serving peer, which is what lets a fleet
// test drive one peer to 100% failures while the others stay healthy.
type Fault struct {
	// ErrorRate is the probability Inject returns ErrInjected.
	ErrorRate float64
	// Latency is added (before any error) with probability
	// LatencyRate.
	Latency     time.Duration
	LatencyRate float64
	// PartialRate is the probability Partial reports true, telling the
	// serving layer to truncate and abort its response mid-body.
	PartialRate float64
	// Clock defaults to SystemClock; Rand to math/rand.Float64 (which
	// is safe for concurrent use — substitutes must be too).
	Clock Clock
	Rand  func() float64

	errors    atomic.Uint64
	latencies atomic.Uint64
	partials  atomic.Uint64
}

// FaultStats counts what a Fault has injected so far.
type FaultStats struct {
	Errors    uint64 `json:"errors"`
	Latencies uint64 `json:"latencies"`
	Partials  uint64 `json:"partials"`
}

func (f *Fault) clock() Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return SystemClock
}

func (f *Fault) rand() float64 {
	if f.Rand != nil {
		return f.Rand()
	}
	return rand.Float64()
}

// Inject applies latency then error injection. It returns ErrInjected
// with probability ErrorRate, ctx's error if the injected latency
// outlived it, and nil otherwise. A nil *Fault injects nothing.
func (f *Fault) Inject(ctx context.Context) error {
	if f == nil {
		return nil
	}
	if f.Latency > 0 && f.LatencyRate > 0 && f.rand() < f.LatencyRate {
		f.latencies.Add(1)
		if err := f.clock().Sleep(ctx, f.Latency); err != nil {
			return err
		}
	}
	if f.ErrorRate > 0 && f.rand() < f.ErrorRate {
		f.errors.Add(1)
		return ErrInjected
	}
	return nil
}

// Partial reports whether this response should be truncated mid-body.
// A nil *Fault never truncates.
func (f *Fault) Partial() bool {
	if f == nil || f.PartialRate <= 0 {
		return false
	}
	if f.rand() < f.PartialRate {
		f.partials.Add(1)
		return true
	}
	return false
}

// Stats snapshots the injection counters. A nil Fault reports zeros.
func (f *Fault) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	return FaultStats{
		Errors:    f.errors.Load(),
		Latencies: f.latencies.Load(),
		Partials:  f.partials.Load(),
	}
}

// ParseFaultSpec builds a Fault from a comma-separated key=value spec,
// the daemon's -chaos flag syntax:
//
//	error=RATE          probability of an injected error (0..1)
//	latency=DURATION    injected latency (Go duration, e.g. 50ms)
//	latency-rate=RATE   probability of the latency (default 1 when
//	                    latency is set)
//	partial=RATE        probability of a truncated response (0..1)
//
// An empty spec returns (nil, nil): chaos disabled.
func ParseFaultSpec(spec string) (*Fault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	f := &Fault{}
	latencyRateSet := false
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("resilient: fault spec %q: want key=value", kv)
		}
		switch key {
		case "error", "latency-rate", "partial":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("resilient: fault spec %s=%q: want a rate in [0,1]", key, val)
			}
			switch key {
			case "error":
				f.ErrorRate = rate
			case "latency-rate":
				f.LatencyRate = rate
				latencyRateSet = true
			case "partial":
				f.PartialRate = rate
			}
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("resilient: fault spec latency=%q: want a non-negative duration", val)
			}
			f.Latency = d
		default:
			return nil, fmt.Errorf("resilient: fault spec: unknown key %q", key)
		}
	}
	if f.Latency > 0 && !latencyRateSet {
		f.LatencyRate = 1
	}
	return f, nil
}
