package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stats"
)

func TestCompareEdgesIdentical(t *testing.T) {
	a := ComputeEdge(10, 50, 40, 1000)
	c := CompareEdges(a, a)
	if c.Diff != 0 || math.Abs(c.PValue-1) > 1e-12 {
		t.Errorf("identical edges: diff=%v p=%v", c.Diff, c.PValue)
	}
}

func TestCompareEdgesClearDifference(t *testing.T) {
	// Heavily over-expressed vs heavily under-expressed, both well
	// measured: the difference must be overwhelming.
	hi := ComputeEdge(200, 300, 300, 10000) // lift >> 1
	lo := ComputeEdge(1, 300, 300, 10000)   // lift << 1
	c := CompareEdges(hi, lo)
	if c.Z < 3 {
		t.Errorf("z = %v, want clearly significant", c.Z)
	}
	if c.PValue > 0.01 {
		t.Errorf("p = %v, want < 0.01", c.PValue)
	}
	// Anti-symmetry.
	r := CompareEdges(lo, hi)
	if math.Abs(r.Z+c.Z) > 1e-12 {
		t.Errorf("comparison not antisymmetric: %v vs %v", r.Z, c.Z)
	}
}

func TestCompareEdgesThinMarginsNotSignificant(t *testing.T) {
	// The same lifts on much thinner margins should NOT be significant:
	// the posterior variance knows the measurement is poor.
	hi := ComputeEdge(3, 5, 5, 10000)
	lo := ComputeEdge(1, 5, 5, 10000)
	c := CompareEdges(hi, lo)
	if c.PValue < 0.05 {
		t.Errorf("thin-margin comparison p = %v, want insignificant", c.PValue)
	}
}

// Property: the two-tailed p-value is in [0,1] and decreases as the
// score gap grows with variances held fixed.
func TestQuickComparePValueMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + rng.Float64()*1e6
		ni := 10 + rng.Float64()*100
		nj := 10 + rng.Float64()*100
		base := ComputeEdge(1, ni, nj, n)
		prevP := 1.1
		for _, w := range []float64{1, 2, 4, 8} {
			e := ComputeEdge(w, ni, nj, n)
			c := CompareEdges(e, base)
			if c.PValue < 0 || c.PValue > 1 {
				return false
			}
			if c.PValue > prevP+1e-12 {
				return false
			}
			prevP = c.PValue
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func yearPair(t *testing.T, changeEdge bool) (*graph.Graph, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	build := func(boost float64) *graph.Graph {
		b := graph.NewBuilder(false)
		b.AddNodes(12)
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				lam := 20.0
				if i == 0 && j == 1 {
					lam *= boost
				}
				w := float64(stats.SamplePoisson(rng, lam))
				if w > 0 {
					b.MustAddEdge(i, j, w)
				}
			}
		}
		return b.Build()
	}
	g0 := build(1)
	boost := 1.0
	if changeEdge {
		boost = 8
	}
	g1 := build(boost)
	return g0, g1
}

func TestChangesDetectsPlantedShift(t *testing.T) {
	g0, g1 := yearPair(t, true)
	changes, err := Changes(g0, g1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ch := range changes {
		if ch.Key == (graph.EdgeKey{U: 0, V: 1}) {
			found = true
			if ch.ScoreAfter <= ch.ScoreBefore {
				t.Errorf("planted boost: score went %v -> %v", ch.ScoreBefore, ch.ScoreAfter)
			}
			if ch.WeightAfter <= ch.WeightBefore {
				t.Errorf("planted boost: weight went %v -> %v", ch.WeightBefore, ch.WeightAfter)
			}
		}
	}
	if !found {
		t.Error("planted 8x change not detected at alpha 0.01")
	}
	// The vast majority of unchanged edges must not trigger.
	if len(changes) > 8 {
		t.Errorf("%d edges flagged at alpha 0.01; expected few beyond the planted one", len(changes))
	}
}

func TestChangesNullHasFewFalsePositives(t *testing.T) {
	g0, g1 := yearPair(t, false)
	changes, err := Changes(g0, g1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) > 6 {
		t.Errorf("null networks: %d significant changes at alpha 0.01 out of 66 edges", len(changes))
	}
	all, err := Changes(g0, g1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 66 {
		t.Errorf("alpha=1 returned %d edges, want all 66", len(all))
	}
}

func TestChangesErrors(t *testing.T) {
	und := graph.NewBuilder(false)
	und.AddNodes(2)
	und.MustAddEdge(0, 1, 1)
	dir := graph.NewBuilder(true)
	dir.AddNodes(2)
	dir.MustAddEdge(0, 1, 1)
	if _, err := Changes(und.Build(), dir.Build(), 1); err == nil {
		t.Error("directedness mismatch accepted")
	}
	small := graph.NewBuilder(false)
	small.AddNodes(2)
	small.MustAddEdge(0, 1, 1)
	big := graph.NewBuilder(false)
	big.AddNodes(5)
	big.MustAddEdge(3, 4, 1)
	if _, err := Changes(small.Build(), big.Build(), 1); err == nil {
		t.Error("node-set mismatch accepted")
	}
}
