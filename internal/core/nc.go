// Package core implements the Noise-Corrected (NC) network backbone of
// Coscia & Neffke, "Network Backboning with Noisy Data" (ICDE 2017) —
// the primary contribution this repository reproduces.
//
// The NC null model treats an edge weight N_ij as the sum of unitary
// interactions that each leave node i and land on node j with
// probability P_ij. Conditioning on the observed node strengths, the
// expected weight is E[N_ij] = N_i. * N_.j / N.. — unlike the Disparity
// Filter, the null simultaneously accounts for the propensity of the
// origin to emit and of the destination to receive interactions.
//
// Each observed weight is converted into a lift L_ij = N_ij / E[N_ij]
// and then symmetrized to the score L̃_ij = (L_ij - 1)/(L_ij + 1) in
// (-1, 1), centered on zero. The variance of the score follows from the
// delta method applied to the Binomial variance of N_ij, where P_ij is
// estimated not by its degenerate plug-in frequency but by the posterior
// mean of a Beta-Binomial model whose Beta prior is moment-matched to a
// hypergeometric edge-generation process (paper Eqs. 4-8). An edge
// enters the backbone when its score exceeds δ posterior standard
// deviations, δ being the method's only parameter.
package core

import (
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/stats"
)

// EdgeStats holds the Noise-Corrected statistics of a single edge.
type EdgeStats struct {
	// Expected is the null-model expectation E[N_ij] = N_i. N_.j / N.. .
	Expected float64
	// Lift is N_ij / E[N_ij].
	Lift float64
	// Score is the symmetrized lift L̃_ij = (Lift-1)/(Lift+1), in (-1, 1).
	Score float64
	// Variance is the delta-method posterior variance of Score.
	Variance float64
	// Sdev is sqrt(Variance).
	Sdev float64
	// PosteriorP is the Beta-Binomial posterior mean of P_ij.
	PosteriorP float64
}

// ComputeEdge evaluates the NC statistics for one edge given the
// observed weight nij, the endpoint strengths ni (outgoing strength of
// the source, N_i.) and nj (incoming strength of the target, N_.j), and
// the network total n (N..). It is exported so that callers can score
// hypothetical edges — e.g. to ask whether two edges differ
// significantly, the use case the paper highlights for the confidence
// intervals.
func ComputeEdge(nij, ni, nj, n float64) EdgeStats {
	var es EdgeStats
	computeEdgeInto(&es, nij, ni, nj, n)
	return es
}

// computeEdgeInto is ComputeEdge writing through a pointer: the scoring
// hot loop reuses one EdgeStats instead of copying a 48-byte struct out
// of every call. The math is shared, so serial, parallel and one-off
// edge evaluations are bit-identical by construction.
func computeEdgeInto(es *EdgeStats, nij, ni, nj, n float64) {
	if ni <= 0 || nj <= 0 || n <= 0 {
		// A positive-weight edge guarantees positive strengths; this
		// branch only serves hypothetical queries on empty margins.
		*es = EdgeStats{}
		return
	}
	es.Expected = ni * nj / n
	kappa := n / (ni * nj) // 1 / E[N_ij]
	es.Lift = nij / es.Expected
	es.Score = (kappa*nij - 1) / (kappa*nij + 1)

	// Prior moments of P_ij from the hypergeometric generation process.
	mu := ni * nj / (n * n)
	sigma2 := ni * nj * (n - ni) * (n - nj) / (n * n * n * n * (n - 1))

	// Posterior mean of P_ij. When the prior is degenerate (a node
	// carrying the entire network weight, or a single-interaction
	// network) fall back to the plug-in frequency — with the convention
	// that an impossible prior contributes no pseudo-counts.
	post := nij / n
	if sigma2 > 0 && mu > 0 && mu < 1 && sigma2 < mu*(1-mu) {
		alpha0, beta0 := stats.BetaFromMoments(mu, sigma2)
		if alpha0 > 0 && beta0 > 0 {
			post = (nij + alpha0) / (n + alpha0 + beta0)
		}
	}
	es.PosteriorP = post

	// Binomial variance of N_ij under the posterior P_ij (paper Eq. 2).
	varNij := n * post * (1 - post)

	// Delta method: V[L̃] = V[N_ij] * ( 2(κ + N_ij κ') / (κ N_ij + 1)² )².
	dKappa := 1/(ni*nj) - n*(ni+nj)/((ni*nj)*(ni*nj))
	denom := kappa*nij + 1
	deriv := 2 * (kappa + nij*dKappa) / (denom * denom)
	es.Variance = varNij * deriv * deriv
	es.Sdev = math.Sqrt(es.Variance)
}

// NoiseCorrected scores edges with the NC null model. The zero value is
// ready to use; it implements filter.Scorer.
type NoiseCorrected struct{}

// New returns a NoiseCorrected scorer.
func New() *NoiseCorrected { return &NoiseCorrected{} }

// Name implements filter.Scorer.
func (*NoiseCorrected) Name() string { return "nc" }

// NewTable implements filter.RangeScorer: it allocates the empty NC
// significance table. All five columns share one backing array, so a
// million-edge table costs a handful of allocations.
func (nc *NoiseCorrected) NewTable(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	m := g.NumEdges()
	back := make([]float64, 5*m)
	return &filter.Scores{
		G:      g,
		Score:  back[0*m : 1*m : 1*m],
		Method: nc.Name(),
		Aux: map[string][]float64{
			"nc_score": back[1*m : 2*m : 2*m],
			"sdev":     back[2*m : 3*m : 3*m],
			"expected": back[3*m : 4*m : 4*m],
			"variance": back[4*m : 5*m : 5*m],
		},
	}, nil
}

// ScoreEdges implements filter.RangeScorer: it fills rows [lo, hi) of
// the table. Aux columns are bound to locals once, outside the hot
// loop — a map lookup per edge per column would dominate the kernel.
//
//lint:ctxflow-ok RangeScorer kernel: the parallel framework checks ctx between checkpoint ranges
func (nc *NoiseCorrected) ScoreEdges(out *filter.Scores, lo, hi int) {
	g := out.G
	// For undirected graphs each canonical edge is a single bilateral
	// relation: strengths count both endpoints' incident weight and
	// TotalWeight counts each edge once per direction, so the directed
	// formulas apply unchanged with N_ij measured once.
	n := g.TotalWeight()
	outS, inS := g.OutStrengths(), g.InStrengths()
	edges := g.Edges()[lo:hi]
	score := out.Score[lo:hi]
	ncScore := out.Aux["nc_score"][lo:hi]
	sdev := out.Aux["sdev"][lo:hi]
	expected := out.Aux["expected"][lo:hi]
	variance := out.Aux["variance"][lo:hi]
	var es EdgeStats
	for i, e := range edges {
		computeEdgeInto(&es, e.Weight, outS[e.Src], inS[e.Dst], n)
		ncScore[i] = es.Score
		sdev[i] = es.Sdev
		expected[i] = es.Expected
		variance[i] = es.Variance
		switch {
		case es.Sdev > 0:
			score[i] = es.Score / es.Sdev
		case es.Score > 0:
			score[i] = math.Inf(1)
		default:
			score[i] = math.Inf(-1)
		}
	}
}

// Scores computes the NC significance table. The canonical Score column
// is L̃_ij / σ_ij, so that Threshold(δ) implements the paper's pruning
// rule "keep the edge iff L̃_ij > δ·σ_ij". Aux columns:
//
//	"nc_score"  — the symmetrized lift L̃_ij (Figure 2 plots its
//	              distribution shifted by δ·σ);
//	"sdev"      — the posterior standard deviation σ_ij;
//	"expected"  — E[N_ij] under the null;
//	"variance"  — V[L̃_ij], the quantity validated against observed
//	              year-to-year variance in Table I.
func (nc *NoiseCorrected) Scores(g *graph.Graph) (*filter.Scores, error) {
	return filter.Serial(nc, g)
}

// Backbone extracts the NC backbone at significance δ: edges whose
// symmetrized lift exceeds δ posterior standard deviations. Common
// δ values are 1.28, 1.64 and 2.32, approximating one-tailed p-values
// of 0.10, 0.05 and 0.01.
func (nc *NoiseCorrected) Backbone(g *graph.Graph, delta float64) (*graph.Graph, error) {
	s, err := nc.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(delta), nil
}

// DeltaToPValue converts a δ threshold to the one-tailed p-value it
// approximates under a normal score distribution.
func DeltaToPValue(delta float64) float64 { return 1 - stats.NormalCDF(delta) }

// PValueToDelta converts a one-tailed p-value to the corresponding δ.
func PValueToDelta(p float64) float64 { return stats.NormalQuantile(1 - p) }
