package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/stats"
)

// This file implements the inferential uses of the NC confidence
// intervals beyond pruning, which the paper singles out ("the
// confidence intervals the algorithm produces can also be used more
// generally, for instance to determine whether two edges differ
// significantly from one another in strength") and names as future
// work ("we plan to study whether it is possible to distinguish real
// from spurious changes in networks", Section VII).

// Comparison reports a two-sample z-test between two edge scores.
type Comparison struct {
	// Diff is the difference between the first and second symmetrized
	// lift scores.
	Diff float64
	// Sdev is the standard deviation of Diff under independence.
	Sdev float64
	// Z is Diff / Sdev.
	Z float64
	// PValue is the two-tailed p-value of observing |Z| or larger.
	PValue float64
}

// CompareEdges tests whether two edges differ significantly in strength
// relative to their null expectations. Both EdgeStats should come from
// ComputeEdge (or the Scores table) of the same or comparable networks.
func CompareEdges(a, b EdgeStats) Comparison {
	return compareScores(a.Score, a.Variance, b.Score, b.Variance)
}

func compareScores(s1, v1, s2, v2 float64) Comparison {
	c := Comparison{Diff: s1 - s2, Sdev: math.Sqrt(v1 + v2)}
	if c.Sdev > 0 {
		c.Z = c.Diff / c.Sdev
		c.PValue = 2 * (1 - stats.NormalCDF(math.Abs(c.Z)))
	} else if c.Diff != 0 {
		c.Z = math.Inf(sign(c.Diff))
		c.PValue = 0
	} else {
		c.PValue = 1
	}
	return c
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// EdgeChange describes the significance of an edge's evolution between
// two observations of the same network.
type EdgeChange struct {
	Key graph.EdgeKey
	// WeightBefore and WeightAfter are the raw weights (0 if absent).
	WeightBefore, WeightAfter float64
	// ScoreBefore and ScoreAfter are the symmetrized lifts: comparing
	// them nets out global growth, since lifts are relative to each
	// year's own margins.
	ScoreBefore, ScoreAfter float64
	// Comparison tests ScoreAfter - ScoreBefore against the pooled
	// posterior variance.
	Comparison
}

// Changes tests every edge present in either observation for a
// significant change in its noise-corrected strength. An edge absent
// from one observation is scored there with weight zero (score -1 and
// the posterior variance of a zero-weight pair). Results are returned
// for edges whose two-tailed p-value is at most alpha, in ascending
// (U, V) key order; pass alpha = 1 to get every edge.
//
// Distinguishing real from spurious changes is precisely what raw
// weight differences cannot do in noisy data: a weight doubling on a
// thin edge is routine measurement noise, while a modest shift on a
// well-measured heavy edge can be overwhelming evidence.
//
//lint:ctxflow-ok terminal analysis, not a pipeline stage: one O(m) pass per observation at the caller's boundary
func Changes(before, after *graph.Graph, alpha float64) ([]EdgeChange, error) {
	if before.Directed() != after.Directed() {
		return nil, fmt.Errorf("core: cannot compare a directed with an undirected network")
	}
	type obs struct {
		weight float64
		stats  EdgeStats
	}
	collect := func(g *graph.Graph) map[graph.EdgeKey]obs {
		n := g.TotalWeight()
		m := make(map[graph.EdgeKey]obs, g.NumEdges())
		for _, e := range g.Edges() {
			m[g.Key(e)] = obs{
				weight: e.Weight,
				stats:  ComputeEdge(e.Weight, g.OutStrength(int(e.Src)), g.InStrength(int(e.Dst)), n),
			}
		}
		return m
	}
	// statsFor returns the observation for key in g, falling back to a
	// zero-weight evaluation against g's margins when the edge is absent.
	statsFor := func(g *graph.Graph, m map[graph.EdgeKey]obs, key graph.EdgeKey) obs {
		if o, ok := m[key]; ok {
			return o
		}
		return obs{stats: ComputeEdge(0,
			g.OutStrength(int(key.U)), g.InStrength(int(key.V)), g.TotalWeight())}
	}

	mb := collect(before)
	ma := collect(after)
	keys := make([]graph.EdgeKey, 0, len(mb)+len(ma))
	//lint:detiter-ok collecting the key union; sorted below
	for k := range mb {
		keys = append(keys, k)
	}
	//lint:detiter-ok collecting the key union; sorted below
	for k := range ma {
		if _, ok := mb[k]; !ok {
			keys = append(keys, k)
		}
	}
	// Sorted key order keeps the returned slice deterministic — callers
	// diff and serialize it, so it must not inherit map range order.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	var out []EdgeChange
	for _, key := range keys {
		if int(key.U) >= before.NumNodes() || int(key.V) >= before.NumNodes() ||
			int(key.U) >= after.NumNodes() || int(key.V) >= after.NumNodes() {
			return nil, fmt.Errorf("core: node %v outside the smaller network's node set", key)
		}
		ob := statsFor(before, mb, key)
		oa := statsFor(after, ma, key)
		cmp := compareScores(oa.stats.Score, oa.stats.Variance, ob.stats.Score, ob.stats.Variance)
		if cmp.PValue <= alpha {
			out = append(out, EdgeChange{
				Key:          key,
				WeightBefore: ob.weight,
				WeightAfter:  oa.weight,
				ScoreBefore:  ob.stats.Score,
				ScoreAfter:   oa.stats.Score,
				Comparison:   cmp,
			})
		}
	}
	return out, nil
}
