package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

// Hand-computed reference: directed graph a->b (3), a->c (1), b->c (2).
// For edge a->b: ni=4, nj=3, n=6; all intermediate quantities below were
// derived by hand from the paper's Eqs. 1-8.
func TestComputeEdgeHandChecked(t *testing.T) {
	es := ComputeEdge(3, 4, 3, 6)
	approx(t, es.Expected, 2, 1e-12, "E[Nij]")
	approx(t, es.Lift, 1.5, 1e-12, "lift")
	approx(t, es.Score, 0.2, 1e-12, "score")
	approx(t, es.PosteriorP, 0.3733333333, 1e-9, "posterior P")
	approx(t, es.Variance, 0.0022459733, 1e-9, "variance")
	approx(t, es.Sdev, math.Sqrt(0.0022459733), 1e-9, "sdev")
}

func TestScoreSymmetryOfLiftTransform(t *testing.T) {
	// The paper: lift 0.1 maps to -0.81..., lift 10 maps to +0.81...
	// Construct margins so that E[Nij] = 1 => lift equals nij.
	lo := ComputeEdge(0.1, 10, 10, 100)
	hi := ComputeEdge(10, 10, 10, 100)
	approx(t, lo.Score, -9.0/11.0, 1e-12, "lift 0.1")
	approx(t, hi.Score, +9.0/11.0, 1e-12, "lift 10")
	approx(t, lo.Score, -hi.Score, 1e-12, "symmetric around 0")
	mid := ComputeEdge(1, 10, 10, 100)
	approx(t, mid.Score, 0, 1e-12, "expected weight scores 0")
}

func TestZeroWeightEdgeHasPositiveVariance(t *testing.T) {
	// The raison d'être of the Bayesian step: N_ij = 0 must NOT imply
	// zero estimated variance (Section IV).
	es := ComputeEdge(0, 50, 30, 1000)
	if es.Variance <= 0 {
		t.Fatalf("variance = %v for zero edge, want > 0", es.Variance)
	}
	if es.Score != -1 {
		t.Errorf("zero edge score = %v, want -1 (minimum lift)", es.Score)
	}
	if es.PosteriorP <= 0 {
		t.Errorf("posterior P = %v, want strictly positive", es.PosteriorP)
	}
}

func TestPosteriorShrinkage(t *testing.T) {
	// The posterior mean must lie strictly between the plug-in frequency
	// nij/n and the prior mean ni*nj/n².
	nij, ni, nj, n := 40.0, 100.0, 100.0, 1000.0
	es := ComputeEdge(nij, ni, nj, n)
	plugin := nij / n          // 0.04
	prior := ni * nj / (n * n) // 0.01
	if !(es.PosteriorP > prior && es.PosteriorP < plugin) {
		t.Errorf("posterior %v not between prior %v and plug-in %v", es.PosteriorP, prior, plugin)
	}
}

func TestDegenerateMarginsFallBack(t *testing.T) {
	// ni == n: the prior variance formula degenerates; plug-in is used.
	es := ComputeEdge(5, 100, 50, 100)
	if es.PosteriorP != 5.0/100 {
		t.Errorf("degenerate prior: posterior = %v, want plug-in 0.05", es.PosteriorP)
	}
	// Empty margins yield a zero value, not NaN.
	z := ComputeEdge(1, 0, 5, 10)
	if z.Sdev != 0 || z.Score != 0 {
		t.Errorf("empty margin: %+v", z)
	}
}

// Property: the NC score is strictly within (-1, 1) and increases with
// the observed weight when margins are held fixed.
func TestQuickScoreBoundsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Float64()*1e6
		ni := 1 + rng.Float64()*(n/4)
		nj := 1 + rng.Float64()*(n/4)
		prev := math.Inf(-1)
		for _, frac := range []float64{0, 0.001, 0.01, 0.1, 0.5, 1} {
			nij := frac * math.Min(ni, nj)
			es := ComputeEdge(nij, ni, nj, n)
			if es.Score <= -1-1e-12 || es.Score >= 1 {
				return false
			}
			if es.Score < prev {
				return false
			}
			prev = es.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and finite for all realistic inputs.
func TestQuickVarianceFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Float64()*1e7
		ni := 1 + rng.Float64()*(n/2)
		nj := 1 + rng.Float64()*(n/2)
		nij := rng.Float64() * math.Min(ni, nj)
		es := ComputeEdge(nij, ni, nj, n)
		return es.Variance >= 0 && !math.IsInf(es.Variance, 0) && !math.IsNaN(es.Variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildTestGraph(directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	a, bb, c := b.AddNode("a"), b.AddNode("b"), b.AddNode("c")
	b.MustAddEdge(a, bb, 3)
	b.MustAddEdge(a, c, 1)
	b.MustAddEdge(bb, c, 2)
	return b.Build()
}

func TestScoresDirectedGraph(t *testing.T) {
	g := buildTestGraph(true)
	nc := New()
	s, err := nc.Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Method != "nc" || nc.Name() != "nc" {
		t.Errorf("method name = %q", s.Method)
	}
	// Edge a->b is edge (0,1): matches hand-checked ComputeEdge.
	var id = -1
	for i, e := range g.Edges() {
		if e.Src == 0 && e.Dst == 1 {
			id = i
		}
	}
	if id < 0 {
		t.Fatal("edge a->b not found")
	}
	approx(t, s.Aux["nc_score"][id], 0.2, 1e-12, "graph-level nc_score")
	approx(t, s.Score[id], 0.2/math.Sqrt(0.0022459733), 1e-6, "canonical z-score")
	approx(t, s.Aux["expected"][id], 2, 1e-12, "expected column")
}

func TestScoresUndirectedConventions(t *testing.T) {
	g := buildTestGraph(false)
	s, err := New().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected: node strengths count incident weight; total doubles.
	// Edge a-b: ni = 4, nj = 5, n = 12 -> E = 20/12.
	for i, e := range g.Edges() {
		if e.Src == 0 && e.Dst == 1 {
			approx(t, s.Aux["expected"][i], 4.0*5.0/12.0, 1e-12, "undirected expectation")
		}
	}
}

func TestBackboneThresholding(t *testing.T) {
	g := buildTestGraph(true)
	nc := New()
	all, err := nc.Backbone(g, math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	if all.NumEdges() != g.NumEdges() {
		t.Errorf("delta=-inf should keep all edges, kept %d", all.NumEdges())
	}
	none, err := nc.Backbone(g, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if none.NumEdges() != 0 {
		t.Errorf("delta=+inf should drop all edges, kept %d", none.NumEdges())
	}
	if none.NumNodes() != g.NumNodes() {
		t.Error("node set must be preserved after pruning")
	}
	// Monotone: higher delta keeps a subset.
	b1, _ := nc.Backbone(g, 0.5)
	b2, _ := nc.Backbone(g, 2.0)
	if b2.NumEdges() > b1.NumEdges() {
		t.Errorf("delta=2 kept %d > delta=0.5 kept %d", b2.NumEdges(), b1.NumEdges())
	}
}

func TestEmptyGraphError(t *testing.T) {
	g := graph.NewBuilder(true).Build()
	if _, err := New().Scores(g); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := NewBinomial().Scores(g); err == nil {
		t.Error("empty graph accepted by binomial variant")
	}
}

func TestDeltaPValueRoundTrip(t *testing.T) {
	for _, d := range []float64{1.28, 1.64, 2.32} {
		p := DeltaToPValue(d)
		approx(t, PValueToDelta(p), d, 1e-8, "round trip")
	}
	approx(t, DeltaToPValue(1.28), 0.1, 5e-3, "paper delta 1.28 ~ p 0.1")
	approx(t, DeltaToPValue(1.64), 0.05, 5e-3, "paper delta 1.64 ~ p 0.05")
	approx(t, DeltaToPValue(2.32), 0.01, 5e-3, "paper delta 2.32 ~ p 0.01")
}

func TestBinomialVariantAgreesOnStrongEdges(t *testing.T) {
	// A clearly over-expressed edge should be significant under both the
	// delta-method score and the direct binomial p-value. The background
	// is a uniform complete graph so margins are flat and only the
	// planted pair deviates from its expectation.
	b := graph.NewBuilder(true)
	b.AddNodes(10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j {
				b.MustAddEdge(i, j, 5)
			}
		}
	}
	b.MustAddEdge(2, 7, 45) // pair (2,7) now carries weight 50, lift ~3
	g := b.Build()

	sNC, err := New().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	sBin, err := NewBinomial().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	var strong int = -1
	for i, e := range g.Edges() {
		if e.Weight == 50 {
			strong = i
		}
	}
	// The strong edge must be the top-ranked edge under both variants.
	for i := range g.Edges() {
		if i == strong {
			continue
		}
		if sNC.Score[i] >= sNC.Score[strong] {
			t.Errorf("NC: edge %d outranks the planted strong edge", i)
		}
		if sBin.Score[i] >= sBin.Score[strong] {
			t.Errorf("binomial: edge %d outranks the planted strong edge", i)
		}
	}
	pv := sBin.Aux["pvalue"][strong]
	if pv > 1e-6 {
		t.Errorf("planted edge p-value = %v, want tiny", pv)
	}
}

func TestBinomialBackboneAlpha(t *testing.T) {
	g := buildTestGraph(true)
	bb, err := NewBinomial().Backbone(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// alpha = 1 keeps edges with pvalue < 1: all edges here have pvalue
	// strictly below 1 because they have positive weight.
	if bb.NumEdges() == 0 {
		t.Error("alpha=1 dropped everything")
	}
	none, err := NewBinomial().Backbone(g, 1e-300)
	if err != nil {
		t.Fatal(err)
	}
	if none.NumEdges() != 0 {
		t.Errorf("alpha=1e-300 kept %d edges", none.NumEdges())
	}
}
