package core

import (
	"math"

	"repro/internal/filter"
)

// The NC variants self-register into the default method registry so
// that the root pipeline, the CLI and the experiment harness discover
// them without per-method dispatch code. Adding an algorithm anywhere
// in the module is one MustRegister call.
func init() {
	filter.MustRegister(&filter.Method{
		Name:  "nc",
		Title: "Noise-Corrected",
		Desc:  "Bayesian noise-corrected backbone (Coscia & Neffke 2017); keeps edges whose lift exceeds delta posterior standard deviations",
		Order: 10,
		Params: []filter.Param{
			{Name: "delta", Default: 1.64, Desc: "significance threshold in standard deviations (1.28/1.64/2.32 ≈ p 0.10/0.05/0.01)"},
		},
		Scorer:         New(),
		ParallelScorer: NewParallel(),
		Cut:            func(p filter.Params) float64 { return p["delta"] },
		// The NC score reads the global total weight (N..), so any
		// update dirties every row: incremental serving reuses the
		// materialized graph but re-scores the full table.
		Delta: &filter.DeltaScorer{Dirtiness: filter.DirtyGlobal},
	})
	filter.MustRegister(&filter.Method{
		Name:  "nc-binomial",
		Title: "NC Binomial",
		Desc:  "footnote-2 NC variant: direct upper-tail Binomial p-values against the bilateral null",
		Order: 70,
		Params: []filter.Param{
			{Name: "alpha", Default: 0.05, Desc: "significance level on the Binomial p-value"},
		},
		Scorer:         NewBinomial(),
		ParallelScorer: filter.Parallelize(NewBinomial()),
		Cut:            func(p filter.Params) float64 { return -math.Log10(p["alpha"]) },
		// Same global N.. term as nc: every row dirties on any update.
		Delta: &filter.DeltaScorer{Dirtiness: filter.DirtyGlobal},
	})
}
