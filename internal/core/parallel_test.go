package core

import (
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/gen"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.ErdosRenyiGNM(rng, 3000, 9000) // above the serial fallback cutoff
	serial, err := New().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		par, err := (&filter.Parallel{RS: New(), Workers: workers}).Scores(g)
		if err != nil {
			t.Fatal(err)
		}
		if par.Method != "nc-parallel" {
			t.Errorf("method = %q", par.Method)
		}
		for i := range serial.Score {
			if serial.Score[i] != par.Score[i] {
				t.Fatalf("workers=%d: score[%d] = %v, serial %v (must be bit-identical)",
					workers, i, par.Score[i], serial.Score[i])
			}
		}
		for col := range serial.Aux {
			for i := range serial.Aux[col] {
				if serial.Aux[col][i] != par.Aux[col][i] {
					t.Fatalf("workers=%d: aux %q differs at %d", workers, col, i)
				}
			}
		}
	}
}

func TestParallelSmallGraphFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ErdosRenyiGNM(rng, 50, 100)
	s, err := NewParallel().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Method != "nc-parallel" {
		t.Errorf("fallback lost method name: %q", s.Method)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func BenchmarkSerialNC100k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyiGNM(rng, 70_000, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New().Scores(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelNC100k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyiGNM(rng, 70_000, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewParallel().Scores(g); err != nil {
			b.Fatal(err)
		}
	}
}
