package core

import (
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/stats"
)

// BinomialPValues implements the alternative NC variant described in
// footnote 2 of the paper: skip the lift transformation and read the
// p-value of each edge weight directly off the null model's Binomial
// distribution, with N.. draws and success probability
// N_i. N_.j / N..². The variant cannot express a standard deviation for
// an edge weight (so two edges cannot be compared statistically), but
// it is a useful ablation against the delta-method score.
//
// It implements filter.Scorer; the canonical Score is -log10(p-value),
// so Threshold(-log10(α)) keeps edges significant at level α.
type BinomialPValues struct{}

// NewBinomial returns a BinomialPValues scorer.
func NewBinomial() *BinomialPValues { return &BinomialPValues{} }

// Name implements filter.Scorer.
func (*BinomialPValues) Name() string { return "nc-binomial" }

// Scores computes upper-tail Binomial p-values per edge.
// Aux column "pvalue" carries the raw p-values.
func (b *BinomialPValues) Scores(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	m := g.NumEdges()
	out := &filter.Scores{
		G:      g,
		Score:  make([]float64, m),
		Method: b.Name(),
		Aux:    map[string][]float64{"pvalue": make([]float64, m)},
	}
	n := g.TotalWeight()
	for id, e := range g.Edges() {
		ni := g.OutStrength(int(e.Src))
		nj := g.InStrength(int(e.Dst))
		p := ni * nj / (n * n)
		pv := stats.BinomialSF(e.Weight, n, p)
		out.Aux["pvalue"][id] = pv
		if pv <= 0 {
			out.Score[id] = math.Inf(1)
		} else {
			out.Score[id] = -math.Log10(pv)
		}
	}
	return out, nil
}

// Backbone keeps edges whose Binomial p-value is below alpha.
func (b *BinomialPValues) Backbone(g *graph.Graph, alpha float64) (*graph.Graph, error) {
	s, err := b.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(-math.Log10(alpha)), nil
}
