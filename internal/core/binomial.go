package core

import (
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/stats"
)

// BinomialPValues implements the alternative NC variant described in
// footnote 2 of the paper: skip the lift transformation and read the
// p-value of each edge weight directly off the null model's Binomial
// distribution, with N.. draws and success probability
// N_i. N_.j / N..². The variant cannot express a standard deviation for
// an edge weight (so two edges cannot be compared statistically), but
// it is a useful ablation against the delta-method score.
//
// It implements filter.Scorer; the canonical Score is -log10(p-value),
// so Threshold(-log10(α)) keeps edges significant at level α.
type BinomialPValues struct{}

// NewBinomial returns a BinomialPValues scorer.
func NewBinomial() *BinomialPValues { return &BinomialPValues{} }

// Name implements filter.Scorer.
func (*BinomialPValues) Name() string { return "nc-binomial" }

// NewTable implements filter.RangeScorer; both columns share one
// backing array.
func (b *BinomialPValues) NewTable(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	m := g.NumEdges()
	back := make([]float64, 2*m)
	return &filter.Scores{
		G:      g,
		Score:  back[:m:m],
		Method: b.Name(),
		Aux:    map[string][]float64{"pvalue": back[m : 2*m : 2*m]},
	}, nil
}

// ScoreEdges implements filter.RangeScorer, filling rows [lo, hi) with
// the Aux column bound outside the loop.
func (b *BinomialPValues) ScoreEdges(out *filter.Scores, lo, hi int) {
	g := out.G
	n := g.TotalWeight()
	edges := g.Edges()
	score := out.Score
	pvalue := out.Aux["pvalue"]
	for id := lo; id < hi; id++ {
		e := edges[id]
		ni := g.OutStrength(int(e.Src))
		nj := g.InStrength(int(e.Dst))
		p := ni * nj / (n * n)
		pv := stats.BinomialSF(e.Weight, n, p)
		pvalue[id] = pv
		if pv <= 0 {
			score[id] = math.Inf(1)
		} else {
			score[id] = -math.Log10(pv)
		}
	}
}

// Scores computes upper-tail Binomial p-values per edge.
// Aux column "pvalue" carries the raw p-values.
func (b *BinomialPValues) Scores(g *graph.Graph) (*filter.Scores, error) {
	return filter.Serial(b, g)
}

// Backbone keeps edges whose Binomial p-value is below alpha.
func (b *BinomialPValues) Backbone(g *graph.Graph, alpha float64) (*graph.Graph, error) {
	s, err := b.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(-math.Log10(alpha)), nil
}
