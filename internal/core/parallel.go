package core

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/filter"
	"repro/internal/graph"
)

// ParallelNoiseCorrected scores edges with the NC null model using all
// available CPUs. Edge scores are independent given the (precomputed)
// node strengths, so the computation is embarrassingly parallel; this
// scorer exists for the paper's scalability regime ("exploring
// improvements in the implementation ... could lead to its potential
// application to networks with billions of edges", Section VII).
// Results are bit-identical to NoiseCorrected.
type ParallelNoiseCorrected struct {
	// Workers overrides the worker count (default: GOMAXPROCS).
	Workers int
}

// NewParallel returns a parallel NC scorer with default worker count.
func NewParallel() *ParallelNoiseCorrected { return &ParallelNoiseCorrected{} }

// Name implements filter.Scorer.
func (*ParallelNoiseCorrected) Name() string { return "nc-parallel" }

// Scores computes the same table as NoiseCorrected.Scores, in parallel.
func (p *ParallelNoiseCorrected) Scores(g *graph.Graph) (*filter.Scores, error) {
	// Delegate validation and the small-graph path to the serial scorer.
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if g.NumEdges() < 4096 || workers == 1 {
		s, err := New().Scores(g)
		if err != nil {
			return nil, err
		}
		s.Method = p.Name()
		return s, nil
	}
	m := g.NumEdges()
	out := &filter.Scores{
		G:      g,
		Score:  make([]float64, m),
		Method: p.Name(),
		Aux: map[string][]float64{
			"nc_score": make([]float64, m),
			"sdev":     make([]float64, m),
			"expected": make([]float64, m),
			"variance": make([]float64, m),
		},
	}
	n := g.TotalWeight()
	edges := g.Edges()
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				e := edges[id]
				es := ComputeEdge(e.Weight, g.OutStrength(int(e.Src)), g.InStrength(int(e.Dst)), n)
				out.Aux["nc_score"][id] = es.Score
				out.Aux["sdev"][id] = es.Sdev
				out.Aux["expected"][id] = es.Expected
				out.Aux["variance"][id] = es.Variance
				switch {
				case es.Sdev > 0:
					out.Score[id] = es.Score / es.Sdev
				case es.Score > 0:
					out.Score[id] = math.Inf(1)
				default:
					out.Score[id] = math.Inf(-1)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
