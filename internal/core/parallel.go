package core

import (
	"repro/internal/filter"
)

// NewParallel returns the NC scorer computed on all CPUs. Edge scores
// are independent given the (precomputed) node strengths, so the
// computation is embarrassingly parallel; the parallel variant exists
// for the paper's scalability regime ("exploring improvements in the
// implementation ... could lead to its potential application to
// networks with billions of edges", Section VII).
//
// The chunked-worker machinery lives in filter.Parallelize — the same
// wrapper serves df, nt and nc-binomial — and results are bit-identical
// to the serial NoiseCorrected scorer, since both run the exact same
// per-edge kernel (NoiseCorrected.ScoreEdges).
func NewParallel() *filter.Parallel { return filter.Parallelize(New()) }
