// Package gen generates the random networks used across the paper's
// experiments: Barabási–Albert graphs with the Fig-4 noise model,
// Erdős–Rényi graphs for the scalability benchmark (Fig 9), and
// planted-partition graphs for the Figure-1 community-recovery
// demonstration.
package gen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// BarabasiAlbert grows a preferential-attachment graph with n nodes,
// attaching each new node with mMean edges on average. Fractional mMean
// is honored probabilistically (the paper's synthetic networks have
// average degree 3, i.e. mMean = 1.5): each arrival attaches
// floor(mMean) edges plus one more with probability frac(mMean).
// The returned adjacency is unweighted (weight 1 per edge); callers
// attach weights separately.
func BarabasiAlbert(rng *rand.Rand, n int, mMean float64) *graph.Graph {
	if n < 2 {
		b := graph.NewBuilder(false)
		b.AddNodes(n)
		return b.Build()
	}
	base := int(mMean)
	frac := mMean - float64(base)
	b := graph.NewBuilder(false)
	b.AddNodes(n)

	// Repeated-nodes list: each endpoint appearance is one unit of
	// degree, so uniform sampling from it is preferential attachment.
	targets := make([]int, 0, 2*int(mMean*float64(n))+4)
	b.MustAddEdge(0, 1, 1)
	targets = append(targets, 0, 1)

	seen := make(map[int]bool)
	for v := 2; v < n; v++ {
		m := base
		if frac > 0 && rng.Float64() < frac {
			m++
		}
		if m < 1 {
			m = 1
		}
		if m > v {
			m = v
		}
		for k := range seen {
			delete(seen, k)
		}
		added := 0
		for added < m {
			var u int
			if len(targets) > 0 {
				u = targets[rng.Intn(len(targets))]
			} else {
				u = rng.Intn(v)
			}
			if u == v || seen[u] {
				// Resample; fall back to uniform choice if the candidate
				// pool is nearly exhausted.
				u = rng.Intn(v)
				if seen[u] {
					continue
				}
			}
			seen[u] = true
			b.MustAddEdge(v, u, 1)
			targets = append(targets, v, u)
			added++
		}
	}
	return b.Build()
}

// ErdosRenyiGNM samples a uniform random graph with n nodes and m
// distinct undirected edges, each carrying a U(0,1) weight — the
// workload of the paper's scalability experiment (Fig 9: average degree
// three, uniform random weights).
func ErdosRenyiGNM(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	seen := make(map[[2]int32]bool, m)
	for len(seen) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{int32(u), int32(v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.MustAddEdge(u, v, rng.Float64())
	}
	return b.Build()
}

// PlantedPartition samples a graph with k equal communities over n
// nodes. Within-community pairs connect with probability pIn, others
// with pOut; all edges carry U(0.5, 1.5) weights. It returns the graph
// and the ground-truth community assignment — the Figure-1 scenario of
// a latent structure to be recovered after noise is added.
func PlantedPartition(rng *rand.Rand, n, k int, pIn, pOut float64) (*graph.Graph, []int) {
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i * k / n
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if truth[u] == truth[v] {
				p = pIn
			}
			if rng.Float64() < p {
				b.MustAddEdge(u, v, stats.SampleUniform(rng, 0.5, 1.5))
			}
		}
	}
	return b.Build(), truth
}
