package gen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// NoisyNetwork is the synthetic-network experiment instance of the
// paper's Section V-A: a true backbone drowned in noise edges.
type NoisyNetwork struct {
	// Noisy is the full network: true edges plus every complement pair
	// filled with noise weights.
	Noisy *graph.Graph
	// TrueEdges is the edge-key set of the underlying real network.
	TrueEdges map[graph.EdgeKey]bool
	// NumTrue is the number of true edges.
	NumTrue int
}

// AddNoise builds the Fig-4 workload from a topology g (typically
// Barabási–Albert): every true edge (i, j) gets weight
//
//	N_ij = (k_i + k_j) · U(eta, 1),
//
// and every non-edge of the adjacency complement gets noise weight
//
//	N_ij = (k_i + k_j) · U(0, eta),
//
// with k the degree in g. This makes weights broadly distributed and
// locally correlated with topology, and lets eta dial how much the
// noise floor overlaps the true signal.
func AddNoise(rng *rand.Rand, g *graph.Graph, eta float64) *NoisyNetwork {
	n := g.NumNodes()
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(g.OutDegree(u))
	}
	isEdge := g.EdgeSet()
	b := graph.NewBuilder(false)
	b.AddNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			k := deg[u] + deg[v]
			if k == 0 {
				continue
			}
			var w float64
			if isEdge[graph.EdgeKey{U: int32(u), V: int32(v)}] {
				w = k * stats.SampleUniform(rng, eta, 1)
			} else {
				w = k * stats.SampleUniform(rng, 0, eta)
			}
			if w > 0 {
				b.MustAddEdge(u, v, w)
			}
		}
	}
	return &NoisyNetwork{
		Noisy:     b.Build(),
		TrueEdges: isEdge,
		NumTrue:   len(isEdge),
	}
}
