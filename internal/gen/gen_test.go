package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBarabasiAlbertDegreeAndConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := BarabasiAlbert(rng, 200, 1.5)
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avgDeg < 2.4 || avgDeg > 3.6 {
		t.Errorf("average degree = %v, want ~3 (paper's synthetic setting)", avgDeg)
	}
	if !g.IsWeaklyConnected() {
		t.Error("BA graph should be connected by construction")
	}
	// Preferential attachment: max degree far above the average.
	maxDeg := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 3*avgDeg {
		t.Errorf("max degree %d; expected a hub well above mean %v", maxDeg, avgDeg)
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := BarabasiAlbert(rng, 1, 2)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("n=1: %v", g)
	}
	g = BarabasiAlbert(rng, 2, 3)
	if g.NumEdges() != 1 {
		t.Errorf("n=2 should have the seed edge, got %d", g.NumEdges())
	}
}

func TestErdosRenyiGNMExactCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyiGNM(rng, 100, 150)
	if g.NumNodes() != 100 || g.NumEdges() != 150 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Weight <= 0 || e.Weight >= 1 {
			t.Errorf("weight %v outside (0,1)", e.Weight)
		}
	}
	// Requesting more edges than possible caps at the complete graph.
	g = ErdosRenyiGNM(rng, 5, 100)
	if g.NumEdges() != 10 {
		t.Errorf("overfull request: %d edges, want 10", g.NumEdges())
	}
}

func TestAddNoiseFillsComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := BarabasiAlbert(rng, 50, 1.5)
	nn := AddNoise(rng, base, 0.2)
	// Full network: all pairs between non-isolated nodes are present.
	wantEdges := 50 * 49 / 2
	if nn.Noisy.NumEdges() != wantEdges {
		t.Errorf("noisy edges = %d, want %d (complete)", nn.Noisy.NumEdges(), wantEdges)
	}
	if nn.NumTrue != base.NumEdges() {
		t.Errorf("NumTrue = %d, want %d", nn.NumTrue, base.NumEdges())
	}
	// True edges must be heavier in expectation: check the floor property
	// w_true >= (k_i+k_j)*eta > w_noise's own cap comparison per pair.
	deg := func(u int) float64 { return float64(base.OutDegree(u)) }
	for _, e := range nn.Noisy.Edges() {
		k := deg(int(e.Src)) + deg(int(e.Dst))
		if nn.TrueEdges[nn.Noisy.Key(e)] {
			if e.Weight < 0.2*k-1e-9 || e.Weight > k {
				t.Errorf("true edge weight %v outside [%v, %v]", e.Weight, 0.2*k, k)
			}
		} else if e.Weight > 0.2*k+1e-9 {
			t.Errorf("noise edge weight %v above cap %v", e.Weight, 0.2*k)
		}
	}
}

func TestPlantedPartitionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, truth := PlantedPartition(rng, 120, 4, 0.5, 0.02)
	if g.NumNodes() != 120 || len(truth) != 120 {
		t.Fatal("sizes wrong")
	}
	sizes := make(map[int]int)
	for _, c := range truth {
		sizes[c]++
	}
	if len(sizes) != 4 {
		t.Fatalf("communities = %d, want 4", len(sizes))
	}
	for c, s := range sizes {
		if s != 30 {
			t.Errorf("community %d size %d, want 30", c, s)
		}
	}
	within, between := 0, 0
	for _, e := range g.Edges() {
		if truth[e.Src] == truth[e.Dst] {
			within++
		} else {
			between++
		}
	}
	// Expected: within ~ 4*C(30,2)*0.5 = 870, between ~ 5400*0.02 = 108.
	if within < between {
		t.Errorf("within=%d between=%d: planted structure missing", within, between)
	}
}

// Property: noise generation is deterministic given the seed.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		g1 := BarabasiAlbert(rand.New(rand.NewSource(seed)), 40, 1.5)
		g2 := BarabasiAlbert(rand.New(rand.NewSource(seed)), 40, 1.5)
		if g1.NumEdges() != g2.NumEdges() {
			return false
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: BA graphs never contain duplicate edges or self-loops and
// are always connected.
func TestQuickBAWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(100)
		g := BarabasiAlbert(rng, n, 1+rng.Float64()*2)
		seen := map[graph.EdgeKey]bool{}
		for _, e := range g.Edges() {
			if e.Src == e.Dst {
				return false
			}
			k := g.Key(e)
			if seen[k] {
				return false
			}
			seen[k] = true
			if e.Weight != 1 {
				return false
			}
		}
		return g.IsWeaklyConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNoiseEtaZeroAndOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := BarabasiAlbert(rng, 30, 1.5)
	// eta = 0: noise edges all have zero weight, so they vanish.
	nn := AddNoise(rng, base, 0)
	if nn.Noisy.NumEdges() != base.NumEdges() {
		t.Errorf("eta=0: %d edges, want %d (pure signal)", nn.Noisy.NumEdges(), base.NumEdges())
	}
	// eta = 1: signal and noise are statistically identical; recovery
	// is impossible but generation must still work.
	nn = AddNoise(rng, base, 1)
	if nn.Noisy.NumEdges() != 30*29/2 {
		t.Errorf("eta=1: %d edges", nn.Noisy.NumEdges())
	}

}
