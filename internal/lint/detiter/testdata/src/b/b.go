// Package b is outside the -scope allowlist: map ranges here are not
// on a determinism-sensitive path and must not be reported.
package b

func fold(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
