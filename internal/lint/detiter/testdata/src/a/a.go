package a

func fold(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `iteration over map`
		s += v
	}
	return s
}

func keys(m map[string]float64) {
	for k := range m { // want `iteration over map`
		_ = k
	}
}

type table map[int]int // named type with map underlying

func named(t table) {
	for range t { // want `iteration over map`
	}
}

func waived(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	//lint:detiter-ok copying into another map; destination order is irrelevant
	for k, v := range m {
		out[k] = v
	}
	return out
}

func bare(m map[string]int) {
	//lint:detiter-ok
	for range m { // want `//lint:detiter-ok requires a reason`
	}
}

func slices(xs []int) int {
	n := 0
	for _, x := range xs { // slices iterate in index order: fine
		n += x
	}
	return n
}
