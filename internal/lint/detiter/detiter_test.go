package detiter_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detiter"
)

func TestDetiter(t *testing.T) {
	if err := detiter.Analyzer.Flags.Set("scope", "a"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, "testdata", detiter.Analyzer, "a", "b")
}
