// Package detiter enforces the repository's determinism invariant:
// code on the scoring, merge-walk and output-writing paths must not
// iterate over maps.
//
// Go randomizes map iteration order, so a map range on those paths
// makes scores (float accumulation order), backbones (tie-breaking)
// or serialized output depend on the run. The canonical iteration
// orders are the CSR adjacency order and sorted key slices.
//
// Reachability from the hot paths is approximated by a package
// allowlist (the -scope flag): every package that hosts scorers,
// merge-walks, graph transforms or writers is in scope, and every map
// range there is reported. Order-insensitive iterations (building
// another map, commutative integer reductions) are waived in place
// with //lint:detiter-ok <reason> — the reason is mandatory so each
// waiver documents why the order cannot leak into results.
package detiter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

const directiveName = "detiter-ok"

// scope lists the import paths whose functions are (conservatively)
// reachable from scoring, merge-walk or output-writing entry points.
var scope = strings.Join([]string{
	"repro",
	"repro/internal/backbone",
	"repro/internal/community",
	"repro/internal/core",
	"repro/internal/eval",
	"repro/internal/filter",
	"repro/internal/graph",
	"repro/internal/multilayer",
	"repro/internal/stats",
}, ",")

var Analyzer = &analysis.Analyzer{
	Name: "detiter",
	Doc: "no map iteration on scoring, merge-walk or output-writing paths\n\n" +
		"Map range order is randomized per run; determinism-sensitive packages must\n" +
		"iterate CSR order or sorted keys. Waive order-insensitive loops with\n" +
		"//lint:detiter-ok <reason>.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", scope,
		"comma-separated import paths treated as determinism-sensitive")
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue // tests may observe maps; they are not on served paths
		}
		dirs := directive.ForFile(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if d, ok := dirs.Find(rs.For, directiveName); ok {
				if d.Reason == "" {
					pass.Reportf(rs.For, "//lint:%s requires a reason", directiveName)
				}
				return true
			}
			pass.Reportf(rs.For,
				"iteration over map %s in a determinism-sensitive package: iterate CSR order or sorted keys (//lint:%s <reason> to waive)",
				t.String(), directiveName)
			return true
		})
	}
	return nil, nil
}

// inScope reports whether pkgPath (possibly a test variant such as
// "repro [repro.test]") is one of the scoped import paths.
func inScope(pkgPath string) bool {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, p := range strings.Split(scope, ",") {
		if pkgPath == strings.TrimSpace(p) {
			return true
		}
	}
	return false
}
