package benchguard_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/benchguard"
)

func TestBenchguard(t *testing.T) {
	analysistest.Run(t, "testdata", benchguard.Analyzer, "bench")
}
