package bench

import "testing"

func BenchmarkMissing(b *testing.B) { // want `benchmark BenchmarkMissing never calls`
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkCovered(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkSubOnly(b *testing.B) {
	b.Run("inner", func(b *testing.B) {
		b.ReportAllocs()
	})
}

// BenchmarkWaived measures one-shot setup wall clock.
//
//lint:benchguard-ok allocations are not the metric for one-shot setup
func BenchmarkWaived(b *testing.B) {
}

//lint:benchguard-ok
func BenchmarkBare(b *testing.B) { // want `//lint:benchguard-ok requires a reason`
}

func Benchmarkhelper(b *testing.B) { // lower-case continuation: not a benchmark
}

func reportingHelper(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
}

func BenchmarkViaHelper(b *testing.B) { // helper reports on its behalf
	reportingHelper(b)
	for i := 0; i < b.N; i++ {
	}
}

func silentHelper(b *testing.B) {
	b.ResetTimer()
}

func BenchmarkSilentHelper(b *testing.B) { // want `benchmark BenchmarkSilentHelper never calls`
	silentHelper(b)
	for i := 0; i < b.N; i++ {
	}
}

type fake struct{}

func (fake) ReportAllocs() {}

func BenchmarkFake(b *testing.B) { // want `benchmark BenchmarkFake never calls`
	fake{}.ReportAllocs()
	for i := 0; i < b.N; i++ {
	}
}
