// Package benchguard keeps allocation regressions visible: every
// benchmark function must call b.ReportAllocs().
//
// The repository's perf story is pinned by zero-alloc invariants
// (codec, merge-walk criteria); a benchmark that does not report
// allocations cannot catch a regression against them, and CI's
// bench-smoke job would run it without learning anything. A call
// anywhere in the benchmark body counts, including inside b.Run
// sub-benchmark closures and via package-local helpers that receive
// the *testing.B (resolved transitively within the package).
//
// A benchmark that deliberately measures something other than a
// steady-state hot path can opt out with //lint:benchguard-ok
// <reason> in its doc comment or on the line above the declaration.
package benchguard

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

const directiveName = "benchguard-ok"

var Analyzer = &analysis.Analyzer{
	Name: "benchguard",
	Doc: "benchmarks must call b.ReportAllocs() so alloc regressions are visible\n\n" +
		"Reports Benchmark functions whose body never calls ReportAllocs on the\n" +
		"*testing.B. Waive with //lint:benchguard-ok <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	reporters := reportingFuncs(pass)
	for _, file := range pass.Files {
		if !analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		dirs := directive.ForFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isBenchmark(pass, fd) {
				continue
			}
			if callsReportAllocs(pass, fd.Body, reporters) {
				continue
			}
			if d, ok := directive.InGroup(fd.Doc, directiveName); ok {
				if d.Reason == "" {
					pass.Reportf(fd.Name.Pos(), "//lint:%s requires a reason", directiveName)
				}
				continue
			}
			if d, ok := dirs.Find(fd.Pos(), directiveName); ok {
				if d.Reason == "" {
					pass.Reportf(fd.Name.Pos(), "//lint:%s requires a reason", directiveName)
				}
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"benchmark %s never calls b.ReportAllocs(): allocation regressions on this path will go unnoticed (//lint:%s <reason> to waive)",
				fd.Name.Name, directiveName)
		}
	}
	return nil, nil
}

// isBenchmark reports whether fd is a top-level BenchmarkXxx function
// taking a single *testing.B.
func isBenchmark(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	rest, ok := strings.CutPrefix(fd.Name.Name, "Benchmark")
	if !ok {
		return false
	}
	if rest != "" {
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsLower(r) {
			return false // benchmarkHelper, not a benchmark
		}
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) > 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(params.List[0].Type)
	return t != nil && t.String() == "*testing.B"
}

// reportingFuncs computes, to a fixpoint, the package-local functions
// whose bodies reach a ReportAllocs call — directly or through other
// local helpers. Shared bench helpers (benchScorer-style) report on
// behalf of every benchmark that calls them.
func reportingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	reporters := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for fn, body := range bodies {
			if !reporters[fn] && callsReportAllocs(pass, body, reporters) {
				reporters[fn] = true
				changed = true
			}
		}
	}
	return reporters
}

// callsReportAllocs reports whether body contains, at any nesting
// depth, a ReportAllocs call on a *testing.B receiver or a call to a
// function already known to reach one.
func callsReportAllocs(pass *analysis.Pass, body *ast.BlockStmt, reporters map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			callee = fun.Sel
		case *ast.Ident:
			callee = fun
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
		if !ok {
			return true
		}
		if reporters[fn] {
			found = true
			return false
		}
		if callee.Name == "ReportAllocs" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && recv.Type().String() == "*testing.B" {
				found = true
			}
		}
		return !found
	})
	return found
}
