// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want expectations, mirroring
// x/tools' package of the same name.
//
// Fixtures live under <testdata>/src/<pkg>/*.go. A line that should
// trigger a diagnostic carries a comment of the form
//
//	// want "regexp" "another regexp"
//
// each quoted (or backquoted) Go string being a regular expression
// that must match the message of one diagnostic reported on that
// line. Diagnostics with no matching expectation, and expectations
// with no matching diagnostic, both fail the test.
//
// Fixture packages may import the standard library only (types come
// from the source importer, so no compiled export data is needed);
// they cannot import each other or the enclosing module.
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

// The fset and source importer are shared across Run calls so the
// standard library is typechecked from source at most once per test
// binary (the importer caches packages internally, keyed by this fset).
var (
	mu       sync.Mutex
	fset     = token.NewFileSet()
	stdlib   = importer.ForCompiler(fset, "source", nil)
	typeInfo = analysis.NewInfo()
)

// Run analyzes each fixture package under dir/src with a and reports
// any mismatch between diagnostics and // want expectations on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

func runPackage(t *testing.T, dir, path string, a *analysis.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if files == nil {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}

	tc := &types.Config{
		Importer: stdlib,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := tc.Check(path, fset, files, typeInfo)
	if err != nil {
		t.Fatalf("%s: typechecking %s: %v", a.Name, dir, err)
	}

	unit := &analysis.Unit{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  typeInfo,
		Sizes: tc.Sizes,
	}
	results := analysis.RunUnit(unit, []*analysis.Analyzer{a})
	res := results[0]
	if res.Err != nil {
		t.Fatalf("%s: %v", a.Name, res.Err)
	}

	wants := collectWants(t, files)
	for _, d := range res.Diagnostics {
		posn := fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, posn, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", a.Name, k.file, k.line, w.rx)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	rx      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{posn.Filename, posn.Line}
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want expectation %q", posn.Filename, posn.Line, rest)
					}
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: %v", posn.Filename, posn.Line, err)
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", posn.Filename, posn.Line, err)
					}
					wants[key] = append(wants[key], &want{rx: rx})
					rest = rest[len(lit):]
				}
			}
		}
	}
	return wants
}
