// Package lint assembles backbonevet, the repository's static-analysis
// suite. Each analyzer machine-enforces an invariant the codebase
// relies on for correctness at scale:
//
//	ctxflow        cancellation flows from the caller; no minted root contexts
//	detiter        no map iteration on scoring/merge-walk/output paths
//	unsafezone     unsafe confined to the codec allowlist, every use justified
//	errdiscipline  sentinels via errors.Is, wrapping via %w
//	benchguard     benchmarks call b.ReportAllocs()
//
// The suite runs as `go vet -vettool=<backbonevet binary> ./...` and
// gates CI; see the README's "Static analysis" section for the
// escape-hatch comment forms.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/benchguard"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/detiter"
	"repro/internal/lint/errdiscipline"
	"repro/internal/lint/unsafezone"
)

// Suite returns the backbonevet analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detiter.Analyzer,
		unsafezone.Analyzer,
		errdiscipline.Analyzer,
		benchguard.Analyzer,
	}
}
