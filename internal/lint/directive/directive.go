// Package directive parses the //lint:<check>-ok escape-hatch comments
// honored by every backbonevet analyzer.
//
// The form is a line comment
//
//	//lint:<check>-ok <reason>
//
// placed on the offending line, on the line immediately above it, or —
// for function-granularity checks — anywhere in the function's doc
// comment. The reason is mandatory: a bare directive is itself a
// finding, so waivers stay auditable. Multiple directives may share a
// comment line only by stacking separate comments.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //lint: comment.
type Directive struct {
	Name   string    // e.g. "detiter-ok"
	Reason string    // text after the name; "" when missing
	Pos    token.Pos // position of the comment
}

// A Map indexes one file's //lint: directives by line number.
type Map struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// ForFile scans every comment in file and indexes its directives.
func ForFile(fset *token.FileSet, file *ast.File) *Map {
	m := &Map{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := parse(c); ok {
				line := fset.Position(c.Pos()).Line
				m.byLine[line] = append(m.byLine[line], d)
			}
		}
	}
	return m
}

// Find returns the directive named name that covers pos: one on the
// same line or on the line immediately above.
func (m *Map) Find(pos token.Pos, name string) (Directive, bool) {
	line := m.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range m.byLine[l] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// InGroup returns the directive named name appearing anywhere in the
// comment group (typically a function's doc comment). A nil group is
// allowed and never matches.
func InGroup(cg *ast.CommentGroup, name string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if d, ok := parse(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

func parse(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok { // block comments are not directives
		return Directive{}, false
	}
	body, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:")
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(body, " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}
