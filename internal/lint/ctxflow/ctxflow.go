// Package ctxflow enforces the repository's context-threading
// invariant: cancellation must flow from the caller.
//
// Library packages (anything that is not package main and not a test
// file) must not mint their own root contexts. A call to
// context.Background or context.TODO is reported unless it is the
// classic documented ctx-less wrapper — the call appears directly as
// an argument of a delegation to a *Context/*Ctx variant inside a
// function that carries a doc comment — or the enclosing function is
// documented as Deprecated.
//
// Separately, an exported function that loops over edges (a range
// over a []...Edge... slice or over an Edges() call) is the kind of
// O(m) work the pipeline promises to cancel between checkpoints, so
// it must accept a context.Context.
//
// Waive a finding with //lint:ctxflow-ok <reason> on the offending
// line, the line above it, or in the function's doc comment.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

const directiveName = "ctxflow-ok"

// exempt lists import paths exempt from the edge-loop rule: figure
// reproduction glue that runs over small fixed paper datasets, where
// mid-loop cancellation buys nothing. Rule one (no minted root
// contexts) still applies there.
var exempt = strings.Join([]string{
	"repro/internal/exp",
	"repro/internal/world",
	"repro/internal/occupations",
}, ",")

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "library code must thread caller contexts, not mint context.Background()\n\n" +
		"Reports context.Background()/context.TODO() in library packages outside\n" +
		"documented ctx-less wrappers that delegate to a *Context/*Ctx variant, and\n" +
		"exported functions that loop over edges without a context.Context parameter.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&exempt, "exempt", exempt,
		"comma-separated import paths exempt from the edge-loop context rule")
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // CLIs own their root context
	}
	loopExempt := exemptPkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		dirs := directive.ForFile(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRootContexts(pass, dirs, fd)
			if !loopExempt {
				checkEdgeLoops(pass, dirs, fd)
			}
		}
	}
	return nil, nil
}

// exemptPkg reports whether pkgPath (possibly a test variant such as
// "repro/internal/exp [repro/internal/exp.test]") is exempt from the
// edge-loop rule.
func exemptPkg(pkgPath string) bool {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, p := range strings.Split(exempt, ",") {
		if pkgPath == strings.TrimSpace(p) {
			return true
		}
	}
	return false
}

// checkRootContexts reports context.Background/TODO calls in fd that
// are not the documented delegation pattern.
func checkRootContexts(pass *analysis.Pass, dirs *directive.Map, fd *ast.FuncDecl) {
	deprecated := fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:")
	documented := fd.Doc != nil && strings.TrimSpace(fd.Doc.Text()) != ""

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := rootContextCall(pass, call); ok && !deprecated {
				if !delegationArg(stack, call, documented) {
					if !waived(pass, dirs, fd, call.Pos()) {
						pass.Reportf(call.Pos(),
							"context.%s() in library code: accept a ctx from the caller, or delegate it from a documented wrapper to a *Context/*Ctx variant (//lint:%s <reason> to waive)",
							name, directiveName)
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// rootContextCall reports whether call is context.Background() or
// context.TODO(), returning which.
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// delegationArg reports whether call appears directly as an argument
// of a call to a function whose name ends in Context or Ctx — the
// documented ctx-less wrapper pattern — inside a documented function.
func delegationArg(stack []ast.Node, call *ast.CallExpr, documented bool) bool {
	if !documented || len(stack) == 0 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range parent.Args {
		if arg == ast.Expr(call) {
			name := calleeName(parent.Fun)
			return strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx")
		}
	}
	return false
}

// checkEdgeLoops reports exported edge-iterating functions that take
// no context.Context.
func checkEdgeLoops(pass *analysis.Pass, dirs *directive.Map, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || unexportedReceiver(fd) {
		return
	}
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:") {
		return
	}
	if hasContextParam(pass, fd) {
		return
	}
	loop := edgeLoopPos(pass, fd.Body)
	if !loop.IsValid() {
		return
	}
	if waived(pass, dirs, fd, fd.Pos()) || waived(pass, dirs, fd, loop) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported %s loops over edges but has no context.Context parameter: O(m) work must be cancelable (//lint:%s <reason> to waive)",
		fd.Name.Name, directiveName)
}

func unexportedReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}

// edgeLoopPos returns the position of the first edge loop in body:
// a range over a slice whose element type mentions Edge, or a range
// over the result of an Edges() call.
func edgeLoopPos(pass *analysis.Pass, body *ast.BlockStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok && calleeName(call.Fun) == "Edges" {
			found = rs.For
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
			if sl, ok := t.Underlying().(*types.Slice); ok && typeNameContains(sl.Elem(), "Edge") {
				found = rs.For
			}
		}
		return true
	})
	return found
}

func typeNameContains(t types.Type, substr string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.Contains(named.Obj().Name(), substr)
}

func calleeName(fun ast.Expr) string {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func waived(pass *analysis.Pass, dirs *directive.Map, fd *ast.FuncDecl, pos token.Pos) bool {
	d, ok := dirs.Find(pos, directiveName)
	if !ok {
		d, ok = directive.InGroup(fd.Doc, directiveName)
	}
	if !ok {
		return false
	}
	if d.Reason == "" {
		pass.Reportf(pos, "//lint:%s requires a reason", directiveName)
	}
	return true
}
