package a

import "context"

// Edge is a weighted arc, mirroring the repo's codec type.
type Edge struct {
	Src, Dst int32
	Weight   float64
}

// Graph yields edges.
type Graph struct{ edges []Edge }

// Edges returns the edge list.
func (g *Graph) Edges() []Edge { return g.edges }

// Process mints a root context instead of accepting one.
func Process() {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	_ = ctx
}

func todo() {
	_ = context.TODO() // want `context\.TODO\(\) in library code`
}

// CountContext applies a counting pass over g's edges, honoring ctx.
func CountContext(ctx context.Context, g *Graph) int {
	n := 0
	for range g.Edges() {
		n++
	}
	return n
}

// Count is the documented ctx-less wrapper over CountContext.
func Count(g *Graph) int {
	return CountContext(context.Background(), g)
}

func count(g *Graph) int { // undocumented: delegation does not excuse it
	return CountContext(context.Background(), g) // want `context\.Background\(\) in library code`
}

// Old counts g's edges.
//
// Deprecated: use CountContext.
func Old(g *Graph) int {
	return CountContext(context.Background(), g)
}

func waivedCall() {
	//lint:ctxflow-ok fixture exercising the waiver path
	_ = context.Background()
}

func bareWaiver() {
	//lint:ctxflow-ok
	_ = context.Background() // want `//lint:ctxflow-ok requires a reason`
}

// Sum adds weights without accepting a context.
func Sum(edges []Edge) float64 { // want `exported Sum loops over edges`
	var s float64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// SumCtx is the cancelable variant.
func SumCtx(ctx context.Context, edges []Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

func sum(edges []Edge) float64 { // unexported: out of scope
	var s float64
	for _, e := range edges {
		s += e.Weight
	}
	return s
}

// Walk ranges over an Edges() call.
func Walk(g *Graph) int { // want `exported Walk loops over edges`
	n := 0
	for range g.Edges() {
		n++
	}
	return n
}

// Fixed iterates a small fixed table.
//
//lint:ctxflow-ok fixture: bounded fixture data, cancellation buys nothing
func Fixed(edges []Edge) int {
	n := 0
	for range edges {
		n++
	}
	return n
}
