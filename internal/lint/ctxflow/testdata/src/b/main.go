// Command b shows that package main may own its root context.
package main

import "context"

func main() {
	_ = context.Background()
}
