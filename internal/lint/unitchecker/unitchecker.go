// Package unitchecker implements the command-line protocol required of
// a `go vet -vettool=` binary, against this module's dependency-free
// analysis framework.
//
// The protocol (shared with x/tools' unitchecker, from which the
// Config schema is taken) is:
//
//	backbonevet -V=full      describe the executable for build caching
//	backbonevet -flags       describe supported flags in JSON
//	backbonevet unit.cfg     analyze one compilation unit
//
// The build system writes unit.cfg — a JSON description of one
// package: its files, the resolved import map, and the compiler-
// produced export-data files for every dependency. Typechecking
// therefore needs no go/packages-style loader: the importer simply
// reads the export file the go command already built.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// A Config describes the compilation unit to be analyzed, decoded from
// the JSON .cfg file the go command hands the vettool. The field set
// and semantics follow the go command's vet protocol.
type Config struct {
	ID                        string            // e.g. "repro [repro.test]"
	Compiler                  string            // gc or gccgo
	Dir                       string            // package directory
	ImportPath                string            // package path
	GoVersion                 string            // minimum required Go version
	GoFiles                   []string          // absolute paths of Go files
	NonGoFiles                []string          // absolute paths of non-Go files
	IgnoredFiles              []string          // build-constrained-away files
	ModulePath                string            // module path
	ModuleVersion             string            // module version
	ImportMap                 map[string]string // import path → package path
	PackageFile               map[string]string // package path → export-data file
	Standard                  map[string]bool   // package path → in standard library
	PackageVetx               map[string]string // package path → fact file (unused: no facts)
	VetxOnly                  bool              // only facts are wanted; suppress diagnostics
	VetxOutput                string            // where to write the fact file
	SucceedOnTypecheckFailure bool              // compiler will report the errors; exit 0
}

// Main runs the vettool protocol over the given analyzers and exits.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s statically enforces this repository's correctness invariants.

It is a go vet tool; invoke it through the go command:

	go build -o %[1]s ./cmd/backbonevet
	go vet -vettool=$PWD/%[1]s ./...

Analyzers:
`, progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.Index(doc, "\n"); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
		}
		os.Exit(1)
	}

	// Protocol flags, then one enable flag and prefixed analyzer flags
	// per analyzer, exactly as go vet's -flags handshake expects.
	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	_ = flag.Int("c", -1, "display offending line with this many lines of context (accepted, unused)")
	enabled := make(map[*analysis.Analyzer]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a] = flag.Bool(a.Name, false, "enable only "+a.Name+" analysis")
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	// If any -<name> flag was set, run only those analyzers.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a] {
			selected = append(selected, a)
		}
	}
	if selected == nil {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
	}
	run(args[0], selected, *jsonOut)
}

func run(configFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	cfg, err := readConfig(configFile)
	if err != nil {
		log.Fatal(err)
	}

	// The suite defines no facts, so the fact file for dependents is
	// always empty — but it must exist for the go command's caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	// A VetxOnly run (a dependency analyzed only for facts) needs
	// nothing further: skip parsing and typechecking entirely.
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	unit, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0) // the compiler will report these errors itself
		}
		log.Fatal(err)
	}

	results := analysis.RunUnit(unit, analyzers)

	if jsonOut {
		// JSON tree: package ID → analyzer name → diagnostics/error,
		// the schema go vet -json re-emits.
		type jsonDiagnostic struct {
			Category string `json:"category,omitempty"`
			Posn     string `json:"posn"`
			Message  string `json:"message"`
		}
		tree := make(map[string]map[string]any)
		for _, res := range results {
			var v any
			if res.Err != nil {
				v = struct {
					Err string `json:"error"`
				}{res.Err.Error()}
			} else if len(res.Diagnostics) > 0 {
				diags := make([]jsonDiagnostic, len(res.Diagnostics))
				for i, d := range res.Diagnostics {
					diags[i] = jsonDiagnostic{
						Category: d.Category,
						Posn:     fset.Position(d.Pos).String(),
						Message:  d.Message,
					}
				}
				v = diags
			}
			if v != nil {
				m := tree[cfg.ID]
				if m == nil {
					m = make(map[string]any)
					tree[cfg.ID] = m
				}
				m[res.Analyzer.Name] = v
			}
		}
		data, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", data)
		os.Exit(0)
	}

	exit := 0
	for _, res := range results {
		if res.Err != nil {
			log.Println(res.Err)
			exit = 1
		}
		for _, d := range res.Diagnostics {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	os.Exit(exit)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func typecheck(fset *token.FileSet, cfg *Config) (*analysis.Unit, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc.
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Unit{
		Fset:       fset,
		Files:      files,
		OtherFiles: cfg.NonGoFiles,
		Pkg:        pkg,
		Info:       info,
		Sizes:      tc.Sizes,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: print a line containing
// the executable path and a content hash, so the go command can cache
// vet results keyed on the tool build.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
