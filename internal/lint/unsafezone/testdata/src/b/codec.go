// Package b stands in for the allowlisted codec file set (the test
// runs the analyzer with -allow=b/codec.go).
package b

import "unsafe"

func justified(b []byte) string {
	//lint:unsafezone-ok fixture: b is never mutated after the cast
	return *(*string)(unsafe.Pointer(&b))
}

func missing(b []byte) string {
	return *(*string)(unsafe.Pointer(&b)) // want `unsafe use without justification`
}

func bare(b []byte) uintptr {
	//lint:unsafezone-ok
	return uintptr(unsafe.Pointer(&b[0])) // want `//lint:unsafezone-ok requires a justification`
}
