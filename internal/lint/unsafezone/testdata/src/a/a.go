package a

import (
	"reflect"
	"unsafe"
)

func cast(b []byte) string {
	return *(*string)(unsafe.Pointer(&b)) // want `use of unsafe outside the allowlisted codec files`
}

var _ = reflect.SliceHeader{} // want `use of unsafe outside the allowlisted codec files`

func waiverDoesNotApply(b []byte) string {
	//lint:unsafezone-ok the escape hatch must not work outside the allowlist
	return *(*string)(unsafe.Pointer(&b)) // want `use of unsafe outside the allowlisted codec files`
}
