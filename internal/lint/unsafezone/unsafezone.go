// Package unsafezone confines package unsafe (and the equivalent
// reflect.SliceHeader/StringHeader tricks) to an allowlisted file set
// and requires an in-place justification at every use.
//
// The repository's policy is that unsafe exists for exactly two
// purposes — the zero-alloc edge-list codec's byte↔string bridging
// (internal/graph/{codec,io}.go) and the binary graph container's
// slice↔byte aliasing for mmap loading and zero-copy serialization
// (internal/binfmt/alias.go) — so the allowlist (the -allow flag) is
// exactly those files. Outside them any use of unsafe is reported,
// and the escape-hatch comment deliberately does NOT apply: extending
// the unsafe surface means editing the allowlist in
// internal/lint/unsafezone, which is what code review gates on.
//
// Inside an allowlisted file, every line that touches unsafe must
// carry //lint:unsafezone-ok <justification> (same line or the line
// above) stating why the construct cannot violate memory safety.
package unsafezone

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

const directiveName = "unsafezone-ok"

// allow lists the repo-relative files permitted to use unsafe.
var allow = "internal/graph/codec.go,internal/graph/io.go,internal/binfmt/alias.go"

var Analyzer = &analysis.Analyzer{
	Name: "unsafezone",
	Doc: "unsafe is confined to the codec/binfmt allowlist and every use must be justified\n\n" +
		"Reports package unsafe and reflect.SliceHeader/StringHeader outside\n" +
		"internal/graph/{codec,io}.go and internal/binfmt/alias.go; inside\n" +
		"the allowlist each use needs a //lint:unsafezone-ok <justification>\n" +
		"comment.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&allow, "allow", allow,
		"comma-separated repo-relative files permitted to use unsafe")
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	fname := filepath.ToSlash(pass.Fset.Position(file.Pos()).Filename)
	allowed := false
	for _, entry := range strings.Split(allow, ",") {
		entry = strings.TrimSpace(entry)
		if entry != "" && (fname == entry || strings.HasSuffix(fname, "/"+entry)) {
			allowed = true
			break
		}
	}

	// Collect one representative position per line that uses unsafe:
	// a selector rooted at the unsafe package, or a reflect header
	// struct. The import line itself is not a "site".
	sites := make(map[int]token.Pos)
	ast.Inspect(file, func(n ast.Node) bool {
		pos := token.NoPos
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "unsafe":
						pos = sel.Pos()
					case "reflect":
						if name := sel.Sel.Name; name == "SliceHeader" || name == "StringHeader" {
							pos = sel.Pos()
						}
					}
				}
			}
		}
		if pos.IsValid() {
			line := pass.Fset.Position(pos).Line
			if _, seen := sites[line]; !seen {
				sites[line] = pos
			}
		}
		return true
	})

	importsUnsafe := false
	var importPos token.Pos
	for _, imp := range file.Imports {
		if imp.Path.Value == `"unsafe"` {
			importsUnsafe = true
			importPos = imp.Pos()
		}
	}

	if !allowed {
		if len(sites) == 0 && importsUnsafe {
			// e.g. import _ "unsafe" for go:linkname: still a policy breach.
			pass.Reportf(importPos,
				"import of unsafe outside the allowlisted codec files (%s): extend the allowlist in internal/lint/unsafezone only with review", allow)
		}
		for _, pos := range sortedSitePositions(pass.Fset, sites) {
			pass.Reportf(pos,
				"use of unsafe outside the allowlisted codec files (%s): move the construct into the codec or extend the allowlist in internal/lint/unsafezone", allow)
		}
		return
	}

	dirs := directive.ForFile(pass.Fset, file)
	for _, pos := range sortedSitePositions(pass.Fset, sites) {
		d, ok := dirs.Find(pos, directiveName)
		if !ok {
			pass.Reportf(pos,
				"unsafe use without justification: annotate the line with //lint:%s <why this cannot violate memory safety>", directiveName)
			continue
		}
		if d.Reason == "" {
			pass.Reportf(pos, "//lint:%s requires a justification", directiveName)
		}
	}
}

func sortedSitePositions(fset *token.FileSet, sites map[int]token.Pos) []token.Pos {
	out := make([]token.Pos, 0, len(sites))
	for _, pos := range sites {
		out = append(out, pos)
	}
	// token.Pos order within one file follows source order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
