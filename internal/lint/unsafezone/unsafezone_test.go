package unsafezone_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/unsafezone"
)

func TestUnsafezone(t *testing.T) {
	if err := unsafezone.Analyzer.Flags.Set("allow", "b/codec.go"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, "testdata", unsafezone.Analyzer, "a", "b")
}
