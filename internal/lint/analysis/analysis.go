// Package analysis defines a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check
// that runs over one typechecked compilation unit and reports
// position-anchored diagnostics.
//
// The module deliberately has no external dependencies, so backbonevet
// cannot import x/tools; this package keeps the same shape (Analyzer,
// Pass, Diagnostic, per-analyzer flags) so analyzers written against it
// port to the upstream framework mechanically if the module ever takes
// the dependency. Facts, Requires/ResultOf chaining and SuggestedFixes
// are intentionally out of scope: the backbonevet suite needs none of
// them, and each analyzer walks its files directly.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass: a name (used in
// diagnostics, flag prefixes and //lint: escape hatches), a doc string,
// optional flags, and the Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier
	// in lower case, as it is used as a command-line flag prefix.
	Name string

	// Doc documents the analyzer. The first line is a one-sentence
	// summary; the rest elaborates the invariant and the escape hatch.
	Doc string

	// Flags holds analyzer-specific flags, exposed by drivers under
	// the "<name>." prefix (mirroring go vet's multichecker).
	Flags flag.FlagSet

	// Run applies the analyzer to one package. Diagnostics flow
	// through pass.Report; the result value is ignored by the
	// backbonevet drivers and exists only for API fidelity.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one typechecked package to an Analyzer.Run.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	OtherFiles []string
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report delivers one diagnostic. It must not be called after
	// Run returns.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a position in the unit.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the offending range
	Category string    // optional: sub-check within the analyzer
	Message  string
}

// Validate reports an error if any analyzer is misconfigured: a nil
// Run, an invalid name, or a duplicate name within the suite.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("nil *Analyzer in suite")
		}
		if !validName(a.Name) {
			return fmt.Errorf("analyzer %q has an invalid name (want lower-case identifier)", a.Name)
		}
		if a.Doc == "" {
			return fmt.Errorf("analyzer %q is undocumented", a.Name)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		if !('a' <= r && r <= 'z' || r == '_' || i > 0 && '0' <= r && r <= '9') {
			return false
		}
	}
	return true
}

// A Unit is one parsed and typechecked compilation unit, the input
// shared by every driver (unitchecker, analysistest).
type Unit struct {
	Fset       *token.FileSet
	Files      []*ast.File
	OtherFiles []string
	Pkg        *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// A Result pairs an analyzer with its findings on one unit.
type Result struct {
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
	Err         error
}

// RunUnit applies each analyzer to the unit in order and returns one
// Result per analyzer, diagnostics sorted by position. Analyzers run
// sequentially so output order is deterministic; a panicking analyzer
// is reported as that analyzer's Err, not a driver crash.
func RunUnit(u *Unit, analyzers []*Analyzer) []Result {
	results := make([]Result, len(analyzers))
	for i, a := range analyzers {
		res := &results[i]
		res.Analyzer = a
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      u.Files,
			OtherFiles: u.OtherFiles,
			Pkg:        u.Pkg,
			TypesInfo:  u.Info,
			TypesSizes: u.Sizes,
			Report:     func(d Diagnostic) { res.Diagnostics = append(res.Diagnostics, d) },
		}
		res.Err = runProtected(a, pass)
		sort.SliceStable(res.Diagnostics, func(i, j int) bool {
			return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
		})
	}
	return results
}

func runProtected(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("analyzer %s panicked: %v", a.Name, r)
		}
	}()
	_, err = a.Run(pass)
	return err
}

// NewInfo returns a types.Info with every map drivers need allocated,
// so analyzers can rely on Uses/Defs/Types/Selections being populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several analyzers scope their invariant to non-test (or only
// test) code.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
