// Package errdiscipline enforces the repository's typed-error
// discipline, established when scoring and I/O grew wrap-friendly
// sentinel errors:
//
//   - sentinel errors (package-level error variables, including
//     stdlib ones such as io.EOF) must be matched with errors.Is,
//     not compared with == or != or switched over, because every
//     layer above the scorers wraps with %w; and
//   - fmt.Errorf calls that carry a sentinel must wrap it with %w —
//     formatting it with %v/%s flattens it to text and breaks
//     errors.Is for every caller downstream.
//
// Comparisons against nil are fine and not reported. Waive a finding
// with //lint:errdiscipline-ok <reason> (for example, an io.Reader
// hot loop where the Read contract hands back io.EOF by identity).
package errdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

const directiveName = "errdiscipline-ok"

var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: "sentinel errors must flow through errors.Is and wrap with %w\n\n" +
		"Reports ==/!=/switch comparisons against package-level error variables and\n" +
		"fmt.Errorf calls that format a sentinel with a verb other than %w. Waive\n" +
		"with //lint:errdiscipline-ok <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		dirs := directive.ForFile(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, dirs, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, dirs, n)
			case *ast.CallExpr:
				checkErrorf(pass, dirs, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkComparison(pass *analysis.Pass, dirs *directive.Map, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	name, ok := sentinelName(pass, be.X)
	if !ok {
		name, ok = sentinelName(pass, be.Y)
	}
	if !ok || waived(pass, dirs, be.Pos()) {
		return
	}
	verb := "errors.Is"
	if be.Op == token.NEQ {
		verb = "!errors.Is"
	}
	pass.Reportf(be.Pos(),
		"sentinel %s compared with %s: use %s(err, %s) so wrapped errors still match (//lint:%s <reason> to waive)",
		name, be.Op, verb, name, directiveName)
}

func checkSwitch(pass *analysis.Pass, dirs *directive.Map, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(sw.Tag)) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if name, ok := sentinelName(pass, expr); ok && !waived(pass, dirs, expr.Pos()) {
				pass.Reportf(expr.Pos(),
					"switch case compares sentinel %s by identity: use if/else with errors.Is (//lint:%s <reason> to waive)",
					name, directiveName)
			}
		}
	}
}

// checkErrorf reports fmt.Errorf calls whose argument list contains a
// sentinel error formatted with a verb other than %w.
func checkErrorf(pass *analysis.Pass, dirs *directive.Map, call *ast.CallExpr) {
	if !isFmtErrorf(pass, call) || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed arguments etc.: leave to vet's printf checker
	}
	for i, verb := range verbs {
		argIndex := 1 + i
		if argIndex >= len(call.Args) {
			break
		}
		if verb == 'w' {
			continue
		}
		if name, ok := sentinelName(pass, call.Args[argIndex]); ok && !waived(pass, dirs, call.Args[argIndex].Pos()) {
			pass.Reportf(call.Args[argIndex].Pos(),
				"fmt.Errorf formats sentinel %s with %%%c: wrap with %%w so errors.Is sees it (//lint:%s <reason> to waive)",
				name, verb, directiveName)
		}
	}
}

// formatVerbs returns the verb letter consuming each successive
// argument of a Printf-style format. Width/precision stars consume an
// argument and are returned as '*'. ok is false for explicit argument
// indexes, which this simple scanner does not model.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // skip '%'
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.0123456789", rune(c)) {
				i++
				continue
			}
			verbs = append(verbs, rune(c))
			i++
			break
		}
	}
	return verbs, true
}

func isFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf"
}

// sentinelName reports whether expr denotes a package-level variable
// of error type — the repo's (and stdlib's) sentinel form — and
// returns its name as written.
func sentinelName(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	return id.Name, true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

func waived(pass *analysis.Pass, dirs *directive.Map, pos token.Pos) bool {
	d, ok := dirs.Find(pos, directiveName)
	if !ok {
		return false
	}
	if d.Reason == "" {
		pass.Reportf(pos, "//lint:%s requires a reason", directiveName)
	}
	return true
}
