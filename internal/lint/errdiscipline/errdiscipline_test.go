package errdiscipline_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errdiscipline"
)

func TestErrdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", errdiscipline.Analyzer, "a")
}
