package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrBad = errors.New("bad")

func compare(err error) {
	if err == ErrBad { // want `sentinel ErrBad compared with ==`
		return
	}
	if err != io.EOF { // want `sentinel EOF compared with !=`
		return
	}
	if err == nil { // nil comparison: fine
		return
	}
	if errors.Is(err, ErrBad) { // the blessed form
		return
	}
	//lint:errdiscipline-ok the reader contract hands back io.EOF by identity
	if err == io.EOF {
		return
	}
}

func bareWaiver(err error) {
	//lint:errdiscipline-ok
	if err == ErrBad { // want `//lint:errdiscipline-ok requires a reason`
		return
	}
}

func switches(err error) int {
	switch err {
	case ErrBad: // want `switch case compares sentinel ErrBad`
		return 1
	case nil:
		return 0
	}
	return 2
}

func wrap(err error, n int) error {
	if err != nil {
		return fmt.Errorf("ctx: %w", err) // local variable, not a sentinel
	}
	return fmt.Errorf("n=%d: %v", n, ErrBad) // want `formats sentinel ErrBad with %v`
}

func wrapOK() error {
	return fmt.Errorf("op failed: %w", ErrBad)
}
