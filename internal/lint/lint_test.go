package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func TestSuiteValid(t *testing.T) {
	suite := lint.Suite()
	if len(suite) != 5 {
		t.Fatalf("Suite() returned %d analyzers, want 5", len(suite))
	}
	if err := analysis.Validate(suite); err != nil {
		t.Fatal(err)
	}
	for _, a := range suite {
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
	}
}
