package community

import "math"

// NMI returns the normalized mutual information between two partitions
// of the same node set, using arithmetic-mean normalization
// 2·I(A;B)/(H(A)+H(B)) in bits. 1 means identical partitions (up to
// relabeling), 0 means independence. The case study compares Infomap
// communities on each backbone against the two-digit occupation
// classification with this measure (NC 0.423 vs DF 0.401).
func NMI(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	n := float64(len(a))
	ca := map[int]float64{}
	cb := map[int]float64{}
	joint := map[[2]int]float64{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[[2]int{a[i], b[i]}]++
	}
	var ha, hb float64
	for _, k := range sortedKeys(ca) {
		ha -= plogp(ca[k] / n)
	}
	for _, k := range sortedKeys(cb) {
		hb -= plogp(cb[k] / n)
	}
	var mi float64
	for _, key := range sortedPairKeys(joint) {
		pxy := joint[key] / n
		px := ca[key[0]] / n
		py := cb[key[1]] / n
		mi += pxy * math.Log2(pxy/(px*py))
	}
	if ha+hb == 0 {
		// Both partitions are single clusters: identical by convention.
		return 1
	}
	return 2 * mi / (ha + hb)
}
