package community

import (
	"math/rand"

	"repro/internal/graph"
)

// CodeLength returns the map-equation description length, in bits per
// random-walk step, of a partition of g (Rosvall & Bergstrom 2008).
// The one-module partition's codelength equals the entropy of the
// stationary visit rates — the "without communities" baseline the case
// study reports (7.97 bits on the occupation network).
//
// Using the standard flattened form with plogp(x) = x·log2 x:
//
//	L(M) = plogp(Σ_m q_m) - 2 Σ_m plogp(q_m)
//	     - Σ_α plogp(p_α) + Σ_m plogp(q_m + Σ_{α∈m} p_α)
//
// where p_α is node α's visit rate (strength share) and q_m module m's
// exit rate.
//
//lint:ctxflow-ok case-study criterion: one fold over an already-pruned backbone, between the engine's ctx checks
func CodeLength(g *graph.Graph, part []int) float64 {
	u := g.Undirected()
	if u.TotalWeight() == 0 {
		return 0
	}
	// CSR-native: visit rates come from the precomputed strengths and
	// exit rates from one pass over the canonical edge slice, with
	// community labels densified into slice indices — no adjacency maps
	// and no per-module maps. The adj-based codeLength below remains the
	// optimizer substrate (aggregated supernode graphs carry self-loops)
	// and the property-test oracle.
	dense, k := densified(part)
	twoM := u.TotalWeight() // undirected TotalWeight counts each edge twice = 2m
	qm := make([]float64, k)
	pm := make([]float64, k)
	var nodeTerm float64
	for n, i := u.NumNodes(), 0; i < n; i++ {
		p := u.OutStrength(i) / twoM
		pm[dense[i]] += p
		nodeTerm += plogp(p)
	}
	for _, e := range u.Edges() {
		cu, cv := dense[e.Src], dense[e.Dst]
		if cu != cv {
			// A cross-module edge is an exit of both endpoints' modules.
			qm[cu] += e.Weight / twoM
			qm[cv] += e.Weight / twoM
		}
	}
	var sumQ, qTerm, moduleTerm float64
	for c := 0; c < k; c++ {
		sumQ += qm[c]
		qTerm += plogp(qm[c])
		moduleTerm += plogp(qm[c] + pm[c])
	}
	return plogp(sumQ) - 2*qTerm - nodeTerm + moduleTerm
}

// codeLength is the adjacency-map implementation, retained as the
// Infomap optimizer's substrate (aggregated graphs carry self-loop
// weights) and as the property-test oracle for the CSR-native
// CodeLength above.
func (a *adj) codeLength(part []int) float64 {
	if a.total == 0 {
		return 0
	}
	twoM := 2 * a.total
	qm := map[int]float64{} // module exit rates
	pm := map[int]float64{} // module visit-rate sums
	var nodeTerm float64
	for u := 0; u < a.n; u++ {
		cu := part[u]
		p := a.strength(u) / twoM
		pm[cu] += p
		nodeTerm += plogp(p)
		for _, v := range sortedKeys(a.nbr[u]) {
			if part[v] != cu {
				qm[cu] += a.nbr[u][v] / twoM
			}
		}
	}
	var sumQ, qTerm, moduleTerm float64
	for _, c := range sortedKeys(qm) {
		q := qm[c]
		sumQ += q
		qTerm += plogp(q)
		moduleTerm += plogp(q + pm[c])
	}
	// Modules with zero exit still need their intra term.
	for _, c := range sortedKeys(pm) {
		if _, ok := qm[c]; !ok {
			moduleTerm += plogp(pm[c])
		}
	}
	return plogp(sumQ) - 2*qTerm - nodeTerm + moduleTerm
}

// Infomap searches for the partition minimizing the map equation with
// the same two-phase strategy as Louvain: randomized local moves, then
// aggregation, repeated until the codelength stops improving. It is a
// faithful small-scale stand-in for the reference Infomap used in the
// paper's case study.
func Infomap(g *graph.Graph, rng *rand.Rand) []int {
	a := newAdj(g)
	part := make([]int, a.n)
	for i := range part {
		part[i] = i
	}
	assign := make([]int, a.n)
	for i := range assign {
		assign[i] = i
	}
	best := a.codeLength(part)
	for {
		a.localMoveMapEq(part, rng)
		k := densify(part)
		for i := range assign {
			assign[i] = part[assign[i]]
		}
		agg := a.aggregate(part, k)
		aggPart := make([]int, k)
		for i := range aggPart {
			aggPart[i] = i
		}
		l := agg.codeLength(aggPart)
		if l >= best-1e-12 || k == a.n {
			break
		}
		best = l
		a = agg
		part = aggPart
	}
	densify(assign)
	return assign
}

// localMoveMapEq sweeps nodes into the neighboring module that most
// reduces the codelength, recomputed incrementally via the four-term
// decomposition: only the terms of the affected modules and the global
// exit-rate sum change on a move.
func (a *adj) localMoveMapEq(part []int, rng *rand.Rand) {
	twoM := 2 * a.total
	if twoM == 0 {
		return
	}
	qm := map[int]float64{}
	pm := map[int]float64{}
	pa := make([]float64, a.n)
	for u := 0; u < a.n; u++ {
		pa[u] = a.strength(u) / twoM
		pm[part[u]] += pa[u]
		for _, v := range sortedKeys(a.nbr[u]) {
			if part[v] != part[u] {
				qm[part[u]] += a.nbr[u][v] / twoM
			}
		}
	}
	var sumQ float64
	for _, c := range sortedKeys(qm) {
		sumQ += qm[c]
	}
	// deltaRemove computes the change in the module-dependent terms when
	// u leaves module c (with wc = weight from u into c, excluding u).
	termsFor := func(q, p float64) float64 { return -2*plogp(q) + plogp(q+p) }
	for sweep := 0; sweep < 50; sweep++ {
		moved := false
		for _, u := range shuffled(rng, a.n) {
			cu := part[u]
			wTo := map[int]float64{}
			var wTotal float64
			for _, v := range sortedKeys(a.nbr[u]) {
				w := a.nbr[u][v]
				wTo[part[v]] += w / twoM
				wTotal += w / twoM
			}
			// Current contribution of u's module and sumQ.
			qOld, pOld := qm[cu], pm[cu]
			// After removing u from cu: exits from cu drop by u's links
			// into cu but gain u's links out of cu... removing u entirely:
			qCuWithoutU := qOld - (wTotal - wTo[cu]) + wTo[cu]
			pCuWithoutU := pOld - pa[u]
			if pCuWithoutU < 1e-15 {
				qCuWithoutU, pCuWithoutU = 0, 0
			}
			sumQWithoutU := sumQ - qOld + qCuWithoutU

			type cand struct {
				c          int
				q, p, sumQ float64 // resulting module state if u joins c
			}
			best := cand{c: cu, q: qOld, p: pOld, sumQ: sumQ}
			bestDelta := 0.0
			base := plogp(sumQ) + termsFor(qOld, pOld)
			// Candidates in sorted order: under the strict-improvement
			// threshold below, equal-delta candidates resolve to the
			// lowest module id every run instead of map order — the
			// documented fixed-seed reproducibility depends on it.
			for _, c := range sortedKeys(wTo) {
				if c == cu {
					continue
				}
				qc, pc := qm[c], pm[c]
				// u joins c: c's exits gain u's external links, lose the
				// links u has into c (now internal).
				qNew := qc + (wTotal - wTo[c]) - wTo[c]
				pNew := pc + pa[u]
				sq := sumQWithoutU - qc + qNew
				delta := plogp(sq) + termsFor(qCuWithoutU, pCuWithoutU) + termsFor(qNew, pNew) -
					base - termsFor(qc, pc)
				if delta < bestDelta-1e-12 {
					bestDelta = delta
					best = cand{c: c, q: qNew, p: pNew, sumQ: sq}
				}
			}
			if best.c != cu {
				part[u] = best.c
				qm[cu], pm[cu] = qCuWithoutU, pCuWithoutU
				qm[best.c], pm[best.c] = best.q, best.p
				sumQ = best.sumQ
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}
