package community

import (
	"math/rand"

	"repro/internal/graph"
)

// Modularity returns Newman's weighted modularity of a partition:
//
//	Q = (1/2m) Σ_ij (A_ij - k_i k_j / 2m) δ(c_i, c_j),
//
// computed on the undirected (symmetrized) view of g. This is the
// metric the case study reports for the expert two-digit occupation
// classification on each backbone (NC 0.192 vs DF 0.115).
//
//lint:ctxflow-ok case-study criterion: one fold over an already-pruned backbone, between the engine's ctx checks
func Modularity(g *graph.Graph, part []int) float64 {
	u := g.Undirected()
	if u.TotalWeight() == 0 {
		return 0
	}
	// CSR-native: one pass over the canonical edge slice plus the
	// precomputed strengths — no adjacency maps, no per-community maps
	// (labels are densified into slice indices). The adj-based
	// implementation below stays as the optimizer substrate and as the
	// property-test oracle.
	dense, k := densified(part)
	// For undirected graphs TotalWeight counts each edge twice, so it is
	// exactly the 2m normalizer.
	twoM := u.TotalWeight()
	intw := make([]float64, k)
	str := make([]float64, k)
	for n, i := u.NumNodes(), 0; i < n; i++ {
		str[dense[i]] += u.OutStrength(i)
	}
	for _, e := range u.Edges() {
		if c := dense[e.Src]; c == dense[e.Dst] {
			intw[c] += e.Weight
		}
	}
	q := 0.0
	for c := 0; c < k; c++ {
		q += 2 * intw[c] / twoM
		s := str[c] / twoM
		q -= s * s
	}
	return q
}

// densified returns a copy of part with labels renumbered to 0..k-1,
// and k — so per-community accumulators can be flat slices.
func densified(part []int) ([]int, int) {
	dense := append([]int(nil), part...)
	return dense, densify(dense)
}

// modularity is the adjacency-map implementation, retained as the
// property-test oracle for the CSR-native Modularity above (it also
// handles the self-loop weights that only arise on aggregated
// supernode graphs, which never reach the public entry point).
func (a *adj) modularity(part []int) float64 {
	if a.total == 0 {
		return 0
	}
	twoM := 2 * a.total
	// Per-community: internal weight (each edge once) and strength sum.
	intw := map[int]float64{}
	str := map[int]float64{}
	for u := 0; u < a.n; u++ {
		c := part[u]
		str[c] += a.strength(u)
		intw[c] += a.self[u]
		for _, v := range sortedKeys(a.nbr[u]) {
			if u < v && part[v] == c {
				intw[c] += a.nbr[u][v]
			}
		}
	}
	q := 0.0
	for _, c := range sortedKeys(intw) {
		q += 2 * intw[c] / twoM
	}
	for _, c := range sortedKeys(str) {
		s := str[c]
		q -= (s / twoM) * (s / twoM)
	}
	return q
}

// Louvain greedily maximizes modularity with the two-phase method of
// Blondel et al.: sweep local node moves to the best neighboring
// community until no gain, aggregate communities into supernodes, and
// repeat. The rng fixes tie-breaking and sweep order, making runs
// reproducible.
func Louvain(g *graph.Graph, rng *rand.Rand) []int {
	a := newAdj(g)
	part := make([]int, a.n) // partition of current-level supernodes
	for i := range part {
		part[i] = i
	}
	assign := make([]int, a.n) // final assignment of original nodes
	for i := range assign {
		assign[i] = i
	}
	for {
		improved := a.localMoveModularity(part, rng)
		k := densify(part)
		// Project this level's labels onto the original nodes.
		for i := range assign {
			assign[i] = part[assign[i]]
		}
		if !improved || k == a.n {
			break
		}
		a = a.aggregate(part, k)
		part = make([]int, k)
		for i := range part {
			part[i] = i
		}
	}
	densify(assign)
	return assign
}

// localMoveModularity sweeps nodes, moving each to the neighboring
// community with the highest modularity gain, until a full sweep makes
// no move. Reports whether any move happened.
func (a *adj) localMoveModularity(part []int, rng *rand.Rand) bool {
	twoM := 2 * a.total
	if twoM == 0 {
		return false
	}
	// Community strength sums.
	commStr := make(map[int]float64)
	for u := 0; u < a.n; u++ {
		commStr[part[u]] += a.strength(u)
	}
	anyMove := false
	for {
		moved := false
		for _, u := range shuffled(rng, a.n) {
			cu := part[u]
			ku := a.strength(u)
			// Weight from u to each adjacent community.
			wTo := map[int]float64{}
			for _, v := range sortedKeys(a.nbr[u]) {
				wTo[part[v]] += a.nbr[u][v]
			}
			commStr[cu] -= ku
			bestC, bestGain := cu, 0.0
			baseline := wTo[cu] - commStr[cu]*ku/twoM
			// Candidates in sorted order: under the strict-improvement
			// threshold below, equal-gain candidates resolve to the
			// lowest community id every run instead of map order — the
			// documented fixed-seed reproducibility depends on it.
			for _, c := range sortedKeys(wTo) {
				if c == cu {
					continue
				}
				gain := (wTo[c] - commStr[c]*ku/twoM) - baseline
				if gain > bestGain+1e-12 {
					bestGain, bestC = gain, c
				}
			}
			commStr[bestC] += ku
			if bestC != cu {
				part[u] = bestC
				moved = true
				anyMove = true
			}
		}
		if !moved {
			return anyMove
		}
	}
}
