package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func twoCliquesBridge() (*graph.Graph, []int) {
	b := graph.NewBuilder(false)
	b.AddNodes(8)
	clique := func(nodes []int) {
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				b.MustAddEdge(nodes[i], nodes[j], 1)
			}
		}
	}
	clique([]int{0, 1, 2, 3})
	clique([]int{4, 5, 6, 7})
	b.MustAddEdge(3, 4, 0.5)
	truth := []int{0, 0, 0, 0, 1, 1, 1, 1}
	return b.Build(), truth
}

func TestModularityKnownValues(t *testing.T) {
	g, truth := twoCliquesBridge()
	qTruth := Modularity(g, truth)
	one := make([]int, 8) // everything in one community
	qOne := Modularity(g, one)
	if math.Abs(qOne) > 1e-12 {
		t.Errorf("single-community modularity = %v, want 0", qOne)
	}
	if qTruth <= 0.3 {
		t.Errorf("true partition modularity = %v, want clearly positive", qTruth)
	}
	// Random-ish bad partition scores lower.
	bad := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if qBad := Modularity(g, bad); qBad >= qTruth {
		t.Errorf("bad partition %v >= truth %v", qBad, qTruth)
	}
}

func TestModularityUpperBound(t *testing.T) {
	g, truth := twoCliquesBridge()
	if q := Modularity(g, truth); q >= 1 {
		t.Errorf("modularity %v >= 1", q)
	}
}

func TestLouvainRecoversCliques(t *testing.T) {
	g, truth := twoCliquesBridge()
	part := Louvain(g, rand.New(rand.NewSource(1)))
	if got := NMI(part, truth); got < 0.99 {
		t.Errorf("Louvain NMI vs truth = %v, want 1", got)
	}
	if q := Modularity(g, part); q < Modularity(g, truth)-1e-9 {
		t.Errorf("Louvain modularity %v below truth partition", q)
	}
}

func TestLouvainOnPlantedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, truth := gen.PlantedPartition(rng, 100, 4, 0.6, 0.02)
	part := Louvain(g, rng)
	if got := NMI(part, truth); got < 0.85 {
		t.Errorf("Louvain NMI on planted partition = %v", got)
	}
}

func TestCodeLengthOneModuleIsEntropy(t *testing.T) {
	g, _ := twoCliquesBridge()
	one := make([]int, 8)
	l := CodeLength(g, one)
	// Entropy of stationary visit rates.
	u := g.Undirected()
	var twoM float64
	for v := 0; v < u.NumNodes(); v++ {
		twoM += u.OutStrength(v)
	}
	var h float64
	for v := 0; v < u.NumNodes(); v++ {
		h -= plogp(u.OutStrength(v) / twoM)
	}
	if math.Abs(l-h) > 1e-9 {
		t.Errorf("one-module codelength %v != visit-rate entropy %v", l, h)
	}
}

func TestCodeLengthBetterWithTrueModules(t *testing.T) {
	g, truth := twoCliquesBridge()
	one := make([]int, 8)
	lOne := CodeLength(g, one)
	lTruth := CodeLength(g, truth)
	if lTruth >= lOne {
		t.Errorf("true partition codelength %v >= one-module %v", lTruth, lOne)
	}
	// Singletons are worse than the true modules.
	singles := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if ls := CodeLength(g, singles); ls <= lTruth {
		t.Errorf("singleton codelength %v <= truth %v", ls, lTruth)
	}
}

func TestInfomapRecoversCliques(t *testing.T) {
	g, truth := twoCliquesBridge()
	part := Infomap(g, rand.New(rand.NewSource(3)))
	if got := NMI(part, truth); got < 0.99 {
		t.Errorf("Infomap NMI = %v, want 1", got)
	}
	// The found partition's codelength must not exceed the truth's.
	if lFound, lTruth := CodeLength(g, part), CodeLength(g, truth); lFound > lTruth+1e-9 {
		t.Errorf("Infomap codelength %v > truth %v", lFound, lTruth)
	}
}

func TestInfomapOnPlantedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, truth := gen.PlantedPartition(rng, 90, 3, 0.6, 0.02)
	part := Infomap(g, rng)
	if got := NMI(part, truth); got < 0.85 {
		t.Errorf("Infomap NMI on planted partition = %v", got)
	}
}

func TestNMIProperties(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %v", got)
	}
	// Relabeling leaves NMI at 1.
	b := []int{5, 5, 9, 9, 7, 7}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI under relabel = %v", got)
	}
	// Independence: one grouping carries no information about the other.
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	if got := NMI(x, y); math.Abs(got) > 1e-12 {
		t.Errorf("NMI independent = %v", got)
	}
	if !math.IsNaN(NMI(a, []int{1})) {
		t.Error("length mismatch should be NaN")
	}
	if got := NMI([]int{0, 0}, []int{3, 3}); got != 1 {
		t.Errorf("two single-cluster partitions: NMI = %v, want 1", got)
	}
}

// Property: NMI is symmetric and within [0, 1] (up to epsilon).
func TestQuickNMISymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(5)
			b[i] = rng.Intn(5)
		}
		x := NMI(a, b)
		y := NMI(b, a)
		if math.IsNaN(x) {
			return true
		}
		return math.Abs(x-y) < 1e-9 && x >= -1e-9 && x <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for any partition, the map-equation codelength is
// non-negative and no better than the best of (one module, singletons)
// minus nothing — i.e., finite and consistent under label permutation.
func TestQuickCodeLengthLabelInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := gen.PlantedPartition(rng, 30, 3, 0.5, 0.1)
		part := make([]int, 30)
		for i := range part {
			part[i] = rng.Intn(4)
		}
		l1 := CodeLength(g, part)
		// Permute labels.
		perm := map[int]int{0: 7, 1: 3, 2: 9, 3: 1}
		part2 := make([]int, len(part))
		for i := range part {
			part2[i] = perm[part[i]]
		}
		l2 := CodeLength(g, part2)
		return l1 >= 0 && math.Abs(l1-l2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Louvain never returns a partition with modularity below the
// all-singletons or one-module baselines.
func TestQuickLouvainBeatsBaselines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := gen.PlantedPartition(rng, 40, 2+rng.Intn(3), 0.5, 0.05)
		part := Louvain(g, rng)
		q := Modularity(g, part)
		one := make([]int, 40)
		singles := make([]int, 40)
		for i := range singles {
			singles[i] = i
		}
		return q >= Modularity(g, one)-1e-9 && q >= Modularity(g, singles)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestModularityMatchesAdjOracle pins the CSR-native Modularity to the
// adjacency-map implementation the optimizers still use, on random
// graphs and random partitions.
func TestModularityMatchesAdjOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := gen.PlantedPartition(rng, 20+rng.Intn(30), 2+rng.Intn(4), 0.4, 0.1)
		part := make([]int, g.NumNodes())
		for i := range part {
			part[i] = rng.Intn(5) * 3 // sparse, non-dense labels
		}
		got := Modularity(g, part)
		want := newAdj(g).modularity(part)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: Modularity = %v, adj oracle = %v", seed, got, want)
		}
	}
}

// TestCodeLengthMatchesAdjOracle pins the CSR-native CodeLength to the
// adjacency-map implementation on random graphs and partitions.
func TestCodeLengthMatchesAdjOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g, _ := gen.PlantedPartition(rng, 20+rng.Intn(30), 2+rng.Intn(4), 0.4, 0.1)
		part := make([]int, g.NumNodes())
		for i := range part {
			part[i] = rng.Intn(6)
		}
		got := CodeLength(g, part)
		want := newAdj(g).codeLength(part)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: CodeLength = %v, adj oracle = %v", seed, got, want)
		}
	}
}
