// Package community implements the community-analysis substrate of the
// paper's case study (Section VI): weighted modularity and a
// Louvain-style optimizer, the map equation with an Infomap-style
// search, and normalized mutual information between partitions.
//
// The case study grades NC against DF backbones by (a) the Infomap
// codelength gain over the partition-free encoding, (b) the modularity
// of the expert occupation classification, and (c) the NMI between
// discovered communities and that classification.
package community

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// adj is the internal mutable weighted-graph representation used by the
// optimizers: plain adjacency maps plus self-loop weights, which appear
// when modules are aggregated into supernodes.
type adj struct {
	n     int
	nbr   []map[int]float64 // nbr[u][v] = weight (symmetric)
	self  []float64         // self-loop weight (intra-supernode)
	total float64           // sum of all edge weights incl. self, counted once
}

// newAdj converts a graph (symmetrized if directed) to the internal form.
func newAdj(g *graph.Graph) *adj {
	u := g.Undirected()
	a := &adj{
		n:    u.NumNodes(),
		nbr:  make([]map[int]float64, u.NumNodes()),
		self: make([]float64, u.NumNodes()),
	}
	for i := range a.nbr {
		a.nbr[i] = make(map[int]float64)
	}
	for _, e := range u.Edges() {
		a.nbr[e.Src][int(e.Dst)] += e.Weight
		a.nbr[e.Dst][int(e.Src)] += e.Weight
		a.total += e.Weight
	}
	return a
}

// strength returns the total incident weight of u (self-loops twice).
// The fold runs in sorted-neighbor order so the float sum is identical
// across runs.
func (a *adj) strength(u int) float64 {
	s := 2 * a.self[u]
	for _, v := range sortedKeys(a.nbr[u]) {
		s += a.nbr[u][v]
	}
	return s
}

// sortedKeys returns m's keys in increasing order — the canonical
// iteration order for the map-based adjacency. Go randomizes map range
// order per run, so every float fold or argmax over these maps must go
// through a sorted key slice to keep optimizer runs bit-reproducible
// for a fixed seed.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	//lint:detiter-ok collecting keys only; the slice is sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedPairKeys is sortedKeys for pair-keyed tables (NMI's joint
// histogram), ordered lexicographically.
func sortedPairKeys(m map[[2]int]float64) [][2]int {
	keys := make([][2]int, 0, len(m))
	//lint:detiter-ok collecting keys only; the slice is sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// aggregate merges nodes into supernodes according to part (labels must
// be dense 0..k-1) and returns the quotient graph.
func (a *adj) aggregate(part []int, k int) *adj {
	q := &adj{
		n:     k,
		nbr:   make([]map[int]float64, k),
		self:  make([]float64, k),
		total: a.total,
	}
	for i := range q.nbr {
		q.nbr[i] = make(map[int]float64)
	}
	for u := 0; u < a.n; u++ {
		cu := part[u]
		q.self[cu] += a.self[u]
		for _, v := range sortedKeys(a.nbr[u]) {
			if u < v {
				w := a.nbr[u][v]
				cv := part[v]
				if cu == cv {
					q.self[cu] += w
				} else {
					q.nbr[cu][cv] += w
					q.nbr[cv][cu] += w
				}
			}
		}
	}
	return q
}

// densify renumbers arbitrary labels to 0..k-1 and returns k.
func densify(part []int) int {
	next := 0
	remap := make(map[int]int, len(part))
	for i, c := range part {
		d, ok := remap[c]
		if !ok {
			d = next
			remap[c] = d
			next++
		}
		part[i] = d
	}
	return next
}

// shuffled returns 0..n-1 in random order.
func shuffled(rng *rand.Rand, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// plogp returns x·log2(x), with the 0·log 0 = 0 convention.
func plogp(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log2(x)
}
