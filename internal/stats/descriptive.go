// Package stats implements the statistical substrate for the backboning
// library: descriptive statistics, rank and product-moment correlation,
// ordinary least squares regression, and the probability distributions
// (Normal, Binomial, Beta, Poisson) that the Noise-Corrected null model
// and the synthetic data generators are built on. Only the standard
// library is used.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	// Kahan summation: edge-weight sums span ten orders of magnitude in
	// the Trade network, where naive summation loses precision.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// MeanNonNaN returns the arithmetic mean of the non-NaN entries of xs,
// or NaN when none remain. Experiment sweeps use it to average a metric
// over observation pairs where some pairs are undefined (e.g. Stability
// over consecutive years when a year pair yields too few joint edges).
func MeanNonNaN(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the unbiased sample variance of xs,
// or NaN if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs; NaNs if empty.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// It does not modify xs. Returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
