package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.2815515655446004, 0.9},
		{1.6448536269514722, 0.95},
		{2.3263478740408408, 0.99},
		{-1.959963984540054, 0.025},
	}
	for _, c := range cases {
		approx(t, NormalCDF(c.z), c.want, 1e-9, "NormalCDF")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-8, 0.001, 0.01, 0.05, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1 - 1e-8} {
		z := NormalQuantile(p)
		approx(t, NormalCDF(z), p, 1e-9, "CDF(Quantile(p))")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestPaperDeltaValues(t *testing.T) {
	// The paper: δ of 1.28, 1.64, 2.32 approximate p-values 0.1, 0.05, 0.01.
	approx(t, 1-NormalCDF(1.28), 0.1, 5e-3, "delta 1.28")
	approx(t, 1-NormalCDF(1.64), 0.05, 5e-3, "delta 1.64")
	approx(t, 1-NormalCDF(2.32), 0.01, 5e-3, "delta 2.32")
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	n, p := 25.0, 0.3
	var sum float64
	for k := 0.0; k <= n; k++ {
		sum += math.Exp(BinomialLogPMF(k, n, p))
	}
	approx(t, sum, 1, 1e-10, "PMF normalization")
}

func TestBinomialSFAgainstDirectSum(t *testing.T) {
	n, p := 40.0, 0.15
	for _, k := range []float64{0, 1, 5, 6, 10, 20, 40} {
		var want float64
		for j := k; j <= n; j++ {
			want += math.Exp(BinomialLogPMF(j, n, p))
		}
		approx(t, BinomialSF(k, n, p), want, 1e-9, "BinomialSF")
	}
	if BinomialSF(41, 40, 0.5) != 0 {
		t.Error("SF beyond n should be 0")
	}
	if BinomialSF(0, 40, 0.5) != 1 {
		t.Error("SF at 0 should be 1")
	}
}

func TestBinomialDegenerateP(t *testing.T) {
	if got := BinomialLogPMF(0, 10, 0); got != 0 {
		t.Errorf("logPMF(0;n,p=0) = %v, want 0", got)
	}
	if !math.IsInf(BinomialLogPMF(1, 10, 0), -1) {
		t.Error("logPMF(1;n,p=0) should be -Inf")
	}
	if got := BinomialLogPMF(10, 10, 1); got != 0 {
		t.Errorf("logPMF(n;n,p=1) = %v, want 0", got)
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.33, 0.7, 0.99} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-12, "I_x(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, RegIncBeta(3, 7, 0.2), 1-RegIncBeta(7, 3, 0.8), 1e-12, "symmetry")
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestBetaMomentsRoundTrip(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{2, 5}, {0.5, 0.5}, {10, 1}, {3, 3}} {
		mu, v := BetaMoments(c.a, c.b)
		a2, b2 := BetaFromMoments(mu, v)
		approx(t, a2, c.a, 1e-9, "alpha round trip")
		approx(t, b2, c.b, 1e-9, "beta round trip")
	}
}

// Property: BetaFromMoments inverts BetaMoments for any valid (mu, sigma2).
func TestQuickBetaMomentInversion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.01 + 0.98*rng.Float64()
		// Valid variance must be below mu(1-mu).
		sigma2 := mu * (1 - mu) * (0.01 + 0.9*rng.Float64())
		a, b := BetaFromMoments(mu, sigma2)
		if a <= 0 || b <= 0 {
			return false
		}
		m2, v2 := BetaMoments(a, b)
		return math.Abs(m2-mu) < 1e-9 && math.Abs(v2-sigma2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplePoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, lambda := range []float64{0.5, 3, 25, 80, 1000} {
		const n = 20000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(SamplePoisson(rng, lambda))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		tol := 5 * math.Sqrt(lambda/n) * 3 // generous ~3 "sigma" guard
		if math.Abs(mean-lambda) > math.Max(tol, 0.05*lambda) {
			t.Errorf("Poisson(%v): mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+1 {
			t.Errorf("Poisson(%v): variance = %v", lambda, variance)
		}
	}
	if SamplePoisson(rng, 0) != 0 || SamplePoisson(rng, -1) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestSampleBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n int64
		p float64
	}{{10, 0.5}, {100, 0.05}, {1000, 0.9}, {1 << 20, 1e-4}}
	for _, c := range cases {
		const trials = 20000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			x := float64(SampleBinomial(rng, c.n, c.p))
			sum += x
			sumsq += x * x
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		variance := sumsq/trials - mean*mean
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.5 {
			t.Errorf("Binomial(%d,%v): mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+1 {
			t.Errorf("Binomial(%d,%v): variance = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
	if SampleBinomial(rng, 10, 0) != 0 || SampleBinomial(rng, 10, 1) != 10 || SampleBinomial(rng, 0, 0.5) != 0 {
		t.Error("degenerate binomial draws wrong")
	}
}

// Property: binomial draws always land in [0, n].
func TestQuickBinomialRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(1 + rng.Intn(10000))
		p := rng.Float64()
		for i := 0; i < 50; i++ {
			k := SampleBinomial(rng, n, p)
			if k < 0 || k > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSampleLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = SampleLogNormal(rng, 2, 0.8)
	}
	approx(t, Median(xs), math.Exp(2), 0.3, "log-normal median = e^mu")
}
