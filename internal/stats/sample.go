package stats

import (
	"math"
	"math/rand"
)

// SamplePoisson draws from Poisson(lambda). Knuth's product method is
// used for small rates; for large rates the PTRS transformed-rejection
// sampler of Hörmann (1993) keeps the draw O(1). The synthetic world
// generator uses Poisson counts for gravity-model edge weights.
func SamplePoisson(rng *rand.Rand, lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return poissonPTRS(rng, lambda)
}

func poissonPTRS(rng *rand.Rand, lambda float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLam := math.Log(lambda)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLam-lambda-lg {
			return int64(k)
		}
	}
}

// SampleBinomial draws from Binomial(n, p) by inversion for small n·p
// and by a Poisson/normal-free exact BTPE-style rejection otherwise.
// The year-over-year re-measurement model draws each edge weight from
// Binomial(N.., P_ij), which is how Table I gets an observed variance.
func SampleBinomial(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - SampleBinomial(rng, n, 1-p)
	}
	np := float64(n) * p
	if np < 30 {
		// Inversion by sequential search over the PMF.
		q := 1 - p
		s := p / q
		base := float64(n) * math.Log(q)
		if base < -700 {
			// PMF at 0 underflows; fall back to a normal approximation,
			// valid since np(1-p) is large in this regime.
			return binomNormalApprox(rng, n, p)
		}
		f := math.Exp(base)
		u := rng.Float64()
		var k int64
		for {
			if u < f {
				return k
			}
			u -= f
			k++
			if k > n {
				return n
			}
			f *= s * float64(n-k+1) / float64(k)
		}
	}
	return binomNormalApprox(rng, n, p)
}

func binomNormalApprox(rng *rand.Rand, n int64, p float64) int64 {
	mu := float64(n) * p
	sigma := math.Sqrt(float64(n) * p * (1 - p))
	for {
		k := math.Round(mu + sigma*rng.NormFloat64())
		if k >= 0 && k <= float64(n) {
			return int64(k)
		}
	}
}

// SampleLogNormal draws exp(mu + sigma*Z). Firm-size multipliers in the
// Ownership network and country populations are log-normal.
func SampleLogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// SampleUniform draws U(lo, hi). The Fig-4 synthetic noise model weights
// true edges by (k_i+k_j)·U(eta, 1) and noise edges by (k_i+k_j)·U(0, eta).
func SampleUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}
