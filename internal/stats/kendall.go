package stats

import (
	"math"
	"sort"
)

// KendallTau returns Kendall's τ-b rank correlation between x and y,
// with the standard tie correction. The paper notes that "in principle,
// any distance metric is appropriate" for the Stability criterion; τ-b
// is the customary alternative to the Spearman coefficient used in the
// main text, and the experiments expose both.
//
// The implementation counts discordant pairs with a merge-sort
// inversion count, O(n log n) — the naive O(n²) pair scan would
// dominate the stability sweeps on large backbones.
func KendallTau(x, y []float64) float64 {
	n := len(x)
	if len(y) != n || n < 2 {
		return math.NaN()
	}
	// Sort indices by x, breaking ties by y to group x-ties contiguously.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] < x[idx[b]]
		}
		return y[idx[a]] < y[idx[b]]
	})
	ys := make([]float64, n)
	for i, id := range idx {
		ys[i] = y[id]
	}

	// Tie bookkeeping.
	var tiesX, tiesXY float64 // pairs tied in x; pairs tied in both
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		cnt := float64(j - i + 1)
		tiesX += cnt * (cnt - 1) / 2
		// Within an x-tie block, count y ties.
		for a := i; a <= j; {
			b := a
			for b+1 <= j && ys[b+1] == ys[a] {
				b++
			}
			c := float64(b - a + 1)
			tiesXY += c * (c - 1) / 2
			a = b + 1
		}
		i = j + 1
	}
	var tiesY float64
	sortedY := append([]float64(nil), y...)
	sort.Float64s(sortedY)
	for i := 0; i < n; {
		j := i
		for j+1 < n && sortedY[j+1] == sortedY[i] {
			j++
		}
		cnt := float64(j - i + 1)
		tiesY += cnt * (cnt - 1) / 2
		i = j + 1
	}

	// Discordant pairs = inversions in ys, excluding pairs tied in x
	// (they are neither concordant nor discordant) and pairs tied in y.
	discord := float64(countInversions(append([]float64(nil), ys...)))
	// Inversions counted within x-tie blocks are not discordant; because
	// blocks were sorted by y, they contribute zero inversions. Pairs
	// tied in y only are also counted as zero by strict inversion.

	total := float64(n) * float64(n-1) / 2
	concord := total - discord - tiesX - tiesY + tiesXY
	// tiesXY pairs were subtracted twice (once in tiesX, once in tiesY).
	denom := math.Sqrt((total - tiesX) * (total - tiesY))
	if denom == 0 {
		return math.NaN()
	}
	return (concord - discord) / denom
}

// countInversions counts strict inversions (a[i] > a[j], i < j) by
// merge sort, consuming its input.
func countInversions(a []float64) int64 {
	buf := make([]float64, len(a))
	return mergeCount(a, buf)
}

func mergeCount(a, buf []float64) int64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:k])
	return inv
}
